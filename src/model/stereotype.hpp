#pragma once
/// \file stereotype.hpp
/// The paper's Table 1: the eight new stereotypes the extension adds to
/// UML-RT, represented as first-class metamodel data so tools (validator,
/// code generator, benchmarks) can enumerate them.

#include <string>
#include <vector>

namespace urtx::model {

/// Every modeling concept of the platform, UML-RT originals and the
/// extension's additions.
enum class Stereotype {
    // UML-RT side
    Capsule,
    Port,
    Connect,
    Protocol,
    StateMachine,
    TimeService,
    // Extension side (this paper)
    Streamer,
    DPort,
    SPort,
    Flow,
    Relay,
    FlowTypeKind,
    Solver,
    Strategy,
    Time,
};

const char* to_string(Stereotype s);

/// One row of the paper's Table 1: a UML-RT concept and the extension
/// concepts that mirror it.
struct Table1Row {
    Stereotype umlrt;
    std::vector<Stereotype> extension;
};

/// The complete Table 1 ("New stereotypes comparing with UML-RT").
const std::vector<Table1Row>& table1();

/// Number of *new* stereotypes introduced (the paper says eight).
std::size_t newStereotypeCount();

} // namespace urtx::model
