#include "model/stereotype.hpp"

namespace urtx::model {

const char* to_string(Stereotype s) {
    switch (s) {
        case Stereotype::Capsule: return "capsule";
        case Stereotype::Port: return "port";
        case Stereotype::Connect: return "connect";
        case Stereotype::Protocol: return "protocol";
        case Stereotype::StateMachine: return "state machine";
        case Stereotype::TimeService: return "Time service";
        case Stereotype::Streamer: return "streamer";
        case Stereotype::DPort: return "DPort";
        case Stereotype::SPort: return "SPort";
        case Stereotype::Flow: return "flow";
        case Stereotype::Relay: return "relay";
        case Stereotype::FlowTypeKind: return "flow type";
        case Stereotype::Solver: return "solver";
        case Stereotype::Strategy: return "strategy";
        case Stereotype::Time: return "Time";
    }
    return "?";
}

const std::vector<Table1Row>& table1() {
    static const std::vector<Table1Row> rows = {
        {Stereotype::Capsule, {Stereotype::Streamer}},
        {Stereotype::Port, {Stereotype::DPort, Stereotype::SPort}},
        {Stereotype::Connect, {Stereotype::Flow, Stereotype::Relay}},
        {Stereotype::Protocol, {Stereotype::FlowTypeKind}},
        {Stereotype::StateMachine, {Stereotype::Solver, Stereotype::Strategy}},
        {Stereotype::TimeService, {Stereotype::Time}},
    };
    return rows;
}

std::size_t newStereotypeCount() {
    std::size_t n = 0;
    for (const auto& row : table1()) n += row.extension.size();
    // Note: the paper's prose says "eight new stereotypes" while its
    // Table 1 lists nine names (streamer; DPort, SPort; flow, relay;
    // flow type; solver, strategy; Time). We reproduce the table as
    // printed and report its actual count.
    return n;
}

} // namespace urtx::model
