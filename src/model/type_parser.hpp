#pragma once
/// \file type_parser.hpp
/// Parser for the textual flow-type grammar produced by
/// flow::FlowType::toString():
///
///   type   := "Bool" | "Int" | "Real"
///           | "Vector<" type "," count ">"
///           | "{" field ("," field)* "}"
///   field  := name ":" type
///
/// Used by the XML model interchange so flow types round-trip as strings.

#include <string>

#include "flow/flow_type.hpp"

namespace urtx::model {

/// Parse \p text into a FlowType; throws std::invalid_argument with a
/// position-annotated message on malformed input.
flow::FlowType parseFlowType(const std::string& text);

} // namespace urtx::model
