#pragma once
/// \file instantiate.hpp
/// Model interpreter: build *live* runtime objects straight from a
/// validated model — the paper's "simulation" stage without a compile
/// step. A declarative StreamerClassDecl becomes a real flow::Streamer
/// network (composite structure, boundary DPorts, SPorts, relays, flows);
/// a CapsuleClassDecl becomes an rt::Capsule whose state machine topology
/// is assembled from the declared states and transitions.
///
/// Leaf behaviour comes from a BehaviorRegistry: class names map to
/// factories producing concrete streamers (the standard control block
/// library is pre-registered by registerStandardBlocks()). Unregistered
/// leaf classes instantiate as structure-only streamers so a model can be
/// animated before any equations exist.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "model/model.hpp"
#include "rt/rt.hpp"

namespace urtx::model {

/// Factory signature for leaf streamer behaviours. The factory receives
/// the instance name, the parent and the (parameter-carrying) class
/// declaration.
using LeafFactory = std::function<std::unique_ptr<flow::Streamer>(
    const std::string& name, flow::Streamer* parent, const StreamerClassDecl& cls)>;

class BehaviorRegistry {
public:
    void add(std::string className, LeafFactory factory);
    bool has(const std::string& className) const;
    const LeafFactory* find(const std::string& className) const;

    /// Register factories for the control block library. Class names and
    /// the parameters they read (from StreamerClassDecl::params):
    ///   Constant(value) Step(t0,before,after) Ramp(slope,start)
    ///   Sine(amp,omega,phase,offset) Gain(k) Saturation(lo,hi)
    ///   Integrator(x0[,lo,hi]) FirstOrderLag(tau,x0) Pid(kp,ki,kd,N)
    ///   Sum2 (out=in0+in1) Diff (out=in0-in1) Recorder
    void registerStandardBlocks();

private:
    std::map<std::string, LeafFactory> factories_;
};

/// A structure-only streamer instantiated from a declaration: owns its
/// boundary ports, SPorts, relays and children. Leaf instances without a
/// registered behaviour get zero states and identity-less outputs.
class InstantiatedStreamer final : public flow::Streamer {
public:
    InstantiatedStreamer(std::string name, flow::Streamer* parent)
        : flow::Streamer(std::move(name), parent) {}

    /// Owned structure (populated by the Instantiator).
    std::vector<std::unique_ptr<flow::DPort>> ownedDPorts;
    std::vector<std::unique_ptr<flow::SPort>> ownedSPorts;
    std::vector<std::unique_ptr<flow::Streamer>> ownedChildren;
};

/// A capsule instantiated from a declaration: ports and state machine
/// topology assembled from the model. Transition effects are observable
/// through the transition log (model animation).
class InstantiatedCapsule final : public rt::Capsule {
public:
    InstantiatedCapsule(std::string name, rt::Capsule* parent)
        : rt::Capsule(std::move(name), parent) {}

    std::vector<std::unique_ptr<rt::Port>> ownedPorts;
    std::vector<std::unique_ptr<rt::Capsule>> ownedSubCapsules;
    std::vector<std::unique_ptr<flow::Streamer>> ownedStreamers;

    /// "From --signal--> To" strings, appended as transitions fire.
    std::vector<std::string> transitionLog;
};

class Instantiator {
public:
    /// \p model must outlive the instantiator; validate it first.
    Instantiator(const Model& model, const BehaviorRegistry& registry);

    /// Instantiate streamer class \p className (throws std::invalid_argument
    /// when unknown or when a flow/port reference cannot be resolved).
    std::unique_ptr<flow::Streamer> streamer(const std::string& className,
                                             const std::string& instanceName) const;

    /// Instantiate capsule class \p className with its state machine,
    /// ports, sub-capsules and contained streamers.
    std::unique_ptr<InstantiatedCapsule> capsule(const std::string& className,
                                                 const std::string& instanceName) const;

    /// The rt::Protocol built for a declared protocol (cached; stable
    /// addresses for the lifetime of the instantiator).
    const rt::Protocol& protocol(const std::string& name) const;

private:
    std::unique_ptr<flow::Streamer> buildStreamer(const StreamerClassDecl& cls,
                                                  const std::string& instanceName,
                                                  flow::Streamer* parent) const;
    std::unique_ptr<InstantiatedCapsule> buildCapsule(const std::string& className,
                                                      const std::string& instanceName,
                                                      rt::Capsule* parent) const;
    flow::DPort* findDPortByRef(InstantiatedStreamer& self, const std::string& ref) const;

    const Model* model_;
    const BehaviorRegistry* registry_;
    mutable std::map<std::string, std::unique_ptr<rt::Protocol>> protocolCache_;
};

} // namespace urtx::model
