#include "model/model_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "model/type_parser.hpp"
#include "model/xml.hpp"

namespace urtx::model {

namespace {

void portToXml(XmlNode& parent, const PortDecl& p) {
    XmlNode& n = parent.child("port");
    n.attr("name", p.name);
    if (p.kind == PortDecl::Kind::Signal) {
        n.attr("kind", "signal").attr("protocol", p.protocol);
        if (p.conjugated) n.attr("conjugated", "true");
        if (p.relay) n.attr("relay", "true");
    } else {
        n.attr("kind", "data").attr("flowtype", p.flowType).attr("dir", p.dir);
        if (p.relay) n.attr("relay", "true");
    }
}

PortDecl portFromXml(const XmlNode& n) {
    PortDecl p;
    p.name = n.attrOr("name");
    if (n.attrOr("kind") == "data") {
        p.kind = PortDecl::Kind::Data;
        p.flowType = n.attrOr("flowtype");
        p.dir = n.attrOr("dir");
    } else {
        p.kind = PortDecl::Kind::Signal;
        p.protocol = n.attrOr("protocol");
        p.conjugated = n.attrOr("conjugated") == "true";
    }
    p.relay = n.attrOr("relay") == "true";
    return p;
}

void partToXml(XmlNode& parent, const PartDecl& p) {
    parent.child("part")
        .attr("name", p.name)
        .attr("class", p.className)
        .attr("type", p.kind == PartDecl::Kind::Capsule ? "capsule" : "streamer");
}

PartDecl partFromXml(const XmlNode& n) {
    PartDecl p;
    p.name = n.attrOr("name");
    p.className = n.attrOr("class");
    p.kind = n.attrOr("type") == "capsule" ? PartDecl::Kind::Capsule : PartDecl::Kind::Streamer;
    return p;
}

} // namespace

std::string toXml(const Model& m) {
    XmlNode root("model");
    root.attr("name", m.name);

    for (const auto& p : m.protocols) {
        XmlNode& pn = root.child("protocol");
        pn.attr("name", p.name);
        for (const auto& s : p.signals)
            pn.child("signal").attr("name", s.name).attr("dir", s.dir);
    }
    for (const auto& t : m.flowTypes) {
        root.child("flowtype").attr("name", t.name).attr("type", t.type.toString());
    }
    for (const auto& c : m.capsules) {
        XmlNode& cn = root.child("capsule");
        cn.attr("name", c.name);
        for (const auto& p : c.ports) portToXml(cn, p);
        for (const auto& p : c.parts) partToXml(cn, p);
        for (const auto& con : c.connections)
            cn.child("connect").attr("from", con.from).attr("to", con.to);
        for (const auto& s : c.states) {
            XmlNode& sn = cn.child("state");
            sn.attr("name", s.name);
            if (!s.parent.empty()) sn.attr("parent", s.parent);
            if (s.initial) sn.attr("initial", "true");
        }
        for (const auto& t : c.transitions) {
            XmlNode& tn = cn.child("transition");
            tn.attr("from", t.from).attr("to", t.to).attr("signal", t.signal);
            if (!t.guard.empty()) tn.attr("guard", t.guard);
            if (!t.action.empty()) tn.attr("action", t.action);
        }
    }
    for (const auto& s : m.streamers) {
        XmlNode& sn = root.child("streamer");
        sn.attr("name", s.name);
        if (!s.solver.empty()) sn.attr("solver", s.solver);
        if (!s.equations.empty()) sn.attr("equations", s.equations);
        for (const auto& [key, value] : s.params) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", value);
            sn.child("param").attr("name", key).attr("value", buf);
        }
        for (const auto& p : s.ports) portToXml(sn, p);
        for (const auto& p : s.parts) partToXml(sn, p);
        for (const auto& r : s.relays)
            sn.child("relay")
                .attr("name", r.name)
                .attr("flowtype", r.flowType)
                .attr("fanout", std::to_string(r.fanout));
        for (const auto& fl : s.flows)
            sn.child("flow").attr("from", fl.from).attr("to", fl.to);
    }
    if (!m.topCapsule.empty()) root.child("top").attr("capsule", m.topCapsule);
    return writeXml(root);
}

Model fromXml(const std::string& text) {
    const XmlNode root = parseXml(text);
    if (root.tag != "model") throw std::invalid_argument("fromXml: root must be <model>");
    Model m;
    m.name = root.attrOr("name");
    for (const auto& n : root.children) {
        if (n.tag == "protocol") {
            ProtocolDecl p;
            p.name = n.attrOr("name");
            for (const auto* s : n.childrenNamed("signal"))
                p.signals.push_back({s->attrOr("name"), s->attrOr("dir")});
            m.protocols.push_back(std::move(p));
        } else if (n.tag == "flowtype") {
            m.flowTypes.push_back({n.attrOr("name"), parseFlowType(n.attrOr("type", "Real"))});
        } else if (n.tag == "capsule") {
            CapsuleClassDecl c;
            c.name = n.attrOr("name");
            for (const auto& ch : n.children) {
                if (ch.tag == "port") {
                    c.ports.push_back(portFromXml(ch));
                } else if (ch.tag == "part") {
                    c.parts.push_back(partFromXml(ch));
                } else if (ch.tag == "connect") {
                    c.connections.push_back({ch.attrOr("from"), ch.attrOr("to")});
                } else if (ch.tag == "state") {
                    c.states.push_back({ch.attrOr("name"), ch.attrOr("parent"),
                                        ch.attrOr("initial") == "true"});
                } else if (ch.tag == "transition") {
                    c.transitions.push_back({ch.attrOr("from"), ch.attrOr("to"),
                                             ch.attrOr("signal"), ch.attrOr("guard"),
                                             ch.attrOr("action")});
                }
            }
            m.capsules.push_back(std::move(c));
        } else if (n.tag == "streamer") {
            StreamerClassDecl s;
            s.name = n.attrOr("name");
            s.solver = n.attrOr("solver");
            s.equations = n.attrOr("equations");
            for (const auto& ch : n.children) {
                if (ch.tag == "port") {
                    s.ports.push_back(portFromXml(ch));
                } else if (ch.tag == "part") {
                    s.parts.push_back(partFromXml(ch));
                } else if (ch.tag == "relay") {
                    s.relays.push_back(
                        {ch.attrOr("name"), ch.attrOr("flowtype"),
                         static_cast<std::size_t>(std::stoul(ch.attrOr("fanout", "2")))});
                } else if (ch.tag == "flow") {
                    s.flows.push_back({ch.attrOr("from"), ch.attrOr("to")});
                } else if (ch.tag == "param") {
                    s.params[ch.attrOr("name")] = std::stod(ch.attrOr("value", "0"));
                }
            }
            m.streamers.push_back(std::move(s));
        } else if (n.tag == "top") {
            m.topCapsule = n.attrOr("capsule");
        }
    }
    return m;
}

void saveModel(const Model& m, const std::string& path) {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("saveModel: cannot open '" + path + "'");
    f << toXml(m);
}

Model loadModel(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("loadModel: cannot open '" + path + "'");
    std::ostringstream ss;
    ss << f.rdbuf();
    return fromXml(ss.str());
}

} // namespace urtx::model
