#pragma once
/// \file xml.hpp
/// Minimal XML document model with writer and parser — just enough for the
/// XMI-like model interchange format (elements + attributes, no mixed
/// content, UTF-8 passthrough).

#include <map>
#include <string>
#include <vector>

namespace urtx::model {

struct XmlNode {
    std::string tag;
    std::map<std::string, std::string> attrs;
    std::vector<XmlNode> children;

    XmlNode() = default;
    explicit XmlNode(std::string t) : tag(std::move(t)) {}

    XmlNode& child(std::string tag) {
        children.emplace_back(std::move(tag));
        return children.back();
    }
    XmlNode& attr(const std::string& key, std::string value) {
        attrs[key] = std::move(value);
        return *this;
    }

    const XmlNode* firstChild(const std::string& tag) const;
    std::vector<const XmlNode*> childrenNamed(const std::string& tag) const;
    std::string attrOr(const std::string& key, std::string fallback = "") const;
    bool hasAttr(const std::string& key) const { return attrs.count(key) > 0; }
};

/// Escape &, <, >, ", ' for attribute values.
std::string xmlEscape(const std::string& s);
std::string xmlUnescape(const std::string& s);

/// Serialize with 2-space indentation.
std::string writeXml(const XmlNode& root);

/// Parse a single-rooted document; throws std::invalid_argument with a
/// position-annotated message on malformed input. Comments and XML
/// declarations are skipped.
XmlNode parseXml(const std::string& text);

} // namespace urtx::model
