#include "model/model.hpp"

namespace urtx::model {

const ProtocolDecl* Model::findProtocol(const std::string& n) const {
    for (const auto& p : protocols) {
        if (p.name == n) return &p;
    }
    return nullptr;
}

const FlowTypeDecl* Model::findFlowType(const std::string& n) const {
    for (const auto& t : flowTypes) {
        if (t.name == n) return &t;
    }
    return nullptr;
}

const CapsuleClassDecl* Model::findCapsule(const std::string& n) const {
    for (const auto& c : capsules) {
        if (c.name == n) return &c;
    }
    return nullptr;
}

const StreamerClassDecl* Model::findStreamer(const std::string& n) const {
    for (const auto& s : streamers) {
        if (s.name == n) return &s;
    }
    return nullptr;
}

EndpointRef splitEndpoint(const std::string& ref) {
    const auto dot = ref.find('.');
    if (dot == std::string::npos) return {"", ref};
    return {ref.substr(0, dot), ref.substr(dot + 1)};
}

} // namespace urtx::model
