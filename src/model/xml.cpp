#include "model/xml.hpp"

#include <cctype>
#include <stdexcept>

namespace urtx::model {

const XmlNode* XmlNode::firstChild(const std::string& t) const {
    for (const auto& c : children) {
        if (c.tag == t) return &c;
    }
    return nullptr;
}

std::vector<const XmlNode*> XmlNode::childrenNamed(const std::string& t) const {
    std::vector<const XmlNode*> out;
    for (const auto& c : children) {
        if (c.tag == t) out.push_back(&c);
    }
    return out;
}

std::string XmlNode::attrOr(const std::string& key, std::string fallback) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? fallback : it->second;
}

std::string xmlEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out += c;
        }
    }
    return out;
}

std::string xmlUnescape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size();) {
        if (s[i] != '&') {
            out += s[i++];
            continue;
        }
        const auto semi = s.find(';', i);
        if (semi == std::string::npos) throw std::invalid_argument("xmlUnescape: bare '&'");
        const std::string ent = s.substr(i + 1, semi - i - 1);
        if (ent == "amp") {
            out += '&';
        } else if (ent == "lt") {
            out += '<';
        } else if (ent == "gt") {
            out += '>';
        } else if (ent == "quot") {
            out += '"';
        } else if (ent == "apos") {
            out += '\'';
        } else {
            throw std::invalid_argument("xmlUnescape: unknown entity '&" + ent + ";'");
        }
        i = semi + 1;
    }
    return out;
}

namespace {

void writeNode(const XmlNode& n, std::string& out, int depth) {
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += '<';
    out += n.tag;
    for (const auto& [k, v] : n.attrs) {
        out += ' ';
        out += k;
        out += "=\"";
        out += xmlEscape(v);
        out += '"';
    }
    if (n.children.empty()) {
        out += "/>\n";
        return;
    }
    out += ">\n";
    for (const auto& c : n.children) writeNode(c, out, depth + 1);
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += "</";
    out += n.tag;
    out += ">\n";
}

class XmlParser {
public:
    explicit XmlParser(const std::string& s) : s_(s) {}

    XmlNode parse() {
        skipProlog();
        XmlNode root = element();
        skipMisc();
        if (pos_ != s_.size()) fail("trailing content after root element");
        return root;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw std::invalid_argument("parseXml: " + why + " at position " + std::to_string(pos_));
    }

    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }

    void skipComment() {
        if (s_.compare(pos_, 4, "<!--") == 0) {
            const auto end = s_.find("-->", pos_ + 4);
            if (end == std::string::npos) fail("unterminated comment");
            pos_ = end + 3;
        }
    }

    void skipMisc() {
        for (;;) {
            const std::size_t before = pos_;
            skipWs();
            skipComment();
            if (pos_ == before) return;
        }
    }

    void skipProlog() {
        skipWs();
        if (s_.compare(pos_, 5, "<?xml") == 0) {
            const auto end = s_.find("?>", pos_);
            if (end == std::string::npos) fail("unterminated XML declaration");
            pos_ = end + 2;
        }
        skipMisc();
    }

    std::string name() {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_' ||
                s_[pos_] == '-' || s_[pos_] == ':')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected name");
        return s_.substr(start, pos_ - start);
    }

    XmlNode element() {
        if (pos_ >= s_.size() || s_[pos_] != '<') fail("expected '<'");
        ++pos_;
        XmlNode node(name());
        for (;;) {
            skipWs();
            if (pos_ >= s_.size()) fail("unterminated start tag");
            if (s_[pos_] == '/') {
                ++pos_;
                if (pos_ >= s_.size() || s_[pos_] != '>') fail("expected '>' after '/'");
                ++pos_;
                return node; // self-closing
            }
            if (s_[pos_] == '>') {
                ++pos_;
                break;
            }
            // attribute
            const std::string key = name();
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '=') fail("expected '=' in attribute");
            ++pos_;
            skipWs();
            if (pos_ >= s_.size() || (s_[pos_] != '"' && s_[pos_] != '\'')) {
                fail("expected quoted attribute value");
            }
            const char quote = s_[pos_++];
            const auto end = s_.find(quote, pos_);
            if (end == std::string::npos) fail("unterminated attribute value");
            node.attrs[key] = xmlUnescape(s_.substr(pos_, end - pos_));
            pos_ = end + 1;
        }
        // children until closing tag
        for (;;) {
            skipMisc();
            if (pos_ + 1 < s_.size() && s_[pos_] == '<' && s_[pos_ + 1] == '/') {
                pos_ += 2;
                const std::string closing = name();
                if (closing != node.tag)
                    fail("mismatched closing tag '" + closing + "' for '" + node.tag + "'");
                skipWs();
                if (pos_ >= s_.size() || s_[pos_] != '>') fail("expected '>'");
                ++pos_;
                return node;
            }
            if (pos_ >= s_.size()) fail("unterminated element '" + node.tag + "'");
            if (s_[pos_] != '<') fail("text content is not supported");
            node.children.push_back(element());
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace

std::string writeXml(const XmlNode& root) {
    std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    writeNode(root, out, 0);
    return out;
}

XmlNode parseXml(const std::string& text) { return XmlParser(text).parse(); }

} // namespace urtx::model
