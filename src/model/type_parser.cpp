#include "model/type_parser.hpp"

#include <cctype>
#include <stdexcept>

namespace urtx::model {

namespace {

class Parser {
public:
    explicit Parser(const std::string& s) : s_(s) {}

    flow::FlowType parse() {
        auto t = type();
        skipWs();
        if (pos_ != s_.size()) fail("trailing characters");
        return t;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw std::invalid_argument("parseFlowType: " + why + " at position " +
                                    std::to_string(pos_) + " in '" + s_ + "'");
    }

    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }

    bool consume(char c) {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail(std::string("expected '") + c + "'");
    }

    std::string ident() {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected identifier");
        return s_.substr(start, pos_ - start);
    }

    std::size_t number() {
        skipWs();
        const std::size_t start = pos_;
        while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
        if (pos_ == start) fail("expected number");
        return static_cast<std::size_t>(std::stoull(s_.substr(start, pos_ - start)));
    }

    flow::FlowType type() {
        skipWs();
        if (consume('{')) return record();
        const std::string id = ident();
        if (id == "Bool") return flow::FlowType::boolean();
        if (id == "Int") return flow::FlowType::integer();
        if (id == "Real") return flow::FlowType::real();
        if (id == "Vector") {
            expect('<');
            flow::FlowType elem = type();
            expect(',');
            const std::size_t n = number();
            expect('>');
            return flow::FlowType::vector(std::move(elem), n);
        }
        fail("unknown type name '" + id + "'");
    }

    flow::FlowType record() {
        std::vector<flow::FlowType::Field> fields;
        do {
            std::string name = ident();
            expect(':');
            fields.push_back({std::move(name), type()});
        } while (consume(','));
        expect('}');
        return flow::FlowType::record(std::move(fields));
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

} // namespace

flow::FlowType parseFlowType(const std::string& text) { return Parser(text).parse(); }

} // namespace urtx::model
