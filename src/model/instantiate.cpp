#include "model/instantiate.hpp"

#include <stdexcept>

#include "control/control.hpp"

namespace urtx::model {

namespace c = urtx::control;

// ---------------------------------------------------------- BehaviorRegistry

void BehaviorRegistry::add(std::string className, LeafFactory factory) {
    factories_[std::move(className)] = std::move(factory);
}

bool BehaviorRegistry::has(const std::string& className) const {
    return factories_.count(className) > 0;
}

const LeafFactory* BehaviorRegistry::find(const std::string& className) const {
    auto it = factories_.find(className);
    return it == factories_.end() ? nullptr : &it->second;
}

namespace {

double p(const StreamerClassDecl& cls, const std::string& key, double fallback = 0.0) {
    auto it = cls.params.find(key);
    return it == cls.params.end() ? fallback : it->second;
}

} // namespace

void BehaviorRegistry::registerStandardBlocks() {
    add("Constant", [](const std::string& n, flow::Streamer* parent,
                       const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Constant>(n, parent, p(cls, "value"));
    });
    add("Step", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Step>(n, parent, p(cls, "t0"), p(cls, "before"),
                                         p(cls, "after", 1.0));
    });
    add("Ramp", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Ramp>(n, parent, p(cls, "slope", 1.0), p(cls, "start"));
    });
    add("Sine", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Sine>(n, parent, p(cls, "amp", 1.0), p(cls, "omega", 1.0),
                                         p(cls, "phase"), p(cls, "offset"));
    });
    add("Gain", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Gain>(n, parent, p(cls, "k", 1.0));
    });
    add("Saturation", [](const std::string& n, flow::Streamer* parent,
                         const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Saturation>(n, parent, p(cls, "lo", -1.0), p(cls, "hi", 1.0));
    });
    add("Integrator", [](const std::string& n, flow::Streamer* parent,
                         const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        auto block = std::make_unique<c::Integrator>(n, parent, p(cls, "x0"));
        if (cls.params.count("lo") && cls.params.count("hi"))
            block->withLimits(p(cls, "lo"), p(cls, "hi"));
        return block;
    });
    add("FirstOrderLag", [](const std::string& n, flow::Streamer* parent,
                            const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::FirstOrderLag>(n, parent, p(cls, "tau", 1.0), p(cls, "x0"));
    });
    add("Pid", [](const std::string& n, flow::Streamer* parent,
                  const StreamerClassDecl& cls) -> std::unique_ptr<flow::Streamer> {
        auto block = std::make_unique<c::Pid>(n, parent, p(cls, "kp", 1.0), p(cls, "ki"),
                                              p(cls, "kd"), p(cls, "N", 100.0));
        if (cls.params.count("lo") && cls.params.count("hi"))
            block->withLimits(p(cls, "lo"), p(cls, "hi"));
        return block;
    });
    add("Sum2", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl&) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Sum>(n, parent, "++");
    });
    add("Diff", [](const std::string& n, flow::Streamer* parent,
                   const StreamerClassDecl&) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Sum>(n, parent, "+-");
    });
    add("Recorder", [](const std::string& n, flow::Streamer* parent,
                       const StreamerClassDecl&) -> std::unique_ptr<flow::Streamer> {
        return std::make_unique<c::Recorder>(n, parent);
    });
}

// ---------------------------------------------------------------- Instantiator

Instantiator::Instantiator(const Model& model, const BehaviorRegistry& registry)
    : model_(&model), registry_(&registry) {}

const rt::Protocol& Instantiator::protocol(const std::string& name) const {
    auto it = protocolCache_.find(name);
    if (it != protocolCache_.end()) return *it->second;
    const ProtocolDecl* decl = model_->findProtocol(name);
    if (!decl) throw std::invalid_argument("Instantiator: unknown protocol '" + name + "'");
    auto proto = std::make_unique<rt::Protocol>(decl->name);
    for (const auto& s : decl->signals) {
        if (s.dir == "in") {
            proto->in(s.name);
        } else if (s.dir == "out") {
            proto->out(s.name);
        } else {
            proto->inout(s.name);
        }
    }
    const rt::Protocol& ref = *proto;
    protocolCache_.emplace(name, std::move(proto));
    return ref;
}

flow::DPort* Instantiator::findDPortByRef(InstantiatedStreamer& self,
                                          const std::string& ref) const {
    const EndpointRef ep = splitEndpoint(ref);
    if (ep.part.empty()) {
        if (flow::DPort* port = self.findDPort(ep.port)) return port;
        return nullptr;
    }
    for (flow::Streamer* child : self.subStreamers()) {
        if (child->name() != ep.part) continue;
        // Relay children expose in/out0..N ports by name like any streamer.
        if (flow::DPort* port = child->findDPort(ep.port)) return port;
        return nullptr;
    }
    return nullptr;
}

std::unique_ptr<flow::Streamer> Instantiator::buildStreamer(const StreamerClassDecl& cls,
                                                            const std::string& instanceName,
                                                            flow::Streamer* parent) const {
    // Leaf with registered behaviour: delegate entirely to the factory.
    if (cls.parts.empty() && cls.relays.empty()) {
        if (const LeafFactory* factory = registry_->find(cls.name)) {
            auto leaf = (*factory)(instanceName, parent, cls);
            for (const auto& [key, value] : cls.params) leaf->setParam(key, value);
            return leaf;
        }
    }

    auto inst = std::make_unique<InstantiatedStreamer>(instanceName, parent);

    // Boundary ports.
    for (const PortDecl& port : cls.ports) {
        if (port.kind == PortDecl::Kind::Data) {
            const FlowTypeDecl* ft = model_->findFlowType(port.flowType);
            if (!ft)
                throw std::invalid_argument("Instantiator: unknown flow type '" + port.flowType +
                                            "' on " + cls.name + "." + port.name);
            inst->ownedDPorts.push_back(std::make_unique<flow::DPort>(
                *inst, port.name,
                port.dir == "in" ? flow::DPortDir::In : flow::DPortDir::Out, ft->type));
        } else {
            inst->ownedSPorts.push_back(std::make_unique<flow::SPort>(
                *inst, port.name, protocol(port.protocol), port.conjugated));
        }
    }

    // Parts (recursively) and relays.
    for (const PartDecl& part : cls.parts) {
        const StreamerClassDecl* sub = model_->findStreamer(part.className);
        if (!sub)
            throw std::invalid_argument("Instantiator: unknown streamer class '" +
                                        part.className + "' for part " + part.name);
        inst->ownedChildren.push_back(buildStreamer(*sub, part.name, inst.get()));
    }
    for (const RelayDecl& relay : cls.relays) {
        const FlowTypeDecl* ft = model_->findFlowType(relay.flowType);
        if (!ft)
            throw std::invalid_argument("Instantiator: unknown flow type '" + relay.flowType +
                                        "' on relay " + relay.name);
        inst->ownedChildren.push_back(
            std::make_unique<flow::Relay>(relay.name, inst.get(), ft->type, relay.fanout));
    }

    // Flows. Relay port naming: the Relay class exposes "in"/"out<i>"; the
    // model references them the same way.
    for (const ConnectDecl& fl : cls.flows) {
        flow::DPort* src = findDPortByRef(*inst, fl.from);
        flow::DPort* dst = findDPortByRef(*inst, fl.to);
        if (!src || !dst)
            throw std::invalid_argument("Instantiator: cannot resolve flow " + fl.from + " -> " +
                                        fl.to + " in " + cls.name);
        flow::flow(*src, *dst);
    }

    for (const auto& [key, value] : cls.params) inst->setParam(key, value);
    return inst;
}

std::unique_ptr<flow::Streamer> Instantiator::streamer(const std::string& className,
                                                       const std::string& instanceName) const {
    const StreamerClassDecl* cls = model_->findStreamer(className);
    if (!cls)
        throw std::invalid_argument("Instantiator: unknown streamer class '" + className + "'");
    return buildStreamer(*cls, instanceName, nullptr);
}

std::unique_ptr<InstantiatedCapsule> Instantiator::capsule(
    const std::string& className, const std::string& instanceName) const {
    return buildCapsule(className, instanceName, nullptr);
}

std::unique_ptr<InstantiatedCapsule> Instantiator::buildCapsule(
    const std::string& className, const std::string& instanceName, rt::Capsule* parent) const {
    const CapsuleClassDecl* cls = model_->findCapsule(className);
    if (!cls)
        throw std::invalid_argument("Instantiator: unknown capsule class '" + className + "'");

    auto cap = std::make_unique<InstantiatedCapsule>(instanceName, parent);

    // Signal ports (data relay ports on capsules carry no behaviour; they
    // are documented by the model but need no runtime object here).
    for (const PortDecl& port : cls->ports) {
        if (port.kind != PortDecl::Kind::Signal) continue;
        cap->ownedPorts.push_back(std::make_unique<rt::Port>(
            *cap, port.name, protocol(port.protocol), port.conjugated,
            port.relay ? rt::PortKind::Relay : rt::PortKind::End));
    }

    // Parts: sub-capsules and contained streamers (Figure 3 containment).
    for (const PartDecl& part : cls->parts) {
        if (model_->findCapsule(part.className)) {
            cap->ownedSubCapsules.push_back(buildCapsule(part.className, part.name, cap.get()));
        } else if (model_->findStreamer(part.className)) {
            cap->ownedStreamers.push_back(streamer(part.className, part.name));
        } else {
            throw std::invalid_argument("Instantiator: unknown part class '" + part.className +
                                        "' in capsule " + className);
        }
    }

    // State machine topology.
    std::map<std::string, rt::State*> states;
    for (const StateDecl& st : cls->states) {
        rt::State* parent = nullptr;
        if (!st.parent.empty()) {
            auto it = states.find(st.parent);
            if (it == states.end())
                throw std::invalid_argument("Instantiator: state parent '" + st.parent +
                                            "' must be declared before '" + st.name + "'");
            parent = it->second;
        }
        states[st.name] = &cap->machine().state(st.name, parent);
    }
    for (const StateDecl& st : cls->states) {
        if (st.initial) cap->machine().initial(*states[st.name]);
    }
    InstantiatedCapsule* raw = cap.get();
    for (const TransitionDecl& tr : cls->transitions) {
        auto from = states.find(tr.from);
        auto to = states.find(tr.to);
        if (from == states.end() || to == states.end())
            throw std::invalid_argument("Instantiator: transition references unknown state in " +
                                        className);
        const std::string label = tr.from + " --" + tr.signal + "--> " + tr.to;
        cap->machine()
            .transition(*from->second, *to->second)
            .on(tr.signal)
            .act([raw, label](const rt::Message&) { raw->transitionLog.push_back(label); });
    }
    return cap;
}

} // namespace urtx::model
