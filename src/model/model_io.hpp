#pragma once
/// \file model_io.hpp
/// XMI-like XML interchange for models: every Model round-trips through
/// toXml/fromXml losslessly (asserted by tests).

#include <string>

#include "model/model.hpp"

namespace urtx::model {

/// Serialize to the interchange XML format.
std::string toXml(const Model& m);

/// Parse a model back; throws std::invalid_argument on malformed
/// documents (unknown tags are ignored for forward compatibility).
Model fromXml(const std::string& text);

/// Convenience file IO.
void saveModel(const Model& m, const std::string& path);
Model loadModel(const std::string& path);

} // namespace urtx::model
