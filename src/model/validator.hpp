#pragma once
/// \file validator.hpp
/// Well-formedness checking of models against the rules the paper states.
///
/// Rule catalogue (ids cite the paper's section 2):
///   UQ1  names of ports/parts/relays unique within a class
///   UQ2  class names unique within the model
///   PR1  protocol signal directions must be in/out/inout
///   CP1  DPorts on capsules must be relay ports ("No data will be
///        processed by capsules")
///   CP2  capsule part classes must exist (capsule or streamer)
///   CP3  signal connections must reference existing ports, with matching
///        protocols
///   ST1  streamers must not contain capsules ("streamers don't contain
///        any capsule")
///   ST2  leaf streamers should name a solver (warning) — "in a streamer,
///        there is a solver"
///   ST3  SPorts must reference an existing protocol
///   ST4  DPorts must reference an existing flow type
///   FL1  flows: the output DPort's flow type must be a subset of the
///        input DPort's flow type
///   FL2  flows must have a legal shape (sibling out->in, boundary in->in,
///        boundary out->out)
///   FL3  an input DPort has at most one feeder; fan-out requires a relay
///   RL1  relay fanout must be >= 2 ("generates two similar flows")
///   SM1  transitions must reference declared states
///   TP1  the designated top capsule must exist

#include <string>
#include <vector>

#include "model/model.hpp"

namespace urtx::model {

enum class Severity { Error, Warning };

struct Diagnostic {
    std::string rule;
    Severity severity;
    std::string element; ///< dotted path of the offending element
    std::string message;
};

class Validator {
public:
    std::vector<Diagnostic> validate(const Model& m) const;

    /// True when no Error-severity diagnostics are present.
    static bool ok(const std::vector<Diagnostic>& diags);
    /// Render diagnostics one per line.
    static std::string render(const std::vector<Diagnostic>& diags);
};

} // namespace urtx::model
