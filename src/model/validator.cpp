#include "model/validator.hpp"

#include <map>
#include <set>

namespace urtx::model {

namespace {

class Run {
public:
    explicit Run(const Model& m) : m_(m) {}

    std::vector<Diagnostic> go() {
        checkGlobalNames();
        for (const auto& p : m_.protocols) checkProtocol(p);
        for (const auto& c : m_.capsules) checkCapsule(c);
        for (const auto& s : m_.streamers) checkStreamer(s);
        checkTop();
        return std::move(diags_);
    }

private:
    void add(const char* rule, Severity sev, std::string element, std::string msg) {
        diags_.push_back(Diagnostic{rule, sev, std::move(element), std::move(msg)});
    }
    void error(const char* rule, std::string element, std::string msg) {
        add(rule, Severity::Error, std::move(element), std::move(msg));
    }
    void warn(const char* rule, std::string element, std::string msg) {
        add(rule, Severity::Warning, std::move(element), std::move(msg));
    }

    void checkGlobalNames() {
        std::set<std::string> seen;
        for (const auto& c : m_.capsules) {
            if (!seen.insert(c.name).second)
                error("UQ2", c.name, "duplicate class name '" + c.name + "'");
        }
        for (const auto& s : m_.streamers) {
            if (!seen.insert(s.name).second)
                error("UQ2", s.name, "duplicate class name '" + s.name + "'");
        }
    }

    void checkProtocol(const ProtocolDecl& p) {
        std::set<std::string> sigs;
        for (const auto& s : p.signals) {
            if (s.dir != "in" && s.dir != "out" && s.dir != "inout")
                error("PR1", p.name + "." + s.name,
                      "signal direction must be in/out/inout, got '" + s.dir + "'");
            if (!sigs.insert(s.name).second)
                warn("PR1", p.name + "." + s.name, "duplicate signal declaration");
        }
    }

    void checkLocalNames(const std::string& cls, const std::vector<PortDecl>& ports,
                         const std::vector<PartDecl>& parts,
                         const std::vector<RelayDecl>* relays) {
        std::set<std::string> seen;
        for (const auto& p : ports) {
            if (!seen.insert(p.name).second)
                error("UQ1", cls + "." + p.name, "duplicate port name");
        }
        for (const auto& p : parts) {
            if (!seen.insert(p.name).second)
                error("UQ1", cls + "." + p.name, "duplicate part name");
        }
        if (relays) {
            for (const auto& r : *relays) {
                if (!seen.insert(r.name).second)
                    error("UQ1", cls + "." + r.name, "duplicate relay name");
            }
        }
    }

    void checkSignalPort(const std::string& cls, const PortDecl& p) {
        if (p.protocol.empty() || !m_.findProtocol(p.protocol))
            error("ST3", cls + "." + p.name,
                  "signal port references unknown protocol '" + p.protocol + "'");
    }

    void checkDataPort(const std::string& cls, const PortDecl& p) {
        if (p.flowType.empty() || !m_.findFlowType(p.flowType))
            error("ST4", cls + "." + p.name,
                  "data port references unknown flow type '" + p.flowType + "'");
        if (p.dir != "in" && p.dir != "out")
            error("ST4", cls + "." + p.name, "data port direction must be in/out");
    }

    void checkCapsule(const CapsuleClassDecl& c) {
        checkLocalNames(c.name, c.ports, c.parts, nullptr);
        for (const auto& p : c.ports) {
            if (p.kind == PortDecl::Kind::Signal) {
                checkSignalPort(c.name, p);
            } else {
                checkDataPort(c.name, p);
                if (!p.relay)
                    error("CP1", c.name + "." + p.name,
                          "DPorts on capsules must be relay ports — capsules never process "
                          "data (paper §2)");
            }
        }
        for (const auto& part : c.parts) {
            const bool isCapsule = m_.findCapsule(part.className) != nullptr;
            const bool isStreamer = m_.findStreamer(part.className) != nullptr;
            if (!isCapsule && !isStreamer)
                error("CP2", c.name + "." + part.name,
                      "part references unknown class '" + part.className + "'");
            if (part.kind == PartDecl::Kind::Capsule && !isCapsule && isStreamer)
                error("CP2", c.name + "." + part.name,
                      "part declared as capsule but '" + part.className + "' is a streamer");
        }
        checkConnections(c);
        checkStateMachine(c);
    }

    /// Resolve a capsule connection endpoint to its signal-port declaration.
    const PortDecl* resolveCapsuleEndpoint(const CapsuleClassDecl& c, const std::string& ref,
                                           bool& onBoundary) {
        onBoundary = false;
        const EndpointRef ep = splitEndpoint(ref);
        if (ep.part.empty()) {
            onBoundary = true;
            for (const auto& p : c.ports) {
                if (p.name == ep.port) return &p;
            }
            return nullptr;
        }
        for (const auto& part : c.parts) {
            if (part.name != ep.part) continue;
            if (const CapsuleClassDecl* sub = m_.findCapsule(part.className)) {
                for (const auto& p : sub->ports) {
                    if (p.name == ep.port) return &p;
                }
            } else if (const StreamerClassDecl* sub2 = m_.findStreamer(part.className)) {
                for (const auto& p : sub2->ports) {
                    if (p.name == ep.port) return &p;
                }
            }
            return nullptr;
        }
        return nullptr;
    }

    void checkConnections(const CapsuleClassDecl& c) {
        std::map<std::string, int> useCount;
        for (const auto& con : c.connections) {
            const std::string where = c.name + ": " + con.from + " <-> " + con.to;
            bool fromBoundary = false, toBoundary = false;
            const PortDecl* from = resolveCapsuleEndpoint(c, con.from, fromBoundary);
            const PortDecl* to = resolveCapsuleEndpoint(c, con.to, toBoundary);
            if (!from || !to) {
                error("CP3", where, "connection endpoint does not resolve to a port");
                continue;
            }
            if (from->kind != PortDecl::Kind::Signal || to->kind != PortDecl::Kind::Signal) {
                error("CP3", where, "capsule connections join signal ports (flows join DPorts)");
                continue;
            }
            if (from->protocol != to->protocol) {
                error("CP3", where,
                      "protocol mismatch ('" + from->protocol + "' vs '" + to->protocol + "')");
                continue;
            }
            // Conjugation: export links (through a boundary relay) keep the
            // role; peer links need opposite roles.
            const bool exportLink = (fromBoundary && from->relay) || (toBoundary && to->relay);
            if (exportLink) {
                if (from->conjugated != to->conjugated)
                    error("CP3", where, "export through a relay requires same conjugation");
            } else if (from->conjugated == to->conjugated) {
                error("CP3", where, "peer ports must have opposite conjugation");
            }
            // End ports carry one connection; relay ports bridge two.
            struct EndUse {
                const std::string* ref;
                const PortDecl* port;
            };
            for (const EndUse& use : {EndUse{&con.from, from}, EndUse{&con.to, to}}) {
                const int limit = use.port->relay ? 2 : 1;
                if (++useCount[*use.ref] > limit)
                    error("CP3", where, "port '" + *use.ref + "' is wired more than once");
            }
        }
    }

    void checkStateMachine(const CapsuleClassDecl& c) {
        std::set<std::string> states;
        for (const auto& s : c.states) states.insert(s.name);
        for (const auto& s : c.states) {
            if (!s.parent.empty() && !states.count(s.parent))
                error("SM1", c.name + "." + s.name,
                      "state parent '" + s.parent + "' is not declared");
        }
        for (const auto& t : c.transitions) {
            if (!states.count(t.from))
                error("SM1", c.name, "transition from unknown state '" + t.from + "'");
            if (!states.count(t.to))
                error("SM1", c.name, "transition to unknown state '" + t.to + "'");
        }
    }

    struct PortInfo {
        const PortDecl* decl = nullptr;
        std::string path;
    };

    /// Resolve an endpoint "part.port" / "port" within a streamer class.
    PortInfo resolveFlowEndpoint(const StreamerClassDecl& s, const std::string& ref,
                                 bool& onBoundary, bool& isRelayNode, std::string& relayType) {
        onBoundary = false;
        isRelayNode = false;
        const EndpointRef ep = splitEndpoint(ref);
        if (ep.part.empty()) {
            onBoundary = true;
            for (const auto& p : s.ports) {
                if (p.name == ep.port) return {&p, s.name + "." + p.name};
            }
            return {};
        }
        for (const auto& r : s.relays) {
            if (r.name == ep.part) {
                isRelayNode = true;
                relayType = r.flowType;
                return {nullptr, s.name + "." + ref};
            }
        }
        for (const auto& part : s.parts) {
            if (part.name != ep.part) continue;
            const StreamerClassDecl* cls = m_.findStreamer(part.className);
            if (!cls) return {};
            for (const auto& p : cls->ports) {
                if (p.name == ep.port) return {&p, s.name + "." + ref};
            }
        }
        return {};
    }

    void checkStreamer(const StreamerClassDecl& s) {
        checkLocalNames(s.name, s.ports, s.parts, &s.relays);
        for (const auto& p : s.ports) {
            if (p.kind == PortDecl::Kind::Signal) {
                checkSignalPort(s.name, p);
            } else {
                checkDataPort(s.name, p);
            }
        }
        // ST1: streamers never contain capsules.
        for (const auto& part : s.parts) {
            if (part.kind == PartDecl::Kind::Capsule || m_.findCapsule(part.className))
                error("ST1", s.name + "." + part.name,
                      "streamers must not contain capsules (paper §2)");
            else if (!m_.findStreamer(part.className))
                error("CP2", s.name + "." + part.name,
                      "part references unknown class '" + part.className + "'");
        }
        // ST2: leaf streamers should have a solver.
        if (s.parts.empty() && s.solver.empty())
            warn("ST2", s.name,
                 "leaf streamer declares no solver — behaviour is computed by a solver "
                 "(paper §2)");
        // RL1: relay fanout.
        for (const auto& r : s.relays) {
            if (r.fanout < 2)
                error("RL1", s.name + "." + r.name,
                      "relay must generate at least two flows (fanout >= 2)");
            if (!m_.findFlowType(r.flowType))
                error("ST4", s.name + "." + r.name,
                      "relay references unknown flow type '" + r.flowType + "'");
        }
        checkFlows(s);
    }

    void checkFlows(const StreamerClassDecl& s) {
        std::set<std::string> fedInputs;
        std::set<std::string> usedOutputs;
        for (const auto& fl : s.flows) {
            bool srcBoundary = false, srcRelay = false, dstBoundary = false, dstRelay = false;
            std::string srcRelayType, dstRelayType;
            PortInfo src = resolveFlowEndpoint(s, fl.from, srcBoundary, srcRelay, srcRelayType);
            PortInfo dst = resolveFlowEndpoint(s, fl.to, dstBoundary, dstRelay, dstRelayType);
            const std::string where = s.name + ": " + fl.from + " -> " + fl.to;

            if (!src.decl && !srcRelay) {
                error("FL2", where, "flow source '" + fl.from + "' does not resolve to a DPort");
                continue;
            }
            if (!dst.decl && !dstRelay) {
                error("FL2", where,
                      "flow destination '" + fl.to + "' does not resolve to a DPort");
                continue;
            }
            // Determine effective direction & types.
            auto typeName = [&](const PortInfo& pi, bool isRelay,
                                const std::string& rt) -> std::string {
                return isRelay ? rt : pi.decl->flowType;
            };
            const std::string srcType = typeName(src, srcRelay, srcRelayType);
            const std::string dstType = typeName(dst, dstRelay, dstRelayType);
            const FlowTypeDecl* st = m_.findFlowType(srcType);
            const FlowTypeDecl* dt = m_.findFlowType(dstType);
            if (st && dt && !st->type.subsetOf(dt->type))
                error("FL1", where,
                      "flow type " + st->type.toString() + " is not a subset of " +
                          dt->type.toString() + " (paper §2)");

            // Shape checks for non-relay endpoints.
            if (src.decl && src.decl->kind != PortDecl::Kind::Data)
                error("FL2", where, "flow source must be a DPort");
            if (dst.decl && dst.decl->kind != PortDecl::Kind::Data)
                error("FL2", where, "flow destination must be a DPort");
            if (src.decl && dst.decl && !srcRelay && !dstRelay) {
                const std::string sd = src.decl->dir, dd = dst.decl->dir;
                const bool sibling = !srcBoundary && !dstBoundary && sd == "out" && dd == "in";
                const bool forwardIn = srcBoundary && !dstBoundary && sd == "in" && dd == "in";
                const bool forwardOut = !srcBoundary && dstBoundary && sd == "out" && dd == "out";
                if (!sibling && !forwardIn && !forwardOut)
                    error("FL2", where,
                          "illegal flow shape (" + sd + (srcBoundary ? "@boundary" : "") +
                              " -> " + dd + (dstBoundary ? "@boundary" : "") + ")");
            }

            // FL3: single feeder / single consumer.
            if (!fedInputs.insert(fl.to).second)
                error("FL3", where, "input '" + fl.to + "' is fed by more than one flow");
            if (!usedOutputs.insert(fl.from).second)
                error("FL3", where,
                      "output '" + fl.from +
                          "' feeds more than one flow; duplicate it with a relay (paper §2)");
        }
    }

    void checkTop() {
        if (!m_.topCapsule.empty() && !m_.findCapsule(m_.topCapsule))
            error("TP1", m_.topCapsule, "top capsule class does not exist");
    }

    const Model& m_;
    std::vector<Diagnostic> diags_;
};

} // namespace

std::vector<Diagnostic> Validator::validate(const Model& m) const { return Run(m).go(); }

bool Validator::ok(const std::vector<Diagnostic>& diags) {
    for (const auto& d : diags) {
        if (d.severity == Severity::Error) return false;
    }
    return true;
}

std::string Validator::render(const std::vector<Diagnostic>& diags) {
    std::string out;
    for (const auto& d : diags) {
        out += (d.severity == Severity::Error ? "error" : "warning");
        out += " [" + d.rule + "] " + d.element + ": " + d.message + "\n";
    }
    return out;
}

} // namespace urtx::model
