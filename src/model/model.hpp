#pragma once
/// \file model.hpp
/// Declarative design-level model of a hybrid system — the artifact a UML
/// tool would hold. Plain data (no behaviour); consumed by the validator
/// (well-formedness), the XML serializer (interchange) and the code
/// generator ("until generation code").

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "flow/flow_type.hpp"

namespace urtx::model {

/// Signal directions use protocol-style strings "in"/"out"/"inout".
struct SignalDecl {
    std::string name;
    std::string dir;
};

struct ProtocolDecl {
    std::string name;
    std::vector<SignalDecl> signals;
};

struct FlowTypeDecl {
    std::string name;
    flow::FlowType type;
};

/// A port on a capsule or streamer class.
struct PortDecl {
    enum class Kind { Signal, Data };
    std::string name;
    Kind kind = Kind::Signal;
    // Signal ports:
    std::string protocol;
    bool conjugated = false;
    bool relay = false; ///< relay port (mandatory for DPorts on capsules)
    // Data ports:
    std::string flowType;
    std::string dir; ///< "in" / "out"
};

/// A contained part (sub-capsule / sub-streamer instance).
struct PartDecl {
    std::string name;
    std::string className;
    enum class Kind { Capsule, Streamer } kind = Kind::Streamer;
};

/// A relay node inside a streamer ("generates two similar flows").
struct RelayDecl {
    std::string name;
    std::string flowType;
    std::size_t fanout = 2;
};

/// Connector endpoints are "part.port" or a bare boundary "port".
struct ConnectDecl {
    std::string from;
    std::string to;
};

struct StateDecl {
    std::string name;
    std::string parent; ///< "" = top region
    bool initial = false;
};

struct TransitionDecl {
    std::string from;
    std::string to;
    std::string signal;
    std::string guard;  ///< free-text guard (documentation + codegen comment)
    std::string action; ///< free-text effect
};

struct CapsuleClassDecl {
    std::string name;
    std::vector<PortDecl> ports;
    std::vector<PartDecl> parts; ///< sub-capsules and contained streamers
    std::vector<ConnectDecl> connections;
    std::vector<StateDecl> states;
    std::vector<TransitionDecl> transitions;
};

struct StreamerClassDecl {
    std::string name;
    std::vector<PortDecl> ports;
    std::vector<PartDecl> parts; ///< must all be streamers (validated)
    std::vector<RelayDecl> relays;
    std::vector<ConnectDecl> flows;
    std::string solver;    ///< integration strategy of the leaf ("RK4", ...)
    std::string equations; ///< documentation of the computed equations
    std::map<std::string, double> params; ///< numeric parameters (gains, x0, ...)
};

class Model {
public:
    std::string name;
    std::vector<ProtocolDecl> protocols;
    std::vector<FlowTypeDecl> flowTypes;
    std::vector<CapsuleClassDecl> capsules;
    std::vector<StreamerClassDecl> streamers;
    std::string topCapsule;

    const ProtocolDecl* findProtocol(const std::string& n) const;
    const FlowTypeDecl* findFlowType(const std::string& n) const;
    const CapsuleClassDecl* findCapsule(const std::string& n) const;
    const StreamerClassDecl* findStreamer(const std::string& n) const;
};

/// Split "part.port" into {part, port}; bare "port" yields {"", port}.
struct EndpointRef {
    std::string part;
    std::string port;
};
EndpointRef splitEndpoint(const std::string& ref);

} // namespace urtx::model
