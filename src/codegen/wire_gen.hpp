#pragma once
/// \file wire_gen.hpp
/// Descriptor-driven binary wire-protocol generation — the serving edge's
/// end of the paper's "until generation code" toolchain, in the spirit of
/// descriptor-walking protobuf-to-C++ generators: a Protocol describes
/// messages as flat field lists (name, kind, tag id, default), and the
/// generator emits one self-contained C++ header with
///
///  * little-endian byte helpers (putU8/U32/U64/F64, putStr) and a
///    bounds-checked Cursor reader that fails on truncation instead of
///    reading past the payload,
///  * one struct per message with an encodeTo()/encode() pair and a
///    static decode() that rejects unknown field tags, truncated fields
///    and hostile map counts with a structured error string,
///  * the frame constants shared by every speaker of the protocol
///    (magic, version, preamble size, frame-header size, FrameType enum).
///
/// Field encoding is tag-prefixed: one u8 tag, then a fixed layout per
/// kind. Scalars are always emitted; strings and maps only when non-empty
/// (absent fields decode to their declared default). The generated header
/// has no dependencies beyond <cstdint>/<cstring>/<map>/<string>, so the
/// daemon, the client, benches and tests can all include it.

#include <string>
#include <vector>

namespace urtx::codegen::wire {

/// Wire kinds a field can have. Scalars are fixed-width little-endian;
/// Str is u32 length + bytes; NumMap/StrMap are u32 count + (key, value)
/// pairs in std::map (i.e. sorted-key, canonical) order.
enum class FieldKind { U8, U64, F64, Bool, Str, NumMap, StrMap };

struct Field {
    std::string name; ///< C++ member name (snake_case, used verbatim)
    FieldKind kind;
    unsigned id;      ///< wire tag, unique per message, 1..255
    std::string init; ///< member initializer expression ("" = value-init)
    std::string comment;
};

struct Message {
    std::string name; ///< generated struct name
    std::vector<Field> fields;
    std::string comment;
};

/// A named frame type carried by the length-prefixed framing layer.
struct FrameKind {
    std::string name;
    unsigned id;
    std::string comment;
};

struct Protocol {
    std::string ns;          ///< namespace of the generated code
    std::string magic;       ///< exactly 4 bytes, starts the preamble
    unsigned version = 1;    ///< negotiated in the preamble
    std::vector<FrameKind> frames;
    std::vector<Message> messages;
};

/// Emit the complete header for \p p. Throws std::invalid_argument on a
/// malformed protocol (duplicate/zero tags, magic not 4 bytes, ...).
std::string generateWireHeader(const Protocol& p);

/// C++ type spelled for a field kind (e.g. "std::uint64_t").
const char* cppType(FieldKind k);

} // namespace urtx::codegen::wire
