#include "codegen/wire_gen.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace urtx::codegen::wire {

const char* cppType(FieldKind k) {
    switch (k) {
    case FieldKind::U8: return "std::uint8_t";
    case FieldKind::U64: return "std::uint64_t";
    case FieldKind::F64: return "double";
    case FieldKind::Bool: return "bool";
    case FieldKind::Str: return "std::string";
    case FieldKind::NumMap: return "std::map<std::string, double>";
    case FieldKind::StrMap: return "std::map<std::string, std::string>";
    }
    return "void";
}

namespace {

void validate(const Protocol& p) {
    if (p.magic.size() != 4) {
        throw std::invalid_argument("wire protocol magic must be exactly 4 bytes");
    }
    if (p.ns.empty()) throw std::invalid_argument("wire protocol needs a namespace");
    std::set<unsigned> frameIds;
    for (const FrameKind& f : p.frames) {
        if (f.id == 0 || f.id > 255 || !frameIds.insert(f.id).second) {
            throw std::invalid_argument("frame type '" + f.name +
                                        "' needs a unique id in 1..255");
        }
    }
    for (const Message& m : p.messages) {
        std::set<unsigned> tags;
        for (const Field& f : m.fields) {
            if (f.id == 0 || f.id > 255 || !tags.insert(f.id).second) {
                throw std::invalid_argument("field '" + m.name + "." + f.name +
                                            "' needs a unique tag in 1..255");
            }
        }
    }
}

/// The fixed support code every generated header carries: byte emitters
/// and the bounds-checked Cursor all decoders read through.
const char* kPrologue = R"(
inline void putU8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}
inline void putU32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void putU64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
inline void putF64(std::string& out, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}
inline void putStr(std::string& out, const std::string& s) {
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

/// Bounds-checked reader: every accessor either consumes exactly its
/// bytes or fails (recording the first failure reason) — a hostile or
/// truncated payload can never read past the buffer.
struct Cursor {
    const unsigned char* p;
    const unsigned char* end;
    std::string* err;

    bool fail(const char* what) {
        if (err && err->empty()) *err = what;
        return false;
    }
    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
    bool u8(std::uint8_t& v) {
        if (remaining() < 1) return fail("truncated u8");
        v = *p++;
        return true;
    }
    bool u32(std::uint32_t& v) {
        if (remaining() < 4) return fail("truncated u32");
        v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
        return true;
    }
    bool u64(std::uint64_t& v) {
        if (remaining() < 8) return fail("truncated u64");
        v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
        return true;
    }
    bool f64(double& v) {
        std::uint64_t bits = 0;
        if (!u64(bits)) return fail("truncated f64");
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }
    bool boolean(bool& v) {
        std::uint8_t b = 0;
        if (!u8(b)) return fail("truncated bool");
        v = b != 0;
        return true;
    }
    bool str(std::string& v) {
        std::uint32_t n = 0;
        if (!u32(n)) return fail("truncated string length");
        if (remaining() < n) return fail("string length exceeds payload");
        v.assign(reinterpret_cast<const char*>(p), n);
        p += n;
        return true;
    }
};
)";

void emitEncodeField(std::ostringstream& o, const Field& f) {
    const std::string tag = "putU8(out, " + std::to_string(f.id) + ");";
    switch (f.kind) {
    case FieldKind::U8:
        o << "        " << tag << " putU8(out, " << f.name << ");\n";
        break;
    case FieldKind::U64:
        o << "        " << tag << " putU64(out, " << f.name << ");\n";
        break;
    case FieldKind::F64:
        o << "        " << tag << " putF64(out, " << f.name << ");\n";
        break;
    case FieldKind::Bool:
        o << "        " << tag << " putU8(out, " << f.name << " ? 1 : 0);\n";
        break;
    case FieldKind::Str:
        o << "        if (!" << f.name << ".empty()) { " << tag << " putStr(out, "
          << f.name << "); }\n";
        break;
    case FieldKind::NumMap:
    case FieldKind::StrMap: {
        const char* put = f.kind == FieldKind::NumMap ? "putF64" : "putStr";
        o << "        if (!" << f.name << ".empty()) {\n"
          << "            " << tag << "\n"
          << "            putU32(out, static_cast<std::uint32_t>(" << f.name
          << ".size()));\n"
          << "            for (const auto& kv : " << f.name << ") {\n"
          << "                putStr(out, kv.first);\n"
          << "                " << put << "(out, kv.second);\n"
          << "            }\n"
          << "        }\n";
        break;
    }
    }
}

void emitDecodeField(std::ostringstream& o, const Field& f) {
    o << "            case " << f.id << ":";
    switch (f.kind) {
    case FieldKind::U8:
        o << " if (!c.u8(out." << f.name << ")) return false; break;\n";
        break;
    case FieldKind::U64:
        o << " if (!c.u64(out." << f.name << ")) return false; break;\n";
        break;
    case FieldKind::F64:
        o << " if (!c.f64(out." << f.name << ")) return false; break;\n";
        break;
    case FieldKind::Bool:
        o << " if (!c.boolean(out." << f.name << ")) return false; break;\n";
        break;
    case FieldKind::Str:
        o << " if (!c.str(out." << f.name << ")) return false; break;\n";
        break;
    case FieldKind::NumMap:
    case FieldKind::StrMap: {
        const char* valueDecl = f.kind == FieldKind::NumMap ? "double v = 0" : "std::string v";
        const char* read = f.kind == FieldKind::NumMap ? "c.f64(v)" : "c.str(v)";
        o << " {\n"
          << "                std::uint32_t n = 0;\n"
          << "                if (!c.u32(n)) return false;\n"
          << "                if (n > c.remaining()) return c.fail(\"map count exceeds "
             "payload\");\n"
          << "                out." << f.name << ".clear();\n"
          << "                for (std::uint32_t i = 0; i < n; ++i) {\n"
          << "                    std::string k;\n"
          << "                    " << valueDecl << ";\n"
          << "                    if (!c.str(k) || !" << read << ") return false;\n"
          << "                    out." << f.name << "[std::move(k)] = std::move(v);\n"
          << "                }\n"
          << "                break;\n"
          << "            }\n";
        break;
    }
    }
}

void emitMessage(std::ostringstream& o, const Message& m) {
    if (!m.comment.empty()) o << "/// " << m.comment << "\n";
    o << "struct " << m.name << " {\n";
    for (const Field& f : m.fields) {
        o << "    " << cppType(f.kind) << " " << f.name;
        if (!f.init.empty()) {
            o << " = " << f.init;
        } else if (f.kind != FieldKind::Str && f.kind != FieldKind::NumMap &&
                   f.kind != FieldKind::StrMap) {
            o << " = 0";
        }
        o << ";";
        if (!f.comment.empty()) o << " ///< " << f.comment;
        o << "\n";
    }
    o << "\n    void encodeTo(std::string& out) const {\n";
    for (const Field& f : m.fields) emitEncodeField(o, f);
    o << "    }\n";
    o << "    std::string encode() const {\n"
      << "        std::string out;\n"
      << "        out.reserve(64);\n"
      << "        encodeTo(out);\n"
      << "        return out;\n"
      << "    }\n\n";
    o << "    /// Decode a complete payload. On failure returns false with the\n"
      << "    /// first error in *err (when given); out is partially filled.\n"
      << "    static bool decode(" << m.name
      << "& out, const void* data, std::size_t size,\n"
      << "                       std::string* err = nullptr) {\n"
      << "        Cursor c{static_cast<const unsigned char*>(data),\n"
      << "                 static_cast<const unsigned char*>(data) + size, err};\n"
      << "        while (c.p < c.end) {\n"
      << "            std::uint8_t tag = 0;\n"
      << "            if (!c.u8(tag)) return false;\n"
      << "            switch (tag) {\n";
    for (const Field& f : m.fields) emitDecodeField(o, f);
    o << "            default: return c.fail(\"unknown field tag\");\n"
      << "            }\n"
      << "        }\n"
      << "        return true;\n"
      << "    }\n";
    o << "};\n\n";
}

} // namespace

std::string generateWireHeader(const Protocol& p) {
    validate(p);
    std::ostringstream o;
    o << "#pragma once\n"
      << "// GENERATED by urtx_wiregen from the descriptors in\n"
      << "// src/codegen/wire_schema.cpp — do not edit by hand.\n"
      << "//\n"
      << "// Length-prefixed binary framing of the serving job/record schema:\n"
      << "// preamble = 4-byte magic \"" << p.magic << "\" + u8 version + u8 flags + u16\n"
      << "// reserved; each frame = u32 little-endian payload length + u8 frame\n"
      << "// type + payload. Message payloads are tag-prefixed fields (u8 tag,\n"
      << "// then a fixed per-kind layout); see docs/SERVING.md.\n\n"
      << "#include <cstddef>\n"
      << "#include <cstdint>\n"
      << "#include <cstring>\n"
      << "#include <map>\n"
      << "#include <string>\n\n"
      << "namespace " << p.ns << " {\n";
    o << "\ninline constexpr char kMagic[5] = \"" << p.magic << "\";\n"
      << "inline constexpr std::uint8_t kVersion = " << p.version << ";\n"
      << "inline constexpr std::size_t kPreambleBytes = 8;\n"
      << "inline constexpr std::size_t kFrameHeaderBytes = 5; // u32 length + u8 type\n\n"
      << "enum class FrameType : std::uint8_t {\n";
    for (const FrameKind& f : p.frames) {
        o << "    " << f.name << " = " << f.id << ",";
        if (!f.comment.empty()) o << " ///< " << f.comment;
        o << "\n";
    }
    o << "};\n";
    o << kPrologue << "\n";
    for (const Message& m : p.messages) emitMessage(o, m);
    o << "} // namespace " << p.ns << "\n";
    return o.str();
}

} // namespace urtx::codegen::wire
