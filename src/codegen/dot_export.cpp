#include "codegen/dot_export.hpp"

#include <sstream>

#include "codegen/codegen.hpp"

namespace urtx::codegen {

using model::CapsuleClassDecl;
using model::Model;
using model::PortDecl;
using model::StreamerClassDecl;

namespace {

std::string id(const std::string& s) { return CodeGenerator::identifier(s); }

/// Node for an endpoint "part.port" or boundary "port" within class `cls`.
std::string endpointNode(const std::string& cls, const std::string& ref) {
    const auto ep = model::splitEndpoint(ref);
    if (ep.part.empty()) return id(cls) + "_" + id(ep.port);
    return id(cls) + "_" + id(ep.part) + "_" + id(ep.port);
}

void emitPorts(std::ostringstream& o, const std::string& owner,
               const std::vector<PortDecl>& ports, const std::string& prefix) {
    for (const auto& p : ports) {
        const char* shape = p.kind == PortDecl::Kind::Data ? "circle" : "square";
        o << "    " << prefix << "_" << id(p.name) << " [label=\"" << p.name << "\", shape="
          << shape << ", width=0.3, fixedsize=true];\n";
    }
    (void)owner;
}

} // namespace

std::string streamerDot(const Model& m, const StreamerClassDecl& cls) {
    std::ostringstream o;
    o << "digraph " << id(cls.name) << " {\n";
    o << "  rankdir=LR;\n  node [fontsize=10];\n";
    o << "  subgraph cluster_" << id(cls.name) << " {\n";
    o << "    label=\"<<streamer>> " << cls.name << "\";\n";
    emitPorts(o, cls.name, cls.ports, id(cls.name));

    for (const auto& part : cls.parts) {
        const StreamerClassDecl* sub = m.findStreamer(part.className);
        o << "    subgraph cluster_" << id(cls.name) << "_" << id(part.name) << " {\n";
        o << "      label=\"" << part.name << " : " << part.className << "\";\n";
        if (sub) {
            emitPorts(o, part.name, sub->ports, id(cls.name) + "_" + id(part.name));
        }
        o << "      " << id(cls.name) << "_" << id(part.name)
          << "_anchor [style=invis, shape=point];\n";
        o << "    }\n";
    }
    for (const auto& relay : cls.relays) {
        o << "    " << id(cls.name) << "_" << id(relay.name) << "_in [label=\"in\", "
          << "shape=circle, width=0.25, fixedsize=true];\n";
        for (std::size_t i = 0; i < relay.fanout; ++i) {
            o << "    " << id(cls.name) << "_" << id(relay.name) << "_out" << i
              << " [label=\"out" << i << "\", shape=circle, width=0.25, fixedsize=true];\n";
        }
        o << "    " << id(cls.name) << "_" << id(relay.name)
          << " [label=\"<<relay>> " << relay.name << "\", shape=diamond];\n";
        o << "    " << id(cls.name) << "_" << id(relay.name) << "_in -> " << id(cls.name) << "_"
          << id(relay.name) << ";\n";
        for (std::size_t i = 0; i < relay.fanout; ++i) {
            o << "    " << id(cls.name) << "_" << id(relay.name) << " -> " << id(cls.name)
              << "_" << id(relay.name) << "_out" << i << ";\n";
        }
    }
    for (const auto& fl : cls.flows) {
        o << "    " << endpointNode(cls.name, fl.from) << " -> "
          << endpointNode(cls.name, fl.to) << " [label=\"flow\"];\n";
    }
    o << "  }\n}\n";
    return o.str();
}

std::string capsuleDot(const Model& m, const CapsuleClassDecl& cls) {
    std::ostringstream o;
    o << "digraph " << id(cls.name) << " {\n";
    o << "  rankdir=LR;\n  node [fontsize=10];\n";
    o << "  subgraph cluster_" << id(cls.name) << " {\n";
    o << "    label=\"<<capsule>> " << cls.name << "\";\n";
    emitPorts(o, cls.name, cls.ports, id(cls.name));
    for (const auto& part : cls.parts) {
        const bool isCapsule = m.findCapsule(part.className) != nullptr;
        o << "    " << id(cls.name) << "_" << id(part.name) << " [label=\"" << part.name
          << " : " << part.className << "\", shape=box"
          << (isCapsule ? "" : ", style=rounded") << "];\n";
    }
    for (const auto& con : cls.connections) {
        o << "    " << endpointNode(cls.name, con.from) << " -> "
          << endpointNode(cls.name, con.to) << " [dir=both, label=\"connect\"];\n";
    }
    o << "  }\n}\n";
    return o.str();
}

std::string machineDot(const CapsuleClassDecl& cls) {
    std::ostringstream o;
    o << "digraph " << id(cls.name) << "_sm {\n";
    o << "  rankdir=LR;\n  node [shape=Mrecord, fontsize=10];\n";
    o << "  __init [shape=point, width=0.15];\n";
    for (const auto& st : cls.states) {
        o << "  " << id(st.name) << " [label=\"" << st.name << "\"];\n";
        if (st.initial && st.parent.empty()) o << "  __init -> " << id(st.name) << ";\n";
    }
    for (const auto& tr : cls.transitions) {
        o << "  " << id(tr.from) << " -> " << id(tr.to) << " [label=\"" << tr.signal;
        if (!tr.guard.empty()) o << " [" << tr.guard << "]";
        if (!tr.action.empty()) o << " / " << tr.action;
        o << "\"];\n";
    }
    o << "}\n";
    return o.str();
}

std::string modelDot(const Model& m) {
    std::ostringstream o;
    o << "digraph " << id(m.name) << " {\n";
    o << "  rankdir=TB;\n  node [fontsize=10, shape=box];\n";
    for (const auto& c : m.capsules) {
        o << "  " << id(c.name) << " [label=\"<<capsule>> " << c.name << "\"];\n";
    }
    for (const auto& s : m.streamers) {
        o << "  " << id(s.name) << " [label=\"<<streamer>> " << s.name
          << "\", style=rounded];\n";
    }
    // Containment edges.
    for (const auto& c : m.capsules) {
        for (const auto& part : c.parts) {
            o << "  " << id(c.name) << " -> " << id(part.className) << " [label=\""
              << part.name << "\", style=dashed];\n";
        }
    }
    for (const auto& s : m.streamers) {
        for (const auto& part : s.parts) {
            o << "  " << id(s.name) << " -> " << id(part.className) << " [label=\""
              << part.name << "\", style=dashed];\n";
        }
    }
    if (!m.topCapsule.empty()) {
        o << "  __top [shape=point];\n  __top -> " << id(m.topCapsule) << ";\n";
    }
    o << "}\n";
    return o.str();
}

} // namespace urtx::codegen
