#include "codegen/wire_schema.hpp"

namespace urtx::codegen::wire {

Protocol servingProtocol() {
    Protocol p;
    p.ns = "urtx::srv::wiregen";
    p.magic = "URTX";
    // v2: WireJob.profile (tag 10) + WireResult.stages (tag 22). The bump
    // keeps the change preamble-negotiated: a peer built against v1 fails
    // the 8-byte handshake up front (and falls back to newline-JSON, which
    // simply omits unknown keys it never sends) instead of hitting an
    // unknown-tag decode error mid-stream.
    // v3: WireResult.error_code (tag 23) — the stable machine-readable id
    // of the unified error schema, so binary clients re-render the same
    // {"error": {"code", "message"}} object the JSON path emits.
    p.version = 3;
    p.frames = {
        {"Job", 1, "client -> daemon: one encoded WireJob (pre-expanded spec)"},
        {"Result", 2, "daemon -> client: one encoded WireResult"},
        {"Error", 3, "daemon -> client: JSON error-record text payload"},
        {"Control", 4, "client -> daemon: control-verb JSON object text"},
        {"ControlResponse", 5, "daemon -> client: control-verb response JSON text"},
    };

    // Mirrors ScenarioSpec / the batch-file job object schema. Binary jobs
    // are fully expanded client-side: no repeat/sweep on the wire, each
    // frame is exactly one runnable spec. Params ride as two canonical
    // (sorted-key) maps — the same split ScenarioParams keeps and
    // ParamSchema validates.
    Message job;
    job.name = "WireJob";
    job.comment =
        "One serving job: ScenarioSpec on the wire (jobJson's field set).";
    job.fields = {
        {"scenario", FieldKind::Str, 1, "", "ScenarioLibrary factory name"},
        {"name", FieldKind::Str, 2, "", "report name; empty = daemon default"},
        {"horizon", FieldKind::F64, 3, "1.0", "simulate to t = horizon"},
        {"mode", FieldKind::U8, 4, "", "0 = single_thread, 1 = multi_thread"},
        {"deadline_seconds", FieldKind::F64, 5, "", "0 = no deadline"},
        {"cost_seconds", FieldKind::F64, 6, "", "admission cost estimate"},
        {"wall_budget_seconds", FieldKind::F64, 7, "", "watchdog budget"},
        {"num_params", FieldKind::NumMap, 8, "", "numeric parameter overrides"},
        {"str_params", FieldKind::StrMap, 9, "", "string parameter overrides"},
        {"profile", FieldKind::Bool, 10, "",
         "attach the per-stage latency table to the result record"},
    };

    // Mirrors srv::ResultRecord — the flat record resultJson() renders, so
    // a binary client re-renders byte-identical JSON from the decoded
    // struct (trace hash included verbatim; bit-identity checks compare it
    // across framings).
    Message res;
    res.name = "WireResult";
    res.comment = "One streamed result record: srv::ResultRecord on the wire.";
    res.fields = {
        {"name", FieldKind::Str, 1, "", ""},
        {"scenario", FieldKind::Str, 2, "", ""},
        {"status", FieldKind::U8, 3, "", "ScenarioStatus as u8"},
        {"passed", FieldKind::Bool, 4, "", "scenario verdict"},
        {"verdict", FieldKind::Str, 5, "", "human-readable verdict detail"},
        {"error", FieldKind::Str, 6, "", "failure / rejection reason"},
        {"worker", FieldKind::U64, 7, "0xffffffffffffffffull",
         "worker index; max = never dispatched"},
        {"stolen", FieldKind::Bool, 8, "", ""},
        {"deadline_met", FieldKind::Bool, 9, "true", ""},
        {"warm_reuse", FieldKind::Bool, 10, "", ""},
        {"cached_result", FieldKind::Bool, 11, "", ""},
        {"watchdog_tripped", FieldKind::Bool, 12, "", ""},
        {"queue_wait_seconds", FieldKind::F64, 13, "", ""},
        {"wall_seconds", FieldKind::F64, 14, "", ""},
        {"finished_at_seconds", FieldKind::F64, 15, "", ""},
        {"sim_time", FieldKind::F64, 16, "", ""},
        {"steps", FieldKind::U64, 17, "", ""},
        {"trace_rows", FieldKind::U64, 18, "", ""},
        {"trace_hash", FieldKind::U64, 19, "",
         "FNV-1a over the raw trace bits (bit-identity checks)"},
        {"metrics_json", FieldKind::Str, 20, "", "embedded Snapshot::toJson()"},
        {"postmortem_json", FieldKind::Str, 21, "", "flight-recorder dump"},
        {"stages", FieldKind::NumMap, 22, "",
         "stage name -> offset seconds from receive; empty unless profiled"},
        {"error_code", FieldKind::Str, 23, "",
         "stable machine-readable error id (unified error schema)"},
    };

    p.messages = {job, res};
    return p;
}

} // namespace urtx::codegen::wire
