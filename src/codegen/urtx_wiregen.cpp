/// \file urtx_wiregen.cpp
/// Build-time generator for the serving daemon's binary wire protocol:
/// renders the descriptors in wire_schema.cpp into one C++ header.
///
///   urtx_wiregen <output.hpp>   # write the header (only when changed)
///   urtx_wiregen -              # print to stdout
///
/// CMake runs this as a custom command; src/srv/daemon, urtx_client, the
/// benches and the framing tests all include the generated header.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/wire_schema.hpp"

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <output.hpp|->\n", argv[0]);
        return 2;
    }
    const std::string header =
        urtx::codegen::wire::generateWireHeader(urtx::codegen::wire::servingProtocol());
    const std::string path = argv[1];
    if (path == "-") {
        std::cout << header;
        return 0;
    }
    // Skip the write when nothing changed so dependents don't rebuild.
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream existing;
            existing << in.rdbuf();
            if (existing.str() == header) return 0;
        }
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], path.c_str());
        return 2;
    }
    out << header;
    return 0;
}
