#pragma once
/// \file wire_schema.hpp
/// The serving daemon's wire-protocol descriptors: WireJob mirrors
/// ScenarioSpec (the batch-file job schema ParamSchema validates against)
/// and WireResult mirrors the flat result record resultJson() renders.
/// src/srv/daemon includes the header urtx_wiregen generates from these
/// descriptors at build time; tests assert the mirror stays field-complete.

#include "codegen/wire_gen.hpp"

namespace urtx::codegen::wire {

/// The complete serving protocol: frame types + WireJob/WireResult.
Protocol servingProtocol();

} // namespace urtx::codegen::wire
