#pragma once
/// \file codegen.hpp
/// C++ code generation from a validated model — the paper's end of the
/// toolchain: "from requirement analysis, model design, simulation, until
/// generation code".
///
/// The generator emits compilable C++ that targets this very runtime:
///  * one protocols header (rt::Protocol registry functions),
///  * one flow-types header (flow::FlowType builder functions),
///  * one header per capsule class: ports as members, the state machine
///    assembled in the constructor, transition effects exposed as virtual
///    hooks for the application to override,
///  * one header per streamer class: composite structure (parts, relays,
///    flows) wired in the constructor; leaf equation hooks stubbed with
///    TODO markers naming the declared solver,
///  * a main.cpp skeleton and a CMakeLists.txt.
///
/// Generated headers compile against the library unmodified (asserted by
/// the codegen tests with -fsyntax-only).

#include <string>
#include <vector>

#include "model/model.hpp"

namespace urtx::codegen {

struct GeneratedFile {
    std::string path;
    std::string content;
};

class CodeGenerator {
public:
    struct Options {
        std::string ns = "gen"; ///< namespace for generated code
        std::string filePrefix = "gen_";
    };

    CodeGenerator() = default;
    explicit CodeGenerator(Options opts) : opts_(std::move(opts)) {}

    /// Generate all files for \p m. The model should be validated first;
    /// generation throws std::invalid_argument on references it cannot
    /// resolve.
    std::vector<GeneratedFile> generate(const model::Model& m) const;

    /// Sanitize an arbitrary model name into a C++ identifier.
    static std::string identifier(const std::string& name);

    /// Render a FlowType as a C++ builder expression.
    static std::string flowTypeExpr(const flow::FlowType& t);

private:
    std::string protocolsHeader(const model::Model& m) const;
    std::string flowTypesHeader(const model::Model& m) const;
    std::string capsuleHeader(const model::Model& m, const model::CapsuleClassDecl& c) const;
    std::string streamerHeader(const model::Model& m, const model::StreamerClassDecl& s) const;
    std::string mainSkeleton(const model::Model& m) const;
    std::string cmakeLists(const model::Model& m) const;

    Options opts_;
};

/// Write generated files under \p dir (created if missing).
void writeFiles(const std::vector<GeneratedFile>& files, const std::string& dir);

} // namespace urtx::codegen
