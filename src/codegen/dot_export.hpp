#pragma once
/// \file dot_export.hpp
/// GraphViz DOT rendering of models — regenerates the paper's figures as
/// diagrams: structure diagrams (capsules/streamers with ports, flows and
/// relays, Figure 2/3 style) and state machine diagrams (Figure 1's State
/// side). Purely textual; feed the output to `dot -Tsvg`.

#include <string>

#include "model/model.hpp"

namespace urtx::codegen {

/// Structure diagram of one streamer class: sub-streamer boxes, relay
/// diamonds, DPort circles / SPort squares (the paper's notation), flow
/// edges.
std::string streamerDot(const model::Model& m, const model::StreamerClassDecl& cls);

/// Containment + wiring diagram of one capsule class.
std::string capsuleDot(const model::Model& m, const model::CapsuleClassDecl& cls);

/// State machine diagram of a capsule class.
std::string machineDot(const model::CapsuleClassDecl& cls);

/// Whole-model overview: one cluster per class.
std::string modelDot(const model::Model& m);

} // namespace urtx::codegen
