#include "sim/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace urtx::sim {

std::size_t Trace::channel(std::string name, Probe probe) {
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    if (!times_.empty())
        throw std::logic_error("Trace::channel: cannot add channels after sampling started");
    return names_.size() - 1;
}

void Trace::sample(double t) {
    times_.push_back(t);
    for (const Probe& p : probes_) data_.push_back(p());
}

std::vector<double> Trace::series(std::size_t ch) const {
    std::vector<double> out;
    out.reserve(rows());
    for (std::size_t r = 0; r < rows(); ++r) out.push_back(valueAt(r, ch));
    return out;
}

std::size_t Trace::indexOf(const std::string& name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return i;
    }
    throw std::invalid_argument("Trace: unknown channel '" + name + "'");
}

std::vector<double> Trace::series(const std::string& name) const {
    return series(indexOf(name));
}

void Trace::writeCsv(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("Trace::writeCsv: cannot open '" + path + "'");
    f << "t";
    for (const auto& n : names_) f << "," << n;
    f << "\n";
    for (std::size_t r = 0; r < rows(); ++r) {
        f << times_[r];
        for (std::size_t c = 0; c < names_.size(); ++c) f << "," << valueAt(r, c);
        f << "\n";
    }
}

void Trace::clear() {
    times_.clear();
    data_.clear();
}

} // namespace urtx::sim
