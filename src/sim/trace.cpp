#include "sim/trace.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace urtx::sim {

std::size_t Trace::channel(std::string name, Probe probe) {
    names_.push_back(std::move(name));
    probes_.push_back(std::move(probe));
    if (!times_.empty())
        throw std::logic_error("Trace::channel: cannot add channels after sampling started");
    return names_.size() - 1;
}

void Trace::sample(double t) {
    const std::size_t call = sampleCalls_++;
    if (every_ > 1 && call % every_ != 0) return;
    times_.push_back(t);
    for (const Probe& p : probes_) data_.push_back(p());
}

void Trace::sampleEvery(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Trace::sampleEvery: stride must be >= 1");
    every_ = n;
    sampleCalls_ = 0;
}

std::vector<double> Trace::series(std::size_t ch) const {
    std::vector<double> out;
    out.reserve(rows());
    for (std::size_t r = 0; r < rows(); ++r) out.push_back(valueAt(r, ch));
    return out;
}

std::size_t Trace::indexOf(const std::string& name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return i;
    }
    throw std::invalid_argument("Trace: unknown channel '" + name + "'");
}

std::vector<double> Trace::series(const std::string& name) const {
    return series(indexOf(name));
}

void Trace::writeCsv(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("Trace::writeCsv: cannot open '" + path + "'");
    f.precision(std::numeric_limits<double>::max_digits10);
    f << "t";
    for (const auto& n : names_) f << "," << n;
    f << "\n";
    for (std::size_t r = 0; r < rows(); ++r) {
        f << times_[r];
        for (std::size_t c = 0; c < names_.size(); ++c) f << "," << valueAt(r, c);
        f << "\n";
    }
}

void Trace::merge(const Trace& other) {
    if (names_ != other.names_) {
        throw std::invalid_argument("Trace::merge: channel names differ");
    }
    const std::size_t ch = names_.size();
    std::vector<double> times;
    std::vector<double> data;
    times.reserve(rows() + other.rows());
    data.reserve(data_.size() + other.data_.size());
    std::size_t i = 0, j = 0;
    auto take = [&](const Trace& src, std::size_t row) {
        times.push_back(src.times_[row]);
        for (std::size_t c = 0; c < ch; ++c) data.push_back(src.data_[row * ch + c]);
    };
    while (i < rows() || j < other.rows()) {
        if (j >= other.rows() || (i < rows() && times_[i] <= other.times_[j])) {
            take(*this, i++);
        } else {
            take(other, j++);
        }
    }
    times_ = std::move(times);
    data_ = std::move(data);
}

void Trace::clear() {
    times_.clear();
    data_.clear();
    sampleCalls_ = 0;
}

} // namespace urtx::sim
