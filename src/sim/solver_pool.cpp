#include "sim/solver_pool.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace urtx::sim {

namespace {

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

} // namespace

SolverPool::SolverPool(std::vector<flow::SolverRunner*> runners)
    : runners_(std::move(runners)), errors_(runners_.size()) {
    // On a single hardware thread, a spinning worker only delays the thread
    // it is waiting for; park immediately there.
    spinLimit_ = std::thread::hardware_concurrency() > 1 ? 4096 : 0;
    // Workers inherit the spawning thread's observability scope so a scoped
    // scenario's solver metrics land in its own registry.
    obs::Registry* reg = obs::Registry::installed();
    obs::FlightRecorder* rec = obs::FlightRecorder::installed();
    threads_.reserve(runners_.size());
    try {
        for (std::size_t i = 0; i < runners_.size(); ++i) {
            threads_.emplace_back([this, i, reg, rec] {
                obs::ScopedRegistry scope(reg);
                obs::ScopedFlightRecorder rscope(rec);
                workerLoop(i);
            });
        }
    } catch (...) {
        // Spawn failed partway: the object never finishes constructing, so
        // ~SolverPool will not run — park and join the threads spawned so
        // far here, or their destruction std::terminate's the process.
        shutdown();
        throw;
    }
}

SolverPool::~SolverPool() { shutdown(); }

void SolverPool::workerLoop(std::size_t idx) {
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t e = epoch_.load(std::memory_order_acquire);
        unsigned spins = 0;
        while (e == seen) {
            if (spins++ < spinLimit_) {
                cpuRelax();
            } else {
                epoch_.wait(seen, std::memory_order_acquire);
            }
            e = epoch_.load(std::memory_order_acquire);
        }
        seen = e;
        if (stop_.load(std::memory_order_relaxed)) return;
        try {
            runners_[idx]->advanceTo(target_, tLimit_);
        } catch (...) {
            errors_[idx] = std::current_exception();
            failed_.store(true, std::memory_order_release);
        }
        // Last arrival wakes the engine; intermediate decrements need no
        // notify (the engine re-checks the value whenever it wakes).
        if (remaining_.fetch_sub(1, std::memory_order_release) == 1) {
            remaining_.notify_all();
        }
    }
}

void SolverPool::advanceAllTo(double target, double tLimit) {
    if (stop_.load(std::memory_order_relaxed)) {
        throw std::logic_error("SolverPool: advanceAllTo after shutdown");
    }
    if (threads_.empty()) return; // constructed with no runners

    const bool measure = obs::metricsOn();
    const std::uint64_t t0 = measure ? obs::nowNanos() : 0;
    // Arm the watchdog for the whole grant: it fires if the barrier below
    // has not been crossed within the configured wall-clock budget.
    const bool watched = obs::causalBit(obs::kCausalWatchdog);
    if (watched) obs::Watchdog::global().grantBegan();

    target_ = target;
    tLimit_ = tLimit;
    remaining_.store(threads_.size(), std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();

    std::size_t r = remaining_.load(std::memory_order_acquire);
    unsigned spins = 0;
    while (r != 0) {
        if (spins++ < spinLimit_) {
            cpuRelax();
        } else {
            remaining_.wait(r, std::memory_order_acquire);
        }
        r = remaining_.load(std::memory_order_acquire);
    }

    if (watched) obs::Watchdog::global().grantEnded();
    if (measure) {
        obs::wellknown().simBarrierWait->observe(static_cast<double>(obs::nowNanos() - t0) *
                                                 1e-9);
    }
    if (failed_.load(std::memory_order_acquire)) {
        shutdown();
        for (std::exception_ptr& e : errors_) {
            if (!e) continue;
            // Capture the post-mortem *before* unwinding destroys state the
            // flight recorder and metrics still describe.
            if (obs::causalBit(obs::kCausalRecorder)) {
                try {
                    std::rethrow_exception(e);
                } catch (const std::exception& ex) {
                    obs::FlightRecorder::global().onFault(ex.what());
                } catch (...) {
                    obs::FlightRecorder::global().onFault("non-std exception in solver worker");
                }
            }
            std::rethrow_exception(e);
        }
        throw std::runtime_error("SolverPool: worker failed without recording an exception");
    }
}

void SolverPool::shutdown() noexcept {
    if (threads_.empty()) return;
    stop_.store(true, std::memory_order_relaxed);
    remaining_.store(threads_.size(), std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread& t : threads_) {
        if (t.joinable()) t.join();
    }
    threads_.clear();
}

} // namespace urtx::sim
