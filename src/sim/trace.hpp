#pragma once
/// \file trace.hpp
/// Simulation trace: named probe channels sampled at engine steps and
/// dumpable as CSV for the benchmark harnesses.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace urtx::sim {

class Trace {
public:
    using Probe = std::function<double()>;

    /// Register a channel; returns its index.
    std::size_t channel(std::string name, Probe probe);

    std::size_t channelCount() const { return names_.size(); }
    const std::vector<std::string>& names() const { return names_; }

    /// Sample every channel at time \p t. When a decimation stride is set
    /// (sampleEvery), only every nth call records a row.
    void sample(double t);

    /// Record only every \p n-th sample() call (n >= 1; 1 = record all,
    /// the default). The first call after this always records, so long
    /// simulations keep a bounded, evenly spaced trace.
    void sampleEvery(std::size_t n);
    std::size_t decimation() const { return every_; }

    std::size_t rows() const { return times_.size(); }
    double timeAt(std::size_t row) const { return times_.at(row); }
    double valueAt(std::size_t row, std::size_t ch) const {
        return data_.at(row * names_.size() + ch);
    }
    /// All samples of one channel.
    std::vector<double> series(std::size_t ch) const;
    /// Series by channel name; throws when unknown.
    std::vector<double> series(const std::string& name) const;

    /// Write "t,ch1,ch2,..." CSV to \p path with full double round-trip
    /// precision (max_digits10).
    void writeCsv(const std::string& path) const;

    /// Combine \p other's rows into this trace, keeping rows ordered by
    /// time (both traces must already be time-ordered, which sample()
    /// guarantees; ties keep this trace's rows first). Channel names must
    /// match exactly — this is how per-thread traces of the same probes
    /// are recombined after a multi-threaded run.
    void merge(const Trace& other);

    void clear();

private:
    std::size_t indexOf(const std::string& name) const;

    std::vector<std::string> names_;
    std::vector<Probe> probes_;
    std::vector<double> times_;
    std::vector<double> data_; ///< row-major rows x channels
    std::size_t every_ = 1;    ///< decimation stride
    std::size_t sampleCalls_ = 0;
};

} // namespace urtx::sim
