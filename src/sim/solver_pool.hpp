#pragma once
/// \file solver_pool.hpp
/// Persistent solver thread pool driven by an epoch barrier.
///
/// The first MultiThread executor gave every SolverRunner its own
/// mutex/condvar pair, so each grid step paid two lock+wake round trips
/// *per runner* (grant and completion). This pool amortizes the handoff to
/// a constant cost regardless of runner count:
///
///   grant      — the engine writes the target time, resets one counting
///                latch, and publishes a new epoch with a single
///                release-store (plus one notify for parked workers);
///   workers    — spin briefly on the epoch word, then fall back to
///                std::atomic::wait; the acquire-load of the new epoch
///                makes the target visible;
///   completion — each worker decrements the latch with a release-RMW;
///                the engine spins-then-waits for zero. The RMW chain
///                forms one release sequence, so the engine's acquire
///                observes every runner's state writes.
///
/// Exceptions thrown inside a worker (solver divergence, user equations)
/// are captured per-worker via std::exception_ptr; the grant still
/// completes (no hang), the pool shuts down cleanly, and the first error
/// is rethrown to the engine thread — which lets HybridSystem::run
/// propagate it to the caller instead of std::terminate'ing the process.

#include <atomic>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "flow/solver_runner.hpp"

namespace urtx::sim {

class SolverPool {
public:
    /// Spawns one persistent thread per runner. Runners must outlive the pool.
    explicit SolverPool(std::vector<flow::SolverRunner*> runners);
    ~SolverPool();

    SolverPool(const SolverPool&) = delete;
    SolverPool& operator=(const SolverPool&) = delete;

    /// Grant every runner permission to advance to \p target (strides
    /// clamped at \p tLimit, see SolverRunner::advanceTo) and block until
    /// all have arrived. Rethrows the first worker exception after shutting
    /// the pool down; the pool is unusable afterwards.
    void advanceAllTo(double target, double tLimit);

    /// Stop and join all workers. Idempotent; called by the destructor.
    void shutdown() noexcept;

    std::size_t size() const { return runners_.size(); }

private:
    void workerLoop(std::size_t idx);

    std::vector<flow::SolverRunner*> runners_;
    std::vector<std::exception_ptr> errors_; ///< slot idx written only by worker idx
    std::vector<std::thread> threads_;

    /// Grant line: the epoch word plus everything its release-store
    /// publishes. Workers read target_/tLimit_/stop_ only after acquiring
    /// a fresh epoch, so co-locating them costs nothing; failed_ rides
    /// here too (written only on the rare error path, read by the engine
    /// once per grant). spinLimit_ is read-only after construction.
    alignas(64) std::atomic<std::uint64_t> epoch_{0};
    double target_ = 0.0; ///< published by the epoch release-store
    double tLimit_ = 0.0; ///< likewise
    std::atomic<bool> stop_{false};
    std::atomic<bool> failed_{false};
    unsigned spinLimit_ = 0; ///< 0 on single-core hosts (spinning starves the worker)
    /// Counting latch: set to size() before each grant, decremented once
    /// per worker; the engine waits for zero. Last member on its own
    /// 64-byte boundary (the alignas tail-pads the object), so completion
    /// RMW traffic never invalidates the grant line and grant reads never
    /// bounce the latch line.
    alignas(64) std::atomic<std::size_t> remaining_{0};
};

} // namespace urtx::sim
