#include "sim/hybrid_system.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "rt/capsule.hpp"
#include "sim/solver_pool.hpp"

namespace urtx::sim {

const char* to_string(ExecutionMode m) {
    switch (m) {
        case ExecutionMode::SingleThread: return "SingleThread";
        case ExecutionMode::MultiThread: return "MultiThread";
    }
    return "?";
}

HybridSystem::HybridSystem(double t0) : time_(t0), t0_(t0) {
    controllers_.push_back(std::make_unique<rt::Controller>("main", time_.clock()));
}

HybridSystem::~HybridSystem() {
    for (auto& c : controllers_) c->stop();
}

rt::Controller& HybridSystem::addController(std::string name) {
    controllers_.push_back(std::make_unique<rt::Controller>(std::move(name), time_.clock()));
    return *controllers_.back();
}

void HybridSystem::addCapsule(rt::Capsule& root, rt::Controller* ctl) {
    (ctl ? ctl : controllers_.front().get())->attach(root);
}

flow::SolverRunner& HybridSystem::addStreamerGroup(flow::Streamer& root,
                                                   std::unique_ptr<solver::Integrator> method,
                                                   double majorDt) {
    runners_.push_back(std::make_unique<flow::SolverRunner>(root, std::move(method), majorDt));
    return *runners_.back();
}

double HybridSystem::globalDt() const {
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& r : runners_) dt = std::min(dt, r->majorDt());
    if (std::isinf(dt)) dt = 1e-2; // capsule-only system: a sensible grid
    return dt;
}

void HybridSystem::setMacroStepLimit(std::uint64_t k) {
    if (k < 1) throw std::invalid_argument("HybridSystem: macro-step limit must be >= 1");
    macroStepLimit_ = k;
}

void HybridSystem::setDrainRoundLimit(std::size_t rounds) {
    if (rounds < 1) throw std::invalid_argument("HybridSystem: drain round limit must be >= 1");
    drainRoundLimit_ = rounds;
}

void HybridSystem::initialize() {
    if (initialized_) return;
    if (!paramsSnapshotted_) {
        // Capture every streamer's parameter map before any capsule or
        // solver code runs: runs mutate parameters through signals, and
        // reset() must put them back for bit-identical warm reruns.
        const auto snapshotTree = [this](flow::Streamer& s, auto&& self) -> void {
            paramSnapshots_.emplace_back(&s, s.params());
            for (flow::Streamer* child : s.subStreamers()) self(*child, self);
        };
        for (auto& r : runners_) snapshotTree(r->network().root(), snapshotTree);
        paramsSnapshotted_ = true;
    }
    for (auto& c : controllers_) c->initializeAll();
    for (auto& r : runners_) r->initialize(time_.now());
    initialized_ = true;
}

void HybridSystem::reset() {
    if (!initialized_) return;
    for (auto& c : controllers_) {
        if (c->running()) throw std::logic_error("HybridSystem::reset: controller running");
    }
    time_.resetTo(t0_);
    for (auto& c : controllers_) c->reset();
    for (auto& [streamer, snapshot] : paramSnapshots_) streamer->restoreParams(snapshot);
    for (auto& r : runners_) r->reset(t0_);
    trace_.clear(); // keeps channels, drops samples
    steps_ = 0;
    macroGrants_ = 0;
    macroStepsCoalesced_ = 0;
    clearStopRequest();
    initialized_ = false; // next run() re-runs onInit + machine start
}

void HybridSystem::observeStep(std::uint64_t k) {
    if (!obs::metricsOn()) return;
    const auto& wk = obs::wellknown();
    wk.simSteps->add(k);
    std::size_t pending = 0;
    for (const auto& c : controllers_) pending += c->timers().pending();
    wk.simTimersPendingHwm->max(static_cast<double>(pending));
}

void HybridSystem::drainControllersInline() {
    // Messages can bounce between controllers; iterate to a fixed point —
    // but a bounded one: two capsules replying to each other forever would
    // otherwise livelock the simulator inside a single grid step.
    std::size_t rounds = 0;
    bool progress = true;
    while (progress) {
        if (++rounds > drainRoundLimit_) {
            throw std::runtime_error(
                "HybridSystem: controller message drain exceeded " +
                std::to_string(drainRoundLimit_) +
                " rounds without reaching a fixed point; capsules are likely "
                "ping-ponging messages (livelock). Raise setDrainRoundLimit() "
                "if the burst is legitimate.");
        }
        progress = false;
        for (auto& c : controllers_) {
            if (c->dispatchAll() > 0) progress = true;
        }
    }
    if (obs::metricsOn()) obs::wellknown().simDrainRounds->add(rounds);
}

void HybridSystem::pace(double simProgress,
                        std::chrono::steady_clock::time_point wallStart) const {
    if (realtimeFactor_ <= 0) return;
    const auto target =
        wallStart + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(simProgress / realtimeFactor_));
    std::this_thread::sleep_until(target);
}

namespace {

/// Number of grid steps from t0 to tEnd at step dt, final step clamped to
/// land exactly on tEnd. A ratio within one part in 1e9 of an integer is
/// that integer (absorbing representation error without adding a spurious
/// ~1e-15-long step); otherwise the fractional remainder becomes a real
/// partial step — llround here was the old stop-short/overshoot bug
/// (tEnd=1.0, dt=0.3 used to end at t=0.9).
std::uint64_t gridStepCount(double t0, double tEnd, double dt) {
    const double ratio = (tEnd - t0) / dt;
    const double rounded = std::round(ratio);
    double n;
    if (std::abs(ratio - rounded) <= 1e-9 * std::max(1.0, std::abs(rounded))) {
        n = rounded;
    } else {
        n = std::ceil(ratio);
    }
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n));
}

} // namespace

std::uint64_t HybridSystem::macroSpan(std::uint64_t i, std::uint64_t n, double t0,
                                      double dt, bool mt) const {
    std::uint64_t span = std::min<std::uint64_t>(macroStepLimit_, n - i + 1);
    if (span <= 1 || realtimeFactor_ > 0.0) return 1;
    // Coalescing must be unobservable. Structural veto first: a runner
    // whose network has zero-crossing surfaces or SPorts can emit signals
    // from *inside* a coalesced grant (onEvent / update -> SPort::send),
    // and the capsule reaction must get its drain/clock rendezvous at the
    // very next grid step. The engine cannot foresee those emissions, so
    // it never coalesces for such runners.
    for (const auto& r : runners_) {
        if (r->canEmitMidSpan()) return 1;
    }
    // Dynamic vetoes: the trace samples per grid step, and queued messages
    // deserve a drain/clock rendezvous now.
    if (trace_.channelCount() > 0) return 1;
    // In MultiThread mode controllers run concurrently, so a handler could
    // schedule a timer after the nextTimerDue() read below and have the
    // grant cross it. Bracket the reads with a dispatch snapshot: any
    // handler overlapping the window is seen dispatching at one of the two
    // checks, and any handler completing inside it bumps the dispatched
    // sum — either way we fall back to a single step. With all controllers
    // validated idle and all queues empty, nothing can create a timer
    // mid-span: solvers able to send are structurally excluded above and
    // time only advances from this loop.
    std::uint64_t dispatchSum0 = 0;
    if (mt) {
        for (const auto& c : controllers_) {
            if (c->dispatching()) return 1;
            dispatchSum0 += c->dispatched();
        }
    }
    for (const auto& c : controllers_) {
        if (c->queue().size() > 0) return 1;
    }
    for (const auto& r : runners_) {
        if (r->pendingSignals() > 0) return 1;
    }
    double nextDue = std::numeric_limits<double>::infinity();
    for (const auto& c : controllers_) nextDue = std::min(nextDue, c->nextTimerDue());
    if (std::isfinite(nextDue)) {
        const double ti = t0 + static_cast<double>(i) * dt;
        if (nextDue <= ti + 1e-12) return 1;
        // First grid index at/after the deadline: the grant may end there
        // (the timer then fires at the same grid time as under single
        // stepping) but must not cross it.
        const auto j = static_cast<std::uint64_t>(std::ceil((nextDue - t0) / dt - 1e-9));
        if (j <= i) return 1;
        span = std::min(span, j - i + 1);
    }
    if (mt) {
        std::uint64_t dispatchSum1 = 0;
        for (const auto& c : controllers_) {
            if (c->dispatching()) return 1;
            dispatchSum1 += c->dispatched();
        }
        if (dispatchSum1 != dispatchSum0) return 1;
    }
    return span;
}

void HybridSystem::runGrid(double tEnd, SolverPool* pool) {
    const double dt = globalDt();
    const double t0 = time_.now();
    const auto wallStart = std::chrono::steady_clock::now();
    const std::uint64_t n = gridStepCount(t0, tEnd, dt);
    const auto gridTime = [&](std::uint64_t i) {
        return i >= n ? tEnd : std::min(t0 + static_cast<double>(i) * dt, tEnd);
    };
    for (std::uint64_t i = 1; i <= n;) {
        if (stopRequested_.load(std::memory_order_relaxed)) {
            throw std::runtime_error(
                "HybridSystem: run aborted at t=" + std::to_string(time_.now()) +
                " (requestStop)");
        }
        URTX_TRACE_SPAN("sim", "grid.step");
        const std::uint64_t k = macroSpan(i, n, t0, dt, pool != nullptr);
        const double t = gridTime(i + k - 1);
        pace(t - t0, wallStart);
        // 1) event-driven world reacts to everything due strictly before t
        //    (inline only; in MultiThread mode the controllers run freely).
        if (!pool) drainControllersInline();
        // 2) continuous world advances to t (signals drained at each major
        //    step boundary inside the runners).
        {
            URTX_TRACE_SPAN("sim", "solve");
            if (pool) {
                pool->advanceAllTo(t, tEnd);
            } else {
                for (auto& r : runners_) r->advanceTo(t, tEnd);
            }
        }
        // 3) time reaches t: timers fire, capsules react.
        time_.advanceTo(t);
        for (auto& c : controllers_) c->onTimeAdvanced();
        if (!pool) drainControllersInline();
        trace_.sample(t);
        steps_ += k;
        if (k > 1) {
            ++macroGrants_;
            macroStepsCoalesced_ += k - 1;
            if (obs::metricsOn()) obs::wellknown().simMacroSteps->add(k - 1);
        }
        observeStep(k);
        i += k;
    }
}

void HybridSystem::runSingleThread(double tEnd) { runGrid(tEnd, nullptr); }

void HybridSystem::runMultiThread(double tEnd) {
    // Figure 3 deployment: controllers on their own threads, all solver
    // groups on a persistent epoch-barrier pool; only messages cross
    // between them.
    for (auto& c : controllers_) c->start();
    std::vector<flow::SolverRunner*> raw;
    raw.reserve(runners_.size());
    for (auto& r : runners_) raw.push_back(r.get());
    SolverPool pool(std::move(raw));
    try {
        runGrid(tEnd, &pool);
    } catch (...) {
        // A worker (or capsule-drain) exception must not leak running
        // threads: park the pool, stop the controllers, then rethrow from
        // run() as the contract promises.
        pool.shutdown();
        for (auto& c : controllers_) c->stop();
        throw;
    }
    pool.shutdown();
    // Let in-flight messages settle, then stop (stop() drains the queue).
    for (auto& c : controllers_) c->stop();
}

void HybridSystem::run(double tEnd, ExecutionMode mode) {
    if (!initialized_) initialize();
    if (tEnd <= time_.now()) return;
    try {
        if (mode == ExecutionMode::SingleThread) {
            runSingleThread(tEnd);
        } else {
            runMultiThread(tEnd);
        }
    } catch (const std::exception& ex) {
        // Post-mortem on the way out: the flight recorder still holds the
        // causal history leading up to the failure. (If the solver pool
        // already dumped for this fault, this dump simply supersedes it.)
        obs::FlightRecorder::global().onFault(ex.what());
        throw;
    }
}

} // namespace urtx::sim
