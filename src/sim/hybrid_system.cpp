#include "sim/hybrid_system.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "rt/capsule.hpp"

namespace urtx::sim {

const char* to_string(ExecutionMode m) {
    switch (m) {
        case ExecutionMode::SingleThread: return "SingleThread";
        case ExecutionMode::MultiThread: return "MultiThread";
    }
    return "?";
}

HybridSystem::HybridSystem(double t0) : time_(t0) {
    controllers_.push_back(std::make_unique<rt::Controller>("main", time_.clock()));
}

HybridSystem::~HybridSystem() {
    for (auto& c : controllers_) c->stop();
}

rt::Controller& HybridSystem::addController(std::string name) {
    controllers_.push_back(std::make_unique<rt::Controller>(std::move(name), time_.clock()));
    return *controllers_.back();
}

void HybridSystem::addCapsule(rt::Capsule& root, rt::Controller* ctl) {
    (ctl ? ctl : controllers_.front().get())->attach(root);
}

flow::SolverRunner& HybridSystem::addStreamerGroup(flow::Streamer& root,
                                                   std::unique_ptr<solver::Integrator> method,
                                                   double majorDt) {
    runners_.push_back(std::make_unique<flow::SolverRunner>(root, std::move(method), majorDt));
    return *runners_.back();
}

double HybridSystem::globalDt() const {
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& r : runners_) dt = std::min(dt, r->majorDt());
    if (std::isinf(dt)) dt = 1e-2; // capsule-only system: a sensible grid
    return dt;
}

void HybridSystem::initialize() {
    if (initialized_) return;
    for (auto& c : controllers_) c->initializeAll();
    for (auto& r : runners_) r->initialize(time_.now());
    initialized_ = true;
}

void HybridSystem::observeStep() {
    if (!obs::metricsOn()) return;
    const auto& wk = obs::wellknown();
    wk.simSteps->inc();
    std::size_t pending = 0;
    for (const auto& c : controllers_) pending += c->timers().pending();
    wk.simTimersPendingHwm->max(static_cast<double>(pending));
}

void HybridSystem::drainControllersInline() {
    // Messages can bounce between controllers; iterate to a fixed point.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto& c : controllers_) {
            if (c->dispatchAll() > 0) progress = true;
        }
    }
}

void HybridSystem::pace(double simProgress,
                        std::chrono::steady_clock::time_point wallStart) const {
    if (realtimeFactor_ <= 0) return;
    const auto target =
        wallStart + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(simProgress / realtimeFactor_));
    std::this_thread::sleep_until(target);
}

void HybridSystem::runSingleThread(double tEnd) {
    const double dt = globalDt();
    const double t0 = time_.now();
    const auto wallStart = std::chrono::steady_clock::now();
    const auto n = static_cast<std::uint64_t>(std::llround((tEnd - t0) / dt));
    for (std::uint64_t i = 1; i <= n; ++i) {
        URTX_TRACE_SPAN("sim", "grid.step");
        const double t = t0 + static_cast<double>(i) * dt;
        pace(t - t0, wallStart);
        // 1) event-driven world reacts to everything due strictly before t.
        drainControllersInline();
        // 2) continuous world advances to t (signals drained at step start).
        {
            URTX_TRACE_SPAN("sim", "solve");
            for (auto& r : runners_) r->advanceTo(t);
        }
        // 3) time reaches t: timers fire, capsules react.
        time_.advanceTo(t);
        for (auto& c : controllers_) c->onTimeAdvanced();
        drainControllersInline();
        trace_.sample(t);
        ++steps_;
        observeStep();
    }
}

namespace {

/// One solver thread stepping its runner to granted target times.
class SolverWorker {
public:
    explicit SolverWorker(flow::SolverRunner& r) : runner_(&r) {
        thread_ = std::thread([this] { loop(); });
    }

    ~SolverWorker() {
        {
            std::lock_guard lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        if (thread_.joinable()) thread_.join();
    }

    void grant(double target) {
        {
            std::lock_guard lock(mu_);
            target_ = target;
            work_ = true;
            done_ = false;
        }
        cv_.notify_all();
    }

    void awaitDone() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return done_; });
    }

private:
    void loop() {
        std::unique_lock lock(mu_);
        while (true) {
            cv_.wait(lock, [this] { return work_ || stop_; });
            if (stop_) return;
            const double target = target_;
            work_ = false;
            lock.unlock();
            runner_->advanceTo(target);
            lock.lock();
            done_ = true;
            cv_.notify_all();
        }
    }

    flow::SolverRunner* runner_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    double target_ = 0.0;
    bool work_ = false;
    bool done_ = true;
    bool stop_ = false;
};

} // namespace

void HybridSystem::runMultiThread(double tEnd) {
    // Figure 3 deployment: controllers on their own threads, one solver
    // thread per streamer group; only messages cross between them.
    for (auto& c : controllers_) c->start();
    {
        std::vector<std::unique_ptr<SolverWorker>> workers;
        workers.reserve(runners_.size());
        for (auto& r : runners_) workers.push_back(std::make_unique<SolverWorker>(*r));

        const double dt = globalDt();
        const double t0 = time_.now();
        const auto wallStart = std::chrono::steady_clock::now();
        const auto n = static_cast<std::uint64_t>(std::llround((tEnd - t0) / dt));
        for (std::uint64_t i = 1; i <= n; ++i) {
            URTX_TRACE_SPAN("sim", "grid.step");
            const double t = t0 + static_cast<double>(i) * dt;
            pace(t - t0, wallStart);
            for (auto& w : workers) w->grant(t);
            {
                URTX_TRACE_SPAN("sim", "await.solvers");
                for (auto& w : workers) w->awaitDone();
            }
            time_.advanceTo(t);
            for (auto& c : controllers_) c->onTimeAdvanced();
            trace_.sample(t);
            ++steps_;
            observeStep();
        }
        // Workers join here.
    }
    // Let in-flight messages settle, then stop (stop() drains the queue).
    for (auto& c : controllers_) c->stop();
}

void HybridSystem::run(double tEnd, ExecutionMode mode) {
    if (!initialized_) initialize();
    if (tEnd <= time_.now()) return;
    if (mode == ExecutionMode::SingleThread) {
        runSingleThread(tEnd);
    } else {
        runMultiThread(tEnd);
    }
}

} // namespace urtx::sim
