#pragma once
/// \file hybrid_system.hpp
/// The unified hybrid simulation engine — the paper's Figure 3 made
/// executable.
///
/// A HybridSystem binds together:
///  * one shared Time (the continuous simulation clock stereotype),
///  * one or more Controllers hosting the event-driven capsules, and
///  * one or more SolverRunners hosting the time-continuous streamers.
///
/// Two execution modes reproduce the paper's architectural comparison:
///
///  * SingleThread — everything interleaved on the caller's thread. This is
///    what a plain UML-RT platform would force: the continuous equations
///    run inside the same run-to-completion world as the capsules.
///  * MultiThread — "capsules and streamers are assigned to different
///    threads": every controller gets its own std::thread, every streamer
///    group its own solver thread; they rendezvous on the time grid and
///    exchange only messages (SPorts / controller queues).
///
/// Both modes advance the shared VirtualClock on a global step grid equal
/// to the smallest solver major step; controllers fire timers and drain
/// their queues as time advances.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "flow/solver_runner.hpp"
#include "flow/time.hpp"
#include "rt/controller.hpp"
#include "sim/trace.hpp"

namespace urtx::sim {

enum class ExecutionMode { SingleThread, MultiThread };

const char* to_string(ExecutionMode m);

class HybridSystem {
public:
    explicit HybridSystem(double t0 = 0.0);
    ~HybridSystem();

    HybridSystem(const HybridSystem&) = delete;
    HybridSystem& operator=(const HybridSystem&) = delete;

    flow::Time& time() { return time_; }
    double now() const { return time_.now(); }

    /// The default controller (created with the system).
    rt::Controller& controller() { return *controllers_.front(); }
    /// Create an additional controller (thread) sharing the clock.
    rt::Controller& addController(std::string name);
    const std::vector<std::unique_ptr<rt::Controller>>& controllers() const {
        return controllers_;
    }

    /// Attach a capsule tree to a controller (default: the main one).
    void addCapsule(rt::Capsule& root, rt::Controller* ctl = nullptr);

    /// Register a streamer tree as one solver group (one thread in
    /// MultiThread mode). Returns the runner for probing/strategy swaps.
    flow::SolverRunner& addStreamerGroup(flow::Streamer& root,
                                         std::unique_ptr<solver::Integrator> method,
                                         double majorDt);
    const std::vector<std::unique_ptr<flow::SolverRunner>>& runners() const { return runners_; }

    /// Built-in trace sampled once per global step (after capsule drain).
    Trace& trace() { return trace_; }

    /// Initialize capsules (onInit + state machines) and solver groups.
    void initialize();
    bool initialized() const { return initialized_; }

    /// Advance the whole system to \p tEnd.
    void run(double tEnd, ExecutionMode mode = ExecutionMode::SingleThread);

    /// Soft real-time pacing: when > 0, run() sleeps so simulated time
    /// advances at most \p factor times wall-clock speed (1.0 = real time).
    /// 0 disables pacing (as-fast-as-possible, the default).
    void setRealtimeFactor(double factor) { realtimeFactor_ = factor; }
    double realtimeFactor() const { return realtimeFactor_; }

    /// Smallest solver major step = the global grid step.
    double globalDt() const;

    std::uint64_t steps() const { return steps_; }

private:
    void runSingleThread(double tEnd);
    void runMultiThread(double tEnd);
    void drainControllersInline();
    /// Per-grid-step metric updates (no-op when metrics are off).
    void observeStep();
    /// Sleep so that simulated progress since run() start does not exceed
    /// realtimeFactor_ times wall-clock progress.
    void pace(double simProgress, std::chrono::steady_clock::time_point wallStart) const;

    flow::Time time_;
    std::vector<std::unique_ptr<rt::Controller>> controllers_;
    std::vector<std::unique_ptr<flow::SolverRunner>> runners_;
    Trace trace_;
    bool initialized_ = false;
    std::uint64_t steps_ = 0;
    double realtimeFactor_ = 0.0;
};

} // namespace urtx::sim
