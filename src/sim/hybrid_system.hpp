#pragma once
/// \file hybrid_system.hpp
/// The unified hybrid simulation engine — the paper's Figure 3 made
/// executable.
///
/// A HybridSystem binds together:
///  * one shared Time (the continuous simulation clock stereotype),
///  * one or more Controllers hosting the event-driven capsules, and
///  * one or more SolverRunners hosting the time-continuous streamers.
///
/// Two execution modes reproduce the paper's architectural comparison:
///
///  * SingleThread — everything interleaved on the caller's thread. This is
///    what a plain UML-RT platform would force: the continuous equations
///    run inside the same run-to-completion world as the capsules.
///  * MultiThread — "capsules and streamers are assigned to different
///    threads": every controller gets its own std::thread, the streamer
///    groups run on a persistent SolverPool synchronized by an epoch
///    barrier; they rendezvous on the time grid and exchange only messages
///    (SPorts / controller queues).
///
/// Both modes advance the shared VirtualClock on a global step grid equal
/// to the smallest solver major step; the final (possibly partial) step is
/// clamped so the run lands exactly on tEnd. On quiet stretches — every
/// runner structurally unable to emit mid-span (no zero-crossing surfaces,
/// no SPorts), no timer due before the target, no queued messages, no
/// trace channels, no pacing — the grid loop coalesces up to
/// macroStepLimit() grid steps into one solver grant (macro-stepping),
/// cutting barrier crossings without changing any observable trajectory.
/// In MultiThread mode the timer check is additionally validated against
/// concurrent controller dispatch activity at grant time.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flow/solver_runner.hpp"
#include "flow/time.hpp"
#include "rt/controller.hpp"
#include "sim/trace.hpp"

namespace urtx::sim {

class SolverPool;

enum class ExecutionMode { SingleThread, MultiThread };

const char* to_string(ExecutionMode m);

class HybridSystem {
public:
    explicit HybridSystem(double t0 = 0.0);
    ~HybridSystem();

    HybridSystem(const HybridSystem&) = delete;
    HybridSystem& operator=(const HybridSystem&) = delete;

    flow::Time& time() { return time_; }
    double now() const { return time_.now(); }

    /// The default controller (created with the system).
    rt::Controller& controller() { return *controllers_.front(); }
    /// Create an additional controller (thread) sharing the clock.
    rt::Controller& addController(std::string name);
    const std::vector<std::unique_ptr<rt::Controller>>& controllers() const {
        return controllers_;
    }

    /// Attach a capsule tree to a controller (default: the main one).
    void addCapsule(rt::Capsule& root, rt::Controller* ctl = nullptr);

    /// Register a streamer tree as one solver group (one pool thread in
    /// MultiThread mode). Returns the runner for probing/strategy swaps.
    flow::SolverRunner& addStreamerGroup(flow::Streamer& root,
                                         std::unique_ptr<solver::Integrator> method,
                                         double majorDt);
    const std::vector<std::unique_ptr<flow::SolverRunner>>& runners() const { return runners_; }

    /// Built-in trace sampled once per global step (after capsule drain).
    Trace& trace() { return trace_; }

    /// Initialize capsules (onInit + state machines) and solver groups.
    void initialize();
    bool initialized() const { return initialized_; }

    /// Rewind the whole system to its pre-initialize() state so the same
    /// instance can run again from t0 (warm reuse by the serving layer):
    /// the clock returns to the construction time, controllers drop queued
    /// messages/timers and reset their capsule trees, every streamer's
    /// parameter map is restored to the snapshot taken at first
    /// initialize() (runs mutate parameters through signals), solver
    /// runners re-evaluate initial state and re-prime event detection, the
    /// trace keeps its channels but drops its samples, and step/macro
    /// counters plus any pending stop request are cleared. The next run()
    /// re-initializes capsules and state machines. Must not be called while
    /// a run() is in flight.
    void reset();

    /// Advance the whole system to \p tEnd. Exceptions thrown by capsule or
    /// streamer code propagate to the caller in both modes; in MultiThread
    /// mode the solver pool and controller threads are stopped first.
    void run(double tEnd, ExecutionMode mode = ExecutionMode::SingleThread);

    /// Soft real-time pacing: when > 0, run() sleeps so simulated time
    /// advances at most \p factor times wall-clock speed (1.0 = real time).
    /// 0 disables pacing (as-fast-as-possible, the default).
    void setRealtimeFactor(double factor) { realtimeFactor_ = factor; }
    double realtimeFactor() const { return realtimeFactor_; }

    /// Coalesce up to \p k quiet grid steps into one solver grant (>= 1;
    /// 1 disables macro-stepping). Coalescing only engages when it cannot
    /// be observed: no runner can emit signals mid-span (a network with
    /// zero-crossing event surfaces or SPorts structurally disables
    /// coalescing — see flow::SolverRunner::canEmitMidSpan), no trace
    /// channels, every controller queue empty, no SPort signal queued, no
    /// timer due before the coalesced target and no real-time pacing; in
    /// MultiThread mode additionally no controller handler ran while the
    /// span was computed.
    void setMacroStepLimit(std::uint64_t k);
    std::uint64_t macroStepLimit() const { return macroStepLimit_; }
    /// Number of coalesced grants issued / grid steps absorbed into them.
    std::uint64_t macroGrants() const { return macroGrants_; }
    std::uint64_t macroStepsCoalesced() const { return macroStepsCoalesced_; }

    /// Cap on inter-controller message drain rounds per grid step; when two
    /// capsules ping-pong messages forever the drain throws instead of
    /// livelocking the simulator (>= 1).
    void setDrainRoundLimit(std::size_t rounds);
    std::size_t drainRoundLimit() const { return drainRoundLimit_; }

    /// Cooperative abort: thread-safe request for the current (or next)
    /// run() to stop at the next grid step by throwing std::runtime_error.
    /// Sticky until clearStopRequest() — a serving-engine watchdog can trip
    /// it just before run() enters the grid loop and still take effect.
    void requestStop() { stopRequested_.store(true, std::memory_order_relaxed); }
    bool stopRequested() const { return stopRequested_.load(std::memory_order_relaxed); }
    void clearStopRequest() { stopRequested_.store(false, std::memory_order_relaxed); }

    /// Smallest solver major step = the global grid step.
    double globalDt() const;

    std::uint64_t steps() const { return steps_; }

private:
    void runSingleThread(double tEnd);
    void runMultiThread(double tEnd);
    /// The shared grid loop: \p pool == nullptr advances runners inline
    /// (SingleThread) and drains controllers between steps; otherwise
    /// solver grants go through the epoch barrier.
    void runGrid(double tEnd, SolverPool* pool);
    /// Grid steps [i .. i+span-1] that can be granted at once (>= 1).
    /// \p mt: MultiThread mode — controllers run concurrently, so the
    /// timer-horizon read is bracketed by a dispatch-activity check.
    std::uint64_t macroSpan(std::uint64_t i, std::uint64_t n, double t0, double dt,
                            bool mt) const;
    void drainControllersInline();
    /// Per-grant metric updates for \p k grid steps (no-op when metrics off).
    void observeStep(std::uint64_t k);
    /// Sleep so that simulated progress since run() start does not exceed
    /// realtimeFactor_ times wall-clock progress.
    void pace(double simProgress, std::chrono::steady_clock::time_point wallStart) const;

    flow::Time time_;
    double t0_;
    std::vector<std::unique_ptr<rt::Controller>> controllers_;
    std::vector<std::unique_ptr<flow::SolverRunner>> runners_;
    /// Per-runner, per-streamer parameter snapshots captured at first
    /// initialize(); restored by reset() so warm reruns see pristine
    /// parameters even after signal-driven mutation.
    std::vector<std::pair<flow::Streamer*, std::map<std::string, double>>> paramSnapshots_;
    bool paramsSnapshotted_ = false;
    Trace trace_;
    bool initialized_ = false;
    std::uint64_t steps_ = 0;
    double realtimeFactor_ = 0.0;
    std::uint64_t macroStepLimit_ = 32;
    std::uint64_t macroGrants_ = 0;
    std::uint64_t macroStepsCoalesced_ = 0;
    std::size_t drainRoundLimit_ = 10000;
    std::atomic<bool> stopRequested_{false};
};

} // namespace urtx::sim
