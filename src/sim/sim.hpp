#pragma once
/// \file sim.hpp
/// Umbrella header for the hybrid simulation engine.

#include "sim/hybrid_system.hpp"
#include "sim/solver_pool.hpp"
#include "sim/trace.hpp"
