#pragma once
/// \file difference.hpp
/// Difference-equation engine for the time-discrete half of a hybrid model.
///
/// The paper integrates difference equations into capsule actions; this
/// class is the reusable piece those actions call. It realizes a linear
/// constant-coefficient difference equation
///
///   a0 y[n] + a1 y[n-1] + ... + aN y[n-N] = b0 u[n] + ... + bM u[n-M]
///
/// i.e. a discrete transfer function H(z) = B(z)/A(z), in direct form II
/// transposed (good numerical behaviour, single delay line).

#include <stdexcept>
#include <vector>

namespace urtx::solver {

class DifferenceEquation {
public:
    /// \p b: numerator coefficients (b0..bM), \p a: denominator (a0..aN),
    /// a0 != 0. Coefficients are normalized by a0 on construction.
    DifferenceEquation(std::vector<double> b, std::vector<double> a);

    /// Process one input sample, returning the output sample.
    double step(double u);

    /// Clear internal delay state (keeps coefficients).
    void reset();

    std::size_t order() const { return state_.size(); }
    const std::vector<double>& numerator() const { return b_; }
    const std::vector<double>& denominator() const { return a_; }
    /// Samples processed since construction / reset.
    std::size_t samples() const { return samples_; }

private:
    std::vector<double> b_, a_; // normalized, a_[0] == 1
    std::vector<double> state_; // direct form II transposed delay line
    std::size_t samples_ = 0;
};

/// First-order discrete low-pass: y[n] = y[n-1] + alpha (u[n] - y[n-1]).
DifferenceEquation makeLowPass(double alpha);

/// Discrete integrator (forward rectangle, gain dt).
DifferenceEquation makeDiscreteIntegrator(double dt);

/// Moving average of window \p n.
DifferenceEquation makeMovingAverage(std::size_t n);

} // namespace urtx::solver
