#pragma once
/// \file zero_crossing.hpp
/// State-event detection for hybrid simulation.
///
/// Continuous streamers may expose event functions g(t, x); when g changes
/// sign during an integration step the simulation engine must stop at the
/// crossing and emit a signal to the event-driven (capsule) side. The
/// localizer here is method-independent: it re-integrates from the saved
/// step start while bisecting on the step size, so it works with any
/// Integrator strategy.

#include <functional>
#include <vector>

#include "solver/integrator.hpp"
#include "solver/ode.hpp"

namespace urtx::solver {

/// A scalar event function g(t, x). A *crossing* happens when the sign of g
/// changes between two successive major steps.
using EventFn = std::function<double(double, const Vec&)>;

/// Direction filter for crossings.
enum class CrossingDir { Any, Rising, Falling };

/// Result of a localized crossing.
struct Crossing {
    std::size_t index;  ///< which event function fired
    double t;           ///< localized crossing time
    Vec state;          ///< state at the crossing
    bool rising;        ///< g went from <0 to >=0
};

/// Detects and localizes zero crossings over integration steps.
class ZeroCrossingDetector {
public:
    /// \p tol: time localization tolerance (seconds).
    explicit ZeroCrossingDetector(double tol = 1e-9) : tol_(tol) {}

    void addEvent(EventFn g, CrossingDir dir = CrossingDir::Any) {
        events_.push_back(std::move(g));
        dirs_.push_back(dir);
    }
    std::size_t eventCount() const { return events_.size(); }

    /// Called with the state at the start of a simulation to latch initial
    /// signs.
    void prime(double t, const Vec& x);

    /// Inspect the step [t0, t0+dt] that moved the state from x0 to x1.
    /// When some event crossed, localize the *earliest* crossing using
    /// \p method re-integrating from x0, and return it. The caller should
    /// then truncate its step to the returned time.
    bool check(const OdeSystem& sys, Integrator& method, double t0, double dt, const Vec& x0,
               const Vec& x1, Crossing& out);

    /// Like check(), but reports *every* event that has crossed by the
    /// localized earliest time — simultaneous crossings (e.g. identical
    /// subsystems) are all delivered instead of being swallowed by the
    /// re-latch. Events that cross later in [t0, t0+dt] stay pending and
    /// surface on the next call.
    bool checkAll(const OdeSystem& sys, Integrator& method, double t0, double dt, const Vec& x0,
                  const Vec& x1, std::vector<Crossing>& out);

private:
    double tol_;
    std::vector<EventFn> events_;
    std::vector<CrossingDir> dirs_;
    std::vector<double> lastValues_;
};

} // namespace urtx::solver
