#include "solver/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace urtx::solver {

double norm2(const Vec& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
}

double normInf(const Vec& v) {
    double m = 0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
}

void axpy(double s, const Vec& b, Vec& a) {
    if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += s * b[i];
}

double dot(const Vec& a, const Vec& b) {
    if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
}

Vec Matrix::mul(const Vec& x) const {
    if (x.size() != cols_) throw std::invalid_argument("Matrix::mul: size mismatch");
    Vec y(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        double s = 0;
        for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
        y[i] = s;
    }
    return y;
}

Matrix Matrix::mul(const Matrix& b) const {
    if (cols_ != b.rows_) throw std::invalid_argument("Matrix::mul: shape mismatch");
    Matrix c(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
        }
    return c;
}

void Matrix::addScaled(double s, const Matrix& b) {
    if (rows_ != b.rows_ || cols_ != b.cols_)
        throw std::invalid_argument("Matrix::addScaled: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * b.data_[i];
}

LuFactor::LuFactor(Matrix a) : lu_(std::move(a)), piv_(lu_.rows()) {
    if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LuFactor: matrix not square");
    const std::size_t n = lu_.rows();
    for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot.
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < 1e-300) throw std::runtime_error("LuFactor: singular matrix");
        if (p != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
            std::swap(piv_[k], piv_[p]);
            pivSign_ = -pivSign_;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            lu_(i, k) /= lu_(k, k);
            const double lik = lu_(i, k);
            if (lik == 0.0) continue;
            for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
        }
    }
}

Vec LuFactor::solve(const Vec& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size mismatch");
    Vec x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
    // Forward substitution (unit lower).
    for (std::size_t i = 1; i < n; ++i) {
        double s = x[i];
        for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
        x[i] = s;
    }
    // Back substitution.
    for (std::size_t i = n; i-- > 0;) {
        double s = x[i];
        for (std::size_t j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
        x[i] = s / lu_(i, i);
    }
    return x;
}

double LuFactor::determinant() const {
    double d = pivSign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
    return d;
}

Vec solve(const Matrix& a, const Vec& b) { return LuFactor(a).solve(b); }

} // namespace urtx::solver
