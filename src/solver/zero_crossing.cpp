#include "solver/zero_crossing.hpp"

#include <cmath>
#include <limits>

namespace urtx::solver {

namespace {

bool signChanged(double a, double b, CrossingDir dir) {
    switch (dir) {
        case CrossingDir::Any:
            return (a < 0 && b >= 0) || (a > 0 && b <= 0);
        case CrossingDir::Rising:
            return a < 0 && b >= 0;
        case CrossingDir::Falling:
            return a > 0 && b <= 0;
    }
    return false;
}

} // namespace

void ZeroCrossingDetector::prime(double t, const Vec& x) {
    lastValues_.resize(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) lastValues_[i] = events_[i](t, x);
}

namespace {

/// Bisect on the sub-step size h in (0, dt] for one event, re-integrating
/// from (t0, x0) so the localization matches the integrator's trajectory.
double localize(const OdeSystem& sys, Integrator& method, const EventFn& g, CrossingDir dir,
                double g0, double t0, double dt, const Vec& x0, double tol) {
    double lo = 0.0, hi = dt;
    Vec xMid;
    const int maxIter =
        std::max(4, static_cast<int>(std::ceil(std::log2(std::max(dt / tol, 2.0)))) + 2);
    for (int it = 0; it < maxIter && (hi - lo) > tol; ++it) {
        const double mid = 0.5 * (lo + hi);
        xMid = x0;
        method.step(sys, t0, mid, xMid);
        const double gm = g(t0 + mid, xMid);
        if (signChanged(g0, gm, dir)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return hi; // just past the crossing so the sign has flipped
}

} // namespace

bool ZeroCrossingDetector::checkAll(const OdeSystem& sys, Integrator& method, double t0,
                                    double dt, const Vec& x0, const Vec& x1,
                                    std::vector<Crossing>& out) {
    out.clear();
    if (events_.empty()) return false;
    if (lastValues_.size() != events_.size()) prime(t0, x0);

    const double t1 = t0 + dt;
    std::vector<std::size_t> flagged;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const double g1 = events_[i](t1, x1);
        if (signChanged(lastValues_[i], g1, dirs_[i])) flagged.push_back(i);
    }
    if (flagged.empty()) {
        for (std::size_t i = 0; i < events_.size(); ++i) lastValues_[i] = events_[i](t1, x1);
        return false;
    }

    // Localize each flagged event; the earliest wins.
    double hEarliest = dt;
    for (std::size_t i : flagged) {
        const double h = localize(sys, method, events_[i], dirs_[i], lastValues_[i], t0, dt, x0,
                                  tol_);
        hEarliest = std::min(hEarliest, h);
    }

    // State at the earliest crossing; every event that has flipped by then
    // is simultaneous and gets reported.
    Vec xStar = x0;
    method.step(sys, t0, hEarliest, xStar);
    const double tStar = t0 + hEarliest;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const double gi = events_[i](tStar, xStar);
        if (signChanged(lastValues_[i], gi, dirs_[i])) {
            out.push_back(Crossing{i, tStar, xStar, lastValues_[i] < 0});
        }
        lastValues_[i] = gi; // latch; still-pending events keep their old sign
    }
    if (out.empty()) {
        // Numerical edge: the earliest localized event flipped between its
        // own hi-side probe and tStar evaluation. Report it explicitly.
        const std::size_t i = flagged.front();
        out.push_back(Crossing{i, tStar, xStar, lastValues_[i] >= 0});
    }
    return true;
}

bool ZeroCrossingDetector::check(const OdeSystem& sys, Integrator& method, double t0, double dt,
                                 const Vec& x0, const Vec& x1, Crossing& out) {
    std::vector<Crossing> all;
    if (!checkAll(sys, method, t0, dt, x0, x1, all)) return false;
    out = std::move(all.front());
    return true;
}

} // namespace urtx::solver
