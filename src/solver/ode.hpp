#pragma once
/// \file ode.hpp
/// The continuous-system interface integrated by solver strategies.
///
/// A streamer network with continuous states presents itself to the solver
/// as one OdeSystem: dx/dt = f(t, x). Inputs flow in through DPorts and are
/// captured inside f by the network's output-propagation pass.

#include <cstddef>
#include <cstdint>
#include <functional>

#include "solver/linalg.hpp"

namespace urtx::solver {

/// A first-order ODE system dx/dt = f(t, x).
class OdeSystem {
public:
    virtual ~OdeSystem() = default;

    /// State dimension (constant over the system's life).
    virtual std::size_t dim() const = 0;

    /// Evaluate dx/dt into \p dxdt (pre-sized to dim()).
    virtual void derivatives(double t, const Vec& x, Vec& dxdt) const = 0;

    /// Number of derivative evaluations performed (cost metric).
    std::uint64_t evals() const { return evals_; }
    void resetEvalCount() { evals_ = 0; }

protected:
    /// Implementations of derivatives() need not touch this; the counting
    /// wrapper eval() below increments it.
    mutable std::uint64_t evals_ = 0;
    friend class Integrator;
};

/// Wrap a callable as an OdeSystem (handy in tests and benchmarks).
class FnOde final : public OdeSystem {
public:
    using Fn = std::function<void(double, const Vec&, Vec&)>;
    FnOde(std::size_t dim, Fn fn) : dim_(dim), fn_(std::move(fn)) {}

    std::size_t dim() const override { return dim_; }
    void derivatives(double t, const Vec& x, Vec& dxdt) const override { fn_(t, x, dxdt); }

private:
    std::size_t dim_;
    Fn fn_;
};

} // namespace urtx::solver
