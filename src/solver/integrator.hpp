#pragma once
/// \file integrator.hpp
/// Integration-method strategies (ConcreteStrategyA/B/C of the paper's
/// Figure 1): interchangeable numerical methods behind one interface.
///
/// Fixed-step methods advance exactly dt. The adaptive method (RK45)
/// internally sub-steps with error control but still lands exactly on
/// t + dt, so callers can treat every strategy uniformly.

#include <cstdint>
#include <memory>
#include <string>

#include "solver/ode.hpp"

namespace urtx::solver {

class Integrator {
public:
    virtual ~Integrator() = default;

    /// Human-readable method name ("RK4", ...).
    virtual const char* name() const = 0;
    /// Classical order of accuracy.
    virtual int order() const = 0;
    /// Does the method control its own sub-step size?
    virtual bool adaptive() const { return false; }

    /// Advance \p x in place from \p t to \p t + \p dt (dt > 0).
    virtual void step(const OdeSystem& sys, double t, double dt, Vec& x) = 0;

    /// Reset internal statistics and any cached stage data.
    virtual void reset() { steps_ = 0; }

    /// Steps taken (for adaptive methods: accepted internal sub-steps).
    std::uint64_t steps() const { return steps_; }

protected:
    /// Counting derivative evaluation used by all strategies.
    static void eval(const OdeSystem& sys, double t, const Vec& x, Vec& dxdt) {
        ++sys.evals_;
        sys.derivatives(t, x, dxdt);
    }
    /// Access to the eval counter for strategies with bespoke inner loops
    /// (implicit methods count Jacobian probes too).
    static std::uint64_t& evalCounter(const OdeSystem& sys) { return sys.evals_; }
    std::uint64_t steps_ = 0;
};

/// Forward Euler: x += dt f(t, x). Order 1.
class EulerIntegrator final : public Integrator {
public:
    const char* name() const override { return "Euler"; }
    int order() const override { return 1; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;

private:
    Vec k1_;
};

/// Heun (explicit trapezoidal / RK2). Order 2.
class HeunIntegrator final : public Integrator {
public:
    const char* name() const override { return "Heun"; }
    int order() const override { return 2; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;

private:
    Vec k1_, k2_, tmp_;
};

/// Classic Runge–Kutta 4. Order 4.
class Rk4Integrator final : public Integrator {
public:
    const char* name() const override { return "RK4"; }
    int order() const override { return 4; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;

private:
    Vec k1_, k2_, k3_, k4_, tmp_;
};

/// Adaptive Dormand–Prince RK45 with PI step-size control.
class Rk45Integrator final : public Integrator {
public:
    explicit Rk45Integrator(double rtol = 1e-6, double atol = 1e-9)
        : rtol_(rtol), atol_(atol) {}

    const char* name() const override { return "RK45"; }
    int order() const override { return 5; }
    bool adaptive() const override { return true; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;
    void reset() override;

    double rtol() const { return rtol_; }
    double atol() const { return atol_; }
    void setTolerances(double rtol, double atol) {
        rtol_ = rtol;
        atol_ = atol;
    }

    std::uint64_t accepted() const { return accepted_; }
    std::uint64_t rejected() const { return rejected_; }

private:
    /// One embedded 4(5) attempt from (t, x) with step h. Writes the 5th
    /// order result into xOut and returns the scaled error norm.
    double attempt(const OdeSystem& sys, double t, double h, const Vec& x, Vec& xOut);

    double rtol_, atol_;
    double hLast_ = 0.0; ///< carry the step size across calls
    std::uint64_t accepted_ = 0, rejected_ = 0;
    Vec k1_, k2_, k3_, k4_, k5_, k6_, k7_, tmp_;
};

/// Two-step Adams–Bashforth: x_{n+1} = x_n + h (3 f_n - f_{n-1}) / 2.
/// Order 2 with a single new evaluation per step (cheapest order-2
/// explicit method); the first step bootstraps with Heun. The history is
/// invalidated when the step size or the system changes.
class AdamsBashforth2Integrator final : public Integrator {
public:
    const char* name() const override { return "AB2"; }
    int order() const override { return 2; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;
    void reset() override;

private:
    Vec fPrev_, k1_, k2_, tmp_;
    double lastT_ = 0.0, lastDt_ = 0.0;
    const OdeSystem* lastSys_ = nullptr;
    bool haveHistory_ = false;
};

/// Implicit (backward) Euler with damped Newton iteration and a
/// finite-difference Jacobian. A-stable; order 1.
class ImplicitEulerIntegrator final : public Integrator {
public:
    explicit ImplicitEulerIntegrator(double newtonTol = 1e-10, int maxIter = 25)
        : tol_(newtonTol), maxIter_(maxIter) {}

    const char* name() const override { return "ImplicitEuler"; }
    int order() const override { return 1; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;

private:
    double tol_;
    int maxIter_;
};

/// Implicit trapezoidal rule (Crank–Nicolson). A-stable; order 2.
class TrapezoidalIntegrator final : public Integrator {
public:
    explicit TrapezoidalIntegrator(double newtonTol = 1e-10, int maxIter = 25)
        : tol_(newtonTol), maxIter_(maxIter) {}

    const char* name() const override { return "Trapezoidal"; }
    int order() const override { return 2; }
    void step(const OdeSystem& sys, double t, double dt, Vec& x) override;

private:
    double tol_;
    int maxIter_;
};

/// Factory by method name ("Euler", "Heun", "RK4", "RK45", "ImplicitEuler",
/// "Trapezoidal"); throws std::invalid_argument on unknown names.
std::unique_ptr<Integrator> makeIntegrator(const std::string& method);

} // namespace urtx::solver
