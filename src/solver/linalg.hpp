#pragma once
/// \file linalg.hpp
/// Small dense linear algebra used by the implicit integrators and the
/// state-space control blocks. Not a general-purpose BLAS: sizes here are
/// the handful of states of a control model, so clarity beats blocking.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace urtx::solver {

/// Dynamic real vector.
using Vec = std::vector<double>;

/// Euclidean norm.
double norm2(const Vec& v);
/// Infinity norm.
double normInf(const Vec& v);
/// r = a + s*b (sizes must match).
void axpy(double s, const Vec& b, Vec& a);
/// Dot product.
double dot(const Vec& a, const Vec& b);

/// Row-major dense matrix.
class Matrix {
public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
    /// Build from nested initializer lists; all rows must be equally long.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return data_.empty(); }

    double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
    double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

    Matrix transposed() const;

    /// y = A * x.
    Vec mul(const Vec& x) const;
    /// C = A * B.
    Matrix mul(const Matrix& b) const;
    /// Element-wise: A += s * B.
    void addScaled(double s, const Matrix& b);

    const std::vector<double>& data() const { return data_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
///
/// Throws std::runtime_error when the matrix is singular to working
/// precision.
class LuFactor {
public:
    explicit LuFactor(Matrix a);

    /// Solve A x = b; returns x.
    Vec solve(const Vec& b) const;
    /// det(A), including pivot sign.
    double determinant() const;
    std::size_t dim() const { return lu_.rows(); }

private:
    Matrix lu_;
    std::vector<std::size_t> piv_;
    int pivSign_ = 1;
};

/// Convenience one-shot solve of A x = b.
Vec solve(const Matrix& a, const Vec& b);

} // namespace urtx::solver
