#pragma once
/// \file solver.hpp
/// Umbrella header for the numerical solver library.

#include "solver/difference.hpp"
#include "solver/integrator.hpp"
#include "solver/linalg.hpp"
#include "solver/ode.hpp"
#include "solver/zero_crossing.hpp"
