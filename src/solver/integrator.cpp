#include "solver/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace urtx::solver {

namespace {

void resize(Vec& v, std::size_t n) {
    if (v.size() != n) v.assign(n, 0.0);
}

} // namespace

// --------------------------------------------------------------------- Euler

void EulerIntegrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    resize(k1_, n);
    eval(sys, t, x, k1_);
    for (std::size_t i = 0; i < n; ++i) x[i] += dt * k1_[i];
    ++steps_;
}

// ---------------------------------------------------------------------- Heun

void HeunIntegrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    resize(k1_, n);
    resize(k2_, n);
    resize(tmp_, n);
    eval(sys, t, x, k1_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + dt * k1_[i];
    eval(sys, t + dt, tmp_, k2_);
    for (std::size_t i = 0; i < n; ++i) x[i] += 0.5 * dt * (k1_[i] + k2_[i]);
    ++steps_;
}

// ----------------------------------------------------------------------- RK4

void Rk4Integrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    resize(k1_, n);
    resize(k2_, n);
    resize(k3_, n);
    resize(k4_, n);
    resize(tmp_, n);
    eval(sys, t, x, k1_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + 0.5 * dt * k1_[i];
    eval(sys, t + 0.5 * dt, tmp_, k2_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + 0.5 * dt * k2_[i];
    eval(sys, t + 0.5 * dt, tmp_, k3_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + dt * k3_[i];
    eval(sys, t + dt, tmp_, k4_);
    for (std::size_t i = 0; i < n; ++i)
        x[i] += dt / 6.0 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    ++steps_;
}

// ---------------------------------------------------------------------- RK45

namespace dp {
// Dormand–Prince 5(4) tableau.
constexpr double c2 = 1.0 / 5, c3 = 3.0 / 10, c4 = 4.0 / 5, c5 = 8.0 / 9;
constexpr double a21 = 1.0 / 5;
constexpr double a31 = 3.0 / 40, a32 = 9.0 / 40;
constexpr double a41 = 44.0 / 45, a42 = -56.0 / 15, a43 = 32.0 / 9;
constexpr double a51 = 19372.0 / 6561, a52 = -25360.0 / 2187, a53 = 64448.0 / 6561,
                 a54 = -212.0 / 729;
constexpr double a61 = 9017.0 / 3168, a62 = -355.0 / 33, a63 = 46732.0 / 5247, a64 = 49.0 / 176,
                 a65 = -5103.0 / 18656;
// b (5th order) == a7j.
constexpr double b1 = 35.0 / 384, b3 = 500.0 / 1113, b4 = 125.0 / 192, b5 = -2187.0 / 6784,
                 b6 = 11.0 / 84;
// e = b5th - b4th (error estimator weights; e2 == 0).
constexpr double e1 = 71.0 / 57600, e3 = -71.0 / 16695, e4 = 71.0 / 1920,
                 e5 = -17253.0 / 339200, e6 = 22.0 / 525, e7 = -1.0 / 40;
} // namespace dp

double Rk45Integrator::attempt(const OdeSystem& sys, double t, double h, const Vec& x,
                               Vec& xOut) {
    using namespace dp;
    const std::size_t n = sys.dim();
    resize(k1_, n);
    resize(k2_, n);
    resize(k3_, n);
    resize(k4_, n);
    resize(k5_, n);
    resize(k6_, n);
    resize(k7_, n);
    resize(tmp_, n);
    resize(xOut, n);

    eval(sys, t, x, k1_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + h * a21 * k1_[i];
    eval(sys, t + c2 * h, tmp_, k2_);
    for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + h * (a31 * k1_[i] + a32 * k2_[i]);
    eval(sys, t + c3 * h, tmp_, k3_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] = x[i] + h * (a41 * k1_[i] + a42 * k2_[i] + a43 * k3_[i]);
    eval(sys, t + c4 * h, tmp_, k4_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] = x[i] + h * (a51 * k1_[i] + a52 * k2_[i] + a53 * k3_[i] + a54 * k4_[i]);
    eval(sys, t + c5 * h, tmp_, k5_);
    for (std::size_t i = 0; i < n; ++i)
        tmp_[i] =
            x[i] + h * (a61 * k1_[i] + a62 * k2_[i] + a63 * k3_[i] + a64 * k4_[i] + a65 * k5_[i]);
    eval(sys, t + h, tmp_, k6_);
    for (std::size_t i = 0; i < n; ++i)
        xOut[i] =
            x[i] + h * (b1 * k1_[i] + b3 * k3_[i] + b4 * k4_[i] + b5 * k5_[i] + b6 * k6_[i]);
    eval(sys, t + h, xOut, k7_);

    // Scaled RMS error norm.
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double e = h * (e1 * k1_[i] + e3 * k3_[i] + e4 * k4_[i] + e5 * k5_[i] +
                              e6 * k6_[i] + e7 * k7_[i]);
        const double scale = atol_ + rtol_ * std::max(std::abs(x[i]), std::abs(xOut[i]));
        const double r = e / scale;
        sum += r * r;
    }
    return n ? std::sqrt(sum / static_cast<double>(n)) : 0.0;
}

void Rk45Integrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    if (dt <= 0) return;
    Vec xNew;
    double remaining = dt;
    double h = (hLast_ > 0 && hLast_ < dt) ? hLast_ : dt;
    const double hMin = 1e-14 * std::max(1.0, std::abs(t) + dt);

    while (remaining > 0) {
        h = std::min(h, remaining);
        const double err = attempt(sys, t, h, x, xNew);
        if (err <= 1.0 || h <= hMin) {
            t += h;
            remaining -= h;
            x = xNew;
            ++accepted_;
            ++steps_;
            const double grow =
                (err <= 1e-12) ? 5.0 : std::clamp(0.9 * std::pow(err, -0.2), 0.2, 5.0);
            h *= grow;
        } else {
            ++rejected_;
            h *= std::clamp(0.9 * std::pow(err, -0.2), 0.1, 0.9);
            if (h < hMin) h = hMin;
        }
    }
    hLast_ = h;
}

void Rk45Integrator::reset() {
    Integrator::reset();
    hLast_ = 0.0;
    accepted_ = rejected_ = 0;
}

// ----------------------------------------------------------------------- AB2

void AdamsBashforth2Integrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    resize(k1_, n);
    resize(tmp_, n);

    // History is only valid when continuing the same trajectory with the
    // same step size.
    const bool contiguous = haveHistory_ && lastSys_ == &sys &&
                            std::abs(lastT_ + lastDt_ - t) < 1e-12 * std::max(1.0, std::abs(t)) &&
                            std::abs(lastDt_ - dt) < 1e-15;

    eval(sys, t, x, k1_);
    if (!contiguous) {
        // Bootstrap with one Heun step.
        resize(k2_, n);
        for (std::size_t i = 0; i < n; ++i) tmp_[i] = x[i] + dt * k1_[i];
        eval(sys, t + dt, tmp_, k2_);
        for (std::size_t i = 0; i < n; ++i) x[i] += 0.5 * dt * (k1_[i] + k2_[i]);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            x[i] += dt * (1.5 * k1_[i] - 0.5 * fPrev_[i]);
    }
    fPrev_ = k1_;
    lastT_ = t;
    lastDt_ = dt;
    lastSys_ = &sys;
    haveHistory_ = true;
    ++steps_;
}

void AdamsBashforth2Integrator::reset() {
    Integrator::reset();
    haveHistory_ = false;
    lastSys_ = nullptr;
}

// ------------------------------------------------------ Implicit foundations

namespace {

/// Finite-difference Jacobian of f at (t, x): J(i,j) = df_i/dx_j.
Matrix numericJacobian(const OdeSystem& sys, double t, const Vec& x, const Vec& f0,
                       std::uint64_t& evalCount) {
    const std::size_t n = x.size();
    Matrix j(n, n);
    Vec xp = x, fp(n);
    for (std::size_t col = 0; col < n; ++col) {
        const double eps = 1e-8 * std::max(1.0, std::abs(x[col]));
        xp[col] = x[col] + eps;
        sys.derivatives(t, xp, fp);
        ++evalCount;
        for (std::size_t row = 0; row < n; ++row) j(row, col) = (fp[row] - f0[row]) / eps;
        xp[col] = x[col];
    }
    return j;
}

/// Solve y = x0 + dt*theta*f(t1,y) + c  via Newton. theta=1, c=0 gives
/// implicit Euler; theta=1/2, c=dt/2*f0 gives trapezoidal.
void newtonSolve(const OdeSystem& sys, double t1, double dt, double theta, const Vec& x0,
                 const Vec& constPart, Vec& y, double tol, int maxIter,
                 std::uint64_t& evalCount) {
    const std::size_t n = x0.size();
    Vec f(n), residual(n);
    for (int it = 0; it < maxIter; ++it) {
        sys.derivatives(t1, y, f);
        ++evalCount;
        for (std::size_t i = 0; i < n; ++i)
            residual[i] = y[i] - x0[i] - dt * theta * f[i] - constPart[i];
        if (normInf(residual) < tol) return;

        Matrix jac = numericJacobian(sys, t1, y, f, evalCount);
        // Newton matrix: I - dt*theta*J.
        Matrix m = Matrix::identity(n);
        m.addScaled(-dt * theta, jac);
        for (std::size_t i = 0; i < n; ++i) residual[i] = -residual[i];
        Vec d = LuFactor(std::move(m)).solve(residual);
        axpy(1.0, d, y);
        if (normInf(d) < tol) return;
    }
    throw std::runtime_error("implicit integrator: Newton iteration did not converge");
}

} // namespace

void ImplicitEulerIntegrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    Vec f0(n);
    eval(sys, t, x, f0);
    // Explicit Euler predictor.
    Vec y = x;
    axpy(dt, f0, y);
    Vec zero(n, 0.0);
    newtonSolve(sys, t + dt, dt, 1.0, x, zero, y, tol_, maxIter_, evalCounter(sys));
    x = y;
    ++steps_;
}

void TrapezoidalIntegrator::step(const OdeSystem& sys, double t, double dt, Vec& x) {
    const std::size_t n = sys.dim();
    Vec f0(n);
    eval(sys, t, x, f0);
    Vec y = x;
    axpy(dt, f0, y); // predictor
    Vec c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = 0.5 * dt * f0[i];
    newtonSolve(sys, t + dt, dt, 0.5, x, c, y, tol_, maxIter_, evalCounter(sys));
    x = y;
    ++steps_;
}

// ------------------------------------------------------------------- Factory

std::unique_ptr<Integrator> makeIntegrator(const std::string& method) {
    if (method == "Euler") return std::make_unique<EulerIntegrator>();
    if (method == "Heun") return std::make_unique<HeunIntegrator>();
    if (method == "RK4") return std::make_unique<Rk4Integrator>();
    if (method == "RK45") return std::make_unique<Rk45Integrator>();
    if (method == "AB2") return std::make_unique<AdamsBashforth2Integrator>();
    if (method == "ImplicitEuler") return std::make_unique<ImplicitEulerIntegrator>();
    if (method == "Trapezoidal") return std::make_unique<TrapezoidalIntegrator>();
    throw std::invalid_argument("makeIntegrator: unknown method '" + method + "'");
}

} // namespace urtx::solver
