#include "solver/difference.hpp"

#include <algorithm>
#include <cmath>

namespace urtx::solver {

DifferenceEquation::DifferenceEquation(std::vector<double> b, std::vector<double> a)
    : b_(std::move(b)), a_(std::move(a)) {
    if (a_.empty() || a_[0] == 0.0)
        throw std::invalid_argument("DifferenceEquation: a0 must be non-zero");
    if (b_.empty()) throw std::invalid_argument("DifferenceEquation: empty numerator");
    const double a0 = a_[0];
    for (double& c : a_) c /= a0;
    for (double& c : b_) c /= a0;
    const std::size_t n = std::max(a_.size(), b_.size());
    a_.resize(n, 0.0);
    b_.resize(n, 0.0);
    state_.assign(n > 0 ? n - 1 : 0, 0.0);
}

double DifferenceEquation::step(double u) {
    ++samples_;
    if (state_.empty()) return b_[0] * u;
    // Direct form II transposed.
    const double y = b_[0] * u + state_[0];
    for (std::size_t i = 0; i + 1 < state_.size(); ++i)
        state_[i] = b_[i + 1] * u + state_[i + 1] - a_[i + 1] * y;
    state_.back() = b_[state_.size()] * u - a_[state_.size()] * y;
    return y;
}

void DifferenceEquation::reset() {
    std::fill(state_.begin(), state_.end(), 0.0);
    samples_ = 0;
}

DifferenceEquation makeLowPass(double alpha) {
    return DifferenceEquation({alpha}, {1.0, alpha - 1.0});
}

DifferenceEquation makeDiscreteIntegrator(double dt) {
    return DifferenceEquation({dt}, {1.0, -1.0});
}

DifferenceEquation makeMovingAverage(std::size_t n) {
    if (n == 0) throw std::invalid_argument("makeMovingAverage: window must be positive");
    std::vector<double> b(n, 1.0 / static_cast<double>(n));
    return DifferenceEquation(std::move(b), {1.0});
}

} // namespace urtx::solver
