#pragma once
/// \file controller.hpp
/// Controllers: the logical threads capsules run on.
///
/// A controller owns a priority message queue, a timer service and a clock.
/// It can run *stepped* (dispatchOne/dispatchAll — used by the simulation
/// engine and tests, with a VirtualClock) or *threaded* (start/stop — a real
/// std::thread draining the queue, the paper's deployment where capsules
/// and streamers live on different threads).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rt/clock.hpp"
#include "rt/queue.hpp"
#include "rt/timer_service.hpp"

namespace urtx::rt {

class Capsule;

class Controller {
public:
    explicit Controller(std::string name = "controller",
                        std::shared_ptr<Clock> clock = std::make_shared<VirtualClock>());
    ~Controller();

    Controller(const Controller&) = delete;
    Controller& operator=(const Controller&) = delete;

    const std::string& name() const { return name_; }
    Clock& clock() const { return *clock_; }
    std::shared_ptr<Clock> clockPtr() const { return clock_; }
    /// The clock as a VirtualClock, or nullptr when running on wall time.
    VirtualClock* virtualClock() const;
    TimerService& timers() { return timers_; }
    const TimerService& timers() const { return timers_; }
    MessageQueue& queue() { return queue_; }
    const MessageQueue& queue() const { return queue_; }

    /// Deadline of the earliest pending timer, +infinity when none. Used by
    /// the simulation engine to bound macro-steps: the grid may coalesce
    /// quiet steps but must not run past the next timer firing.
    double nextTimerDue() const { return timers_.nextDue(); }
    /// True when there is nothing for this controller to do right now: no
    /// queued messages and no pending timers. Thread-safe but advisory —
    /// a message can arrive immediately after the check.
    bool quiescent() const { return queue_.size() == 0 && timers_.pending() == 0; }

    /// Assign \p root (and its subtree) to this controller.
    void attach(Capsule& root);
    /// Initialize all attached capsule trees (onInit + machine start).
    void initializeAll();
    /// Rewind to the pre-initializeAll() state: drop queued messages and
    /// scheduled timers, reset every attached capsule tree. Must not be
    /// called while the controller thread is running.
    void reset();
    const std::vector<Capsule*>& roots() const { return roots_; }

    /// Thread-safe message injection; m.receiver must be set.
    void post(Message m);

    // --- Stepped execution ------------------------------------------------

    /// Fire due timers, then deliver at most one message. Returns true when
    /// a message was delivered.
    bool dispatchOne();
    /// Deliver messages until the queue is empty (firing due timers as time
    /// stands still). Returns the number delivered.
    std::size_t dispatchAll();
    /// Called by the simulation engine after advancing a VirtualClock:
    /// converts due timers into messages and wakes a blocked thread.
    std::size_t onTimeAdvanced();

    // --- Threaded execution ----------------------------------------------

    /// Spawn the controller thread. Idempotent.
    void start();
    /// Request stop and join the thread. Remaining queued messages are
    /// drained before the thread exits.
    void stop();
    bool running() const { return running_.load(); }

    std::uint64_t dispatched() const { return dispatched_.load(); }
    /// True while a message handler is executing (threaded or stepped
    /// path). Together with dispatched(), this lets the simulation engine
    /// validate that no handler ran across a read of the timer horizon:
    /// every handler execution either overlaps the window (dispatching()
    /// observed true at one of its ends — both flag and counter are
    /// sequentially consistent) or bumps dispatched() between two reads.
    bool dispatching() const { return dispatching_.load(); }

private:
    void run();
    bool deliverNext();       // pop + deliver one, non-blocking
    void deliver(Message& m); // instrumented delivery shared by both paths

    std::string name_;
    std::shared_ptr<Clock> clock_;
    TimerService timers_;
    MessageQueue queue_;
    std::vector<Capsule*> roots_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<std::uint64_t> dispatched_{0};
    std::atomic<bool> dispatching_{false};
};

} // namespace urtx::rt
