#pragma once
/// \file port.hpp
/// UML-RT signal ports.
///
/// A port is a named interaction point of a capsule, typed by a Protocol and
/// a conjugation flag. *End* ports terminate connections and deliver
/// messages to their owning capsule; *relay* ports sit on composite capsule
/// boundaries and forward connections inward/outward without processing —
/// exactly the role the paper assigns to DPorts on capsules as well ("in
/// capsules, DPorts are only used as relay ports").
///
/// Wiring model: every port carries up to two link slots. End ports use one;
/// relay ports use both (outer + inner side). Message delivery resolves the
/// chain of relays from the sending end port to the receiving end port at
/// send time, so arbitrarily deep relay nesting costs one pointer hop per
/// boundary crossed.

#include <any>
#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "rt/message.hpp"
#include "rt/protocol.hpp"

namespace urtx::rt {

class Capsule;

/// Kind of port: end ports terminate connections, relay ports forward them.
enum class PortKind : std::uint8_t { End, Relay };

class Port {
public:
    /// Construct a port owned by \p owner; registers itself with the owner.
    Port(Capsule& owner, std::string name, const Protocol& proto, bool conjugated = false,
         PortKind kind = PortKind::End);
    ~Port();

    Port(const Port&) = delete;
    Port& operator=(const Port&) = delete;

    const std::string& name() const { return name_; }
    const Protocol& protocol() const { return *proto_; }
    bool conjugated() const { return conjugated_; }
    PortKind kind() const { return kind_; }
    bool isRelay() const { return kind_ == PortKind::Relay; }
    Capsule& owner() const { return *owner_; }

    /// Number of occupied link slots (0..2).
    int linkCount() const { return (links_[0] ? 1 : 0) + (links_[1] ? 1 : 0); }
    bool isWired() const { return linkCount() > 0; }

    /// Follow the connection away from this port to the terminating end
    /// port; nullptr when the chain dangles (unwired relay).
    Port* resolvePeer() const;

    /// Send \p sig with optional payload to the connected peer end port.
    /// Returns false (and delivers nothing) when the port is unwired, the
    /// chain dangles, or the signal is not sendable in this port's role.
    bool send(SignalId sig, std::any data = {}, Priority prio = Priority::General);
    bool send(std::string_view sig, std::any data = {}, Priority prio = Priority::General) {
        return send(SignalRegistry::intern(sig), std::move(data), prio);
    }

    /// Can this port's role emit \p sig?
    bool sendable(SignalId sig) const { return proto_->sendable(sig, conjugated_); }
    /// Can this port's role receive \p sig?
    bool receivable(SignalId sig) const { return proto_->receivable(sig, conjugated_); }

    /// Number of messages successfully sent through this port.
    std::uint64_t sent() const { return sent_; }

    /// Wire two ports together. Both must use the same protocol; the pair of
    /// *end* roles eventually joined must have opposite conjugation (checked
    /// per-link: a relay preserves role, so any directly linked pair must
    /// also be role-compatible or involve a relay on the same capsule
    /// boundary). Throws std::logic_error on violations.
    friend void connect(Port& a, Port& b);

    /// Remove the link between two directly connected ports (if present).
    friend void disconnect(Port& a, Port& b);

private:
    friend class Capsule; ///< ~Capsule orphans still-registered ports

    bool addLink(Port* p);
    void dropLink(Port* p);

    Capsule* owner_;
    std::string name_;
    const Protocol* proto_;
    bool conjugated_;
    PortKind kind_;
    std::array<Port*, 2> links_{};
    std::uint64_t sent_ = 0;
};

void connect(Port& a, Port& b);
void disconnect(Port& a, Port& b);

} // namespace urtx::rt
