#include "rt/layer_service.hpp"

#include <algorithm>
#include <stdexcept>

namespace urtx::rt {

bool LayerService::publish(const std::string& service, Capsule& provider, const Protocol& proto,
                           bool providerConjugated) {
    if (spps_.count(service)) return false;
    spps_.emplace(service, Spp{&provider, &proto, providerConjugated, {}});
    return true;
}

bool LayerService::withdraw(const std::string& service) {
    auto it = spps_.find(service);
    if (it == spps_.end()) return false;
    spps_.erase(it); // provider-end ports unwire in their destructors
    return true;
}

bool LayerService::registerSap(Port& sap, const std::string& service) {
    auto it = spps_.find(service);
    if (it == spps_.end()) return false;
    Spp& spp = it->second;
    if (&sap.protocol() != spp.proto)
        throw std::logic_error("LayerService: SAP protocol mismatch for service '" + service +
                               "'");
    if (sap.conjugated() == spp.conjugated)
        throw std::logic_error("LayerService: SAP must be conjugated opposite to provider for '" +
                               service + "'");
    if (sap.isWired())
        throw std::logic_error("LayerService: SAP '" + sap.name() + "' is already wired");

    spp.ends.push_back(std::make_unique<Port>(
        *spp.provider, service + "#" + std::to_string(spp.ends.size()), *spp.proto,
        spp.conjugated));
    connect(*spp.ends.back(), sap);
    return true;
}

bool LayerService::deregisterSap(Port& sap) {
    for (auto& [name, spp] : spps_) {
        auto it = std::find_if(spp.ends.begin(), spp.ends.end(),
                               [&](const std::unique_ptr<Port>& end) {
                                   return end->resolvePeer() == &sap;
                               });
        if (it != spp.ends.end()) {
            spp.ends.erase(it); // destructor unwires
            return true;
        }
    }
    return false;
}

std::size_t LayerService::sapCount(const std::string& service) const {
    auto it = spps_.find(service);
    return it == spps_.end() ? 0 : it->second.ends.size();
}

} // namespace urtx::rt
