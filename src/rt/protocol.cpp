#include "rt/protocol.hpp"

#include <algorithm>

namespace urtx::rt {

Protocol& Protocol::add(std::string_view sig, SignalDir dir) {
    const SignalId id = SignalRegistry::intern(sig);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [id](const Entry& e) { return e.signal == id; });
    if (it != entries_.end()) {
        // Upgrading In/Out to InOut when declared both ways.
        if (it->dir != dir) it->dir = SignalDir::InOut;
        return *this;
    }
    entries_.push_back(Entry{id, dir});
    return *this;
}

bool Protocol::receivable(SignalId sig, bool conjugated) const {
    for (const Entry& e : entries_) {
        if (e.signal != sig) continue;
        if (e.dir == SignalDir::InOut) return true;
        // Base receives In signals; conjugated receives Out signals.
        return conjugated ? (e.dir == SignalDir::Out) : (e.dir == SignalDir::In);
    }
    return false;
}

bool Protocol::sendable(SignalId sig, bool conjugated) const {
    for (const Entry& e : entries_) {
        if (e.signal != sig) continue;
        if (e.dir == SignalDir::InOut) return true;
        return conjugated ? (e.dir == SignalDir::In) : (e.dir == SignalDir::Out);
    }
    return false;
}

bool Protocol::contains(SignalId sig) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [sig](const Entry& e) { return e.signal == sig; });
}

} // namespace urtx::rt
