#include "rt/state_machine.hpp"

#include <stdexcept>

namespace urtx::rt {

// ---------------------------------------------------------------- Transition

Transition& Transition::on(std::string_view sig) {
    triggers_.push_back(Trigger{nullptr, SignalRegistry::intern(sig)});
    return *this;
}

Transition& Transition::on(const Port& port, std::string_view sig) {
    triggers_.push_back(Trigger{&port, SignalRegistry::intern(sig)});
    return *this;
}

Transition& Transition::onAny() {
    triggers_.push_back(Trigger{});
    return *this;
}

Transition& Transition::when(Guard g) {
    guard_ = std::move(g);
    return *this;
}

Transition& Transition::act(Action a) {
    action_ = std::move(a);
    return *this;
}

Transition& Transition::toShallowHistory() {
    history_ = HistoryKind::Shallow;
    return *this;
}

Transition& Transition::toDeepHistory() {
    history_ = HistoryKind::Deep;
    return *this;
}

Transition& Transition::named(std::string n) {
    name_ = std::move(n);
    return *this;
}

bool Transition::enabled(const Message& m) const {
    bool triggered = false;
    for (const Trigger& t : triggers_) {
        if (t.matches(m)) {
            triggered = true;
            break;
        }
    }
    if (!triggered) return false;
    if (guard_ && !guard_(m)) return false;
    return true;
}

// --------------------------------------------------------------------- State

State& State::onEntry(Action a) {
    entry_.push_back(std::move(a));
    return *this;
}

State& State::onExit(Action a) {
    exit_.push_back(std::move(a));
    return *this;
}

bool State::isAncestorOf(const State& s) const {
    for (const State* p = &s; p; p = p->parent_) {
        if (p == this) return true;
    }
    return false;
}

std::string State::path() const {
    if (!parent_) return name_;
    if (!parent_->parent_) return name_; // children of top print bare
    return parent_->path() + "/" + name_;
}

// -------------------------------------------------------------- StateMachine

StateMachine::StateMachine() {
    states_.push_back(std::unique_ptr<State>(new State(this, "<top>", nullptr)));
    top_ = states_.back().get();
}

StateMachine::~StateMachine() = default;

State& StateMachine::state(std::string name, State* parent) {
    if (!parent) parent = top_;
    if (parent->machine_ != this) throw std::logic_error("state(): parent belongs to another machine");
    states_.push_back(std::unique_ptr<State>(new State(this, std::move(name), parent)));
    State* s = states_.back().get();
    parent->children_.push_back(s);
    if (!parent->initial_) parent->initial_ = s; // first child is default initial
    return *s;
}

void StateMachine::initial(State& s) {
    if (!s.parent_) throw std::logic_error("initial(): top state has no parent");
    s.parent_->initial_ = &s;
}

Transition& StateMachine::transition(State& src, State& dst) {
    if (src.machine_ != this || dst.machine_ != this)
        throw std::logic_error("transition(): states belong to another machine");
    src.out_.push_back(std::unique_ptr<Transition>(new Transition(&src, &dst)));
    return *src.out_.back();
}

Transition& StateMachine::internal(State& src) {
    if (src.machine_ != this) throw std::logic_error("internal(): state belongs to another machine");
    src.out_.push_back(std::unique_ptr<Transition>(new Transition(&src, nullptr)));
    return *src.out_.back();
}

State* StateMachine::drillIn(State* s, HistoryKind hist) {
    // Descend from an already-entered state s to a leaf, honoring history.
    State* cur = s;
    HistoryKind mode = hist;
    while (true) {
        State* next = nullptr;
        switch (mode) {
            case HistoryKind::None:
                next = cur->initial_;
                break;
            case HistoryKind::Shallow:
                next = cur->lastActive_ ? cur->lastActive_ : cur->initial_;
                mode = HistoryKind::None; // only the first level restores
                break;
            case HistoryKind::Deep:
                next = cur->lastActive_ ? cur->lastActive_ : cur->initial_;
                break;
        }
        if (!next) return cur;
        for (auto& a : next->entry_) a();
        cur = next;
    }
}

void StateMachine::start() {
    if (current_) return;
    current_ = drillIn(top_, HistoryKind::None);
    runCompletions();
}

void StateMachine::reset() {
    if (inDispatch_) throw std::logic_error("StateMachine::reset() during dispatch");
    current_ = nullptr;
    for (auto& s : states_) s->lastActive_ = nullptr;
}

Transition* StateMachine::findCompletion() const {
    static const Message kCompletion{};
    for (State* s = current_; s; s = s->parent_) {
        for (auto& tp : s->out_) {
            if (!tp->triggers_.empty() || tp->isInternal()) continue;
            if (tp->guard_ && !tp->guard_(kCompletion)) continue;
            return tp.get();
        }
    }
    return nullptr;
}

void StateMachine::runCompletions() {
    static const Message kCompletion{};
    for (int hops = 0; hops < 64; ++hops) {
        Transition* t = findCompletion();
        if (!t) return;
        fire(*t, kCompletion);
    }
    throw std::logic_error(
        "StateMachine: completion-transition cascade exceeded 64 hops (loop?)");
}

bool StateMachine::isIn(const State& s) const {
    return current_ && s.isAncestorOf(*current_);
}

State* StateMachine::lca(State* a, State* b) const {
    for (State* p = a; p; p = p->parent_) {
        if (p->isAncestorOf(*b)) return p;
    }
    return top_;
}

void StateMachine::exitUpTo(State* domain) {
    // Exit from the current leaf up to (excluding) domain, recording history.
    State* s = current_;
    while (s && s != domain) {
        for (auto& a : s->exit_) a();
        if (s->parent_) s->parent_->lastActive_ = s;
        s = s->parent_;
    }
}

State* StateMachine::enterDown(State* from, State* target, HistoryKind hist) {
    // Run entry actions along the path from (exclusive) down to target
    // (inclusive), then drill into target's substructure.
    std::vector<State*> path;
    for (State* s = target; s && s != from; s = s->parent_) path.push_back(s);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        for (auto& a : (*it)->entry_) a();
    }
    return drillIn(target, hist);
}

void StateMachine::fire(Transition& t, const Message& m) {
    ++fired_;
    if (t.isInternal()) {
        if (t.action_) t.action_(m);
        return;
    }
    State* src = t.source_;
    State* dst = t.target_;
    // Transition domain: the innermost state strictly containing both
    // endpoints. External-transition semantics: when one endpoint is an
    // ancestor of the other (including self-transitions), that ancestor is
    // itself exited and re-entered, so the domain is its parent.
    State* domain = lca(src, dst);
    if (domain == src || domain == dst) domain = domain->parent_ ? domain->parent_ : top_;
    exitUpTo(domain);
    if (t.action_) t.action_(m);
    current_ = enterDown(domain, dst, t.history_);
}

bool StateMachine::dispatch(const Message& m) {
    if (!current_) start();
    if (inDispatch_) throw std::logic_error("dispatch(): re-entrant dispatch violates run-to-completion");
    inDispatch_ = true;
    struct Reset {
        bool& flag;
        ~Reset() { flag = false; }
    } reset{inDispatch_};

    for (State* s = current_; s; s = s->parent_) {
        for (auto& tp : s->out_) {
            if (tp->enabled(m)) {
                fire(*tp, m);
                runCompletions();
                return true;
            }
        }
    }
    ++unhandled_;
    return false;
}

} // namespace urtx::rt
