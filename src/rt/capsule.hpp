#pragma once
/// \file capsule.hpp
/// UML-RT capsules: active objects with ports, state machines and
/// hierarchical containment.
///
/// A capsule never shares data and never blocks: all interaction happens
/// through messages arriving at its ports, processed one at a time with
/// run-to-completion semantics by the controller (thread) the capsule is
/// assigned to. Capsules may contain sub-capsules; per the paper they may
/// also contain streamers (see flow::Streamer), while streamers never
/// contain capsules.

#include <any>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rt/message.hpp"
#include "rt/state_machine.hpp"
#include "rt/timer_service.hpp"

namespace urtx::rt {

class Port;
class Controller;

class Capsule {
public:
    explicit Capsule(std::string name, Capsule* parent = nullptr);
    virtual ~Capsule();

    Capsule(const Capsule&) = delete;
    Capsule& operator=(const Capsule&) = delete;

    const std::string& name() const { return name_; }
    /// Slash-separated containment path, e.g. "system/controller".
    std::string fullPath() const;
    Capsule* parent() const { return parent_; }
    const std::vector<Capsule*>& subCapsules() const { return children_; }

    /// Ports registered on this capsule (registration happens in Port's
    /// constructor).
    const std::vector<Port*>& ports() const { return ports_; }
    Port* findPort(std::string_view name) const;

    /// The capsule's behaviour state machine (empty machines simply leave
    /// every message to onMessage/onUnhandled).
    StateMachine& machine() { return machine_; }
    const StateMachine& machine() const { return machine_; }

    /// The controller (logical thread) this capsule runs on.
    Controller* context() const { return context_; }
    void setContext(Controller* c) { context_ = c; }
    /// Assign this capsule and its whole subtree to \p c.
    void setContextRecursive(Controller* c);

    /// Initialize this capsule subtree: onInit() then machine().start(),
    /// children first (leaf-up), mirroring UML-RT incarnation order.
    void initialize();
    bool initialized() const { return initialized_; }

    /// Rewind this capsule subtree to its pre-initialize() state so the same
    /// instance can run again: children first, onReset() then
    /// machine().reset(), clearing the initialized flag. The next
    /// initialize() re-runs onInit() and re-enters the initial
    /// configuration.
    void reset();

    /// Deliver one message with run-to-completion semantics. Must only be
    /// called from the owning controller's thread (or synchronously when
    /// the capsule has no controller).
    void deliver(const Message& m);

    // --- Timing service convenience (requires a context) -----------------

    /// Current time from the context clock (0 when there is no context).
    double now() const;
    /// One-shot timeout: \p sig is delivered to this capsule after \p delay.
    TimerId informIn(double delay, std::string_view sig = "timeout", std::any data = {},
                     Priority prio = Priority::General);
    /// Periodic timeout every \p period seconds.
    TimerId informEvery(double period, std::string_view sig = "timeout", std::any data = {},
                        Priority prio = Priority::General);
    bool cancelTimer(TimerId id);

    /// Messages delivered to this capsule so far.
    std::uint64_t delivered() const { return delivered_; }

protected:
    /// Default behaviour: dispatch to the state machine; unhandled messages
    /// go to onUnhandled(). Override for bespoke handling.
    virtual void onMessage(const Message& m);
    /// Called once before the state machine starts.
    virtual void onInit() {}
    /// Called by reset() before the machine is rewound; restore any member
    /// state onInit() does not set (counters, cached readings, ...).
    virtual void onReset() {}
    /// Called when neither the machine nor onMessage consumed the message.
    virtual void onUnhandled(const Message&) {}

private:
    friend class Port;
    friend class FrameService;

    void registerPort(Port* p);
    void unregisterPort(Port* p);
    void adoptChild(std::unique_ptr<Capsule> c);

    std::string name_;
    Capsule* parent_;
    std::vector<Capsule*> children_;
    std::vector<std::unique_ptr<Capsule>> owned_; ///< children via FrameService
    std::vector<Port*> ports_;
    StateMachine machine_;
    Controller* context_ = nullptr;
    bool initialized_ = false;
    std::uint64_t delivered_ = 0;
};

} // namespace urtx::rt
