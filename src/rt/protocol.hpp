#pragma once
/// \file protocol.hpp
/// UML-RT protocols: named sets of incoming and outgoing signals.
///
/// A protocol defines the contract of a port from the *base* role's point of
/// view: `out` signals are sent by a base port, `in` signals are received by
/// it. A *conjugated* port plays the mirror role (its out-set is the
/// protocol's in-set and vice versa), so two ports can be wired together
/// exactly when they reference the same protocol with opposite conjugation.

#include <string>
#include <string_view>
#include <vector>

#include "rt/signal.hpp"

namespace urtx::rt {

/// Direction of a signal within a protocol, seen from the base role.
enum class SignalDir : std::uint8_t { In, Out, InOut };

/// A protocol: an immutable-after-setup signal contract shared by ports.
///
/// Typical usage is a function-local or namespace-scope object built with
/// the fluent in()/out() API:
/// \code
///   rt::Protocol heater{"Heater"};
///   heater.out("on").out("off").in("ack").in("fault");
/// \endcode
class Protocol {
public:
    struct Entry {
        SignalId signal;
        SignalDir dir;
    };

    explicit Protocol(std::string name) : name_(std::move(name)) {}

    /// Declare a signal received by the base role.
    Protocol& in(std::string_view sig) { return add(sig, SignalDir::In); }
    /// Declare a signal sent by the base role.
    Protocol& out(std::string_view sig) { return add(sig, SignalDir::Out); }
    /// Declare a signal valid in both directions.
    Protocol& inout(std::string_view sig) { return add(sig, SignalDir::InOut); }

    const std::string& name() const { return name_; }
    const std::vector<Entry>& entries() const { return entries_; }

    /// Is \p sig receivable by the given role (base or conjugated)?
    bool receivable(SignalId sig, bool conjugated) const;
    /// Is \p sig sendable by the given role (base or conjugated)?
    bool sendable(SignalId sig, bool conjugated) const;
    /// Does the protocol mention \p sig at all?
    bool contains(SignalId sig) const;

    std::size_t size() const { return entries_.size(); }

private:
    Protocol& add(std::string_view sig, SignalDir dir);

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace urtx::rt
