#include "rt/port_array.hpp"

#include <stdexcept>

namespace urtx::rt {

PortArray::PortArray(Capsule& owner, std::string baseName, const Protocol& proto, std::size_t n,
                     bool conjugated) {
    if (n == 0) throw std::invalid_argument("PortArray: multiplicity must be positive");
    ports_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ports_.push_back(std::make_unique<Port>(
            owner, baseName + "[" + std::to_string(i) + "]", proto, conjugated));
    }
}

std::size_t PortArray::broadcast(std::string_view sig, const std::any& data, Priority prio) {
    std::size_t sent = 0;
    for (auto& p : ports_) {
        if (p->isWired() && p->send(sig, data, prio)) ++sent;
    }
    return sent;
}

std::optional<std::size_t> PortArray::indexOf(const Port* p) const {
    for (std::size_t i = 0; i < ports_.size(); ++i) {
        if (ports_[i].get() == p) return i;
    }
    return std::nullopt;
}

Port* PortArray::freeSlot() {
    for (auto& p : ports_) {
        if (!p->isWired()) return p.get();
    }
    return nullptr;
}

std::size_t PortArray::wiredCount() const {
    std::size_t n = 0;
    for (const auto& p : ports_) {
        if (p->isWired()) ++n;
    }
    return n;
}

} // namespace urtx::rt
