#pragma once
/// \file clock.hpp
/// Time sources for the runtime.
///
/// The paper's "Time" stereotype is a *continuous variable usable as a
/// simulation clock* — in this library that is VirtualClock, advanced by the
/// simulation engine. RealClock maps to wall-clock time for soft-real-time
/// execution. All times are seconds as double (continuous, per the paper).

#include <atomic>
#include <chrono>

namespace urtx::rt {

/// Abstract monotonically non-decreasing time source (seconds).
class Clock {
public:
    virtual ~Clock() = default;
    /// Current time in seconds.
    virtual double now() const = 0;
    /// True when the clock is advanced externally (simulation time).
    virtual bool isVirtual() const = 0;
};

/// Simulation clock: the Time stereotype. Advanced explicitly by the
/// simulation engine; readable concurrently from any thread.
class VirtualClock final : public Clock {
public:
    explicit VirtualClock(double start = 0.0) : t_(start) {}

    double now() const override { return t_.load(std::memory_order_acquire); }
    bool isVirtual() const override { return true; }

    /// Advance to an absolute time. Never moves backwards.
    void advanceTo(double t) {
        double cur = t_.load(std::memory_order_relaxed);
        while (t > cur && !t_.compare_exchange_weak(cur, t, std::memory_order_release)) {
        }
    }

    /// Advance by a delta (>= 0).
    void advanceBy(double dt) { advanceTo(now() + dt); }

    /// Rewind to an arbitrary time — the one operation advanceTo() forbids.
    /// Only valid while nothing is concurrently reading simulation time
    /// (i.e. between runs); the simulation engine uses it to restore a
    /// finished system to its start time for warm reuse.
    void resetTo(double t) { t_.store(t, std::memory_order_release); }

private:
    std::atomic<double> t_;
};

/// Wall-clock time source, zeroed at construction.
class RealClock final : public Clock {
public:
    RealClock() : epoch_(std::chrono::steady_clock::now()) {}

    double now() const override {
        const auto d = std::chrono::steady_clock::now() - epoch_;
        return std::chrono::duration<double>(d).count();
    }
    bool isVirtual() const override { return false; }

private:
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace urtx::rt
