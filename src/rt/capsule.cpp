#include "rt/capsule.hpp"

#include <algorithm>

#include "rt/controller.hpp"
#include "rt/port.hpp"

namespace urtx::rt {

Capsule::Capsule(std::string name, Capsule* parent) : name_(std::move(name)), parent_(parent) {
    if (parent_) parent_->children_.push_back(this);
}

Capsule::~Capsule() {
    // Member ports of derived capsules are already gone by now (members
    // destruct before the base). Anything still registered is owned
    // externally — e.g. a LayerService provider end — and may outlive this
    // capsule: orphan it so its destructor does not touch a dead capsule.
    for (Port* p : ports_) p->owner_ = nullptr;
    // Destroy owned children first (their destructors detach themselves).
    owned_.clear();
    if (parent_) {
        auto& sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
}

std::string Capsule::fullPath() const {
    if (!parent_) return name_;
    return parent_->fullPath() + "/" + name_;
}

Port* Capsule::findPort(std::string_view name) const {
    for (Port* p : ports_) {
        if (p->name() == name) return p;
    }
    return nullptr;
}

void Capsule::setContextRecursive(Controller* c) {
    context_ = c;
    for (Capsule* child : children_) child->setContextRecursive(c);
}

void Capsule::initialize() {
    if (initialized_) return;
    for (Capsule* child : children_) child->initialize();
    onInit();
    machine_.start();
    initialized_ = true;
}

void Capsule::reset() {
    if (!initialized_) return;
    for (Capsule* child : children_) child->reset();
    onReset();
    machine_.reset();
    initialized_ = false;
}

void Capsule::deliver(const Message& m) {
    ++delivered_;
    onMessage(m);
}

void Capsule::onMessage(const Message& m) {
    if (!machine_.dispatch(m)) onUnhandled(m);
}

double Capsule::now() const { return context_ ? context_->clock().now() : 0.0; }

TimerId Capsule::informIn(double delay, std::string_view sig, std::any data, Priority prio) {
    if (!context_) return kInvalidTimer;
    return context_->timers().informIn(*this, now(), delay, SignalRegistry::intern(sig),
                                       std::move(data), prio);
}

TimerId Capsule::informEvery(double period, std::string_view sig, std::any data, Priority prio) {
    if (!context_) return kInvalidTimer;
    return context_->timers().informEvery(*this, now(), period, SignalRegistry::intern(sig),
                                          std::move(data), prio);
}

bool Capsule::cancelTimer(TimerId id) {
    return context_ ? context_->timers().cancel(id) : false;
}

void Capsule::registerPort(Port* p) { ports_.push_back(p); }

void Capsule::unregisterPort(Port* p) {
    ports_.erase(std::remove(ports_.begin(), ports_.end(), p), ports_.end());
}

void Capsule::adoptChild(std::unique_ptr<Capsule> c) { owned_.push_back(std::move(c)); }

} // namespace urtx::rt
