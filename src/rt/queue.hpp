#pragma once
/// \file queue.hpp
/// Thread-safe priority message queue used by controllers.
///
/// Five FIFO lanes (one per Priority level). pop() always drains the highest
/// non-empty lane first; within a lane order is strictly FIFO. This mirrors
/// the UML-RT controller queue semantics.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "rt/message.hpp"

namespace urtx::rt {

class MessageQueue {
public:
    /// Enqueue a message (thread-safe). Assigns the per-queue sequence
    /// number used by tests to assert FIFO-within-priority ordering.
    void push(Message m) {
        {
            std::lock_guard lock(mu_);
            m.sequence = nextSeq_++;
            lanes_[static_cast<std::size_t>(m.priority)].push_back(std::move(m));
            ++size_;
        }
        cv_.notify_one();
    }

    /// Non-blocking pop of the highest-priority message.
    std::optional<Message> tryPop() {
        std::lock_guard lock(mu_);
        return popLocked();
    }

    /// Blocking pop; returns nullopt when the queue is closed and drained.
    std::optional<Message> waitPop() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return size_ > 0 || closed_; });
        return popLocked();
    }

    /// Blocking pop with a deadline; nullopt on timeout / closed-and-empty.
    template <class Clock, class Duration>
    std::optional<Message> waitPopUntil(std::chrono::time_point<Clock, Duration> deadline) {
        std::unique_lock lock(mu_);
        cv_.wait_until(lock, deadline, [this] { return size_ > 0 || closed_; });
        return popLocked();
    }

    /// Close the queue: blocked consumers wake up and drain what remains.
    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    /// Wake any blocked consumer without pushing (used for timer deadlines).
    void kick() { cv_.notify_all(); }

    /// Drop every queued message (all lanes). Sequence numbering continues
    /// where it left off. Returns the number of messages discarded.
    std::size_t clear() {
        std::lock_guard lock(mu_);
        std::size_t dropped = size_;
        for (auto& lane : lanes_) lane.clear();
        size_ = 0;
        return dropped;
    }

    bool closed() const {
        std::lock_guard lock(mu_);
        return closed_;
    }

    std::size_t size() const {
        std::lock_guard lock(mu_);
        return size_;
    }

    bool empty() const { return size() == 0; }

    /// Total number of messages ever enqueued.
    std::uint64_t totalPushed() const {
        std::lock_guard lock(mu_);
        return nextSeq_;
    }

private:
    std::optional<Message> popLocked() {
        if (size_ == 0) return std::nullopt;
        for (std::size_t p = kNumPriorities; p-- > 0;) {
            auto& lane = lanes_[p];
            if (!lane.empty()) {
                Message m = std::move(lane.front());
                lane.pop_front();
                --size_;
                return m;
            }
        }
        return std::nullopt;
    }

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::array<std::deque<Message>, kNumPriorities> lanes_;
    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
    bool closed_ = false;
};

} // namespace urtx::rt
