#pragma once
/// \file message.hpp
/// Asynchronous messages exchanged between capsules.
///
/// A message carries an interned signal id, a priority, and an arbitrary
/// payload. Priorities follow the five UML-RT / RoseRT levels; within one
/// priority level delivery order is FIFO (see MessageQueue).

#include <any>
#include <cstdint>
#include <string>

#include "rt/signal.hpp"

namespace urtx::rt {

class Port;
class Capsule;

/// UML-RT message priority levels, lowest to highest urgency.
enum class Priority : std::uint8_t {
    Background = 0,
    Low = 1,
    General = 2,
    High = 3,
    Panic = 4,
};

/// Number of distinct priority levels.
inline constexpr std::size_t kNumPriorities = 5;

/// Human-readable priority name ("General", ...).
const char* to_string(Priority p);

/// A single asynchronous message.
///
/// Messages are value types: the payload is stored in a std::any and copied
/// with the message. `dest` is the *end* port the message is addressed to
/// (relay chains are resolved at send time), and `receiver` its owning
/// capsule; both are set by Port::send / Controller::post.
struct Message {
    SignalId signal = kInvalidSignal;
    Priority priority = Priority::General;
    std::any data{};
    Port* dest = nullptr;
    Capsule* receiver = nullptr;
    /// Monotonic per-controller sequence number, assigned on enqueue.
    std::uint64_t sequence = 0;

    Message() = default;
    Message(SignalId sig, std::any payload = {}, Priority p = Priority::General)
        : signal(sig), priority(p), data(std::move(payload)) {}

    /// The interned name of this message's signal.
    const std::string& signalName() const { return SignalRegistry::name(signal); }

    /// Typed payload access; returns nullptr when the payload is absent or of
    /// a different type.
    template <class T>
    const T* dataAs() const {
        return std::any_cast<T>(&data);
    }

    /// Typed payload access with fallback.
    template <class T>
    T dataOr(T fallback) const {
        if (const T* p = std::any_cast<T>(&data)) return *p;
        return fallback;
    }

    bool hasData() const { return data.has_value(); }
};

} // namespace urtx::rt
