#pragma once
/// \file message.hpp
/// Asynchronous messages exchanged between capsules.
///
/// A message carries an interned signal id, a priority, and an arbitrary
/// payload. Priorities follow the five UML-RT / RoseRT levels; within one
/// priority level delivery order is FIFO (see MessageQueue).

#include <any>
#include <cstdint>
#include <string>

#include "rt/signal.hpp"

namespace urtx::rt {

class Port;
class Capsule;

/// UML-RT message priority levels, lowest to highest urgency.
enum class Priority : std::uint8_t {
    Background = 0,
    Low = 1,
    General = 2,
    High = 3,
    Panic = 4,
};

/// Number of distinct priority levels.
inline constexpr std::size_t kNumPriorities = 5;

/// Human-readable priority name ("General", ...).
const char* to_string(Priority p);

/// A single asynchronous message.
///
/// Messages are value types: the payload is stored in a std::any and copied
/// with the message. `dest` is the *end* port the message is addressed to
/// (relay chains are resolved at send time), and `receiver` its owning
/// capsule; both are set by Port::send / Controller::post.
///
/// Layout (x86-64 / LP64): 64 bytes total —
///   signal(4) + priority(1) + pad(3) | data std::any(16) | dest(8) |
///   receiver(8) | sequence(8) | spanId(8) | enqueueNanos(8).
/// The observability fields spanId/enqueueNanos are *stamped* only while a
/// causal-tracking consumer is enabled (obs::causalOn(), one relaxed load
/// at the emit site) AND the per-span sampler admits the span
/// (obs::sampleSpan(), decided once at the emitting site); otherwise they
/// ride along as 16 zero bytes, so the disabled dispatch path pays no
/// clock read and no extra branch work, and an unsampled span pays only
/// the gate load plus a thread-local countdown (bench_messaging and
/// bench_obs_overhead keep this honest).
struct Message {
    SignalId signal = kInvalidSignal;
    Priority priority = Priority::General;
    std::any data{};
    Port* dest = nullptr;
    Capsule* receiver = nullptr;
    /// Monotonic per-controller sequence number, assigned on enqueue.
    std::uint64_t sequence = 0;
    /// Causal span id propagated from the emitting site (Port::send, timer
    /// fire, SPort::send) to the handling site; 0 = untracked.
    std::uint64_t spanId = 0;
    /// obs::nowNanos() at the emitting site; 0 = unstamped. Basis for the
    /// emit->reaction hop latency and deadline checks.
    std::uint64_t enqueueNanos = 0;

    Message() = default;
    Message(SignalId sig, std::any payload = {}, Priority p = Priority::General)
        : signal(sig), priority(p), data(std::move(payload)) {}

    /// The interned name of this message's signal.
    const std::string& signalName() const { return SignalRegistry::name(signal); }

    /// Typed payload access; returns nullptr when the payload is absent or of
    /// a different type.
    template <class T>
    const T* dataAs() const {
        return std::any_cast<T>(&data);
    }

    /// Typed payload access with fallback.
    template <class T>
    T dataOr(T fallback) const {
        if (const T* p = std::any_cast<T>(&data)) return *p;
        return fallback;
    }

    bool hasData() const { return data.has_value(); }
};

namespace obs_detail {

/// Stamp \p m with a fresh causal span id + enqueue timestamp and notify
/// the enabled causal consumers (tracer 's' flow event, flight-recorder
/// note). Call only after obs::causalOn() AND the per-span sampling
/// decision obs::sampleSpan() both pass; \p site is a short stable label
/// of the emitting mechanism ("port", "timer", ...).
void onEmit(Message& m, const char* site);

/// The handling side of the hop: record the tracer 'f' flow event, the
/// per-signal latency/deadline checks (Monitor) and the flight-recorder
/// note. Call only after checking obs::causalOn(); no-op for unstamped
/// messages. \p site is "dispatch" (capsule) or "sport.drain" (streamer).
void onHandle(const Message& m, const char* site);

} // namespace obs_detail

} // namespace urtx::rt
