#pragma once
/// \file signal.hpp
/// Interned signal names for the UML-RT runtime.
///
/// UML-RT protocols exchange *signals*. To keep message dispatch cheap the
/// runtime interns every signal name once into a process-wide registry and
/// refers to it by a dense integer id afterwards.

#include <cstdint>
#include <string>
#include <string_view>

namespace urtx::rt {

/// Dense identifier of an interned signal name.
using SignalId = std::uint32_t;

/// Sentinel id meaning "no signal" / wildcard trigger.
inline constexpr SignalId kInvalidSignal = 0xFFFFFFFFu;

/// Process-wide, thread-safe signal name interner.
///
/// Ids are assigned densely in interning order and never recycled, so a
/// SignalId stays valid for the lifetime of the process.
class SignalRegistry {
public:
    /// Intern \p name, returning its (possibly pre-existing) id.
    static SignalId intern(std::string_view name);

    /// Look up the name of an interned signal. Aborts on invalid ids.
    static const std::string& name(SignalId id);

    /// Number of distinct signals interned so far.
    static std::size_t size();
};

/// Convenience shorthand for SignalRegistry::intern.
inline SignalId signal(std::string_view name) { return SignalRegistry::intern(name); }

} // namespace urtx::rt
