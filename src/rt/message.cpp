#include "rt/message.hpp"

#include "obs/obs.hpp"

namespace urtx::rt {

namespace obs_detail {

void onEmit(Message& m, const char* site) {
#if URTX_OBS
    m.spanId = obs::newSpanId();
    m.enqueueNanos = obs::nowNanos();
    // Interned signal names live for the whole process, so their c_str is
    // a valid tracer name pointer.
    const char* name = SignalRegistry::name(m.signal).c_str();
    if (obs::causalBit(obs::kCausalTracer)) {
        obs::Tracer::global().flowBegin("signal", name, m.spanId);
    }
    if (obs::causalBit(obs::kCausalRecorder)) {
        obs::FlightRecorder::global().note("rt", m.spanId, "emit %s #%llu via %s", name,
                                           static_cast<unsigned long long>(m.spanId), site);
    }
#else
    (void)m;
    (void)site;
#endif
}

void onHandle(const Message& m, const char* site) {
#if URTX_OBS
    if (m.spanId == 0) return;
    const char* name = SignalRegistry::name(m.signal).c_str();
    if (obs::causalBit(obs::kCausalTracer)) {
        obs::Tracer::global().flowEnd("signal", name, m.spanId);
    }
    // Recorder note before the monitor: a deadline miss with abortOnMiss
    // dumps from inside onHop, and the dump must already hold the handle
    // event of the chain it documents.
    if (obs::causalBit(obs::kCausalRecorder)) {
        const double us = m.enqueueNanos
                              ? static_cast<double>(obs::nowNanos() - m.enqueueNanos) * 1e-3
                              : 0.0;
        obs::FlightRecorder::global().note("rt", m.spanId, "handle %s #%llu at %s (+%.1f us)",
                                           name, static_cast<unsigned long long>(m.spanId),
                                           site, us);
    }
    if (obs::causalBit(obs::kCausalMonitor)) {
        obs::Monitor::global().onHop(m.signal, name, m.spanId, m.enqueueNanos, site);
    }
#else
    (void)m;
    (void)site;
#endif
}

} // namespace obs_detail

const char* to_string(Priority p) {
    switch (p) {
        case Priority::Background: return "Background";
        case Priority::Low: return "Low";
        case Priority::General: return "General";
        case Priority::High: return "High";
        case Priority::Panic: return "Panic";
    }
    return "?";
}

} // namespace urtx::rt
