#include "rt/message.hpp"

namespace urtx::rt {

const char* to_string(Priority p) {
    switch (p) {
        case Priority::Background: return "Background";
        case Priority::Low: return "Low";
        case Priority::General: return "General";
        case Priority::High: return "High";
        case Priority::Panic: return "Panic";
    }
    return "?";
}

} // namespace urtx::rt
