#pragma once
/// \file frame_service.hpp
/// UML-RT frame service: dynamic incarnation and destruction of capsules
/// into optional slots of a running system.

#include <memory>
#include <utility>

#include "rt/capsule.hpp"
#include "rt/controller.hpp"

namespace urtx::rt {

class FrameService {
public:
    /// Create a capsule of type \p T as a dynamically owned child of
    /// \p parent. T's constructor must accept (std::string name, Capsule*
    /// parent, Args...). The new capsule inherits the parent's controller
    /// and is initialized immediately when the parent already is.
    template <class T, class... Args>
    static T& incarnate(Capsule& parent, std::string name, Args&&... args) {
        auto cap = std::make_unique<T>(std::move(name), &parent, std::forward<Args>(args)...);
        T& ref = *cap;
        parent.adoptChild(std::move(cap));
        ref.setContextRecursive(parent.context());
        if (parent.initialized()) ref.initialize();
        return ref;
    }

    /// Destroy a dynamically incarnated capsule (must be an owned child of
    /// its parent). Ports are unwired by their destructors. Returns false
    /// when the capsule is not an incarnated child.
    static bool destroy(Capsule& victim);
};

} // namespace urtx::rt
