#include "rt/signal.hpp"

#include <cstdlib>
#include <deque>
#include <mutex>
#include <unordered_map>

namespace urtx::rt {
namespace {

struct Registry {
    std::mutex mu;
    std::unordered_map<std::string, SignalId> byName;
    std::deque<std::string> names; // stable storage, index == id

    static Registry& instance() {
        static Registry r;
        return r;
    }
};

} // namespace

SignalId SignalRegistry::intern(std::string_view name) {
    auto& r = Registry::instance();
    std::lock_guard lock(r.mu);
    auto it = r.byName.find(std::string(name));
    if (it != r.byName.end()) return it->second;
    const auto id = static_cast<SignalId>(r.names.size());
    r.names.emplace_back(name);
    r.byName.emplace(r.names.back(), id);
    return id;
}

const std::string& SignalRegistry::name(SignalId id) {
    auto& r = Registry::instance();
    std::lock_guard lock(r.mu);
    if (id >= r.names.size()) std::abort();
    return r.names[id];
}

std::size_t SignalRegistry::size() {
    auto& r = Registry::instance();
    std::lock_guard lock(r.mu);
    return r.names.size();
}

} // namespace urtx::rt
