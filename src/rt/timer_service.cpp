#include "rt/timer_service.hpp"

#include "obs/obs.hpp"
#include "rt/capsule.hpp"

namespace urtx::rt {

TimerId TimerService::schedule(Capsule& target, double due, double period, SignalId sig,
                               std::any data, Priority prio) {
    std::lock_guard lock(mu_);
    const TimerId id = nextId_++;
    heap_.push(Entry{due, period, id, sig, std::move(data), prio, &target});
    ++live_;
    return id;
}

TimerId TimerService::informIn(Capsule& target, double now, double delay, SignalId sig,
                               std::any data, Priority prio) {
    if (delay < 0) delay = 0;
    return schedule(target, now + delay, 0.0, sig, std::move(data), prio);
}

TimerId TimerService::informEvery(Capsule& target, double now, double period, SignalId sig,
                                  std::any data, Priority prio) {
    if (period <= 0) return kInvalidTimer;
    return schedule(target, now + period, period, sig, std::move(data), prio);
}

bool TimerService::cancel(TimerId id) {
    std::lock_guard lock(mu_);
    if (id == kInvalidTimer || id >= nextId_) return false;
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted && live_ > 0) --live_;
    return inserted;
}

double TimerService::nextDue() const {
    std::lock_guard lock(mu_);
    // Lazily skip cancelled heads is not possible on a const heap; report the
    // head even if cancelled — the controller just wakes up and fires nothing.
    if (heap_.empty()) return std::numeric_limits<double>::infinity();
    return heap_.top().due;
}

std::size_t TimerService::fireDue(MessageQueue& out, double now) {
    std::vector<Entry> fired;
    {
        std::lock_guard lock(mu_);
        while (!heap_.empty() && heap_.top().due <= now) {
            Entry e = heap_.top();
            heap_.pop();
            auto c = cancelled_.find(e.id);
            if (c != cancelled_.end()) {
                cancelled_.erase(c);
                continue;
            }
            if (e.period > 0) {
                Entry next = e;
                next.due += e.period;
                heap_.push(next);
            } else {
                --live_;
            }
            fired.push_back(std::move(e));
        }
    }
    if (!fired.empty() && obs::metricsOn()) {
        const auto& wk = obs::wellknown();
        wk.rtTimersFired->add(fired.size());
        // Jitter: how far past its due time a timer actually fired. Under a
        // VirtualClock this is exact grid slack; under a RealClock it is
        // scheduling latency.
        for (const Entry& e : fired) wk.rtTimerJitter->observe(now - e.due);
    }
    const bool causal = obs::causalOn();
    for (Entry& e : fired) {
        Message m(e.signal, std::move(e.data), e.prio);
        m.receiver = e.target;
        m.dest = nullptr; // timer messages have no port of entry
        // Per-fire sampling decision: each timer message is its own span.
        if (causal && obs::sampleSpan()) obs_detail::onEmit(m, "timer");
        out.push(std::move(m));
    }
    return fired.size();
}

std::size_t TimerService::pending() const {
    std::lock_guard lock(mu_);
    return live_;
}

void TimerService::clear() {
    std::lock_guard lock(mu_);
    heap_ = {};
    cancelled_.clear();
    live_ = 0;
}

} // namespace urtx::rt
