#pragma once
/// \file layer_service.hpp
/// UML-RT layer service: unwired ports connected by *name* at run time.
///
/// A capsule publishes a service provision point (SPP) under a service
/// name; other capsules attach service access points (SAPs) to that name.
/// The layer service wires each registering SAP to a fresh end of the
/// provider, so layered architectures (e.g. a logging or IO service shared
/// by many capsules) don't need explicit connectors in the structure
/// diagram. The paper's streamers use "operating system services" the same
/// way — see flow::SPort + LayerService usage in the tests.
///
/// Model: an SPP is a factory of provider-side ports; each SAP
/// registration creates one dedicated provider port owned by the service
/// and wired to the SAP (point-to-point, preserving normal port
/// semantics).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rt/capsule.hpp"
#include "rt/port.hpp"

namespace urtx::rt {

class LayerService {
public:
    /// Publish \p provider as the handler capsule for \p service. Incoming
    /// SAP connections get dedicated ports with \p proto in the given
    /// conjugation on the provider side. Returns false when the name is
    /// already taken.
    bool publish(const std::string& service, Capsule& provider, const Protocol& proto,
                 bool providerConjugated = true);

    /// Withdraw a service; existing SAP wirings are disconnected.
    bool withdraw(const std::string& service);

    /// Register (and wire) \p sap to the named service. The SAP must be
    /// unwired and use the service's protocol with the opposite
    /// conjugation. Returns false when the service is unknown; throws
    /// std::logic_error on protocol/conjugation mismatches.
    bool registerSap(Port& sap, const std::string& service);

    /// Unwire a previously registered SAP. Returns false if not found.
    bool deregisterSap(Port& sap);

    bool hasService(const std::string& service) const { return spps_.count(service) > 0; }
    /// Number of SAPs currently wired to \p service.
    std::size_t sapCount(const std::string& service) const;

private:
    struct Spp {
        Capsule* provider;
        const Protocol* proto;
        bool conjugated;
        std::vector<std::unique_ptr<Port>> ends; ///< one per registered SAP
    };

    std::map<std::string, Spp> spps_;
};

} // namespace urtx::rt
