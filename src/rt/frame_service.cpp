#include "rt/frame_service.hpp"

#include <algorithm>

namespace urtx::rt {

bool FrameService::destroy(Capsule& victim) {
    Capsule* parent = victim.parent();
    if (!parent) return false;
    auto& owned = parent->owned_;
    auto it = std::find_if(owned.begin(), owned.end(),
                           [&](const std::unique_ptr<Capsule>& p) { return p.get() == &victim; });
    if (it == owned.end()) return false;
    owned.erase(it); // ~Capsule unwires ports and detaches from parent
    return true;
}

} // namespace urtx::rt
