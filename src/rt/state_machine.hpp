#pragma once
/// \file state_machine.hpp
/// Hierarchical state machines with UML-RT run-to-completion semantics.
///
/// Supports composite states, entry/exit actions, guards, transition
/// actions, internal transitions, wildcard triggers, and shallow/deep
/// history. A machine is built with a small fluent API and then driven by
/// dispatch(), which processes exactly one message to completion (RTC).
///
/// Transition selection is innermost-first: the current leaf state gets the
/// first chance to handle a message, then its ancestors. Within one state,
/// transitions are tried in declaration order.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rt/message.hpp"

namespace urtx::rt {

class Port;
class State;
class StateMachine;

/// How a transition enters its target composite state.
enum class HistoryKind : std::uint8_t {
    None,    ///< descend via initial states
    Shallow, ///< restore last active direct child, then initial below it
    Deep,    ///< restore the full last active configuration
};

/// A transition trigger: a (port, signal) pair; nullptr port matches any
/// port, kInvalidSignal matches any signal.
struct Trigger {
    const Port* port = nullptr;
    SignalId signal = kInvalidSignal;

    bool matches(const Message& m) const {
        if (signal != kInvalidSignal && signal != m.signal) return false;
        if (port != nullptr && port != m.dest) return false;
        return true;
    }
};

/// An outgoing transition of a state.
class Transition {
public:
    using Action = std::function<void(const Message&)>;
    using Guard = std::function<bool(const Message&)>;

    /// Trigger on a signal arriving through any port.
    Transition& on(std::string_view sig);
    /// Trigger on a signal arriving through a specific port.
    Transition& on(const Port& port, std::string_view sig);
    /// Trigger on any message (wildcard).
    Transition& onAny();
    /// Guard predicate; the transition only fires when it returns true.
    Transition& when(Guard g);
    /// Effect executed between exit and entry actions.
    Transition& act(Action a);
    /// Enter the target via shallow history.
    Transition& toShallowHistory();
    /// Enter the target via deep history.
    Transition& toDeepHistory();
    /// Optional diagnostic name.
    Transition& named(std::string n);

    State* source() const { return source_; }
    State* target() const { return target_; }
    bool isInternal() const { return target_ == nullptr; }
    const std::string& name() const { return name_; }
    HistoryKind history() const { return history_; }

private:
    friend class State;
    friend class StateMachine;
    Transition(State* src, State* dst) : source_(src), target_(dst) {}

    bool enabled(const Message& m) const;

    State* source_;
    State* target_;
    std::vector<Trigger> triggers_;
    Guard guard_;
    Action action_;
    HistoryKind history_ = HistoryKind::None;
    std::string name_;
};

/// A (possibly composite) state.
class State {
public:
    using Action = std::function<void()>;

    const std::string& name() const { return name_; }
    /// Slash-separated path from the machine top, e.g. "Active/Stabilize".
    std::string path() const;
    State* parent() const { return parent_; }
    bool isComposite() const { return !children_.empty(); }
    const std::vector<State*>& children() const { return children_; }
    State* initialChild() const { return initial_; }

    /// Register an entry action (multiple allowed, run in order).
    State& onEntry(Action a);
    /// Register an exit action (multiple allowed, run in order).
    State& onExit(Action a);

    /// Is this state equal to or an ancestor of \p s?
    bool isAncestorOf(const State& s) const;

private:
    friend class StateMachine;
    State(StateMachine* m, std::string name, State* parent)
        : machine_(m), name_(std::move(name)), parent_(parent) {}

    StateMachine* machine_;
    std::string name_;
    State* parent_;
    std::vector<State*> children_;
    State* initial_ = nullptr;
    State* lastActive_ = nullptr; ///< last active direct child (history)
    std::vector<Action> entry_;
    std::vector<Action> exit_;
    std::vector<std::unique_ptr<Transition>> out_;
};

/// The machine: owns its states and drives RTC dispatch.
class StateMachine {
public:
    StateMachine();
    ~StateMachine();
    StateMachine(const StateMachine&) = delete;
    StateMachine& operator=(const StateMachine&) = delete;

    /// The implicit top (root) composite state.
    State& top() { return *top_; }

    /// Create a state under \p parent (top when null).
    State& state(std::string name, State* parent = nullptr);

    /// Declare \p s the initial child of its parent.
    void initial(State& s);

    /// Create an external transition from \p src to \p dst.
    Transition& transition(State& src, State& dst);

    /// Create an internal transition on \p src (no exit/entry, no move).
    Transition& internal(State& src);

    /// Enter the initial configuration (runs entry actions), then take any
    /// enabled completion transitions. Idempotent.
    void start();
    bool started() const { return current_ != nullptr; }

    /// Forget the active configuration and all history so a later start()
    /// re-enters the initial configuration from scratch. No exit actions
    /// run — this is a between-runs rewind, not an orderly shutdown.
    void reset();

    /// Run-to-completion dispatch of one message. Returns true when some
    /// transition handled it.
    bool dispatch(const Message& m);

    /// Innermost active state (nullptr before start()).
    State* current() const { return current_; }
    /// Is \p s part of the active configuration?
    bool isIn(const State& s) const;
    /// Name of the innermost active state ("" before start).
    std::string currentPath() const { return current_ ? current_->path() : std::string{}; }

    std::uint64_t transitionsTaken() const { return fired_; }
    std::uint64_t messagesUnhandled() const { return unhandled_; }

    /// True while dispatch() is on the call stack; used to assert RTC.
    bool inDispatch() const { return inDispatch_; }

private:
    State* lca(State* a, State* b) const;
    void exitUpTo(State* domain);
    State* enterDown(State* from, State* target, HistoryKind hist);
    State* drillIn(State* s, HistoryKind hist);
    void fire(Transition& t, const Message& m);
    /// Take *completion transitions* (external transitions declared with no
    /// trigger) until quiescent. A cascade longer than 64 steps is treated
    /// as a loop and throws.
    void runCompletions();
    Transition* findCompletion() const;

    std::vector<std::unique_ptr<State>> states_;
    State* top_;
    State* current_ = nullptr;
    std::uint64_t fired_ = 0;
    std::uint64_t unhandled_ = 0;
    bool inDispatch_ = false;
};

} // namespace urtx::rt
