#include "rt/port.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "rt/capsule.hpp"
#include "rt/controller.hpp"

namespace urtx::rt {

Port::Port(Capsule& owner, std::string name, const Protocol& proto, bool conjugated,
           PortKind kind)
    : owner_(&owner),
      name_(std::move(name)),
      proto_(&proto),
      conjugated_(conjugated),
      kind_(kind) {
    owner_->registerPort(this);
}

Port::~Port() {
    for (Port* p : links_) {
        if (p) p->dropLink(this);
    }
    // owner_ is null when the owning capsule died first and orphaned this
    // port (externally owned ports, e.g. LayerService provider ends).
    if (owner_) owner_->unregisterPort(this);
}

bool Port::addLink(Port* p) {
    const std::size_t capacity = isRelay() ? 2 : 1;
    for (std::size_t i = 0; i < capacity; ++i) {
        if (!links_[i]) {
            links_[i] = p;
            return true;
        }
    }
    return false;
}

void Port::dropLink(Port* p) {
    for (Port*& l : links_) {
        if (l == p) l = nullptr;
    }
}

Port* Port::resolvePeer() const {
    const Port* prev = this;
    Port* cur = links_[0] ? links_[0] : links_[1];
    while (cur && cur->isRelay()) {
        Port* next = (cur->links_[0] == prev) ? cur->links_[1] : cur->links_[0];
        prev = cur;
        cur = next;
    }
    return cur;
}

bool Port::send(SignalId sig, std::any data, Priority prio) {
    if (!sendable(sig)) return false;
    Port* dest = resolvePeer();
    if (!dest) return false;
    if (!dest->receivable(sig)) return false;
    Message m(sig, std::move(data), prio);
    m.dest = dest;
    m.receiver = &dest->owner();
    // Span origin: one relaxed mask load when causal tracking is off; with
    // it on, the sampler decides here — once per span — whether this hop
    // pays the full causal path. Unsampled messages stay unstamped
    // (spanId 0) and every handling-side consumer skips them.
    if (obs::causalOn() && obs::sampleSpan()) obs_detail::onEmit(m, "port");
    ++sent_;
    if (Controller* c = m.receiver->context()) {
        c->post(std::move(m));
    } else {
        // No controller: degenerate synchronous delivery, handy in tests.
        m.receiver->deliver(m);
    }
    return true;
}

namespace {

bool isParentOf(const Capsule& parent, const Capsule& child) {
    return child.parent() == &parent;
}

} // namespace

void connect(Port& a, Port& b) {
    if (&a == &b) throw std::logic_error("connect(): cannot connect a port to itself");
    if (&a.protocol() != &b.protocol())
        throw std::logic_error("connect(): ports use different protocols ('" +
                               a.protocol().name() + "' vs '" + b.protocol().name() + "')");

    // Conjugation discipline. An *export* link crosses a composite boundary
    // through a relay port on the parent: roles are preserved (same
    // conjugation). Every other link joins two peers: roles must be
    // opposite.
    const bool aParent = isParentOf(a.owner(), b.owner());
    const bool bParent = isParentOf(b.owner(), a.owner());
    const bool exportLink = (aParent && a.isRelay()) || (bParent && b.isRelay());
    if (exportLink) {
        if (a.conjugated() != b.conjugated())
            throw std::logic_error("connect(): export link through relay '" +
                                   (aParent ? a.name() : b.name()) +
                                   "' requires same conjugation on both sides");
    } else {
        if (a.conjugated() == b.conjugated())
            throw std::logic_error("connect(): peer ports '" + a.name() + "' and '" + b.name() +
                                   "' must have opposite conjugation");
    }

    if (!a.addLink(&b)) throw std::logic_error("connect(): port '" + a.name() + "' is fully wired");
    if (!b.addLink(&a)) {
        a.dropLink(&b);
        throw std::logic_error("connect(): port '" + b.name() + "' is fully wired");
    }
}

void disconnect(Port& a, Port& b) {
    a.dropLink(&b);
    b.dropLink(&a);
}

} // namespace urtx::rt
