#pragma once
/// \file rt.hpp
/// Umbrella header for the UML-RT runtime service library.

#include "rt/capsule.hpp"
#include "rt/clock.hpp"
#include "rt/controller.hpp"
#include "rt/frame_service.hpp"
#include "rt/layer_service.hpp"
#include "rt/message.hpp"
#include "rt/port.hpp"
#include "rt/port_array.hpp"
#include "rt/protocol.hpp"
#include "rt/queue.hpp"
#include "rt/signal.hpp"
#include "rt/state_machine.hpp"
#include "rt/timer_service.hpp"
