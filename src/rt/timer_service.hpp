#pragma once
/// \file timer_service.hpp
/// UML-RT timing service: one-shot and periodic timers.
///
/// The paper notes "Timing in UML-RT is unpredictable" and introduces the
/// continuous Time stereotype; here the timer service is driven by an
/// explicit Clock so the same capsule code runs against wall-clock time
/// (RealClock) or deterministic simulation time (VirtualClock).

#include <any>
#include <cstdint>
#include <limits>
#include <mutex>
#include <queue>
#include <unordered_set>
#include <vector>

#include "rt/message.hpp"
#include "rt/queue.hpp"

namespace urtx::rt {

class Capsule;

/// Handle to a scheduled timer; used for cancellation.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Min-heap based timer service; thread-safe.
///
/// Due timers are converted to ordinary messages (delivered to the target
/// capsule with the configured signal) by fireDue(), which the owning
/// controller calls whenever its clock advances.
class TimerService {
public:
    /// Schedule a one-shot timer \p delay seconds from \p now.
    TimerId informIn(Capsule& target, double now, double delay, SignalId sig,
                     std::any data = {}, Priority prio = Priority::General);

    /// Schedule a periodic timer with the given period (> 0).
    TimerId informEvery(Capsule& target, double now, double period, SignalId sig,
                        std::any data = {}, Priority prio = Priority::General);

    /// Cancel a timer. Returns false when the id is unknown or already fired.
    bool cancel(TimerId id);

    /// Time of the earliest pending timer, +infinity when none.
    double nextDue() const;

    /// Convert all timers due at or before \p now into messages on \p out.
    /// Periodic timers are rescheduled. Returns the number fired.
    std::size_t fireDue(MessageQueue& out, double now);

    /// Number of live (scheduled, uncancelled) timers.
    std::size_t pending() const;

    /// Drop every scheduled timer (fired or not). Timer ids keep
    /// incrementing so stale TimerIds can never cancel a new timer.
    void clear();

private:
    struct Entry {
        double due;
        double period; // 0 => one-shot
        TimerId id;
        SignalId signal;
        std::any data;
        Priority prio;
        Capsule* target;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const { return a.due > b.due; }
    };

    TimerId schedule(Capsule& target, double due, double period, SignalId sig,
                     std::any data, Priority prio);

    mutable std::mutex mu_;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<TimerId> cancelled_;
    std::size_t live_ = 0;
    TimerId nextId_ = 1;
};

} // namespace urtx::rt
