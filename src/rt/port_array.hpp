#pragma once
/// \file port_array.hpp
/// Replicated ports: UML-RT port multiplicity.
///
/// A PortArray owns N independently wireable replications of one port role
/// ("p[0]", "p[1]", ...). Typical use: a server capsule talking to a
/// dynamic set of clients — broadcast() sends to every wired replication,
/// indexOf() identifies which replication a received message arrived on.

#include <any>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rt/port.hpp"

namespace urtx::rt {

class PortArray {
public:
    PortArray(Capsule& owner, std::string baseName, const Protocol& proto, std::size_t n,
              bool conjugated = false);

    std::size_t size() const { return ports_.size(); }
    Port& at(std::size_t i) { return *ports_.at(i); }
    Port& operator[](std::size_t i) { return *ports_[i]; }
    const Port& operator[](std::size_t i) const { return *ports_[i]; }

    /// Send \p sig on every *wired* replication; returns how many sends
    /// succeeded.
    std::size_t broadcast(std::string_view sig, const std::any& data = {},
                          Priority prio = Priority::General);

    /// Which replication does \p p belong to (e.g. for Message::dest)?
    std::optional<std::size_t> indexOf(const Port* p) const;

    /// First unwired replication, or nullptr when fully wired.
    Port* freeSlot();

    /// Number of wired replications.
    std::size_t wiredCount() const;

private:
    std::vector<std::unique_ptr<Port>> ports_;
};

} // namespace urtx::rt
