#include "rt/controller.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "rt/capsule.hpp"

namespace urtx::rt {

Controller::Controller(std::string name, std::shared_ptr<Clock> clock)
    : name_(std::move(name)), clock_(std::move(clock)) {
    if (!clock_) throw std::logic_error("Controller: null clock");
}

Controller::~Controller() { stop(); }

VirtualClock* Controller::virtualClock() const {
    return clock_->isVirtual() ? static_cast<VirtualClock*>(clock_.get()) : nullptr;
}

void Controller::attach(Capsule& root) {
    root.setContextRecursive(this);
    roots_.push_back(&root);
}

void Controller::initializeAll() {
    for (Capsule* r : roots_) r->initialize();
}

void Controller::reset() {
    if (running_.load()) throw std::logic_error("Controller::reset: controller is running");
    queue_.clear();
    timers_.clear();
    for (Capsule* r : roots_) r->reset();
}

void Controller::post(Message m) {
    if (!m.receiver) throw std::logic_error("Controller::post: message without receiver");
    queue_.push(std::move(m));
}

void Controller::deliver(Message& m) {
    // With causal tracing active the dispatch slice follows the span
    // sampler's decision made at the emit site: an unsampled message
    // (spanId == 0) records no slice, so the per-message tracer cost scales
    // with the admission rate. With causal consumers off every dispatch
    // keeps its slice, as before.
    URTX_TRACE_SPAN_IF("rt", "dispatch", !obs::causalOn() || m.spanId != 0);
    if (obs::causalOn() && m.spanId) obs_detail::onHandle(m, "dispatch");
    // Seq-cst raise/bump/clear: the engine's macro-step validation relies
    // on a total order over these and its own reads (see macroSpan). On a
    // throw the flag stays raised — conservative: coalescing stays off
    // while the exception unwinds the run.
    dispatching_.store(true);
    if (obs::metricsOn()) {
        const auto& wk = obs::wellknown();
        // +1: the popped message itself counts toward the observed depth.
        wk.rtQueueDepthHwm->max(static_cast<double>(queue_.size() + 1));
        const std::uint64_t t0 = obs::nowNanos();
        m.receiver->deliver(m);
        const auto p = static_cast<std::size_t>(m.priority);
        wk.rtDispatchLatency[p]->observe(static_cast<double>(obs::nowNanos() - t0) * 1e-9);
        wk.rtDispatched->inc();
    } else {
        m.receiver->deliver(m);
    }
    dispatched_.fetch_add(1);
    dispatching_.store(false);
}

bool Controller::deliverNext() {
    auto m = queue_.tryPop();
    if (!m) return false;
    deliver(*m);
    return true;
}

bool Controller::dispatchOne() {
    timers_.fireDue(queue_, clock_->now());
    return deliverNext();
}

std::size_t Controller::dispatchAll() {
    timers_.fireDue(queue_, clock_->now());
    std::size_t n = 0;
    while (deliverNext()) {
        ++n;
        timers_.fireDue(queue_, clock_->now());
    }
    return n;
}

std::size_t Controller::onTimeAdvanced() {
    const std::size_t fired = timers_.fireDue(queue_, clock_->now());
    queue_.kick();
    return fired;
}

void Controller::start() {
    if (running_.exchange(true)) return;
    stopRequested_.store(false);
    // Propagate the spawning thread's observability scope (per-scenario
    // registry / flight recorder, if any) onto the controller thread, so a
    // scoped scenario's capsule metrics land in its own registry.
    obs::Registry* reg = obs::Registry::installed();
    obs::FlightRecorder* rec = obs::FlightRecorder::installed();
    thread_ = std::thread([this, reg, rec] {
        obs::ScopedRegistry scope(reg);
        obs::ScopedFlightRecorder rscope(rec);
        run();
    });
}

void Controller::stop() {
    if (!running_.load()) return;
    stopRequested_.store(true);
    queue_.kick();
    if (thread_.joinable()) thread_.join();
    running_.store(false);
}

void Controller::run() {
    using namespace std::chrono;
    while (!stopRequested_.load()) {
        timers_.fireDue(queue_, clock_->now());
        auto m = queue_.tryPop();
        if (!m) {
            // Idle: block until a message arrives, a timer comes due (real
            // clock), the virtual clock is advanced (kick), or stop.
            const double due = timers_.nextDue();
            auto deadline = steady_clock::now();
            if (clock_->isVirtual() || std::isinf(due)) {
                deadline += milliseconds(5);
            } else {
                const double wait = std::max(0.0, due - clock_->now());
                deadline += duration_cast<steady_clock::duration>(duration<double>(wait));
            }
            m = queue_.waitPopUntil(deadline);
            if (!m) continue;
        }
        deliver(*m);
    }
    // Drain remaining messages so no work is silently lost on shutdown.
    while (deliverNext()) {
    }
}

} // namespace urtx::rt
