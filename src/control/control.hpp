#pragma once
/// \file control.hpp
/// Umbrella header for the control block library.

#include "control/discrete.hpp"
#include "control/dynamics.hpp"
#include "control/math_blocks.hpp"
#include "control/plants.hpp"
#include "control/sinks.hpp"
#include "control/sources.hpp"
