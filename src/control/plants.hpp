#pragma once
/// \file plants.hpp
/// Reusable physical plant models (the simulated substitutes for the
/// paper's real control targets — see DESIGN.md §5). Each plant is a leaf
/// streamer with documented equations, typed DPorts and, where meaningful,
/// zero-crossing event surfaces; all have closed-form or energy invariants
/// the tests check against.

#include <span>
#include <string>

#include "flow/streamer.hpp"

namespace urtx::control {

using flow::DPort;
using flow::DPortDir;
using flow::FlowType;
using flow::Streamer;

/// Mass-spring-damper:  m x'' + c x' + k x = F.
/// Ports: in "F", out "state" = {pos, vel}. Parameters m, c, k, x0, v0.
class MassSpringDamper final : public Streamer {
public:
    MassSpringDamper(std::string name, Streamer* parent, double m, double c, double k);

    DPort& force() { return force_; }
    DPort& state() { return state_; }

    std::size_t stateSize() const override { return 2; }
    bool directFeedthrough() const override { return false; }
    void initState(double, std::span<double> x) override;
    void derivatives(double, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double, std::span<const double> x) override;

    /// Total mechanical energy at the given state (test invariant).
    double energy(double pos, double vel) const;

private:
    DPort force_;
    DPort state_;
};

/// Permanent-magnet DC motor:
///   L di/dt = V - R i - Ke w
///   J dw/dt = Kt i - b w - tauLoad
/// Ports: in "V", in "tauLoad", out "w", out "i".
/// Parameters R, L, Ke, Kt, J, b.
class DcMotor final : public Streamer {
public:
    DcMotor(std::string name, Streamer* parent);

    DPort& voltage() { return voltage_; }
    DPort& load() { return load_; }
    DPort& speed() { return speed_; }
    DPort& current() { return current_; }

    std::size_t stateSize() const override { return 2; } // [i, w]
    bool directFeedthrough() const override { return false; }
    void initState(double, std::span<double> x) override;
    void derivatives(double, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double, std::span<const double> x) override;

    /// Steady-state speed for constant voltage V and zero load.
    double steadyStateSpeed(double v) const;

private:
    DPort voltage_;
    DPort load_;
    DPort speed_;
    DPort current_;
};

/// Bouncing ball with restitution: h' = v, v' = -g; the impact event at
/// h = 0 re-injects v := -e v through onEventReset — the impulsive-reset
/// hybrid pattern the paper's events exist for. When the rebound speed
/// falls below "vstop" the ball freezes on the floor (standard Zeno
/// regularization). Ports: out "h". Parameters g, e, h0, vstop.
class BouncingBall final : public Streamer {
public:
    BouncingBall(std::string name, Streamer* parent, double h0, double restitution = 0.8);

    DPort& height() { return height_; }
    int bounces() const { return bounces_; }
    bool resting() const { return resting_; }

    std::size_t stateSize() const override { return 2; }
    bool directFeedthrough() const override { return false; }
    void initState(double, std::span<double> x) override;
    void derivatives(double, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double, std::span<const double> x) override;
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override;
    void onEvent(double t, bool rising) override;
    bool onEventReset(double t, std::span<double> x) override;

private:
    DPort height_;
    int bounces_ = 0;
    bool pendingReset_ = false;
    bool resting_ = false;
};

/// Room / thermal RC model:  C dT/dt = (Tamb - T)/Rth + P.
/// Ports: in "P", out "T". Parameters C, Rth, Tamb, T0.
class ThermalRc final : public Streamer {
public:
    ThermalRc(std::string name, Streamer* parent, double c, double rth, double tamb, double t0);

    DPort& power() { return power_; }
    DPort& temperature() { return temperature_; }

    std::size_t stateSize() const override { return 1; }
    bool directFeedthrough() const override { return false; }
    void initState(double, std::span<double> x) override;
    void derivatives(double, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double, std::span<const double> x) override;

    /// Steady-state temperature under constant power.
    double steadyState(double p) const;

private:
    DPort power_;
    DPort temperature_;
};

} // namespace urtx::control
