#pragma once
/// \file dynamics.hpp
/// Blocks with continuous state (integrated by the solver) or discrete
/// sample-time behaviour (advanced in the update pass).

#include <deque>
#include <span>
#include <string>
#include <vector>

#include "control/math_blocks.hpp"
#include "solver/linalg.hpp"

namespace urtx::control {

/// Continuous integrator: dx/dt = in, out = x; optional output/state
/// clamping ("lo"/"hi") with integration freeze at the bounds.
class Integrator final : public SisoBlock {
public:
    Integrator(std::string name, Streamer* parent, double x0 = 0.0);
    /// Enable clamping; also freezes integration against the bound.
    Integrator& withLimits(double lo, double hi);

    std::size_t stateSize() const override { return 1; }
    bool directFeedthrough() const override { return false; }
    void initState(double t, std::span<double> x) override;
    void derivatives(double t, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

private:
    bool limited_ = false;
};

/// First-order lag: tau dx/dt = u - x, out = x.
class FirstOrderLag final : public SisoBlock {
public:
    FirstOrderLag(std::string name, Streamer* parent, double tau, double x0 = 0.0);
    std::size_t stateSize() const override { return 1; }
    bool directFeedthrough() const override { return false; }
    void initState(double t, std::span<double> x) override;
    void derivatives(double t, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double t, std::span<const double> x) override;
};

/// Linear state-space block: dx = A x + B u, y = C x + D u.
/// Ports: "in" Vector<Real,m> (or Real when m==1), "out" likewise for p.
class StateSpace final : public Streamer {
public:
    StateSpace(std::string name, Streamer* parent, solver::Matrix A, solver::Matrix B,
               solver::Matrix C, solver::Matrix D, solver::Vec x0 = {});

    DPort& in() { return in_; }
    DPort& out() { return out_; }
    std::size_t stateSize() const override { return A_.rows(); }
    bool directFeedthrough() const override { return hasD_; }
    void initState(double t, std::span<double> x) override;
    void derivatives(double t, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double t, std::span<const double> x) override;

    const solver::Matrix& A() const { return A_; }

private:
    solver::Matrix A_, B_, C_, D_;
    solver::Vec x0_;
    bool hasD_;
    DPort in_;
    DPort out_;
};

/// SISO transfer function num(s)/den(s), realized in controllable
/// canonical form. Proper (deg num <= deg den) required.
class TransferFunction final : public Streamer {
public:
    TransferFunction(std::string name, Streamer* parent, std::vector<double> num,
                     std::vector<double> den);

    DPort& in() { return in_; }
    DPort& out() { return out_; }
    std::size_t stateSize() const override { return n_; }
    bool directFeedthrough() const override { return d_ != 0.0; }
    void initState(double t, std::span<double> x) override;
    void derivatives(double t, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double t, std::span<const double> x) override;

private:
    std::size_t n_;
    std::vector<double> a_; ///< denominator coefficients (monic, a_[i] of s^i)
    std::vector<double> c_; ///< output row
    double d_;              ///< feedthrough
    DPort in_;
    DPort out_;
};

/// Continuous PID with filtered derivative, output saturation and
/// conditional-integration anti-windup.
///
/// u = kp e + ki ∫e + kd N (e - N z),  z' = -N z + e
/// Parameters: "kp","ki","kd","N","lo","hi" — all tunable via signals.
class Pid final : public SisoBlock {
public:
    Pid(std::string name, Streamer* parent, double kp, double ki, double kd, double N = 100.0);
    Pid& withLimits(double lo, double hi);

    std::size_t stateSize() const override { return 2; } // [integral, filter]
    bool directFeedthrough() const override { return true; }
    void initState(double t, std::span<double> x) override;
    void derivatives(double t, std::span<const double> x, std::span<double> dxdt) override;
    void outputs(double t, std::span<const double> x) override;

    /// Raw (pre-saturation) control value of the last outputs() pass.
    double rawOutput() const { return raw_; }

private:
    double control(double e, std::span<const double> x) const;
    bool limited_ = false;
    double raw_ = 0.0;
};

/// Discrete rate limiter (advances at major steps): the output tracks the
/// input with slope bounded by "rate" per second.
class RateLimiter final : public SisoBlock {
public:
    RateLimiter(std::string name, Streamer* parent, double rate);
    std::size_t stateSize() const override { return 1; }
    bool directFeedthrough() const override { return false; }
    void initState(double t, std::span<double> x) override;
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

private:
    double lastT_ = 0.0;
    bool first_ = true;
};

/// Pure transport delay of "td" seconds with linear interpolation between
/// recorded major-step samples. Output before t0+td is the initial input.
class TransportDelay final : public SisoBlock {
public:
    TransportDelay(std::string name, Streamer* parent, double td);
    bool directFeedthrough() const override { return false; }
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

private:
    std::deque<std::pair<double, double>> history_;
};

/// Zero-order hold sampling every "period" seconds at major steps.
class ZeroOrderHold final : public SisoBlock {
public:
    ZeroOrderHold(std::string name, Streamer* parent, double period);
    bool directFeedthrough() const override { return false; }
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

private:
    double held_ = 0.0;
    double nextSample_ = 0.0;
    bool first_ = true;
};

} // namespace urtx::control
