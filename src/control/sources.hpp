#pragma once
/// \file sources.hpp
/// Source blocks: leaf streamers with a single output DPort and no inputs.
///
/// All sources are functions of the Time stereotype only, so they are not
/// direct-feedthrough and never participate in algebraic loops. Parameters
/// live in the Streamer parameter map so capsules can retune them through
/// SPort signals mid-run.

#include <cstdint>
#include <span>
#include <string>

#include "flow/streamer.hpp"

namespace urtx::control {

using flow::DPort;
using flow::DPortDir;
using flow::FlowType;
using flow::Streamer;

/// Base for scalar sources: provides the "out" DPort.
class Source : public Streamer {
public:
    Source(std::string name, Streamer* parent)
        : Streamer(std::move(name), parent), out_(*this, "out", DPortDir::Out, FlowType::real()) {}

    DPort& out() { return out_; }
    bool directFeedthrough() const override { return false; }

protected:
    DPort out_;
};

/// Constant value; parameter "value".
class Constant final : public Source {
public:
    Constant(std::string name, Streamer* parent, double value) : Source(std::move(name), parent) {
        setParam("value", value);
    }
    void outputs(double, std::span<const double>) override { out_.set(param("value")); }
};

/// Step at "t0" from "before" to "after".
class Step final : public Source {
public:
    Step(std::string name, Streamer* parent, double t0, double before = 0.0, double after = 1.0)
        : Source(std::move(name), parent) {
        setParam("t0", t0);
        setParam("before", before);
        setParam("after", after);
    }
    void outputs(double t, std::span<const double>) override {
        out_.set(t < param("t0") ? param("before") : param("after"));
    }
};

/// Ramp of slope "slope" starting at "start".
class Ramp final : public Source {
public:
    Ramp(std::string name, Streamer* parent, double slope, double start = 0.0)
        : Source(std::move(name), parent) {
        setParam("slope", slope);
        setParam("start", start);
    }
    void outputs(double t, std::span<const double>) override {
        const double s = param("start");
        out_.set(t <= s ? 0.0 : param("slope") * (t - s));
    }
};

/// amp * sin(omega t + phase) + offset.
class Sine final : public Source {
public:
    Sine(std::string name, Streamer* parent, double amp, double omega, double phase = 0.0,
         double offset = 0.0)
        : Source(std::move(name), parent) {
        setParam("amp", amp);
        setParam("omega", omega);
        setParam("phase", phase);
        setParam("offset", offset);
    }
    void outputs(double t, std::span<const double>) override;
};

/// Rectangular pulse train: "amp" for the first "duty" fraction of each
/// "period", 0 otherwise.
class Pulse final : public Source {
public:
    Pulse(std::string name, Streamer* parent, double period, double duty = 0.5, double amp = 1.0)
        : Source(std::move(name), parent) {
        setParam("period", period);
        setParam("duty", duty);
        setParam("amp", amp);
    }
    void outputs(double t, std::span<const double>) override;
};

/// Linear chirp from "f0" Hz at t=0 to "f1" Hz at t="T" (then holds f1).
class Chirp final : public Source {
public:
    Chirp(std::string name, Streamer* parent, double f0, double f1, double T, double amp = 1.0)
        : Source(std::move(name), parent) {
        setParam("f0", f0);
        setParam("f1", f1);
        setParam("T", T);
        setParam("amp", amp);
    }
    void outputs(double t, std::span<const double>) override;
};

/// Deterministic band-limited Gaussian noise: piecewise constant over
/// intervals of "dt", value derived by hashing (seed, interval index) so
/// re-evaluations inside one integration step are consistent.
class Noise final : public Source {
public:
    Noise(std::string name, Streamer* parent, double stddev, double dt, std::uint64_t seed = 1)
        : Source(std::move(name), parent), seed_(seed) {
        setParam("stddev", stddev);
        setParam("dt", dt);
    }
    void outputs(double t, std::span<const double>) override;

    /// The deterministic sample for interval \p k (exposed for tests).
    double sampleAt(std::uint64_t k) const;

private:
    std::uint64_t seed_;
};

} // namespace urtx::control
