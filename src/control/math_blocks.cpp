#include "control/math_blocks.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace urtx::control {

Sum::Sum(std::string name, Streamer* parent, std::string signs)
    : Streamer(std::move(name), parent), out_(*this, "out", DPortDir::Out, FlowType::real()) {
    if (signs.empty()) throw std::invalid_argument("Sum: need at least one sign");
    for (std::size_t i = 0; i < signs.size(); ++i) {
        if (signs[i] != '+' && signs[i] != '-')
            throw std::invalid_argument("Sum: signs must be '+' or '-'");
        signs_.push_back(signs[i] == '+' ? 1.0 : -1.0);
        ins_.push_back(std::make_unique<DPort>(*this, "in" + std::to_string(i), DPortDir::In,
                                               FlowType::real()));
    }
}

void Sum::outputs(double, std::span<const double>) {
    double s = 0;
    for (std::size_t i = 0; i < ins_.size(); ++i) s += signs_[i] * ins_[i]->get();
    out_.set(s);
}

Product::Product(std::string name, Streamer* parent, std::size_t arity)
    : Streamer(std::move(name), parent), out_(*this, "out", DPortDir::Out, FlowType::real()) {
    if (arity == 0) throw std::invalid_argument("Product: arity must be positive");
    for (std::size_t i = 0; i < arity; ++i)
        ins_.push_back(std::make_unique<DPort>(*this, "in" + std::to_string(i), DPortDir::In,
                                               FlowType::real()));
}

void Product::outputs(double, std::span<const double>) {
    double p = 1.0;
    for (const auto& in : ins_) p *= in->get();
    out_.set(p);
}

void Saturation::outputs(double, std::span<const double>) {
    out_.set(std::clamp(in_.get(), param("lo"), param("hi")));
}

void DeadZone::outputs(double, std::span<const double>) {
    const double u = in_.get(), lo = param("lo"), hi = param("hi");
    if (u > hi) {
        out_.set(u - hi);
    } else if (u < lo) {
        out_.set(u - lo);
    } else {
        out_.set(0.0);
    }
}

void Quantizer::outputs(double, std::span<const double>) {
    const double q = param("q");
    out_.set(q > 0 ? q * std::round(in_.get() / q) : in_.get());
}

Lookup1D::Lookup1D(std::string name, Streamer* parent, std::vector<double> xs,
                   std::vector<double> ys)
    : SisoBlock(std::move(name), parent), xs_(std::move(xs)), ys_(std::move(ys)) {
    if (xs_.size() != ys_.size() || xs_.size() < 2)
        throw std::invalid_argument("Lookup1D: need >= 2 matching breakpoints");
    for (std::size_t i = 1; i < xs_.size(); ++i)
        if (xs_[i] <= xs_[i - 1])
            throw std::invalid_argument("Lookup1D: xs must be strictly increasing");
}

void Lookup1D::outputs(double, std::span<const double>) {
    const double u = in_.get();
    if (u <= xs_.front()) {
        out_.set(ys_.front());
        return;
    }
    if (u >= xs_.back()) {
        out_.set(ys_.back());
        return;
    }
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), u);
    const std::size_t i = static_cast<std::size_t>(it - xs_.begin());
    const double w = (u - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
    out_.set(ys_[i - 1] + w * (ys_[i] - ys_[i - 1]));
}

Mux::Mux(std::string name, Streamer* parent, std::size_t n)
    : Streamer(std::move(name), parent),
      out_(*this, "out", DPortDir::Out, FlowType::vector(FlowType::real(), n)) {
    if (n == 0) throw std::invalid_argument("Mux: n must be positive");
    for (std::size_t i = 0; i < n; ++i)
        ins_.push_back(std::make_unique<DPort>(*this, "in" + std::to_string(i), DPortDir::In,
                                               FlowType::real()));
}

void Mux::outputs(double, std::span<const double>) {
    for (std::size_t i = 0; i < ins_.size(); ++i) out_.set(ins_[i]->get(), i);
}

Demux::Demux(std::string name, Streamer* parent, std::size_t n)
    : Streamer(std::move(name), parent),
      in_(*this, "in", DPortDir::In, FlowType::vector(FlowType::real(), n)) {
    if (n == 0) throw std::invalid_argument("Demux: n must be positive");
    for (std::size_t i = 0; i < n; ++i)
        outs_.push_back(std::make_unique<DPort>(*this, "out" + std::to_string(i), DPortDir::Out,
                                                FlowType::real()));
}

void Demux::outputs(double, std::span<const double>) {
    for (std::size_t i = 0; i < outs_.size(); ++i) outs_[i]->set(in_.get(i));
}

} // namespace urtx::control
