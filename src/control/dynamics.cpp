#include "control/dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace urtx::control {

// ---------------------------------------------------------------- Integrator

Integrator::Integrator(std::string name, Streamer* parent, double x0)
    : SisoBlock(std::move(name), parent) {
    setParam("x0", x0);
}

Integrator& Integrator::withLimits(double lo, double hi) {
    if (lo >= hi) throw std::invalid_argument("Integrator::withLimits: lo must be < hi");
    limited_ = true;
    setParam("lo", lo);
    setParam("hi", hi);
    return *this;
}

void Integrator::initState(double, std::span<double> x) { x[0] = param("x0"); }

void Integrator::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    const double u = in_.get();
    if (limited_) {
        // Freeze integration pushing past a bound (anti-windup).
        if ((x[0] >= param("hi") && u > 0) || (x[0] <= param("lo") && u < 0)) {
            dxdt[0] = 0.0;
            return;
        }
    }
    dxdt[0] = u;
}

void Integrator::outputs(double, std::span<const double> x) {
    double v = x[0];
    if (limited_) v = std::clamp(v, param("lo"), param("hi"));
    out_.set(v);
}

void Integrator::update(double, std::span<double> x) {
    if (limited_) x[0] = std::clamp(x[0], param("lo"), param("hi"));
}

// ------------------------------------------------------------- FirstOrderLag

FirstOrderLag::FirstOrderLag(std::string name, Streamer* parent, double tau, double x0)
    : SisoBlock(std::move(name), parent) {
    if (tau <= 0) throw std::invalid_argument("FirstOrderLag: tau must be positive");
    setParam("tau", tau);
    setParam("x0", x0);
}

void FirstOrderLag::initState(double, std::span<double> x) { x[0] = param("x0"); }

void FirstOrderLag::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    dxdt[0] = (in_.get() - x[0]) / param("tau");
}

void FirstOrderLag::outputs(double, std::span<const double> x) { out_.set(x[0]); }

// ------------------------------------------------------------------ StateSpace

namespace {

bool isZero(const solver::Matrix& m) {
    for (double v : m.data()) {
        if (v != 0.0) return false;
    }
    return true;
}

flow::FlowType vecType(std::size_t n) {
    return n == 1 ? flow::FlowType::real()
                  : flow::FlowType::vector(flow::FlowType::real(), n);
}

} // namespace

StateSpace::StateSpace(std::string name, Streamer* parent, solver::Matrix A, solver::Matrix B,
                       solver::Matrix C, solver::Matrix D, solver::Vec x0)
    : Streamer(std::move(name), parent),
      A_(std::move(A)),
      B_(std::move(B)),
      C_(std::move(C)),
      D_(std::move(D)),
      x0_(std::move(x0)),
      hasD_(!isZero(D_)),
      in_(*this, "in", DPortDir::In, vecType(B_.cols())),
      out_(*this, "out", DPortDir::Out, vecType(C_.rows())) {
    const std::size_t n = A_.rows();
    if (A_.cols() != n) throw std::invalid_argument("StateSpace: A must be square");
    if (B_.rows() != n) throw std::invalid_argument("StateSpace: B rows must match A");
    if (C_.cols() != n) throw std::invalid_argument("StateSpace: C cols must match A");
    if (D_.rows() != C_.rows() || D_.cols() != B_.cols())
        throw std::invalid_argument("StateSpace: D shape must be (p x m)");
    if (x0_.empty()) x0_.assign(n, 0.0);
    if (x0_.size() != n) throw std::invalid_argument("StateSpace: x0 dimension mismatch");
}

void StateSpace::initState(double, std::span<double> x) {
    std::copy(x0_.begin(), x0_.end(), x.begin());
}

void StateSpace::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    const std::size_t n = A_.rows(), m = B_.cols();
    for (std::size_t i = 0; i < n; ++i) {
        double s = 0;
        for (std::size_t j = 0; j < n; ++j) s += A_(i, j) * x[j];
        for (std::size_t j = 0; j < m; ++j) s += B_(i, j) * in_.get(j);
        dxdt[i] = s;
    }
}

void StateSpace::outputs(double, std::span<const double> x) {
    const std::size_t n = A_.rows(), m = B_.cols(), p = C_.rows();
    for (std::size_t i = 0; i < p; ++i) {
        double s = 0;
        for (std::size_t j = 0; j < n; ++j) s += C_(i, j) * x[j];
        if (hasD_) {
            for (std::size_t j = 0; j < m; ++j) s += D_(i, j) * in_.get(j);
        }
        out_.set(s, i);
    }
}

// ------------------------------------------------------------ TransferFunction

TransferFunction::TransferFunction(std::string name, Streamer* parent, std::vector<double> num,
                                   std::vector<double> den)
    : Streamer(std::move(name), parent),
      n_(0),
      d_(0.0),
      in_(*this, "in", DPortDir::In, FlowType::real()),
      out_(*this, "out", DPortDir::Out, FlowType::real()) {
    // Coefficients are highest power first, e.g. den = {1, 2, 1} ~ s^2+2s+1.
    while (den.size() > 1 && den.front() == 0.0) den.erase(den.begin());
    while (num.size() > 1 && num.front() == 0.0) num.erase(num.begin());
    if (den.empty() || den.front() == 0.0)
        throw std::invalid_argument("TransferFunction: invalid denominator");
    if (num.size() > den.size())
        throw std::invalid_argument("TransferFunction: improper (deg num > deg den)");

    const double lead = den.front();
    for (double& c : den) c /= lead;
    for (double& c : num) c /= lead;

    n_ = den.size() - 1;
    // Pad numerator to den length.
    std::vector<double> b(den.size(), 0.0);
    std::copy(num.rbegin(), num.rend(), b.rbegin());
    d_ = b.front(); // coefficient of s^n in numerator

    // Controllable canonical form. Store denominator ascending (a_[i] is
    // the coefficient of s^i, i < n) and the output row
    // c_[i] = b_{i} - b_n * a_{i} (ascending powers).
    a_.assign(n_, 0.0);
    c_.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
        const double ai = den[den.size() - 1 - i]; // ascending
        const double bi = b[b.size() - 1 - i];
        a_[i] = ai;
        c_[i] = bi - d_ * ai;
    }
}

void TransferFunction::initState(double, std::span<double> x) {
    std::fill(x.begin(), x.end(), 0.0);
}

void TransferFunction::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    // x1' = x2, ..., x_{n-1}' = x_n, x_n' = u - sum a_i x_{i+1}.
    const double u = in_.get();
    for (std::size_t i = 0; i + 1 < n_; ++i) dxdt[i] = x[i + 1];
    double s = u;
    for (std::size_t i = 0; i < n_; ++i) s -= a_[i] * x[i];
    dxdt[n_ - 1] = s;
}

void TransferFunction::outputs(double, std::span<const double> x) {
    double y = d_ * in_.get();
    for (std::size_t i = 0; i < n_; ++i) y += c_[i] * x[i];
    out_.set(y);
}

// ------------------------------------------------------------------------ PID

Pid::Pid(std::string name, Streamer* parent, double kp, double ki, double kd, double N)
    : SisoBlock(std::move(name), parent) {
    setParam("kp", kp);
    setParam("ki", ki);
    setParam("kd", kd);
    setParam("N", N);
}

Pid& Pid::withLimits(double lo, double hi) {
    if (lo >= hi) throw std::invalid_argument("Pid::withLimits: lo must be < hi");
    limited_ = true;
    setParam("lo", lo);
    setParam("hi", hi);
    return *this;
}

void Pid::initState(double, std::span<double> x) {
    x[0] = 0.0; // integral of error
    x[1] = 0.0; // derivative filter state z
}

double Pid::control(double e, std::span<const double> x) const {
    const double N = param("N");
    const double d = param("kd") * N * (e - N * x[1]);
    return param("kp") * e + param("ki") * x[0] + d;
}

void Pid::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    const double e = in_.get();
    double integrate = e;
    if (limited_) {
        const double u = control(e, x);
        // Conditional integration: stop winding past a saturated bound.
        if ((u >= param("hi") && e > 0) || (u <= param("lo") && e < 0)) integrate = 0.0;
    }
    dxdt[0] = integrate;
    dxdt[1] = e - param("N") * x[1]; // z' = -N z + e (derivative filter)
}

void Pid::outputs(double, std::span<const double> x) {
    const double e = in_.get();
    raw_ = control(e, x);
    double u = raw_;
    if (limited_) u = std::clamp(u, param("lo"), param("hi"));
    out_.set(u);
}

// ----------------------------------------------------------------- RateLimiter

RateLimiter::RateLimiter(std::string name, Streamer* parent, double rate)
    : SisoBlock(std::move(name), parent) {
    if (rate <= 0) throw std::invalid_argument("RateLimiter: rate must be positive");
    setParam("rate", rate);
}

void RateLimiter::initState(double t, std::span<double> x) {
    x[0] = in_.get();
    lastT_ = t;
    first_ = true;
}

void RateLimiter::outputs(double, std::span<const double> x) { out_.set(x[0]); }

void RateLimiter::update(double t, std::span<double> x) {
    if (first_) {
        // Snap to the (now propagated) input on the first boundary.
        x[0] = in_.get();
        lastT_ = t;
        first_ = false;
        return;
    }
    const double dt = t - lastT_;
    lastT_ = t;
    if (dt <= 0) return;
    const double maxStep = param("rate") * dt;
    x[0] += std::clamp(in_.get() - x[0], -maxStep, maxStep);
}

// --------------------------------------------------------------- TransportDelay

TransportDelay::TransportDelay(std::string name, Streamer* parent, double td)
    : SisoBlock(std::move(name), parent) {
    if (td < 0) throw std::invalid_argument("TransportDelay: delay must be >= 0");
    setParam("td", td);
}

void TransportDelay::outputs(double t, std::span<const double>) {
    const double td = param("td");
    const double tq = t - td;
    if (history_.empty() || tq <= history_.front().first) {
        out_.set(history_.empty() ? 0.0 : history_.front().second);
        return;
    }
    // Linear interpolation in the recorded history.
    for (std::size_t i = 1; i < history_.size(); ++i) {
        if (history_[i].first >= tq) {
            const auto& [t0, v0] = history_[i - 1];
            const auto& [t1, v1] = history_[i];
            const double w = (t1 > t0) ? (tq - t0) / (t1 - t0) : 1.0;
            out_.set(v0 + w * (v1 - v0));
            return;
        }
    }
    out_.set(history_.back().second);
}

void TransportDelay::update(double t, std::span<double>) {
    history_.emplace_back(t, in_.get());
    // Trim samples older than the delay window (keep one before).
    const double cutoff = t - param("td");
    while (history_.size() > 2 && history_[1].first < cutoff) history_.pop_front();
}

// ---------------------------------------------------------------- ZeroOrderHold

ZeroOrderHold::ZeroOrderHold(std::string name, Streamer* parent, double period)
    : SisoBlock(std::move(name), parent) {
    if (period <= 0) throw std::invalid_argument("ZeroOrderHold: period must be positive");
    setParam("period", period);
}

void ZeroOrderHold::outputs(double, std::span<const double>) { out_.set(held_); }

void ZeroOrderHold::update(double t, std::span<double>) {
    if (first_) {
        held_ = in_.get();
        nextSample_ = t + param("period");
        first_ = false;
        return;
    }
    if (t + 1e-12 >= nextSample_) {
        held_ = in_.get();
        while (nextSample_ <= t + 1e-12) nextSample_ += param("period");
    }
}

} // namespace urtx::control
