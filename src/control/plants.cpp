#include "control/plants.hpp"

#include <algorithm>
#include <cmath>

namespace urtx::control {

// ------------------------------------------------------------ MassSpringDamper

MassSpringDamper::MassSpringDamper(std::string name, Streamer* parent, double m, double c,
                                   double k)
    : Streamer(std::move(name), parent),
      force_(*this, "F", DPortDir::In, FlowType::real()),
      state_(*this, "state", DPortDir::Out,
             FlowType::record({{"pos", FlowType::real()}, {"vel", FlowType::real()}})) {
    setParam("m", m);
    setParam("c", c);
    setParam("k", k);
    setParam("x0", 0.0);
    setParam("v0", 0.0);
}

void MassSpringDamper::initState(double, std::span<double> x) {
    x[0] = param("x0");
    x[1] = param("v0");
}

void MassSpringDamper::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    dxdt[0] = x[1];
    dxdt[1] = (force_.get() - param("c") * x[1] - param("k") * x[0]) / param("m");
}

void MassSpringDamper::outputs(double, std::span<const double> x) {
    state_.set(x[0], 0);
    state_.set(x[1], 1);
}

double MassSpringDamper::energy(double pos, double vel) const {
    return 0.5 * param("m") * vel * vel + 0.5 * param("k") * pos * pos;
}

// ------------------------------------------------------------------- DcMotor

DcMotor::DcMotor(std::string name, Streamer* parent)
    : Streamer(std::move(name), parent),
      voltage_(*this, "V", DPortDir::In, FlowType::real()),
      load_(*this, "tauLoad", DPortDir::In, FlowType::real()),
      speed_(*this, "w", DPortDir::Out, FlowType::real()),
      current_(*this, "i", DPortDir::Out, FlowType::real()) {
    setParam("R", 1.0);
    setParam("L", 0.5);
    setParam("Ke", 0.01);
    setParam("Kt", 0.01);
    setParam("J", 0.01);
    setParam("b", 0.1);
}

void DcMotor::initState(double, std::span<double> x) {
    x[0] = 0.0; // current
    x[1] = 0.0; // speed
}

void DcMotor::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    dxdt[0] = (voltage_.get() - param("R") * x[0] - param("Ke") * x[1]) / param("L");
    dxdt[1] = (param("Kt") * x[0] - param("b") * x[1] - load_.get()) / param("J");
}

void DcMotor::outputs(double, std::span<const double> x) {
    current_.set(x[0]);
    speed_.set(x[1]);
}

double DcMotor::steadyStateSpeed(double v) const {
    // 0 = V - R i - Ke w; 0 = Kt i - b w  =>  w = Kt V / (R b + Kt Ke).
    return param("Kt") * v / (param("R") * param("b") + param("Kt") * param("Ke"));
}

// ---------------------------------------------------------------- BouncingBall

BouncingBall::BouncingBall(std::string name, Streamer* parent, double h0, double restitution)
    : Streamer(std::move(name), parent),
      height_(*this, "h", DPortDir::Out, FlowType::real()) {
    setParam("g", 9.81);
    setParam("e", restitution);
    setParam("h0", h0);
}

void BouncingBall::initState(double, std::span<double> x) {
    x[0] = param("h0");
    x[1] = 0.0;
}

void BouncingBall::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    if (resting_) {
        dxdt[0] = dxdt[1] = 0.0;
        return;
    }
    dxdt[0] = x[1];
    dxdt[1] = -param("g");
}

void BouncingBall::outputs(double, std::span<const double> x) { height_.set(x[0]); }

double BouncingBall::eventFunction(double, std::span<const double> x) const {
    // While resting the surface is lifted away so no further crossings
    // fire (Zeno regularization).
    return resting_ ? 1.0 : x[0];
}

void BouncingBall::onEvent(double /*t*/, bool rising) {
    if (!rising && !resting_) {
        ++bounces_;
        pendingReset_ = true;
    }
}

bool BouncingBall::onEventReset(double /*t*/, std::span<double> x) {
    if (!pendingReset_) return false;
    pendingReset_ = false;
    x[0] = std::max(0.0, x[0]); // clamp to the floor
    x[1] = -param("e") * x[1];  // restitution impulse
    // Rest detection: when the rebound is below "vstop" the bounce cascade
    // has Zeno-accumulated; freeze the ball on the floor.
    if (std::abs(x[1]) < param("vstop", 0.05)) {
        x[0] = 0.0;
        x[1] = 0.0;
        resting_ = true;
    }
    return true;
}

// ------------------------------------------------------------------ ThermalRc

ThermalRc::ThermalRc(std::string name, Streamer* parent, double c, double rth, double tamb,
                     double t0)
    : Streamer(std::move(name), parent),
      power_(*this, "P", DPortDir::In, FlowType::real()),
      temperature_(*this, "T", DPortDir::Out, FlowType::real()) {
    setParam("C", c);
    setParam("Rth", rth);
    setParam("Tamb", tamb);
    setParam("T0", t0);
}

void ThermalRc::initState(double, std::span<double> x) { x[0] = param("T0"); }

void ThermalRc::derivatives(double, std::span<const double> x, std::span<double> dxdt) {
    dxdt[0] = ((param("Tamb") - x[0]) / param("Rth") + power_.get()) / param("C");
}

void ThermalRc::outputs(double, std::span<const double> x) { temperature_.set(x[0]); }

double ThermalRc::steadyState(double p) const { return param("Tamb") + param("Rth") * p; }

} // namespace urtx::control
