#include "control/sinks.hpp"

#include <cmath>
#include <stdexcept>

namespace urtx::control {

double Recorder::peakAbs() const {
    double m = 0;
    for (const Sample& s : samples_) m = std::max(m, std::abs(s.v));
    return m;
}

double Recorder::settlingTime(double target, double band) const {
    double settled = -1.0;
    for (const Sample& s : samples_) {
        if (std::abs(s.v - target) <= band) {
            if (settled < 0) settled = s.t;
        } else {
            settled = -1.0;
        }
    }
    return settled;
}

CsvSink::CsvSink(std::string name, Streamer* parent, const std::string& path, std::string header)
    : Streamer(std::move(name), parent), in_(*this, "in", DPortDir::In, FlowType::real()) {
    file_.open(path);
    if (!file_) throw std::runtime_error("CsvSink: cannot open '" + path + "'");
    file_ << (header.empty() ? std::string("t,value") : header) << "\n";
}

void CsvSink::update(double t, std::span<double>) {
    file_ << t << "," << in_.get() << "\n";
    ++rows_;
}

} // namespace urtx::control
