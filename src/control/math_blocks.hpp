#pragma once
/// \file math_blocks.hpp
/// Stateless (direct-feedthrough) algebraic blocks.

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "flow/streamer.hpp"

namespace urtx::control {

using flow::DPort;
using flow::DPortDir;
using flow::FlowType;
using flow::Streamer;

/// Scalar in -> scalar out base.
class SisoBlock : public Streamer {
public:
    SisoBlock(std::string name, Streamer* parent)
        : Streamer(std::move(name), parent),
          in_(*this, "in", DPortDir::In, FlowType::real()),
          out_(*this, "out", DPortDir::Out, FlowType::real()) {}

    DPort& in() { return in_; }
    DPort& out() { return out_; }

protected:
    DPort in_;
    DPort out_;
};

/// out = k * in; parameter "k".
class Gain final : public SisoBlock {
public:
    Gain(std::string name, Streamer* parent, double k) : SisoBlock(std::move(name), parent) {
        setParam("k", k);
    }
    void outputs(double, std::span<const double>) override { out_.set(param("k") * in_.get()); }
};

/// out = sum of signed inputs; signs given as a string like "+-".
/// Input ports are named in0, in1, ...
class Sum final : public Streamer {
public:
    Sum(std::string name, Streamer* parent, std::string signs);
    DPort& in(std::size_t i) { return *ins_.at(i); }
    DPort& out() { return out_; }
    std::size_t arity() const { return ins_.size(); }
    void outputs(double, std::span<const double>) override;

private:
    std::vector<std::unique_ptr<DPort>> ins_;
    std::vector<double> signs_;
    DPort out_;
};

/// out = product of all inputs (ports in0, in1, ...).
class Product final : public Streamer {
public:
    Product(std::string name, Streamer* parent, std::size_t arity);
    DPort& in(std::size_t i) { return *ins_.at(i); }
    DPort& out() { return out_; }
    void outputs(double, std::span<const double>) override;

private:
    std::vector<std::unique_ptr<DPort>> ins_;
    DPort out_;
};

/// out = clamp(in, "lo", "hi").
class Saturation final : public SisoBlock {
public:
    Saturation(std::string name, Streamer* parent, double lo, double hi)
        : SisoBlock(std::move(name), parent) {
        setParam("lo", lo);
        setParam("hi", hi);
    }
    void outputs(double, std::span<const double>) override;
};

/// Zero inside ["lo","hi"], shifted outside.
class DeadZone final : public SisoBlock {
public:
    DeadZone(std::string name, Streamer* parent, double lo, double hi)
        : SisoBlock(std::move(name), parent) {
        setParam("lo", lo);
        setParam("hi", hi);
    }
    void outputs(double, std::span<const double>) override;
};

/// out = q * round(in / q); parameter "q".
class Quantizer final : public SisoBlock {
public:
    Quantizer(std::string name, Streamer* parent, double q) : SisoBlock(std::move(name), parent) {
        setParam("q", q);
    }
    void outputs(double, std::span<const double>) override;
};

/// Piecewise-linear 1-D lookup with end clamping; xs strictly increasing.
class Lookup1D final : public SisoBlock {
public:
    Lookup1D(std::string name, Streamer* parent, std::vector<double> xs, std::vector<double> ys);
    void outputs(double, std::span<const double>) override;

private:
    std::vector<double> xs_, ys_;
};

/// Arbitrary scalar function block.
class Function final : public SisoBlock {
public:
    using Fn = std::function<double(double)>;
    Function(std::string name, Streamer* parent, Fn fn)
        : SisoBlock(std::move(name), parent), fn_(std::move(fn)) {}
    void outputs(double, std::span<const double>) override { out_.set(fn_(in_.get())); }

private:
    Fn fn_;
};

/// n scalar inputs -> one Vector<Real,n> output.
class Mux final : public Streamer {
public:
    Mux(std::string name, Streamer* parent, std::size_t n);
    DPort& in(std::size_t i) { return *ins_.at(i); }
    DPort& out() { return out_; }
    void outputs(double, std::span<const double>) override;

private:
    std::vector<std::unique_ptr<DPort>> ins_;
    DPort out_;
};

/// One Vector<Real,n> input -> n scalar outputs.
class Demux final : public Streamer {
public:
    Demux(std::string name, Streamer* parent, std::size_t n);
    DPort& in() { return in_; }
    DPort& out(std::size_t i) { return *outs_.at(i); }
    void outputs(double, std::span<const double>) override;

private:
    DPort in_;
    std::vector<std::unique_ptr<DPort>> outs_;
};

} // namespace urtx::control
