#include "control/sources.hpp"

#include <cmath>

namespace urtx::control {

void Sine::outputs(double t, std::span<const double>) {
    out_.set(param("amp") * std::sin(param("omega") * t + param("phase")) + param("offset"));
}

void Pulse::outputs(double t, std::span<const double>) {
    const double period = param("period");
    if (period <= 0) {
        out_.set(0.0);
        return;
    }
    const double phase = t - std::floor(t / period) * period;
    out_.set(phase < param("duty") * period ? param("amp") : 0.0);
}

void Chirp::outputs(double t, std::span<const double>) {
    const double f0 = param("f0"), f1 = param("f1"), T = param("T");
    double phase;
    if (t <= T && T > 0) {
        const double k = (f1 - f0) / T;
        phase = 2.0 * M_PI * (f0 * t + 0.5 * k * t * t);
    } else {
        const double phaseT = 2.0 * M_PI * (f0 * T + 0.5 * (f1 - f0) * T);
        phase = phaseT + 2.0 * M_PI * f1 * (t - T);
    }
    out_.set(param("amp") * std::sin(phase));
}

double Noise::sampleAt(std::uint64_t k) const {
    // SplitMix64 over (seed, k) twice -> Box-Muller.
    auto mix = [](std::uint64_t z) {
        z += 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    const std::uint64_t a = mix(seed_ * 0x632be59bd9b4e019ULL + k);
    const std::uint64_t b = mix(a + 0x9e3779b97f4a7c15ULL);
    const double u1 = (static_cast<double>(a >> 11) + 0.5) * (1.0 / 9007199254740992.0);
    const double u2 = (static_cast<double>(b >> 11) + 0.5) * (1.0 / 9007199254740992.0);
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

void Noise::outputs(double t, std::span<const double>) {
    const double dt = param("dt");
    const std::uint64_t k =
        dt > 0 ? static_cast<std::uint64_t>(std::max(0.0, std::floor(t / dt))) : 0;
    out_.set(param("stddev") * sampleAt(k));
}

} // namespace urtx::control
