#include "control/discrete.hpp"

#include <algorithm>
#include <stdexcept>

namespace urtx::control {

DiscreteTransferFunction::DiscreteTransferFunction(std::string name, Streamer* parent,
                                                   std::vector<double> b, std::vector<double> a,
                                                   double period)
    : SisoBlock(std::move(name), parent), eq_(std::move(b), std::move(a)) {
    if (period <= 0)
        throw std::invalid_argument("DiscreteTransferFunction: period must be positive");
    setParam("period", period);
}

void DiscreteTransferFunction::outputs(double, std::span<const double>) { out_.set(held_); }

void DiscreteTransferFunction::update(double t, std::span<double>) {
    if (first_) {
        nextSample_ = t; // sample immediately at the first boundary
        first_ = false;
    }
    if (t + 1e-12 >= nextSample_) {
        held_ = eq_.step(in_.get());
        while (nextSample_ <= t + 1e-12) nextSample_ += param("period");
    }
}

DiscretePid::DiscretePid(std::string name, Streamer* parent, double kp, double ki, double kd,
                         double period)
    : SisoBlock(std::move(name), parent) {
    if (period <= 0) throw std::invalid_argument("DiscretePid: period must be positive");
    setParam("kp", kp);
    setParam("ki", ki);
    setParam("kd", kd);
    setParam("period", period);
}

DiscretePid& DiscretePid::withLimits(double lo, double hi) {
    if (lo >= hi) throw std::invalid_argument("DiscretePid::withLimits: lo must be < hi");
    limited_ = true;
    setParam("lo", lo);
    setParam("hi", hi);
    return *this;
}

void DiscretePid::outputs(double, std::span<const double>) { out_.set(held_); }

void DiscretePid::update(double t, std::span<double>) {
    if (first_) {
        nextSample_ = t;
        prevError_ = in_.get();
        first_ = false;
    }
    if (t + 1e-12 < nextSample_) return;
    const double ts = param("period");
    const double e = in_.get();
    const double d = (e - prevError_) / ts;
    prevError_ = e;

    // Trial value with the candidate integral; conditional integration
    // rejects the update only when it would push further into saturation.
    const double trial =
        param("kp") * e + param("ki") * (integral_ + ts * e) + param("kd") * d;
    if (!limited_) {
        integral_ += ts * e;
        held_ = trial;
    } else {
        const double lo = param("lo"), hi = param("hi");
        const bool windingUp = (trial > hi && e > 0) || (trial < lo && e < 0);
        if (!windingUp) integral_ += ts * e;
        held_ = std::clamp(param("kp") * e + param("ki") * integral_ + param("kd") * d, lo, hi);
    }
    while (nextSample_ <= t + 1e-12) nextSample_ += ts;
}

} // namespace urtx::control
