#pragma once
/// \file discrete.hpp
/// Discrete-time (sampled) control blocks — the *difference equation* half
/// of the paper's hybrid systems ("whose behaviors can be described by
/// difference equations and differential equations respectively").
///
/// These blocks sample their input every "period" seconds during the
/// update pass and hold their output between samples, exactly how a
/// digital controller deployed in a capsule would run off a periodic
/// timer. The recursion itself is solver::DifferenceEquation.
///
/// Visibility semantics: a sample taken at major-step boundary t becomes
/// visible to downstream blocks at the *next* outputs pass (one boundary
/// later) — the one-step computational delay every sampled controller in
/// a real loop exhibits.

#include <span>
#include <string>

#include "control/math_blocks.hpp"
#include "solver/difference.hpp"

namespace urtx::control {

/// Sampled linear filter y = H(z) u with H = B(z)/A(z) (direct form II
/// transposed), ZOH output.
class DiscreteTransferFunction final : public SisoBlock {
public:
    DiscreteTransferFunction(std::string name, Streamer* parent, std::vector<double> b,
                             std::vector<double> a, double period);

    bool directFeedthrough() const override { return false; }
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

    std::size_t samplesTaken() const { return eq_.samples(); }

private:
    solver::DifferenceEquation eq_;
    double held_ = 0.0;
    double nextSample_ = 0.0;
    bool first_ = true;
};

/// Positional-form discrete PID with derivative filtering and output
/// clamping:
///   i[k] = i[k-1] + Ts e[k]
///   d[k] = (e[k] - e[k-1]) / Ts   (first difference)
///   u[k] = clamp(kp e + ki i + kd d)
/// Conditional integration stops windup while clamped.
class DiscretePid final : public SisoBlock {
public:
    DiscretePid(std::string name, Streamer* parent, double kp, double ki, double kd,
                double period);
    DiscretePid& withLimits(double lo, double hi);

    bool directFeedthrough() const override { return false; }
    void outputs(double t, std::span<const double> x) override;
    void update(double t, std::span<double> x) override;

    double integralState() const { return integral_; }

private:
    bool limited_ = false;
    double integral_ = 0.0;
    double prevError_ = 0.0;
    double held_ = 0.0;
    double nextSample_ = 0.0;
    bool first_ = true;
};

} // namespace urtx::control
