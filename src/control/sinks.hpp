#pragma once
/// \file sinks.hpp
/// Sink blocks: observation points of a streamer network.

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "flow/streamer.hpp"

namespace urtx::control {

using flow::DPort;
using flow::DPortDir;
using flow::FlowType;
using flow::Streamer;

/// Records the input value at every major step boundary.
class Recorder final : public Streamer {
public:
    Recorder(std::string name, Streamer* parent)
        : Streamer(std::move(name), parent), in_(*this, "in", DPortDir::In, FlowType::real()) {}

    DPort& in() { return in_; }
    bool directFeedthrough() const override { return false; }
    void update(double t, std::span<double>) override { samples_.emplace_back(t, in_.get()); }

    struct Sample {
        double t;
        double v;
        Sample(double tt, double vv) : t(tt), v(vv) {}
    };
    const std::vector<Sample>& samples() const { return samples_; }
    std::size_t size() const { return samples_.size(); }
    double last() const { return samples_.empty() ? 0.0 : samples_.back().v; }
    void clear() { samples_.clear(); }

    /// Largest |v| recorded.
    double peakAbs() const;
    /// First time |v - target| stays within band until the end; -1 if never.
    double settlingTime(double target, double band) const;

private:
    DPort in_;
    std::vector<Sample> samples_;
};

/// Streams "t,value" rows into a CSV file at every major step.
class CsvSink final : public Streamer {
public:
    CsvSink(std::string name, Streamer* parent, const std::string& path, std::string header = "");
    DPort& in() { return in_; }
    bool directFeedthrough() const override { return false; }
    void update(double t, std::span<double>) override;
    std::size_t rows() const { return rows_; }

private:
    DPort in_;
    std::ofstream file_;
    std::size_t rows_ = 0;
};

} // namespace urtx::control
