#include "flow/network.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "flow/sport.hpp"

namespace urtx::flow {

Network::Network(Streamer& root) : Network(root, NetworkOptions{}) {}

Network::Network(Streamer& root, const NetworkOptions& opts) : root_(&root), opts_(opts) {
    collectLeaves(root);
    resolvePorts();
    topoSort();
    // Pack states following the final execution order.
    offsets_.resize(order_.size());
    stateSize_ = 0;
    for (std::size_t i = 0; i < order_.size(); ++i) {
        offsets_[i] = stateSize_;
        stateSize_ += order_[i]->stateSize();
    }
    for (Streamer* leaf : order_) {
        if (leaf->hasEvent()) eventLeaves_.push_back(leaf);
    }
}

void Network::collectLeaves(Streamer& s) {
    for (SPort* sp : s.sports()) sports_.push_back(sp);
    if (!s.isComposite()) {
        order_.push_back(&s);
        return;
    }
    for (DPort* p : s.dports()) boundaryPorts_.push_back(p);
    for (Streamer* c : s.subStreamers()) collectLeaves(*c);
}

void Network::resolvePorts() {
    // For every port with an upstream chain, chase to the ultimate leaf Out
    // port, composing projections along the way.
    auto resolve = [](DPort& p) -> void {
        DPort* src = p.fedBy();
        if (!src) {
            p.clearResolved();
            return;
        }
        // Start with the direct edge's projection.
        auto proj = FlowType::projection(src->type(), p.type());
        if (!proj) throw std::logic_error("Network: projection failed on " + p.fullName());
        // Chase through composite boundary ports.
        while (src->fedBy() && src->owner().isComposite()) {
            DPort* up = src->fedBy();
            auto hop = FlowType::projection(up->type(), src->type());
            if (!hop)
                throw std::logic_error("Network: projection failed on " + src->fullName());
            // compose: final[k] = hop[proj[k]]
            for (std::size_t& slot : *proj) slot = (*hop)[slot];
            src = up;
        }
        if (src->owner().isComposite()) {
            // Chain ends at an unfed composite boundary port: dangling.
            // Leave unresolved; the boundary buffer acts as external input.
            p.bindResolved(src, std::move(*proj));
            return;
        }
        p.bindResolved(src, std::move(*proj));
    };

    for (Streamer* leaf : order_) {
        for (DPort* p : leaf->dports()) {
            if (p->dir() == DPortDir::In) {
                resolve(*p);
                if (p->isResolved()) ++connections_;
            }
        }
    }
    for (DPort* p : boundaryPorts_) resolve(*p);
    // Boundary ports with no upstream stay unresolved (external inputs).
    boundaryPorts_.erase(std::remove_if(boundaryPorts_.begin(), boundaryPorts_.end(),
                                        [](DPort* p) { return !p->isResolved(); }),
                         boundaryPorts_.end());
}

void Network::topoSort() {
    // Edge u -> v when v has direct feedthrough and reads (transitively)
    // from an out port of u.
    std::map<Streamer*, std::size_t> indeg;
    std::map<Streamer*, std::vector<Streamer*>> adj;
    for (Streamer* leaf : order_) indeg[leaf] = 0;

    for (Streamer* v : order_) {
        if (!v->directFeedthrough()) continue;
        for (DPort* p : v->dports()) {
            if (p->dir() != DPortDir::In || !p->isResolved()) continue;
            Streamer* u = &p->resolvedSource()->owner();
            if (u == v || u->isComposite()) continue;
            adj[u].push_back(v);
            ++indeg[v];
        }
    }

    std::vector<Streamer*> ready;
    // Seed with the original (declaration) order for determinism.
    for (Streamer* leaf : order_) {
        if (indeg[leaf] == 0) ready.push_back(leaf);
    }
    std::vector<Streamer*> sorted;
    sorted.reserve(order_.size());
    for (std::size_t i = 0; i < ready.size(); ++i) {
        Streamer* u = ready[i];
        sorted.push_back(u);
        for (Streamer* v : adj[u]) {
            if (--indeg[v] == 0) ready.push_back(v);
        }
    }
    if (sorted.size() != order_.size()) {
        if (!opts_.allowAlgebraicLoops) {
            std::string cycle;
            for (Streamer* leaf : order_) {
                if (indeg[leaf] > 0) {
                    if (!cycle.empty()) cycle += ", ";
                    cycle += leaf->fullPath();
                }
            }
            throw std::logic_error(
                "Network: algebraic loop among feedthrough streamers {" + cycle +
                "}; break it with a non-feedthrough block (e.g. an Integrator) or "
                "enable NetworkOptions::allowAlgebraicLoops");
        }
        // Append the loop members in declaration order; computeOutputs will
        // iterate them to a fixed point.
        for (Streamer* leaf : order_) {
            if (indeg[leaf] > 0) {
                sorted.push_back(leaf);
                loopMembers_.push_back(leaf);
            }
        }
    }
    order_ = std::move(sorted);
}

void Network::solveLoops(double t, const solver::Vec& x) const {
    // Gauss–Seidel sweeps over the loop members until their outputs settle.
    std::vector<double> prev;
    for (int iter = 0; iter < opts_.loopMaxIterations; ++iter) {
        prev.clear();
        for (Streamer* leaf : loopMembers_) {
            for (DPort* p : leaf->dports()) {
                if (p->dir() == DPortDir::Out) {
                    prev.insert(prev.end(), p->values().begin(), p->values().end());
                }
            }
        }
        for (Streamer* leaf : loopMembers_) {
            for (DPort* p : leaf->dports()) {
                if (p->dir() == DPortDir::In) p->refresh();
            }
            leaf->outputs(t, stateOf(*leaf, x));
        }
        double delta = 0.0;
        std::size_t k = 0;
        for (Streamer* leaf : loopMembers_) {
            for (DPort* p : leaf->dports()) {
                if (p->dir() == DPortDir::Out) {
                    for (double v : p->values()) {
                        delta = std::max(delta, std::abs(v - prev[k++]));
                    }
                }
            }
        }
        if (delta < opts_.loopTolerance) {
            lastLoopIterations_ = iter + 1;
            return;
        }
    }
    throw std::runtime_error(
        "Network: algebraic loop did not converge within the iteration budget "
        "(contractive loops only — check loop gain < 1)");
}

std::size_t Network::offsetOf(const Streamer& leaf) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == &leaf) return offsets_[i];
    }
    throw std::logic_error("Network: streamer '" + leaf.fullPath() + "' is not a leaf here");
}

std::span<double> Network::stateOf(const Streamer& leaf, solver::Vec& x) const {
    return {x.data() + offsetOf(leaf), leaf.stateSize()};
}

std::span<const double> Network::stateOf(const Streamer& leaf, const solver::Vec& x) const {
    return {x.data() + offsetOf(leaf), leaf.stateSize()};
}

void Network::initState(double t, solver::Vec& x) const {
    x.assign(stateSize_, 0.0);
    for (std::size_t i = 0; i < order_.size(); ++i) {
        Streamer* leaf = order_[i];
        leaf->initState(t, {x.data() + offsets_[i], leaf->stateSize()});
    }
}

void Network::computeOutputs(double t, const solver::Vec& x) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
        Streamer* leaf = order_[i];
        for (DPort* p : leaf->dports()) {
            if (p->dir() == DPortDir::In) p->refresh();
        }
        leaf->outputs(t, {x.data() + offsets_[i], leaf->stateSize()});
    }
    if (!loopMembers_.empty()) solveLoops(t, x);
    // Final refresh: non-feedthrough leaves may be ordered before their
    // producers; make every input consistent with the outputs just written
    // so observers (update pass, recorders, event functions) see one
    // coherent snapshot.
    for (Streamer* leaf : order_) {
        for (DPort* p : leaf->dports()) {
            if (p->dir() == DPortDir::In) p->refresh();
        }
    }
    for (DPort* p : boundaryPorts_) p->refresh();
}

void Network::derivatives(double t, const solver::Vec& x, solver::Vec& dxdt) const {
    computeOutputs(t, x);
    dxdt.assign(stateSize_, 0.0);
    for (std::size_t i = 0; i < order_.size(); ++i) {
        Streamer* leaf = order_[i];
        if (leaf->stateSize() == 0) continue;
        for (DPort* p : leaf->dports()) {
            if (p->dir() == DPortDir::In) p->refresh();
        }
        leaf->derivatives(t, {x.data() + offsets_[i], leaf->stateSize()},
                          {dxdt.data() + offsets_[i], leaf->stateSize()});
    }
}

void Network::update(double t, solver::Vec& x) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
        Streamer* leaf = order_[i];
        leaf->update(t, {x.data() + offsets_[i], leaf->stateSize()});
    }
}

double Network::eventValue(std::size_t k, double t, const solver::Vec& x) const {
    computeOutputs(t, x);
    const Streamer* leaf = eventLeaves_.at(k);
    return leaf->eventFunction(t, stateOf(*leaf, x));
}

} // namespace urtx::flow
