#pragma once
/// \file relay.hpp
/// The paper's "relay" connector: "a relay point which generates two
/// similar flows from a flow."
///
/// Implemented as a leaf streamer with one input DPort and N (default 2)
/// output DPorts of the same flow type; its behaviour copies the input to
/// every output each propagation pass. Because plain flows are strictly
/// point-to-point (see flow()), Relay is the only way to fan a flow out.

#include <memory>
#include <span>
#include <vector>

#include "flow/streamer.hpp"

namespace urtx::flow {

class Relay final : public Streamer {
public:
    /// \p fanout >= 2 per the paper ("two similar flows"); more allowed.
    Relay(std::string name, Streamer* parent, FlowType type, std::size_t fanout = 2);

    DPort& in() { return *in_; }
    /// i in [0, fanout).
    DPort& out(std::size_t i) { return *outs_.at(i); }
    std::size_t fanout() const { return outs_.size(); }

    bool directFeedthrough() const override { return true; }
    void outputs(double t, std::span<const double> x) override;

private:
    std::unique_ptr<DPort> in_;
    std::vector<std::unique_ptr<DPort>> outs_;
};

} // namespace urtx::flow
