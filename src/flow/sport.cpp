#include "flow/sport.hpp"

#include "flow/streamer.hpp"
#include "obs/obs.hpp"

namespace urtx::flow {

/// Internal capsule giving the SPort an address in the UML-RT world. It
/// deliberately has no controller: message delivery runs synchronously on
/// the *sender's* thread and merely enqueues into the SPort inbox, which is
/// exactly the thread hand-off the paper prescribes.
class SPort::Agent final : public rt::Capsule {
public:
    Agent(SPort& sp, std::string name, const rt::Protocol& proto, bool conjugated)
        : rt::Capsule(std::move(name)), port(*this, "signal", proto, conjugated), sport_(sp) {}

    rt::Port port;

protected:
    void onMessage(const rt::Message& m) override { sport_.enqueue(m); }

private:
    SPort& sport_;
};

SPort::SPort(Streamer& owner, std::string name, const rt::Protocol& proto, bool conjugated)
    : owner_(&owner), name_(std::move(name)) {
    agent_ = std::make_unique<Agent>(*this, owner_->fullPath() + ":" + name_, proto, conjugated);
    owner_->registerSPort(this);
}

SPort::~SPort() { owner_->unregisterSPort(this); }

const rt::Protocol& SPort::protocol() const { return agent_->port.protocol(); }
bool SPort::conjugated() const { return agent_->port.conjugated(); }
rt::Port& SPort::rtPort() { return agent_->port; }

bool SPort::send(std::string_view sig, std::any data, rt::Priority prio) {
    if (obs::metricsOn()) obs::wellknown().flowSportSends->inc();
    return agent_->port.send(sig, std::move(data), prio);
}

bool SPort::send(rt::SignalId sig, std::any data, rt::Priority prio) {
    if (obs::metricsOn()) obs::wellknown().flowSportSends->inc();
    return agent_->port.send(sig, std::move(data), prio);
}

std::uint64_t SPort::sent() const { return agent_->port.sent(); }

void SPort::enqueue(const rt::Message& m) {
    std::size_t depth;
    {
        std::lock_guard lock(mu_);
        inbox_.push_back(m);
        ++received_;
        depth = inbox_.size();
        if (depth > inboxHwm_) inboxHwm_ = depth;
    }
    if (obs::metricsOn()) {
        obs::wellknown().flowSportInboxHwm->max(static_cast<double>(depth));
    }
}

std::size_t SPort::pending() const {
    std::lock_guard lock(mu_);
    return inbox_.size();
}

std::size_t SPort::drain() {
    std::deque<rt::Message> batch;
    {
        std::lock_guard lock(mu_);
        batch.swap(inbox_);
    }
    if (!batch.empty() && obs::metricsOn()) {
        obs::wellknown().flowSportDrained->add(batch.size());
    }
    const bool causal = obs::causalOn();
    for (const rt::Message& m : batch) {
        // Span close site: m.spanId == 0 covers both "tracking was off at
        // emit" and "the sampler skipped this span" — either way the
        // message crosses the boundary without causal work.
        if (causal && m.spanId) rt::obs_detail::onHandle(m, "sport.drain");
        owner_->onSignal(*this, m);
    }
    return batch.size();
}

std::size_t SPort::clearInbox() {
    std::lock_guard lock(mu_);
    const std::size_t dropped = inbox_.size();
    inbox_.clear();
    return dropped;
}

} // namespace urtx::flow
