#pragma once
/// \file solver_runner.hpp
/// The solver: the behaviour engine of a streamer network.
///
/// "In a streamer, there is a solver responsible for receiving signal from
/// SPorts and data from DPorts and operating system services, modifying
/// parameters, computing equations, and sending out the results."
///
/// SolverRunner is the Strategy *context* of the paper's Figure 1: it owns
/// a flattened Network plus an interchangeable Integrator strategy
/// (ConcreteStrategyA/B/C = Euler/RK4/RK45/...), and advances continuous
/// time in major steps:
///
///   1. drain every SPort (signals may change parameters / modes)
///   2. integrate the packed ODE across the step with the strategy
///   3. detect & localize zero crossings; truncate the step and call
///      Streamer::onEvent at the crossing (which typically sends a signal
///      back to the capsule world)
///   4. run the discrete update pass and the probe at the boundary

#include <functional>
#include <limits>
#include <memory>

#include "flow/network.hpp"
#include "solver/integrator.hpp"
#include "solver/zero_crossing.hpp"

namespace urtx::flow {

class SolverRunner {
public:
    /// \p majorDt: the communication/major step size (probe & update grid).
    SolverRunner(Streamer& root, std::unique_ptr<solver::Integrator> method, double majorDt);
    /// With network options (e.g. iterative algebraic-loop solving).
    SolverRunner(Streamer& root, std::unique_ptr<solver::Integrator> method, double majorDt,
                 const NetworkOptions& opts);

    Network& network() { return net_; }
    const Network& network() const { return net_; }

    /// Swap the integration strategy at runtime (paper Figure 1). The
    /// continuous state is preserved.
    void setIntegrator(std::unique_ptr<solver::Integrator> method);
    solver::Integrator& integrator() { return *method_; }

    double majorDt() const { return majorDt_; }
    void setMajorDt(double dt);

    /// Initialize states, prime event detection, run the first outputs
    /// pass. Idempotent.
    void initialize(double t0 = 0.0);
    bool initialized() const { return initialized_; }

    /// Rewind an initialized runner to \p t0 for another run of the same
    /// network: drop undrained SPort messages, re-evaluate initial states
    /// from the (caller-restored) streamer parameters, reset the integrator
    /// strategy, and re-prime event detection. Zero-crossing surfaces stay
    /// registered — only their primed values are refreshed. Step counters
    /// are zeroed so per-run statistics start clean. No-op when the runner
    /// was never initialized.
    void reset(double t0 = 0.0);

    /// Advance one major step (signals -> integrate [-> events] -> update).
    void step();

    /// Advance one (possibly truncated) major step ending exactly at
    /// \p tEnd. step() == stepTo(time() + majorDt()).
    void stepTo(double tEnd);

    /// Advance in majorDt strides until time() >= tTarget (within 1e-12).
    /// Strides never cross \p tLimit: the stride that would overshoot it is
    /// truncated to land exactly on the limit. The executors pass their run
    /// horizon so the final grid step ends exactly at tEnd; the default
    /// (+inf) keeps the historical overshoot-to-the-next-major-boundary
    /// behaviour for direct callers.
    void advanceTo(double tTarget,
                   double tLimit = std::numeric_limits<double>::infinity());

    /// Messages queued on this runner's SPorts and not yet drained — work
    /// the solver will consume at its next step boundary. Thread-safe.
    std::size_t pendingSignals() const;

    /// True when this network can emit observable work from *inside* an
    /// advanceTo() span: a leaf exposes a zero-crossing surface (onEvent
    /// typically sends a signal toward the capsule world) or any streamer
    /// owns an SPort (update()/onEvent() may call SPort::send() at any
    /// major-step boundary). Structural — fixed once the network is
    /// flattened. The executor refuses to coalesce grid steps for such
    /// runners, because it cannot foresee mid-span emissions.
    bool canEmitMidSpan() const;

    double time() const { return t_; }
    const solver::Vec& state() const { return x_; }
    solver::Vec& state() { return x_; }

    /// Observation hook invoked after every major step boundary.
    using Probe = std::function<void(double t, const Network& net)>;
    void setProbe(Probe p) { probe_ = std::move(p); }

    std::uint64_t majorSteps() const { return majorSteps_; }
    /// Integration segments taken inside major steps (>= majorSteps(); the
    /// excess is event-truncation restarts).
    std::uint64_t minorSteps() const { return minorSteps_; }
    std::uint64_t signalsProcessed() const { return signalsProcessed_; }
    std::uint64_t eventsFired() const { return eventsFired_; }

private:
    void drainSignals();
    /// Integrate from t_ toward tEnd; stops early at a zero crossing.
    void integrateSegment(double tEnd);

    Network net_;
    std::unique_ptr<solver::Integrator> method_;
    Network::Ode ode_;
    solver::ZeroCrossingDetector detector_;
    double majorDt_;
    double t_ = 0.0;
    solver::Vec x_;
    Probe probe_;
    bool initialized_ = false;
    std::uint64_t majorSteps_ = 0;
    std::uint64_t minorSteps_ = 0;
    std::uint64_t signalsProcessed_ = 0;
    std::uint64_t eventsFired_ = 0;
};

} // namespace urtx::flow
