#pragma once
/// \file time.hpp
/// The "Time" stereotype: "a continuous variable [that] can be used as
/// simulation clock", replacing UML-RT's unpredictable timing.
///
/// Time is a shared handle onto a VirtualClock: the simulation engine
/// advances it; capsules (through their controller) and solvers read it.
/// Being a plain continuous value, it may also be fed into the dataflow
/// world — TimeSourceStreamer exposes it on an output DPort.

#include <memory>
#include <span>

#include "flow/streamer.hpp"
#include "rt/clock.hpp"

namespace urtx::flow {

class Time {
public:
    /// Fresh simulation clock starting at \p t0.
    explicit Time(double t0 = 0.0) : clock_(std::make_shared<rt::VirtualClock>(t0)) {}
    /// Wrap an existing clock (shared with controllers).
    explicit Time(std::shared_ptr<rt::VirtualClock> c) : clock_(std::move(c)) {}

    double now() const { return clock_->now(); }
    operator double() const { return now(); } // NOLINT: deliberate continuous-variable feel

    void advanceTo(double t) { clock_->advanceTo(t); }
    void advanceBy(double dt) { clock_->advanceBy(dt); }
    /// Rewind between runs (see rt::VirtualClock::resetTo).
    void resetTo(double t) { clock_->resetTo(t); }

    const std::shared_ptr<rt::VirtualClock>& clock() const { return clock_; }

private:
    std::shared_ptr<rt::VirtualClock> clock_;
};

/// A leaf streamer whose single output DPort carries the current
/// simulation time — the Time stereotype made available to equations.
class TimeSourceStreamer final : public Streamer {
public:
    TimeSourceStreamer(std::string name, Streamer* parent)
        : Streamer(std::move(name), parent),
          out_(*this, "t", DPortDir::Out, FlowType::real()) {}

    DPort& out() { return out_; }

    void outputs(double t, std::span<const double> /*x*/) override { out_.set(t); }
    bool directFeedthrough() const override { return false; } // depends on t only

private:
    DPort out_;
};

} // namespace urtx::flow
