#pragma once
/// \file streamer.hpp
/// Streamers: the paper's continuous counterpart of capsules.
///
/// "Streamers have some same characteristics as capsules. As such,
/// streamers have ports through which they communicate with other objects,
/// and they can contain any number of sub-streamers. [They] are
/// distinguished from capsules by their behaviors, which is implemented by
/// a solver through computing equations."
///
/// A *composite* streamer only provides structure: sub-streamers, boundary
/// DPorts and internal flows. A *leaf* streamer provides behaviour through
/// the virtual hooks below, which the solver (see SolverRunner) drives:
///
///   stateSize()/initState()  — contributes continuous states x
///   derivatives()            — dx/dt = f(t, x, u) with u read from DPorts
///   outputs()                — writes output DPorts from (t, x, u)
///   update()                 — discrete change at major-step boundaries
///   hasEvent()/eventFunction() — zero-crossing event surface g(t, x)
///   onEvent()                — reaction when g crosses zero
///   onSignal()               — reaction to SPort messages (parameter
///                              changes etc.), executed between steps
///
/// Per the paper, streamers never contain capsules; capsules may contain
/// streamers (see sim::HybridSystem).

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flow/dport.hpp"
#include "rt/message.hpp"

namespace urtx::flow {

class SPort;

class Streamer {
public:
    explicit Streamer(std::string name, Streamer* parent = nullptr);
    virtual ~Streamer();

    Streamer(const Streamer&) = delete;
    Streamer& operator=(const Streamer&) = delete;

    // -- structure -----------------------------------------------------------
    const std::string& name() const { return name_; }
    std::string fullPath() const;
    Streamer* parent() const { return parent_; }
    const std::vector<Streamer*>& subStreamers() const { return children_; }
    bool isComposite() const { return !children_.empty(); }

    const std::vector<DPort*>& dports() const { return dports_; }
    DPort* findDPort(std::string_view name) const;
    const std::vector<SPort*>& sports() const { return sports_; }
    SPort* findSPort(std::string_view name) const;

    // -- parameters (tuned by solvers on signal reception) --------------------
    void setParam(const std::string& key, double value) { params_[key] = value; }
    double param(const std::string& key, double fallback = 0.0) const;
    bool hasParam(const std::string& key) const { return params_.count(key) > 0; }
    const std::map<std::string, double>& params() const { return params_; }
    /// Replace the whole parameter map (snapshot restore on system reset).
    void restoreParams(std::map<std::string, double> snapshot) { params_ = std::move(snapshot); }

    // -- leaf behaviour hooks --------------------------------------------------
    /// Number of continuous states this leaf contributes.
    virtual std::size_t stateSize() const { return 0; }
    /// Write initial values into this leaf's state segment.
    virtual void initState(double t, std::span<double> x);
    /// dx/dt for this leaf's segment; inputs are fresh in the DPort buffers.
    virtual void derivatives(double t, std::span<const double> x, std::span<double> dxdt);
    /// Write output DPorts from (t, state, inputs).
    virtual void outputs(double t, std::span<const double> x);
    /// Discrete update at a major step boundary; may rewrite the state.
    virtual void update(double t, std::span<double> x);
    /// Do this leaf's outputs depend algebraically on its inputs?
    virtual bool directFeedthrough() const { return true; }
    /// Does this leaf expose a zero-crossing event function?
    virtual bool hasEvent() const { return false; }
    /// Event surface g(t, x); a sign change triggers onEvent().
    virtual double eventFunction(double t, std::span<const double> x) const;
    /// Reaction at a localized crossing (typically: send a signal out an
    /// SPort toward the capsule world).
    virtual void onEvent(double t, bool rising);
    /// Optional impulsive state reset applied right after onEvent() with
    /// this leaf's state segment (e.g. restitution v := -e v). Return true
    /// when \p x was modified so the solver re-propagates outputs.
    virtual bool onEventReset(double t, std::span<double> x);
    /// Reaction to a message drained from one of this streamer's SPorts.
    virtual void onSignal(SPort& port, const rt::Message& m);

    // suppress unused-parameter warnings in default implementations
protected:
    friend class DPort;
    friend class SPort;
    void registerDPort(DPort* p) { dports_.push_back(p); }
    void unregisterDPort(DPort* p);
    void registerSPort(SPort* p) { sports_.push_back(p); }
    void unregisterSPort(SPort* p);

private:
    std::string name_;
    Streamer* parent_;
    std::vector<Streamer*> children_;
    std::vector<DPort*> dports_;
    std::vector<SPort*> sports_;
    std::map<std::string, double> params_;
};

} // namespace urtx::flow
