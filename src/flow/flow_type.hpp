#pragma once
/// \file flow_type.hpp
/// Flow types: the extension's replacement for protocols on data ports.
///
/// The paper's rule: "To connect two DPorts, the output DPort's flow type
/// must be a subset of the input DPort's flow type." We interpret types as
/// value sets and implement structural subset:
///
///   Bool ⊆ Int ⊆ Real                       (numeric widening)
///   Vector<T,n> ⊆ Vector<U,n>  iff  T ⊆ U    (element covariance)
///   Record{..} ⊆ Record{..}    iff  every field of the *input* record is
///                                   present in the output with a subset
///                                   type (width + depth subtyping)
///
/// Values travel as flat double buffers laid out depth-first; projection()
/// computes the slot mapping an input port uses to read from a subset-typed
/// source, so runtime data transfer is just indexed copies.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace urtx::flow {

class FlowType {
public:
    enum class Kind { Bool, Int, Real, Vector, Record };

    struct Field; // defined after the class (holds a FlowType by value)

    // -- constructors ------------------------------------------------------
    static FlowType boolean();
    static FlowType integer();
    static FlowType real();
    static FlowType vector(FlowType elem, std::size_t count);
    static FlowType record(std::vector<Field> fields);

    FlowType() : FlowType(real()) {} ///< default: scalar Real

    // -- inspection --------------------------------------------------------
    Kind kind() const { return kind_; }
    bool isScalar() const {
        return kind_ == Kind::Bool || kind_ == Kind::Int || kind_ == Kind::Real;
    }
    /// Number of scalar slots in the flat layout.
    std::size_t width() const { return width_; }
    /// Vector element type (Kind::Vector only).
    const FlowType& element() const;
    /// Vector length (Kind::Vector only).
    std::size_t count() const { return count_; }
    /// Record fields (Kind::Record only).
    const std::vector<Field>& fields() const;
    /// Offset of a record field in the flat layout; nullopt when absent.
    std::optional<std::size_t> fieldOffset(const std::string& name) const;
    /// Type of a record field; nullptr when absent.
    const FlowType* fieldType(const std::string& name) const;

    // -- relations ---------------------------------------------------------
    /// Structural equality.
    bool equals(const FlowType& o) const;
    /// Paper rule: is this type's value set contained in \p o's?
    bool subsetOf(const FlowType& o) const;

    /// Slot mapping for a legal out ⊆ in connection: result[k] is the slot
    /// in the *output* layout feeding slot k of the *input* layout.
    /// nullopt when !out.subsetOf(in).
    static std::optional<std::vector<std::size_t>> projection(const FlowType& out,
                                                              const FlowType& in);

    /// Render like "Vector<Real,3>" or "{pos:Real, vel:Real}".
    std::string toString() const;

private:
    FlowType(Kind k, std::size_t width) : kind_(k), width_(width) {}

    static bool scalarSubset(Kind a, Kind b);
    static bool buildProjection(const FlowType& out, std::size_t outBase, const FlowType& in,
                                std::size_t inBase, std::vector<std::size_t>& map);

    Kind kind_;
    std::size_t width_;
    std::size_t count_ = 0;                       // Vector
    std::shared_ptr<const FlowType> elem_;        // Vector
    std::shared_ptr<const std::vector<Field>> fields_; // Record
};

struct FlowType::Field {
    std::string name;
    FlowType type;
};

} // namespace urtx::flow
