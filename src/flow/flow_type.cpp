#include "flow/flow_type.hpp"

#include <stdexcept>

namespace urtx::flow {

FlowType FlowType::boolean() { return FlowType(Kind::Bool, 1); }
FlowType FlowType::integer() { return FlowType(Kind::Int, 1); }
FlowType FlowType::real() { return FlowType(Kind::Real, 1); }

FlowType FlowType::vector(FlowType elem, std::size_t count) {
    if (count == 0) throw std::invalid_argument("FlowType::vector: zero length");
    FlowType t(Kind::Vector, elem.width() * count);
    t.count_ = count;
    t.elem_ = std::make_shared<const FlowType>(std::move(elem));
    return t;
}

FlowType FlowType::record(std::vector<Field> fields) {
    if (fields.empty()) throw std::invalid_argument("FlowType::record: no fields");
    for (std::size_t i = 0; i < fields.size(); ++i)
        for (std::size_t j = i + 1; j < fields.size(); ++j)
            if (fields[i].name == fields[j].name)
                throw std::invalid_argument("FlowType::record: duplicate field '" +
                                            fields[i].name + "'");
    std::size_t w = 0;
    for (const Field& f : fields) w += f.type.width();
    FlowType t(Kind::Record, w);
    t.fields_ = std::make_shared<const std::vector<Field>>(std::move(fields));
    return t;
}

const FlowType& FlowType::element() const {
    if (kind_ != Kind::Vector) throw std::logic_error("FlowType::element: not a vector");
    return *elem_;
}

const std::vector<FlowType::Field>& FlowType::fields() const {
    if (kind_ != Kind::Record) throw std::logic_error("FlowType::fields: not a record");
    return *fields_;
}

std::optional<std::size_t> FlowType::fieldOffset(const std::string& name) const {
    if (kind_ != Kind::Record) return std::nullopt;
    std::size_t off = 0;
    for (const Field& f : *fields_) {
        if (f.name == name) return off;
        off += f.type.width();
    }
    return std::nullopt;
}

const FlowType* FlowType::fieldType(const std::string& name) const {
    if (kind_ != Kind::Record) return nullptr;
    for (const Field& f : *fields_) {
        if (f.name == name) return &f.type;
    }
    return nullptr;
}

bool FlowType::equals(const FlowType& o) const {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
        case Kind::Bool:
        case Kind::Int:
        case Kind::Real:
            return true;
        case Kind::Vector:
            return count_ == o.count_ && elem_->equals(*o.elem_);
        case Kind::Record: {
            if (fields_->size() != o.fields_->size()) return false;
            for (std::size_t i = 0; i < fields_->size(); ++i) {
                const Field& a = (*fields_)[i];
                const Field& b = (*o.fields_)[i];
                if (a.name != b.name || !a.type.equals(b.type)) return false;
            }
            return true;
        }
    }
    return false;
}

bool FlowType::scalarSubset(Kind a, Kind b) {
    auto rank = [](Kind k) {
        switch (k) {
            case Kind::Bool: return 0;
            case Kind::Int: return 1;
            case Kind::Real: return 2;
            default: return -1;
        }
    };
    const int ra = rank(a), rb = rank(b);
    return ra >= 0 && rb >= 0 && ra <= rb;
}

bool FlowType::subsetOf(const FlowType& o) const {
    if (isScalar() && o.isScalar()) return scalarSubset(kind_, o.kind_);
    if (kind_ == Kind::Vector && o.kind_ == Kind::Vector)
        return count_ == o.count_ && elem_->subsetOf(*o.elem_);
    if (kind_ == Kind::Record && o.kind_ == Kind::Record) {
        // Every field the input expects must be provided with a subset type.
        for (const Field& need : *o.fields_) {
            const FlowType* have = fieldType(need.name);
            if (!have || !have->subsetOf(need.type)) return false;
        }
        return true;
    }
    return false;
}

bool FlowType::buildProjection(const FlowType& out, std::size_t outBase, const FlowType& in,
                               std::size_t inBase, std::vector<std::size_t>& map) {
    if (out.isScalar() && in.isScalar()) {
        if (!scalarSubset(out.kind_, in.kind_)) return false;
        map[inBase] = outBase;
        return true;
    }
    if (out.kind_ == Kind::Vector && in.kind_ == Kind::Vector) {
        if (out.count_ != in.count_) return false;
        const std::size_t ow = out.elem_->width();
        const std::size_t iw = in.elem_->width();
        for (std::size_t i = 0; i < out.count_; ++i) {
            if (!buildProjection(*out.elem_, outBase + i * ow, *in.elem_, inBase + i * iw, map))
                return false;
        }
        return true;
    }
    if (out.kind_ == Kind::Record && in.kind_ == Kind::Record) {
        std::size_t inOff = inBase;
        for (const Field& need : *in.fields_) {
            const auto srcOff = out.fieldOffset(need.name);
            const FlowType* srcType = out.fieldType(need.name);
            if (!srcOff || !srcType) return false;
            if (!buildProjection(*srcType, outBase + *srcOff, need.type, inOff, map))
                return false;
            inOff += need.type.width();
        }
        return true;
    }
    return false;
}

std::optional<std::vector<std::size_t>> FlowType::projection(const FlowType& out,
                                                             const FlowType& in) {
    std::vector<std::size_t> map(in.width(), 0);
    if (!buildProjection(out, 0, in, 0, map)) return std::nullopt;
    return map;
}

std::string FlowType::toString() const {
    switch (kind_) {
        case Kind::Bool: return "Bool";
        case Kind::Int: return "Int";
        case Kind::Real: return "Real";
        case Kind::Vector:
            return "Vector<" + elem_->toString() + "," + std::to_string(count_) + ">";
        case Kind::Record: {
            std::string s = "{";
            bool first = true;
            for (const Field& f : *fields_) {
                if (!first) s += ", ";
                first = false;
                s += f.name + ":" + f.type.toString();
            }
            return s + "}";
        }
    }
    return "?";
}

} // namespace urtx::flow
