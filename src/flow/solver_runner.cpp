#include "flow/solver_runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "flow/sport.hpp"
#include "obs/obs.hpp"

namespace urtx::flow {

SolverRunner::SolverRunner(Streamer& root, std::unique_ptr<solver::Integrator> method,
                           double majorDt)
    : SolverRunner(root, std::move(method), majorDt, NetworkOptions{}) {}

SolverRunner::SolverRunner(Streamer& root, std::unique_ptr<solver::Integrator> method,
                           double majorDt, const NetworkOptions& opts)
    : net_(root, opts), method_(std::move(method)), ode_(net_), majorDt_(majorDt) {
    if (!method_) throw std::invalid_argument("SolverRunner: null integrator");
    if (majorDt_ <= 0) throw std::invalid_argument("SolverRunner: majorDt must be positive");
}

void SolverRunner::setIntegrator(std::unique_ptr<solver::Integrator> method) {
    if (!method) throw std::invalid_argument("SolverRunner::setIntegrator: null integrator");
    method_ = std::move(method);
}

void SolverRunner::setMajorDt(double dt) {
    if (dt <= 0) throw std::invalid_argument("SolverRunner::setMajorDt: dt must be positive");
    majorDt_ = dt;
}

void SolverRunner::initialize(double t0) {
    if (initialized_) return;
    t_ = t0;
    net_.initState(t0, x_);
    for (std::size_t k = 0; k < net_.eventLeaves().size(); ++k) {
        const std::size_t idx = k; // capture by value
        detector_.addEvent(
            [this, idx](double t, const solver::Vec& x) { return net_.eventValue(idx, t, x); });
    }
    detector_.prime(t0, x_);
    net_.computeOutputs(t0, x_);
    initialized_ = true;
}

void SolverRunner::reset(double t0) {
    if (!initialized_) return;
    for (SPort* sp : net_.allSPorts()) sp->clearInbox();
    t_ = t0;
    net_.initState(t0, x_);
    method_->reset();
    detector_.prime(t0, x_);
    net_.computeOutputs(t0, x_);
    majorSteps_ = minorSteps_ = signalsProcessed_ = eventsFired_ = 0;
}

void SolverRunner::drainSignals() {
    for (SPort* sp : net_.allSPorts()) signalsProcessed_ += sp->drain();
}

void SolverRunner::integrateSegment(double tEnd) {
    std::vector<solver::Crossing> crossings;
    while (t_ < tEnd - 1e-15) {
        ++minorSteps_;
        const double dt = tEnd - t_;
        const solver::Vec x0 = x_;
        method_->step(ode_, t_, dt, x_);

        if (detector_.checkAll(ode_, *method_, t_, dt, x0, x_, crossings)) {
            // Truncate at the (earliest) crossing; simultaneous crossings
            // are all delivered before integration resumes.
            t_ = crossings.front().t;
            x_ = crossings.front().state;
            net_.computeOutputs(t_, x_);
            bool anyReset = false;
            const bool record = obs::causalBit(obs::kCausalRecorder);
            for (const solver::Crossing& c : crossings) {
                Streamer* leaf = net_.eventLeaves().at(c.index);
                if (record) {
                    obs::FlightRecorder::global().note(
                        "flow", 0, "zero-crossing #%zu (%s) in %s at t=%.6f", c.index,
                        c.rising ? "rising" : "falling", leaf->name().c_str(), t_);
                }
                leaf->onEvent(t_, c.rising);
                // Impulsive state reset (e.g. restitution): apply to the
                // leaf's segment.
                if (leaf->onEventReset(t_, net_.stateOf(*leaf, x_))) anyReset = true;
                ++eventsFired_;
            }
            if (anyReset) net_.computeOutputs(t_, x_);
            if (obs::metricsOn()) {
                const auto& wk = obs::wellknown();
                wk.simZeroCrossings->add(crossings.size());
                wk.simZcIterations->inc();
            }
            // The event handlers may have changed parameters or state;
            // re-prime the detector at the new point.
            detector_.prime(t_, x_);
            continue; // finish the remainder of the segment
        }
        t_ = tEnd;
    }
}

void SolverRunner::step() { stepTo(t_ + majorDt_); }

void SolverRunner::stepTo(double tEnd) {
    URTX_TRACE_SPAN("flow", "solver.step");
    if (!initialized_) initialize(t_);
    drainSignals();
    if (obs::metricsOn()) {
        const auto& wk = obs::wellknown();
        const std::uint64_t minor0 = minorSteps_;
        const std::uint64_t t0 = obs::nowNanos();
        integrateSegment(tEnd);
        wk.flowSolverStep->observe(static_cast<double>(obs::nowNanos() - t0) * 1e-9);
        wk.flowMajorSteps->inc();
        wk.flowMinorSteps->add(minorSteps_ - minor0);
    } else {
        integrateSegment(tEnd);
    }
    net_.computeOutputs(t_, x_);
    net_.update(t_, x_);
    ++majorSteps_;
    if (probe_) probe_(t_, net_);
}

void SolverRunner::advanceTo(double tTarget, double tLimit) {
    if (!initialized_) initialize(t_);
    const double lim = std::max(tTarget, tLimit); // a limit below the target cannot stall us
    while (t_ < tTarget - 1e-12) stepTo(std::min(t_ + majorDt_, lim));
}

std::size_t SolverRunner::pendingSignals() const {
    std::size_t n = 0;
    for (const SPort* sp : net_.allSPorts()) n += sp->pending();
    return n;
}

bool SolverRunner::canEmitMidSpan() const {
    return !net_.eventLeaves().empty() || !net_.allSPorts().empty();
}

} // namespace urtx::flow
