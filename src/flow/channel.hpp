#pragma once
/// \file channel.hpp
/// Thread communication primitives backing capsule <-> streamer exchange.
///
/// "Communication between capsules and streamers is realized by
/// communication mechanism of threads." Two mechanisms are provided and
/// benchmarked against each other (bench_messaging):
///
///  * SpscRing — wait-free single-producer/single-consumer ring for
///    high-rate sample streaming (e.g. device IO inside a streamer);
///  * BlockingChannel — mutex+condvar multi-producer queue used where
///    ordering with respect to other work matters.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace urtx::flow {

/// Wait-free SPSC ring buffer. Capacity is rounded up to a power of two;
/// one slot is sacrificed to distinguish full from empty.
template <class T>
class SpscRing {
public:
    explicit SpscRing(std::size_t capacity) {
        std::size_t cap = 2;
        while (cap < capacity + 1) cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    /// Producer side. Returns false when full.
    bool push(T value) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t next = (head + 1) & mask_;
        if (next == tail_.load(std::memory_order_acquire)) return false;
        buf_[head] = std::move(value);
        head_.store(next, std::memory_order_release);
        const std::size_t depth = (next - tail_.load(std::memory_order_relaxed)) & mask_;
        if (depth > hwm_.load(std::memory_order_relaxed))
            hwm_.store(depth, std::memory_order_relaxed);
        return true;
    }

    /// Highest occupancy observed by the producer (approximate: the
    /// consumer may have drained concurrently).
    std::size_t highWater() const { return hwm_.load(std::memory_order_relaxed); }

    /// Consumer side. Returns nullopt when empty.
    std::optional<T> pop() {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
        T v = std::move(buf_[tail]);
        tail_.store((tail + 1) & mask_, std::memory_order_release);
        return v;
    }

    bool empty() const {
        return tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
    }

    std::size_t size() const {
        const std::size_t h = head_.load(std::memory_order_acquire);
        const std::size_t t = tail_.load(std::memory_order_acquire);
        return (h - t) & mask_;
    }

    std::size_t capacity() const { return mask_; }

private:
    std::vector<T> buf_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> hwm_{0}; ///< written by producer only
};

/// Mutex-based MPMC FIFO with blocking and non-blocking pops.
template <class T>
class BlockingChannel {
public:
    void push(T value) {
        {
            std::lock_guard lock(mu_);
            q_.push_back(std::move(value));
            if (q_.size() > hwm_) hwm_ = q_.size();
        }
        cv_.notify_one();
    }

    /// Highest occupancy ever observed.
    std::size_t highWater() const {
        std::lock_guard lock(mu_);
        return hwm_;
    }

    std::optional<T> tryPop() {
        std::lock_guard lock(mu_);
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    /// Blocks until an element arrives or close() is called.
    std::optional<T> waitPop() {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return !q_.empty() || closed_; });
        if (q_.empty()) return std::nullopt;
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    void close() {
        {
            std::lock_guard lock(mu_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    std::size_t size() const {
        std::lock_guard lock(mu_);
        return q_.size();
    }

private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> q_;
    std::size_t hwm_ = 0;
    bool closed_ = false;
};

} // namespace urtx::flow
