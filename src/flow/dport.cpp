#include "flow/dport.hpp"

#include <stdexcept>

#include "flow/streamer.hpp"

namespace urtx::flow {

DPort::DPort(Streamer& owner, std::string name, DPortDir dir, FlowType type)
    : owner_(&owner),
      name_(std::move(name)),
      dir_(dir),
      type_(std::move(type)),
      buffer_(type_.width(), 0.0) {
    owner_->registerDPort(this);
}

DPort::~DPort() {
    if (fedBy_) {
        auto& v = fedBy_->feeds_;
        for (auto it = v.begin(); it != v.end(); ++it) {
            if (*it == this) {
                v.erase(it);
                break;
            }
        }
    }
    for (DPort* f : feeds_) f->fedBy_ = nullptr;
    owner_->unregisterDPort(this);
}

std::string DPort::fullName() const { return owner_->fullPath() + "." + name_; }

void DPort::setAll(const std::vector<double>& v) {
    if (v.size() != buffer_.size())
        throw std::invalid_argument("DPort::setAll: width mismatch on " + fullName());
    buffer_ = v;
}

void DPort::bindResolved(const DPort* leafSource, std::vector<std::size_t> projection) {
    if (projection.size() != buffer_.size())
        throw std::logic_error("DPort::bindResolved: projection width mismatch on " + fullName());
    resolvedSource_ = leafSource;
    projection_ = std::move(projection);
}

void DPort::clearResolved() {
    resolvedSource_ = nullptr;
    projection_.clear();
}

std::string checkFlow(const DPort& src, const DPort& dst) {
    if (&src == &dst) return "flow(): cannot connect a DPort to itself";

    const Streamer* sOwner = &src.owner();
    const Streamer* dOwner = &dst.owner();
    const bool sibling = src.dir() == DPortDir::Out && dst.dir() == DPortDir::In &&
                         sOwner != dOwner && sOwner->parent() == dOwner->parent();
    const bool forwardIn = src.dir() == DPortDir::In && dst.dir() == DPortDir::In &&
                           dOwner->parent() == sOwner;
    const bool forwardOut = src.dir() == DPortDir::Out && dst.dir() == DPortDir::Out &&
                            sOwner->parent() == dOwner;
    if (!sibling && !forwardIn && !forwardOut)
        return "flow(): illegal connection shape " + src.fullName() + " -> " + dst.fullName() +
               " (must be sibling out->in, parent in->child in, or child "
               "out->parent out)";

    if (dst.fedBy_)
        return "flow(): " + dst.fullName() + " is already fed by " + dst.fedBy_->fullName();
    if (!src.feeds_.empty())
        return "flow(): " + src.fullName() +
               " already feeds a flow; use a Relay to duplicate flows";

    if (!src.type().subsetOf(dst.type()))
        return "flow(): flow type " + src.type().toString() + " of " + src.fullName() +
               " is not a subset of " + dst.type().toString() + " required by " +
               dst.fullName();

    return {};
}

void flow(DPort& src, DPort& dst) {
    std::string err = checkFlow(src, dst);
    if (!err.empty()) throw std::logic_error(std::move(err));

    dst.fedBy_ = &src;
    src.feeds_.push_back(&dst);
}

} // namespace urtx::flow
