#pragma once
/// \file network.hpp
/// Flattening and scheduling of a streamer hierarchy.
///
/// A Network takes the root of a streamer tree (the "Top streamer" of the
/// paper's Figure 2), resolves every flow chain across composite
/// boundaries to its ultimate leaf source with a composed slot projection,
/// orders the leaves topologically along direct-feedthrough edges
/// (rejecting algebraic loops), and packs the continuous states of all
/// leaves into one state vector. The result is the OdeSystem a solver
/// strategy integrates.

#include <span>
#include <string>
#include <vector>

#include "flow/streamer.hpp"
#include "solver/ode.hpp"

namespace urtx::flow {

class SPort;

/// Tuning knobs for Network construction.
struct NetworkOptions {
    /// Solve algebraic loops by fixed-point (Gauss–Seidel) iteration on
    /// the loop members instead of rejecting the model. Convergence is
    /// checked on the loop members' output buffers; divergence throws
    /// std::runtime_error at evaluation time.
    bool allowAlgebraicLoops = false;
    double loopTolerance = 1e-10;
    int loopMaxIterations = 250;
};

class Network {
public:
    /// Flatten \p root. Throws std::logic_error on algebraic loops (unless
    /// the options allow iterative solving).
    explicit Network(Streamer& root);
    Network(Streamer& root, const NetworkOptions& opts);

    Streamer& root() const { return *root_; }

    /// Leaf streamers in execution (topological) order.
    const std::vector<Streamer*>& order() const { return order_; }
    std::size_t leafCount() const { return order_.size(); }

    /// Total packed continuous state dimension.
    std::size_t stateSize() const { return stateSize_; }
    /// This leaf's segment of a packed state vector.
    std::span<double> stateOf(const Streamer& leaf, solver::Vec& x) const;
    std::span<const double> stateOf(const Streamer& leaf, const solver::Vec& x) const;

    /// Fill \p x with initial states (resized to stateSize()).
    void initState(double t, solver::Vec& x) const;

    /// One dataflow propagation pass: refresh inputs and run outputs() for
    /// every leaf in order, then refresh boundary ports so composite DPorts
    /// (including the root's) expose current values.
    void computeOutputs(double t, const solver::Vec& x) const;

    /// Full ODE right-hand side: propagate outputs, then collect each
    /// leaf's derivatives into \p dxdt (resized to stateSize()).
    void derivatives(double t, const solver::Vec& x, solver::Vec& dxdt) const;

    /// Discrete update pass at a major step boundary (in execution order).
    void update(double t, solver::Vec& x) const;

    /// Leaves that expose zero-crossing event functions.
    const std::vector<Streamer*>& eventLeaves() const { return eventLeaves_; }
    /// Evaluate event function \p k consistently: propagates outputs at
    /// (t, x) first so event surfaces may depend on inputs.
    double eventValue(std::size_t k, double t, const solver::Vec& x) const;

    /// Every SPort in the tree (drained by the solver between steps).
    const std::vector<SPort*>& allSPorts() const { return sports_; }

    /// Boundary (composite-owned) ports with resolved sources.
    std::size_t boundaryPortCount() const { return boundaryPorts_.size(); }
    /// Flattened leaf-to-leaf connections.
    std::size_t connectionCount() const { return connections_; }
    /// Leaves that sit on an algebraic loop (empty unless loops allowed).
    const std::vector<Streamer*>& loopMembers() const { return loopMembers_; }
    /// Fixed-point iterations spent in the last computeOutputs call.
    int lastLoopIterations() const { return lastLoopIterations_; }

    /// Adapter presenting this network as an OdeSystem.
    class Ode final : public solver::OdeSystem {
    public:
        explicit Ode(const Network& n) : net_(&n) {}
        std::size_t dim() const override { return net_->stateSize(); }
        void derivatives(double t, const solver::Vec& x, solver::Vec& dxdt) const override {
            net_->derivatives(t, x, dxdt);
        }

    private:
        const Network* net_;
    };

private:
    void collectLeaves(Streamer& s);
    void resolvePorts();
    void topoSort();
    void solveLoops(double t, const solver::Vec& x) const;

    Streamer* root_;
    NetworkOptions opts_;
    std::vector<Streamer*> order_;
    std::vector<Streamer*> eventLeaves_;
    std::vector<SPort*> sports_;
    std::vector<DPort*> boundaryPorts_; ///< composite ports needing refresh
    std::vector<Streamer*> loopMembers_;
    std::vector<std::size_t> offsets_;  ///< per-order_ leaf state offset
    std::size_t stateSize_ = 0;
    std::size_t connections_ = 0;
    mutable int lastLoopIterations_ = 0;

    // Fast offset lookup keyed by leaf pointer (small maps; linear is fine
    // but we keep an index aligned with order_).
    std::size_t offsetOf(const Streamer& leaf) const;
};

} // namespace urtx::flow
