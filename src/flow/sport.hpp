#pragma once
/// \file sport.hpp
/// SPorts: signal ports on streamers.
///
/// "SPorts convey signal message, which associated with a protocol.
/// Streamers can communicate with capsules through SPorts." An SPort is the
/// bridge between the continuous (streamer/solver) world and the discrete
/// (capsule/controller) world:
///
///  * inbound: the SPort participates in the UML-RT wiring through an
///    internal agent capsule; messages a capsule sends arrive in a
///    thread-safe queue and are handed to Streamer::onSignal by the solver
///    *between* integration steps — never mid-equation.
///  * outbound: send() pushes a message into the peer capsule's controller
///    queue (the "communication mechanism of threads" of the paper).

#include <any>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "rt/capsule.hpp"
#include "rt/port.hpp"

namespace urtx::flow {

class Streamer;

class SPort {
public:
    SPort(Streamer& owner, std::string name, const rt::Protocol& proto, bool conjugated = false);
    ~SPort();

    SPort(const SPort&) = delete;
    SPort& operator=(const SPort&) = delete;

    const std::string& name() const { return name_; }
    Streamer& owner() const { return *owner_; }
    const rt::Protocol& protocol() const;
    bool conjugated() const;

    /// The UML-RT port to wire against a capsule port with rt::connect().
    rt::Port& rtPort();

    /// Send a signal toward the connected capsule. Thread-safe: the message
    /// crosses into the capsule's controller queue.
    bool send(std::string_view sig, std::any data = {},
              rt::Priority prio = rt::Priority::General);
    bool send(rt::SignalId sig, std::any data = {},
              rt::Priority prio = rt::Priority::General);

    /// Messages waiting to be drained into the owning streamer.
    std::size_t pending() const;

    /// Deliver all queued messages to owner().onSignal(); called by the
    /// solver at step boundaries. Returns the number delivered.
    std::size_t drain();

    /// Drop queued messages without delivering them (between-runs reset).
    /// Returns the number discarded. The high-water mark is kept.
    std::size_t clearInbox();

    std::uint64_t received() const { return received_; }
    std::uint64_t sent() const;
    /// Highest inbox depth ever observed (channel occupancy high-water mark).
    std::size_t inboxHighWater() const {
        std::lock_guard lock(mu_);
        return inboxHwm_;
    }

private:
    class Agent;
    void enqueue(const rt::Message& m);

    Streamer* owner_;
    std::string name_;
    std::unique_ptr<Agent> agent_;

    mutable std::mutex mu_;
    std::deque<rt::Message> inbox_;
    std::uint64_t received_ = 0;
    std::size_t inboxHwm_ = 0;
};

} // namespace urtx::flow
