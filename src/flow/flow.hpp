#pragma once
/// \file flow.hpp
/// Umbrella header for the streamer/dataflow extension library.

#include "flow/channel.hpp"
#include "flow/dport.hpp"
#include "flow/flow_type.hpp"
#include "flow/network.hpp"
#include "flow/relay.hpp"
#include "flow/solver_runner.hpp"
#include "flow/sport.hpp"
#include "flow/streamer.hpp"
#include "flow/time.hpp"
