#include "flow/relay.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace urtx::flow {

Relay::Relay(std::string name, Streamer* parent, FlowType type, std::size_t fanout)
    : Streamer(std::move(name), parent) {
    if (fanout < 2)
        throw std::invalid_argument("Relay: fanout must be >= 2 (a relay duplicates a flow)");
    in_ = std::make_unique<DPort>(*this, "in", DPortDir::In, type);
    outs_.reserve(fanout);
    for (std::size_t i = 0; i < fanout; ++i) {
        outs_.push_back(std::make_unique<DPort>(*this, "out" + std::to_string(i), DPortDir::Out,
                                                type));
    }
}

void Relay::outputs(double /*t*/, std::span<const double> /*x*/) {
    const auto& src = in_->values();
    for (auto& o : outs_) {
        for (std::size_t i = 0; i < src.size(); ++i) o->set(src[i], i);
    }
    if (obs::metricsOn()) obs::wellknown().flowRelayFanout->add(outs_.size());
}

} // namespace urtx::flow
