#pragma once
/// \file dport.hpp
/// DPorts: typed data ports carrying continuous dataflow between streamers.
///
/// Unlike signal ports, a DPort does not queue discrete messages — it holds
/// the *current value* of a flow as a flat double buffer laid out by its
/// FlowType. Connections are made with the free function flow() (the
/// paper's "flow" connector); fan-out requires an explicit Relay streamer
/// ("relay" connector), keeping plain flows strictly point-to-point.
///
/// Three structural connection shapes are legal (all parent-scoped):
///   out(sub)  -> in(sub)    sibling dataflow
///   in(parent)-> in(sub)    boundary forward-in (composite DPorts relay)
///   out(sub)  -> out(parent) boundary forward-out
/// In every case the source type must be a subset of the destination type.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "flow/flow_type.hpp"
#include "obs/metrics.hpp"

namespace urtx::flow {

class Streamer;

enum class DPortDir : std::uint8_t { In, Out };

class DPort {
public:
    /// Construct and register with \p owner. The buffer starts zeroed.
    DPort(Streamer& owner, std::string name, DPortDir dir, FlowType type);
    ~DPort();

    DPort(const DPort&) = delete;
    DPort& operator=(const DPort&) = delete;

    const std::string& name() const { return name_; }
    DPortDir dir() const { return dir_; }
    const FlowType& type() const { return type_; }
    Streamer& owner() const { return *owner_; }
    std::size_t width() const { return buffer_.size(); }
    /// "streamerPath.portName" for diagnostics.
    std::string fullName() const;

    // -- wiring (written by flow()) -----------------------------------------
    /// The direct upstream port feeding this one (nullptr when unfed).
    DPort* fedBy() const { return fedBy_; }
    /// Direct downstream consumers of this port.
    const std::vector<DPort*>& feeds() const { return feeds_; }

    // -- value access --------------------------------------------------------
    double* data() { return buffer_.data(); }
    const double* data() const { return buffer_.data(); }
    double get(std::size_t i = 0) const { return buffer_[i]; }
    void set(double v, std::size_t i = 0) { buffer_[i] = v; }
    void setAll(const std::vector<double>& v);
    const std::vector<double>& values() const { return buffer_; }

    // -- flattening results (bound by Network) -------------------------------
    /// Bind the ultimate leaf source of this port with a composed slot map.
    void bindResolved(const DPort* leafSource, std::vector<std::size_t> projection);
    void clearResolved();
    bool isResolved() const { return resolvedSource_ != nullptr; }
    const DPort* resolvedSource() const { return resolvedSource_; }

    /// Copy the current source values through the projection; no-op when
    /// unresolved (the buffer then keeps externally written values).
    void refresh() {
        if (!resolvedSource_) return;
        const double* src = resolvedSource_->data();
        for (std::size_t i = 0; i < projection_.size(); ++i) buffer_[i] = src[projection_[i]];
        ++transfers_;
        if (obs::metricsOn()) obs::wellknown().flowDportTransfers->inc();
    }

    /// Number of refresh() copies performed (dataflow cost metric).
    std::uint64_t transfers() const { return transfers_; }

private:
    friend void flow(DPort& src, DPort& dst);
    friend std::string checkFlow(const DPort& src, const DPort& dst);

    Streamer* owner_;
    std::string name_;
    DPortDir dir_;
    FlowType type_;
    std::vector<double> buffer_;

    DPort* fedBy_ = nullptr;
    std::vector<DPort*> feeds_;

    const DPort* resolvedSource_ = nullptr;
    std::vector<std::size_t> projection_;
    std::uint64_t transfers_ = 0;
};

/// Dry-run legality check for flow(src, dst): structural shape,
/// single-feeder/single-consumer discipline, flow-type subset rule.
/// Returns the empty string when the connection is legal, otherwise the
/// same diagnostic message flow() would throw. Never mutates anything —
/// the basis of SystemBuilder::validate().
std::string checkFlow(const DPort& src, const DPort& dst);

/// The paper's "flow" connector: connect \p src to \p dst, enforcing the
/// structural shapes above, single-feeder/single-consumer discipline and
/// the flow-type subset rule. Throws std::logic_error with a diagnostic on
/// violations.
void flow(DPort& src, DPort& dst);

} // namespace urtx::flow
