#include "flow/streamer.hpp"

#include <algorithm>
#include <cmath>

#include "flow/sport.hpp"

namespace urtx::flow {

Streamer::Streamer(std::string name, Streamer* parent)
    : name_(std::move(name)), parent_(parent) {
    if (parent_) parent_->children_.push_back(this);
}

Streamer::~Streamer() {
    if (parent_) {
        auto& sibs = parent_->children_;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this), sibs.end());
    }
}

std::string Streamer::fullPath() const {
    if (!parent_) return name_;
    return parent_->fullPath() + "/" + name_;
}

DPort* Streamer::findDPort(std::string_view name) const {
    for (DPort* p : dports_) {
        if (p->name() == name) return p;
    }
    return nullptr;
}

SPort* Streamer::findSPort(std::string_view name) const {
    for (SPort* p : sports_) {
        if (p->name() == name) return p;
    }
    return nullptr;
}

double Streamer::param(const std::string& key, double fallback) const {
    auto it = params_.find(key);
    return it == params_.end() ? fallback : it->second;
}

void Streamer::initState(double /*t*/, std::span<double> x) {
    std::fill(x.begin(), x.end(), 0.0);
}

void Streamer::derivatives(double /*t*/, std::span<const double> /*x*/,
                           std::span<double> dxdt) {
    std::fill(dxdt.begin(), dxdt.end(), 0.0);
}

void Streamer::outputs(double /*t*/, std::span<const double> /*x*/) {}

void Streamer::update(double /*t*/, std::span<double> /*x*/) {}

double Streamer::eventFunction(double /*t*/, std::span<const double> /*x*/) const {
    return std::nan("");
}

void Streamer::onEvent(double /*t*/, bool /*rising*/) {}

bool Streamer::onEventReset(double /*t*/, std::span<double> /*x*/) { return false; }

void Streamer::onSignal(SPort& /*port*/, const rt::Message& /*m*/) {}

void Streamer::unregisterDPort(DPort* p) {
    dports_.erase(std::remove(dports_.begin(), dports_.end(), p), dports_.end());
}

void Streamer::unregisterSPort(SPort* p) {
    sports_.erase(std::remove(sports_.begin(), sports_.end(), p), sports_.end());
}

} // namespace urtx::flow
