#pragma once
/// \file obs.hpp
/// Umbrella header for the observability layer: metrics registry
/// (counters / gauges / histograms with Prometheus + JSON export) and the
/// low-overhead event tracer (Chrome trace-event export).
///
/// See docs/OBSERVABILITY.md for how to enable and read the output.

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
