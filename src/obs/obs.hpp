#pragma once
/// \file obs.hpp
/// Umbrella header for the observability layer: metrics registry
/// (counters / gauges / histograms with Prometheus + JSON export), the
/// low-overhead event tracer (Chrome trace-event export incl. causal flow
/// events), the real-time health monitors (per-signal deadlines + solver
/// watchdog) and the post-mortem flight recorder.
///
/// See docs/OBSERVABILITY.md for how to enable and read the output.

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/profile.hpp"
#include "obs/tracer.hpp"
#include "obs/window.hpp"
