#pragma once
/// \file flight_recorder.hpp
/// Always-on post-mortem flight recorder: a bounded ring of recent
/// annotated runtime events plus the current metrics snapshot, dumped to a
/// JSON file when something goes wrong — so a failed run leaves evidence
/// without rerunning under full tracing.
///
/// Once enabled, the runtime hooks append low-rate annotated events (signal
/// emits and reactions with their causal span ids, zero crossings, deadline
/// misses, solver stalls, faults). A note is one vsnprintf into a
/// fixed-size slot under a mutex — cheap at the rates these events occur,
/// and the ring never allocates after construction.
///
/// Dump triggers:
///  * a solver worker throws (SolverPool / HybridSystem fault path),
///  * a deadline declared with abortOnMiss is missed (Monitor),
///  * the watchdog flags a stalled solver grant (Watchdog),
///  * the user calls dumpNow().
///
/// The dump file is a single JSON object:
///   { "reason": "...", "dumped_at_ns": N, "events_dropped": N,
///     "events": [ {"ts": ns, "cat": "rt", "span": id, "text": "..."} ... ],
///     "metrics": { ...Snapshot::toJson()... } }
/// Events appear oldest-to-newest; the causal chain of a message is the set
/// of events sharing its span id (e.g. "emit brake #42" ... "handle brake
/// #42 (+120.3 us)").

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace urtx::obs {

class FlightRecorder {
public:
    /// A private recorder (scenario-local post-mortems). \p capacity is the
    /// event ring size.
    explicit FlightRecorder(std::size_t capacity = 1024);

    /// The recorder the runtime hooks write to: the one installed on this
    /// thread (ScopedFlightRecorder), or the process-wide one. Threads with
    /// nothing installed keep the process recorder — existing callers see
    /// no behavior change.
    static FlightRecorder& global();
    /// Always the process-wide recorder, regardless of installed scopes.
    static FlightRecorder& process();
    /// The recorder installed on this thread, or nullptr (for propagating a
    /// scope into threads spawned on behalf of the current one).
    static FlightRecorder* installed();

    /// Runtime switch; when off, instrumented sites pay one relaxed load
    /// (the shared causal-mask gate).
    void setEnabled(bool on);
    bool enabled() const { return causalBit(kCausalRecorder); }

    /// Ring capacity in events (default 1024). Clears retained events.
    void setCapacity(std::size_t events);

    /// Path automatic dumps are written to (default "urtx_postmortem.json",
    /// overwritten by each dump so the file always holds the latest fault).
    void setDumpPath(std::string path);
    std::string dumpPath() const;

    /// Append one annotated event (printf-style; text truncated to the slot
    /// size). \p spanId links the note into a causal chain; 0 = none.
    void note(const char* cat, std::uint64_t spanId, const char* fmt, ...)
        __attribute__((format(printf, 4, 5)));

    /// Number of events currently retained / lost to ring wraparound.
    std::size_t eventCount() const;
    std::uint64_t droppedCount() const;
    void clear();

    /// Render the post-mortem JSON without touching the filesystem.
    std::string dumpString(std::string_view reason) const;

    /// Write the post-mortem file; returns its path. Also bumps the
    /// obs.postmortem_dumps counter. Never throws (a recorder that kills
    /// the run it is documenting would be worse than useless); on I/O
    /// failure the dump is lost and lastDumpPath() is left unchanged.
    std::string dumpNow(std::string_view reason) noexcept;

    /// Fault hook used by the executor: note + dumpNow when enabled.
    void onFault(const char* what) noexcept;

    std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
    std::string lastDumpPath() const;

private:
    struct Slot {
        std::uint64_t ts = 0;
        std::uint64_t spanId = 0;
        const char* cat = "";
        char text[104] = {};
    };

    mutable std::mutex mu_; ///< guards slots_/head_ and path strings
    std::vector<Slot> slots_;
    std::uint64_t head_ = 0; ///< events ever written; slot = head_ % capacity
    std::string dumpPath_ = "urtx_postmortem.json";
    std::string lastDumpPath_;
    std::atomic<std::uint64_t> dumps_{0};
};

/// RAII scope installing \p r as the current flight recorder for this
/// thread, restoring the previous installation on destruction. Null is a
/// no-op. Pairs with ScopedRegistry to give one scenario its own
/// observability sandbox.
class ScopedFlightRecorder {
public:
    explicit ScopedFlightRecorder(FlightRecorder* r);
    ~ScopedFlightRecorder();

    ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
    ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

private:
    FlightRecorder* prev_ = nullptr;
    bool active_ = false;
};

} // namespace urtx::obs
