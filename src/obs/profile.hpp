#pragma once
/// \file profile.hpp
/// Per-job stage profiling for the serving stack: monotonic stage stamps
/// from the moment a job's bytes arrive to the moment its reply is handed
/// to the socket.
///
/// A StageProfile carries one absolute monotonic timestamp (obs::nowNanos)
/// per pipeline stage plus the job's receive time as the origin. Stages are
/// stamped where they complete — decode and admission on the daemon's
/// reactor thread, queue-wait / warm-acquire / cold-build / solve on the
/// engine worker, encode and reply back on the completion path — and merge
/// trivially across threads because every stamp shares the one steady
/// clock. Rendering converts to per-stage offsets in seconds from the
/// origin, so a well-formed table is monotone non-decreasing in stage
/// order and the last stamp approximates the job's end-to-end latency.
///
/// The engine stamps its stages unconditionally (four clock reads against
/// a millisecond-scale solve — noise); `enabled` only controls whether the
/// table is attached to the emitted ResultRecord, which is what the
/// per-job `"profile": true` opt-in toggles.

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace urtx::obs {

/// Serving-pipeline stages in wire-visible order. WarmAcquire and
/// ColdBuild are alternatives: exactly one is stamped per executed job.
enum class Stage : std::uint8_t {
    Decode,      ///< request bytes parsed into a ScenarioSpec
    Admission,   ///< accepted past drain/cache checks and submitted
    QueueWait,   ///< dequeued by an engine worker
    WarmAcquire, ///< live instance taken from the warm-scenario cache
    ColdBuild,   ///< scenario built from its factory
    Solve,       ///< simulation run returned
    Encode,      ///< result record serialized
    Reply,       ///< reply handed to the connection's output buffer
};

inline constexpr std::size_t kStageCount = 8;

/// Canonical lowercase stage names in stage order — the order renderers
/// emit the table in (std::map would alphabetize and scramble it).
const std::array<const char*, kStageCount>& stageNames();

/// Wire/JSON name of one stage ("decode", "queue_wait", ...).
const char* stageName(Stage s);

/// One job's stage table: absolute nanosecond stamps against a shared
/// origin. Value-copyable; zero stamp = stage not reached.
struct StageProfile {
    bool enabled = false;        ///< attach the table to the emitted record
    std::uint64_t originNanos = 0;
    std::array<std::uint64_t, kStageCount> stampNanos{};

    /// Set the origin to now (or keep an externally captured receive time
    /// by assigning originNanos directly).
    void start() { originNanos = nowNanos(); }
    /// Stamp a stage at now. A first stamp with no origin adopts it as the
    /// origin, so engine-only tables (urtx_batch, no daemon receive time)
    /// are still offsets from their first stage.
    void stamp(Stage s) {
        const std::uint64_t t = nowNanos();
        if (originNanos == 0) originNanos = t;
        stampNanos[static_cast<std::size_t>(s)] = t;
    }
    bool stamped(Stage s) const { return stampNanos[static_cast<std::size_t>(s)] != 0; }
    std::uint64_t stampOf(Stage s) const { return stampNanos[static_cast<std::size_t>(s)]; }

    /// Offset of a stamped stage from the origin, in seconds; clamps below
    /// at 0 so clock-adjacent stamps never render negative. 0 if unstamped.
    double offsetSeconds(Stage s) const;

    /// Adopt \p other's origin (when unset here) and any stamps this
    /// profile is missing — how daemon-side stamps and engine-side stamps
    /// combine into one table.
    void merge(const StageProfile& other);

    /// Stage name -> offset seconds, stamped stages only. The map is the
    /// wire representation (NumMap); renderers restore stage order via
    /// stageNames().
    std::map<std::string, double> toMap() const;
};

} // namespace urtx::obs
