#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace urtx::obs {

std::uint64_t nowNanos() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace detail {

std::size_t threadIndex() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

} // namespace detail

// --- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
}

void Counter::reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge ------------------------------------------------------------------

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t b) { return std::bit_cast<double>(b); }

void Gauge::max(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (unpack(cur) < v &&
           !bits_.compare_exchange_weak(cur, pack(v), std::memory_order_relaxed)) {
    }
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
        throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
    for (Stripe& s : stripes_) {
        s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    }
}

void Histogram::observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    Stripe& s = stripes_[detail::threadIndex() % kStripes];
    s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
    for (const Stripe& s : stripes_) {
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] += s.buckets[i].load(std::memory_order_relaxed);
        }
    }
    return out;
}

std::uint64_t Histogram::count() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) total += s.count.load(std::memory_order_relaxed);
    return total;
}

double Histogram::sum() const {
    double total = 0;
    for (const Stripe& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
    return total;
}

void Histogram::reset() {
    for (Stripe& s : stripes_) {
        for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0.0, std::memory_order_relaxed);
    }
}

// --- Snapshot ---------------------------------------------------------------

namespace {

template <class V>
auto* findByName(V& vec, std::string_view name) {
    for (auto& s : vec) {
        if (s.name == name) return &s;
    }
    return static_cast<decltype(&vec.front())>(nullptr);
}

/// "rt.dispatch-latency" -> "urtx_rt_dispatch_latency".
std::string promName(const std::string& name) {
    std::string out = "urtx_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void jsonNumber(std::ostringstream& os, double v) {
    if (std::isfinite(v)) {
        os.precision(17);
        os << v;
    } else {
        os << (v > 0 ? "1e308" : "-1e308"); // JSON has no Inf
    }
}

} // namespace

void Snapshot::merge(const Snapshot& other) {
    for (const CounterSample& c : other.counters) {
        if (auto* mine = findByName(counters, c.name)) {
            mine->value += c.value;
        } else {
            counters.push_back(c);
        }
    }
    for (const GaugeSample& g : other.gauges) {
        if (auto* mine = findByName(gauges, g.name)) {
            mine->value = std::max(mine->value, g.value);
        } else {
            gauges.push_back(g);
        }
    }
    for (const HistogramSample& h : other.histograms) {
        auto* mine = findByName(histograms, h.name);
        if (!mine) {
            histograms.push_back(h);
            continue;
        }
        if (mine->bounds != h.bounds) {
            throw std::logic_error("Snapshot::merge: histogram '" + h.name +
                                   "' has mismatched bounds");
        }
        for (std::size_t i = 0; i < mine->counts.size(); ++i) mine->counts[i] += h.counts[i];
        mine->count += h.count;
        mine->sum += h.sum;
    }
}

const CounterSample* Snapshot::counter(std::string_view name) const {
    return findByName(counters, name);
}
const GaugeSample* Snapshot::gauge(std::string_view name) const {
    return findByName(gauges, name);
}
const HistogramSample* Snapshot::histogram(std::string_view name) const {
    return findByName(histograms, name);
}

std::string Snapshot::toPrometheus() const {
    std::ostringstream os;
    os.precision(17);
    for (const CounterSample& c : counters) {
        const std::string n = promName(c.name);
        os << "# TYPE " << n << " counter\n" << n << " " << c.value << "\n";
    }
    for (const GaugeSample& g : gauges) {
        const std::string n = promName(g.name);
        os << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
    }
    for (const HistogramSample& h : histograms) {
        const std::string n = promName(h.name);
        os << "# TYPE " << n << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            cum += h.counts[i];
            os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
        }
        cum += h.counts.back();
        os << n << "_bucket{le=\"+Inf\"} " << cum << "\n";
        os << n << "_sum " << h.sum << "\n";
        os << n << "_count " << h.count << "\n";
    }
    return os.str();
}

std::string Snapshot::toJson() const {
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i) os << ",";
        os << "\"" << counters[i].name << "\":" << counters[i].value;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i) os << ",";
        os << "\"" << gauges[i].name << "\":";
        jsonNumber(os, gauges[i].value);
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSample& h = histograms[i];
        if (i) os << ",";
        os << "\"" << h.name << "\":{\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b) os << ",";
            jsonNumber(os, h.bounds[b]);
        }
        os << "],\"counts\":[";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (b) os << ",";
            os << h.counts[b];
        }
        os << "],\"count\":" << h.count << ",\"sum\":";
        jsonNumber(os, h.sum);
        os << "}";
    }
    os << "}}";
    return os.str();
}

// --- Registry ---------------------------------------------------------------

namespace {

std::uint64_t nextRegistryUid() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/// The registry installed on this thread; null means "use the process one".
thread_local Registry* tInstalled = nullptr;

} // namespace

Registry::Registry() : uid_(nextRegistryUid()) {}

Registry& Registry::process() {
    static Registry r;
    return r;
}

Registry& Registry::global() { return tInstalled ? *tInstalled : process(); }

Registry* Registry::installed() { return tInstalled; }

ScopedRegistry::ScopedRegistry(Registry* r) {
    if (!r) return;
    prev_ = tInstalled;
    tInstalled = r;
    active_ = true;
}

ScopedRegistry::~ScopedRegistry() {
    if (active_) tInstalled = prev_;
}

Registry::Entry* Registry::find(std::string_view name) {
    for (auto& e : entries_) {
        if (e->name == name) return e.get();
    }
    return nullptr;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Counter)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a counter");
        return *e->c;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Counter;
    e->c = std::make_unique<Counter>();
    entries_.push_back(std::move(e));
    return *entries_.back()->c;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Gauge)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a gauge");
        return *e->g;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Gauge;
    e->g = std::make_unique<Gauge>();
    entries_.push_back(std::move(e));
    return *entries_.back()->g;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Histogram)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a histogram");
        if (e->h->bounds() != bounds)
            throw std::logic_error("Registry: histogram '" + std::string(name) +
                                   "' re-registered with different bounds");
        return *e->h;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Histogram;
    e->h = std::make_unique<Histogram>(std::move(bounds));
    entries_.push_back(std::move(e));
    return *entries_.back()->h;
}

Snapshot Registry::snapshot() const {
    std::lock_guard lock(mu_);
    Snapshot snap;
    for (const auto& e : entries_) {
        switch (e->kind) {
            case MetricKind::Counter:
                snap.counters.push_back({e->name, e->c->value()});
                break;
            case MetricKind::Gauge:
                snap.gauges.push_back({e->name, e->g->value()});
                break;
            case MetricKind::Histogram:
                snap.histograms.push_back({e->name, e->h->bounds(), e->h->counts(),
                                           e->h->count(), e->h->sum()});
                break;
        }
    }
    return snap;
}

void Registry::reset() {
    std::lock_guard lock(mu_);
    for (auto& e : entries_) {
        switch (e->kind) {
            case MetricKind::Counter: e->c->reset(); break;
            case MetricKind::Gauge: e->g->reset(); break;
            case MetricKind::Histogram: e->h->reset(); break;
        }
    }
}

// --- Wellknown --------------------------------------------------------------

namespace {

/// Latency buckets in seconds: 100ns .. 100ms, roughly 1-2.5-5 per decade.
std::vector<double> latencyBounds() {
    return {1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5,
            5e-5, 1e-4,   2.5e-4, 5e-4, 1e-3, 2.5e-3, 1e-2, 1e-1};
}

std::vector<double> jitterBounds() {
    return {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
}

/// Barrier handoffs sit between ~50ns (spin hit) and ~100us (futex park +
/// scheduler), finer at the low end than the generic latency buckets.
std::vector<double> barrierBounds() {
    return {2.5e-8, 5e-8, 1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
            1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2};
}

Wellknown buildWellknown(Registry& r) {
    Wellknown w{};
    w.rtDispatched = &r.counter("rt.messages_dispatched");
    w.rtTimersFired = &r.counter("rt.timers_fired");
    w.rtQueueDepthHwm = &r.gauge("rt.queue_depth_hwm");
    w.rtTimerJitter = &r.histogram("rt.timer_fire_jitter_seconds", jitterBounds());
    static const char* prioNames[5] = {"background", "low", "general", "high", "panic"};
    for (std::size_t p = 0; p < w.rtDispatchLatency.size(); ++p) {
        w.rtDispatchLatency[p] = &r.histogram(
            std::string("rt.dispatch_latency_seconds.") + prioNames[p], latencyBounds());
    }
    w.rtDeadlineMiss = &r.counter("rt.deadline_miss");
    w.rtHopLatency = &r.histogram("rt.hop_latency_seconds", latencyBounds());
    w.flowDportTransfers = &r.counter("flow.dport_transfers");
    w.flowSportSends = &r.counter("flow.sport_sends");
    w.flowSportDrained = &r.counter("flow.sport_drained");
    w.flowSportInboxHwm = &r.gauge("flow.sport_inbox_hwm");
    w.flowRelayFanout = &r.counter("flow.relay_fanout");
    w.flowSolverStep = &r.histogram("flow.solver_step_seconds", latencyBounds());
    w.flowMajorSteps = &r.counter("flow.solver_major_steps");
    w.flowMinorSteps = &r.counter("flow.solver_minor_steps");
    w.simSteps = &r.counter("sim.grid_steps");
    w.simZeroCrossings = &r.counter("sim.zero_crossings");
    w.simZcIterations = &r.counter("sim.zero_crossing_iterations");
    w.simTimersPendingHwm = &r.gauge("sim.timers_pending_hwm");
    w.simMacroSteps = &r.counter("sim.macro_steps_coalesced");
    w.simDrainRounds = &r.counter("sim.drain_rounds");
    w.simBarrierWait = &r.histogram("sim.barrier_wait_seconds", barrierBounds());
    w.simSolverStalls = &r.counter("sim.solver_grant_stalls");
    w.obsPostmortemDumps = &r.counter("obs.postmortem_dumps");
    return w;
}

} // namespace

const Wellknown& Registry::wellknown() {
    if (const Wellknown* w = wk_.load(std::memory_order_acquire)) return *w;
    // Build without holding mu_ (the registrations below take it). A racing
    // builder resolves the same find-or-create pointers, so the loser's
    // table is identical and simply discarded.
    auto own = std::make_unique<const Wellknown>(buildWellknown(*this));
    const Wellknown* expected = nullptr;
    if (wk_.compare_exchange_strong(expected, own.get(), std::memory_order_acq_rel)) {
        wkOwned_ = std::move(own); // single writer: only the CAS winner
        return *wkOwned_;
    }
    return *expected;
}

const Wellknown& wellknown() {
    thread_local const Wellknown* cached = nullptr;
    thread_local std::uint64_t cachedUid = 0; // no registry has uid 0
    Registry& r = Registry::global();
    if (cachedUid != r.uid()) {
        cached = &r.wellknown();
        cachedUid = r.uid();
    }
    return *cached;
}

} // namespace urtx::obs
