#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace urtx::obs {

std::uint64_t nowNanos() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace detail {

std::size_t threadIndex() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

} // namespace detail

// --- Counter ----------------------------------------------------------------

std::uint64_t Counter::value() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
}

void Counter::reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

// --- Gauge ------------------------------------------------------------------

std::uint64_t Gauge::pack(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::unpack(std::uint64_t b) { return std::bit_cast<double>(b); }

void Gauge::max(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (unpack(cur) < v &&
           !bits_.compare_exchange_weak(cur, pack(v), std::memory_order_relaxed)) {
    }
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
        throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
    for (Stripe& s : stripes_) {
        s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    }
}

void Histogram::observe(double v) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx = static_cast<std::size_t>(it - bounds_.begin());
    Stripe& s = stripes_[detail::threadIndex() % kStripes];
    s.buckets[idx].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
    for (const Stripe& s : stripes_) {
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] += s.buckets[i].load(std::memory_order_relaxed);
        }
    }
    return out;
}

std::uint64_t Histogram::count() const {
    std::uint64_t total = 0;
    for (const Stripe& s : stripes_) total += s.count.load(std::memory_order_relaxed);
    return total;
}

double Histogram::sum() const {
    double total = 0;
    for (const Stripe& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
    return total;
}

void Histogram::reset() {
    for (Stripe& s : stripes_) {
        for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0.0, std::memory_order_relaxed);
    }
}

// --- Snapshot ---------------------------------------------------------------

namespace {

template <class V>
auto* findByName(V& vec, std::string_view name) {
    for (auto& s : vec) {
        if (s.name == name) return &s;
    }
    return static_cast<decltype(&vec.front())>(nullptr);
}

/// "rt.dispatch-latency" -> "urtx_rt_dispatch_latency". Every character
/// outside the exposition format's metric-name alphabet ([a-zA-Z0-9_:])
/// maps to '_' — that covers the '.' separators in srvd.* / srv.* / rt.*
/// names and anything odd a user-interned signal drags in; the "urtx_"
/// prefix keeps the first character legal.
std::string promName(std::string_view name) {
    std::string out = "urtx_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/// Escape a label value per the exposition format: backslash, double
/// quote and newline are the only characters that need it.
std::string promEscapeLabel(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out.push_back(c);
        }
    }
    return out;
}

/// Registry families whose trailing dotted segment is an open-ended
/// identity (a signal name, a priority), exported as a proper label
/// instead of being mangled into the metric name — signal names are
/// user-interned strings and may contain anything, which only a quoted
/// (escaped) label value can carry faithfully.
struct LabeledFamily {
    std::string_view prefix; ///< registry-name prefix incl. trailing '.'
    std::string_view label;
};
constexpr LabeledFamily kLabeledFamilies[] = {
    {"rt.hop_latency_seconds.", "signal"},
    {"rt.hop_latency_worst_seconds.", "signal"},
    {"rt.deadline_miss.", "signal"},
    {"rt.dispatch_latency_seconds.", "priority"},
    {"srvd.accept_errors.", "class"},
};

/// A registry name resolved to its exposition-format series: sanitized
/// metric name plus an optional 'key="escaped-value"' label pair.
struct PromSeries {
    std::string name;
    std::string label; ///< empty, or e.g. signal="brake"
};

PromSeries promSeries(const std::string& raw) {
    for (const LabeledFamily& fam : kLabeledFamilies) {
        if (raw.size() > fam.prefix.size() &&
            raw.compare(0, fam.prefix.size(), fam.prefix) == 0) {
            return {promName(std::string_view(raw).substr(0, fam.prefix.size() - 1)),
                    std::string(fam.label) + "=\"" +
                        promEscapeLabel(std::string_view(raw).substr(fam.prefix.size())) +
                        "\""};
        }
    }
    return {promName(raw), {}};
}

void jsonNumber(std::ostringstream& os, double v) {
    if (std::isfinite(v)) {
        os.precision(17);
        os << v;
    } else {
        os << (v > 0 ? "1e308" : "-1e308"); // JSON has no Inf
    }
}

/// Metric names come from user-interned signal names (rt.deadline_miss.*),
/// so JSON keys must escape them like any other string literal.
std::string jsonEscape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

} // namespace

void Snapshot::merge(const Snapshot& other) {
    for (const CounterSample& c : other.counters) {
        if (auto* mine = findByName(counters, c.name)) {
            mine->value += c.value;
        } else {
            counters.push_back(c);
        }
    }
    for (const GaugeSample& g : other.gauges) {
        if (auto* mine = findByName(gauges, g.name)) {
            mine->value = std::max(mine->value, g.value);
        } else {
            gauges.push_back(g);
        }
    }
    for (const HistogramSample& h : other.histograms) {
        auto* mine = findByName(histograms, h.name);
        if (!mine) {
            histograms.push_back(h);
            continue;
        }
        if (mine->bounds != h.bounds) {
            throw std::logic_error("Snapshot::merge: histogram '" + h.name +
                                   "' has mismatched bounds");
        }
        for (std::size_t i = 0; i < mine->counts.size(); ++i) mine->counts[i] += h.counts[i];
        mine->count += h.count;
        mine->sum += h.sum;
    }
}

const CounterSample* Snapshot::counter(std::string_view name) const {
    return findByName(counters, name);
}
const GaugeSample* Snapshot::gauge(std::string_view name) const {
    return findByName(gauges, name);
}
const HistogramSample* Snapshot::histogram(std::string_view name) const {
    return findByName(histograms, name);
}

std::string Snapshot::toPrometheus() const {
    // The exposition format requires every series of one metric name to
    // appear as a single block under one TYPE line, but labeled children
    // (rt.hop_latency_seconds.<signal>) register interleaved with other
    // metrics — so group lines per output name first, preserving
    // first-seen order across names.
    std::vector<std::pair<std::string, std::string>> groups; // name -> lines
    std::vector<std::string> types;                          // parallel TYPE
    const auto groupFor = [&](const std::string& name,
                              const char* type) -> std::string& {
        for (std::size_t i = 0; i < groups.size(); ++i) {
            if (groups[i].first == name) return groups[i].second;
        }
        groups.emplace_back(name, std::string());
        types.push_back("# TYPE " + name + " " + type + "\n");
        return groups.back().second;
    };
    const auto fmt = [](double v) {
        std::ostringstream os;
        os.precision(17);
        os << v;
        return os.str();
    };

    for (const CounterSample& c : counters) {
        const PromSeries s = promSeries(c.name);
        std::string& out = groupFor(s.name, "counter");
        out += s.name;
        if (!s.label.empty()) out += "{" + s.label + "}";
        out += " " + std::to_string(c.value) + "\n";
    }
    for (const GaugeSample& g : gauges) {
        const PromSeries s = promSeries(g.name);
        std::string& out = groupFor(s.name, "gauge");
        out += s.name;
        if (!s.label.empty()) out += "{" + s.label + "}";
        out += " " + fmt(g.value) + "\n";
    }
    for (const HistogramSample& h : histograms) {
        const PromSeries s = promSeries(h.name);
        std::string& out = groupFor(s.name, "histogram");
        const std::string comma = s.label.empty() ? "" : s.label + ",";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            cum += h.counts[i];
            out += s.name + "_bucket{" + comma + "le=\"" + fmt(h.bounds[i]) + "\"} " +
                   std::to_string(cum) + "\n";
        }
        cum += h.counts.back();
        out += s.name + "_bucket{" + comma + "le=\"+Inf\"} " + std::to_string(cum) + "\n";
        out += s.name + "_sum";
        if (!s.label.empty()) out += "{" + s.label + "}";
        out += " " + fmt(h.sum) + "\n";
        out += s.name + "_count";
        if (!s.label.empty()) out += "{" + s.label + "}";
        out += " " + std::to_string(h.count) + "\n";
    }

    std::string text;
    for (std::size_t i = 0; i < groups.size(); ++i) text += types[i] + groups[i].second;
    return text;
}

std::string Snapshot::toJson() const {
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i) os << ",";
        os << "\"" << jsonEscape(counters[i].name) << "\":" << counters[i].value;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i) os << ",";
        os << "\"" << jsonEscape(gauges[i].name) << "\":";
        jsonNumber(os, gauges[i].value);
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSample& h = histograms[i];
        if (i) os << ",";
        os << "\"" << jsonEscape(h.name) << "\":{\"bounds\":[";
        for (std::size_t b = 0; b < h.bounds.size(); ++b) {
            if (b) os << ",";
            jsonNumber(os, h.bounds[b]);
        }
        os << "],\"counts\":[";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            if (b) os << ",";
            os << h.counts[b];
        }
        os << "],\"count\":" << h.count << ",\"sum\":";
        jsonNumber(os, h.sum);
        os << "}";
    }
    os << "}}";
    return os.str();
}

// --- Registry ---------------------------------------------------------------

namespace {

std::uint64_t nextRegistryUid() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/// The registry installed on this thread; null means "use the process one".
thread_local Registry* tInstalled = nullptr;

} // namespace

Registry::Registry() : uid_(nextRegistryUid()) {}

void Registry::setSpanSamplingRate(double rate) {
    rate = std::max(rate, static_cast<double>(URTX_OBS_SAMPLING_FLOOR));
    std::uint32_t period;
    if (!(rate > 0.0)) {
        period = 0;
    } else if (rate >= 1.0) {
        period = 1;
    } else {
        const double p = std::round(1.0 / rate);
        period = p >= 4294967295.0 ? 4294967295u
                                   : static_cast<std::uint32_t>(std::max(p, 2.0));
    }
    samplingPeriod_.store(period, std::memory_order_relaxed);
}

double Registry::spanSamplingRate() const {
    const std::uint32_t p = samplingPeriod_.load(std::memory_order_relaxed);
    return p == 0 ? 0.0 : 1.0 / static_cast<double>(p);
}

Registry& Registry::process() {
    static Registry r;
    return r;
}

Registry& Registry::global() { return tInstalled ? *tInstalled : process(); }

Registry* Registry::installed() { return tInstalled; }

ScopedRegistry::ScopedRegistry(Registry* r) {
    if (!r) return;
    prev_ = tInstalled;
    tInstalled = r;
    active_ = true;
}

ScopedRegistry::~ScopedRegistry() {
    if (active_) tInstalled = prev_;
}

Registry::Entry* Registry::find(std::string_view name) {
    for (auto& e : entries_) {
        if (e->name == name) return e.get();
    }
    return nullptr;
}

Counter& Registry::counter(std::string_view name) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Counter)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a counter");
        return *e->c;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Counter;
    e->c = std::make_unique<Counter>();
    entries_.push_back(std::move(e));
    return *entries_.back()->c;
}

Gauge& Registry::gauge(std::string_view name) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Gauge)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a gauge");
        return *e->g;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Gauge;
    e->g = std::make_unique<Gauge>();
    entries_.push_back(std::move(e));
    return *entries_.back()->g;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
    std::lock_guard lock(mu_);
    if (Entry* e = find(name)) {
        if (e->kind != MetricKind::Histogram)
            throw std::logic_error("Registry: '" + std::string(name) + "' is not a histogram");
        if (e->h->bounds() != bounds)
            throw std::logic_error("Registry: histogram '" + std::string(name) +
                                   "' re-registered with different bounds");
        return *e->h;
    }
    auto e = std::make_unique<Entry>();
    e->name = std::string(name);
    e->kind = MetricKind::Histogram;
    e->h = std::make_unique<Histogram>(std::move(bounds));
    entries_.push_back(std::move(e));
    return *entries_.back()->h;
}

Snapshot Registry::snapshot() const {
    std::lock_guard lock(mu_);
    Snapshot snap;
    for (const auto& e : entries_) {
        switch (e->kind) {
            case MetricKind::Counter:
                snap.counters.push_back({e->name, e->c->value()});
                break;
            case MetricKind::Gauge:
                snap.gauges.push_back({e->name, e->g->value()});
                break;
            case MetricKind::Histogram:
                snap.histograms.push_back({e->name, e->h->bounds(), e->h->counts(),
                                           e->h->count(), e->h->sum()});
                break;
        }
    }
    return snap;
}

void Registry::reset() {
    std::lock_guard lock(mu_);
    for (auto& e : entries_) {
        switch (e->kind) {
            case MetricKind::Counter: e->c->reset(); break;
            case MetricKind::Gauge: e->g->reset(); break;
            case MetricKind::Histogram: e->h->reset(); break;
        }
    }
}

// --- Wellknown --------------------------------------------------------------

namespace {

/// Latency buckets in seconds: 25ns .. 100ms, roughly 1-2.5-5 per decade.
/// The sub-100ns tiers exist because per-dispatch service times sit around
/// 100ns and the windowed quantile interpolation clips anything below the
/// lowest bound to a single coarse bucket.
std::vector<double> latencyBounds() {
    return {2.5e-8, 5e-8,   1e-7, 2.5e-7, 5e-7, 1e-6,   2.5e-6, 5e-6, 1e-5,
            2.5e-5, 5e-5,   1e-4, 2.5e-4, 5e-4, 1e-3,   2.5e-3, 1e-2, 1e-1};
}

std::vector<double> jitterBounds() {
    return {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
}

/// Barrier handoffs sit between ~50ns (spin hit) and ~100us (futex park +
/// scheduler), finer at the low end than the generic latency buckets.
std::vector<double> barrierBounds() {
    return {2.5e-8, 5e-8, 1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
            1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2};
}

Wellknown buildWellknown(Registry& r) {
    Wellknown w{};
    w.rtDispatched = &r.counter("rt.messages_dispatched");
    w.rtTimersFired = &r.counter("rt.timers_fired");
    w.rtQueueDepthHwm = &r.gauge("rt.queue_depth_hwm");
    w.rtTimerJitter = &r.histogram("rt.timer_fire_jitter_seconds", jitterBounds());
    static const char* prioNames[5] = {"background", "low", "general", "high", "panic"};
    for (std::size_t p = 0; p < w.rtDispatchLatency.size(); ++p) {
        w.rtDispatchLatency[p] = &r.histogram(
            std::string("rt.dispatch_latency_seconds.") + prioNames[p], latencyBounds());
    }
    w.rtDeadlineMiss = &r.counter("rt.deadline_miss");
    w.rtHopLatency = &r.histogram("rt.hop_latency_seconds", latencyBounds());
    w.flowDportTransfers = &r.counter("flow.dport_transfers");
    w.flowSportSends = &r.counter("flow.sport_sends");
    w.flowSportDrained = &r.counter("flow.sport_drained");
    w.flowSportInboxHwm = &r.gauge("flow.sport_inbox_hwm");
    w.flowRelayFanout = &r.counter("flow.relay_fanout");
    w.flowSolverStep = &r.histogram("flow.solver_step_seconds", latencyBounds());
    w.flowMajorSteps = &r.counter("flow.solver_major_steps");
    w.flowMinorSteps = &r.counter("flow.solver_minor_steps");
    w.simSteps = &r.counter("sim.grid_steps");
    w.simZeroCrossings = &r.counter("sim.zero_crossings");
    w.simZcIterations = &r.counter("sim.zero_crossing_iterations");
    w.simTimersPendingHwm = &r.gauge("sim.timers_pending_hwm");
    w.simMacroSteps = &r.counter("sim.macro_steps_coalesced");
    w.simDrainRounds = &r.counter("sim.drain_rounds");
    w.simBarrierWait = &r.histogram("sim.barrier_wait_seconds", barrierBounds());
    w.simSolverStalls = &r.counter("sim.solver_grant_stalls");
    w.obsPostmortemDumps = &r.counter("obs.postmortem_dumps");
    w.obsSpansSampled = &r.counter("obs.spans_sampled");
    return w;
}

} // namespace

const Wellknown& Registry::wellknown() {
    if (const Wellknown* w = wk_.load(std::memory_order_acquire)) return *w;
    // Build without holding mu_ (the registrations below take it). A racing
    // builder resolves the same find-or-create pointers, so the loser's
    // table is identical and simply discarded.
    auto own = std::make_unique<const Wellknown>(buildWellknown(*this));
    const Wellknown* expected = nullptr;
    if (wk_.compare_exchange_strong(expected, own.get(), std::memory_order_acq_rel)) {
        wkOwned_ = std::move(own); // single writer: only the CAS winner
        return *wkOwned_;
    }
    return *expected;
}

const Wellknown& wellknown() {
    thread_local const Wellknown* cached = nullptr;
    thread_local std::uint64_t cachedUid = 0; // no registry has uid 0
    Registry& r = Registry::global();
    if (cachedUid != r.uid()) {
        cached = &r.wellknown();
        cachedUid = r.uid();
    }
    return *cached;
}

} // namespace urtx::obs
