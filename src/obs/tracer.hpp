#pragma once
/// \file tracer.hpp
/// Low-overhead event tracing: per-thread fixed-capacity ring buffers of
/// timestamped events, exported as Chrome trace-event JSON
/// (chrome://tracing / https://ui.perfetto.dev).
///
/// Recording an event is two clock reads (for spans), a handful of stores
/// into a thread-private ring slot and one release store of the head index
/// — tens of nanoseconds. When tracing is disabled at runtime a span costs
/// one relaxed load; when compiled with URTX_OBS=0 the URTX_TRACE_* macros
/// expand to nothing.
///
/// Besides 'X' spans and 'i' instants, the tracer records *flow events*
/// ('s' start / 'f' finish) carrying a 64-bit binding id — the causal span
/// id stamped on rt::Message at its emitting site. Perfetto draws an arrow
/// from the 's' (emit) to the matching 'f' (reaction) even when they lie on
/// different threads, which is exactly the discrete<->continuous handoff
/// the platform exists to make visible.
///
/// Event names and categories must be string literals or otherwise outlive
/// the tracer (interned signal names qualify): only the pointer is stored.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp" // URTX_OBS, nowNanos, causal mask

namespace urtx::obs {

/// One trace event. POD so ring writes are a few stores.
struct TraceEvent {
    std::uint64_t ts = 0;    ///< ns since the tracer epoch
    std::uint64_t dur = 0;   ///< ns; 0 for instants
    std::uint64_t id = 0;    ///< flow binding id ('s'/'f' phases); 0 otherwise
    const char* name = nullptr;
    const char* cat = nullptr;
    char phase = 'i';        ///< 'X' span, 'i' instant, 's'/'f' flow start/finish
    std::uint32_t tid = 0;   ///< dense per-thread id assigned at first event
};

class Tracer {
public:
    /// The process-wide tracer used by the URTX_TRACE_* macros.
    static Tracer& global();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
        detail::setCausalBit(kCausalTracer, on);
    }

    /// Ring capacity (events) for buffers created *after* the call; each
    /// recording thread gets one ring lazily on its first event.
    void setRingCapacity(std::size_t events);
    std::size_t ringCapacity() const { return capacity_.load(std::memory_order_relaxed); }

    /// Record an event on the calling thread's ring. \p ts is absolute
    /// nowNanos(); the epoch offset is applied on export. Oldest events are
    /// overwritten when the ring is full. \p id is the flow binding id for
    /// 's'/'f' phases (ignored by the exporter otherwise).
    void record(const char* cat, const char* name, char phase, std::uint64_t ts,
                std::uint64_t dur, std::uint64_t id = 0);
    /// Record an instant event timestamped now. No-op when disabled.
    void instant(const char* cat, const char* name);
    /// Flow-event pair: call flowBegin at the emitting site and flowEnd at
    /// the handling site with the same \p name and \p id. No-ops when
    /// disabled.
    void flowBegin(const char* cat, const char* name, std::uint64_t id);
    void flowEnd(const char* cat, const char* name, std::uint64_t id);

    /// Events currently retained across all threads' rings.
    std::size_t eventCount() const;
    /// Events overwritten by ring wraparound across all rings.
    std::uint64_t droppedCount() const;
    /// Drop all retained events (rings stay registered).
    void clear();

    /// All retained events, sorted by timestamp. Safe to call while other
    /// threads keep recording: each ring's head is re-read after the copy
    /// and any slot that may have been overwritten mid-copy is discarded
    /// (it counts as dropped-by-wraparound, which it is). Slot fields are
    /// individually atomic, so a concurrent snapshot is race-free.
    std::vector<TraceEvent> collect() const;

    /// Chrome trace-event JSON ("traceEvents" array of X/i/s/f events,
    /// ts/dur in microseconds). Same concurrency guarantee as collect().
    void writeChromeTrace(std::ostream& os) const;
    void writeChromeTrace(const std::string& path) const;

private:
    class Ring;
    Tracer();
    ~Tracer();
    Ring& localRing();

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> capacity_{1u << 16};
    std::uint64_t epoch_;
    mutable std::mutex mu_; ///< guards rings_ registration/iteration
    std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII scoped span: records one complete ('X') event covering its
/// lifetime. Cheap no-op when the tracer is disabled at construction.
class Span {
public:
    Span(const char* cat, const char* name) {
        if (Tracer::global().enabled()) {
            cat_ = cat;
            name_ = name;
            start_ = nowNanos();
        }
    }
    ~Span() {
        if (cat_) {
            const std::uint64_t end = nowNanos();
            Tracer::global().record(cat_, name_, 'X', start_, end - start_);
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* cat_ = nullptr;
    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
};

} // namespace urtx::obs

#if URTX_OBS
#define URTX_OBS_CONCAT2(a, b) a##b
#define URTX_OBS_CONCAT(a, b) URTX_OBS_CONCAT2(a, b)
/// Scoped span over the rest of the enclosing block.
#define URTX_TRACE_SPAN(cat, name) \
    ::urtx::obs::Span URTX_OBS_CONCAT(urtx_span_, __LINE__) { cat, name }
/// Point-in-time marker.
#define URTX_TRACE_INSTANT(cat, name) ::urtx::obs::Tracer::global().instant(cat, name)
#else
#define URTX_TRACE_SPAN(cat, name) ((void)0)
#define URTX_TRACE_INSTANT(cat, name) ((void)0)
#endif
