#pragma once
/// \file tracer.hpp
/// Low-overhead event tracing: a striped pool of fixed-capacity ring
/// buffers of timestamped events, exported as Chrome trace-event JSON
/// (chrome://tracing / https://ui.perfetto.dev).
///
/// Recording an event is two clock reads (for spans), a handful of stores
/// into a ring slot and one release store publishing the slot's seqlock —
/// tens of nanoseconds. When tracing is disabled at runtime a span costs
/// one relaxed load; when compiled with URTX_OBS=0 the URTX_TRACE_* macros
/// expand to nothing.
///
/// Threads map onto stripes by detail::threadIndex() % stripeCount(), so a
/// pool sized to the worker count (see setStripeCount) gives each hot
/// thread a private ring; an under-sized pool degrades gracefully because
/// every slot is a tiny multi-writer seqlock — concurrent writers to one
/// slot never tear an event, the later claim wins and the earlier one is
/// counted as dropped.
///
/// Besides 'X' spans and 'i' instants, the tracer records *flow events*
/// ('s' start / 'f' finish) carrying a 64-bit binding id — the causal span
/// id stamped on rt::Message at its emitting site. Perfetto draws an arrow
/// from the 's' (emit) to the matching 'f' (reaction) even when they lie on
/// different threads, which is exactly the discrete<->continuous handoff
/// the platform exists to make visible.
///
/// Event names and categories must be string literals or otherwise outlive
/// the tracer (interned signal names qualify): only the pointer is stored.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp" // URTX_OBS, nowNanos, causal mask

namespace urtx::obs {

/// One trace event. POD so ring writes are a few stores.
struct TraceEvent {
    std::uint64_t ts = 0;    ///< ns since the tracer epoch
    std::uint64_t dur = 0;   ///< ns; 0 for instants
    std::uint64_t id = 0;    ///< flow binding id ('s'/'f' phases); 0 otherwise
    const char* name = nullptr;
    const char* cat = nullptr;
    char phase = 'i';        ///< 'X' span, 'i' instant, 's'/'f' flow start/finish
    std::uint32_t tid = 0;   ///< recording thread (detail::threadIndex())
};

class Tracer {
public:
    /// The process-wide tracer used by the URTX_TRACE_* macros.
    static Tracer& global();

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void setEnabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
        detail::setCausalBit(kCausalTracer, on);
    }

    /// Ring capacity (events) for stripes created *after* the call; stripes
    /// materialise lazily on a thread's first recorded event. Existing
    /// stripes keep their capacity and their retained events.
    void setRingCapacity(std::size_t events);
    std::size_t ringCapacity() const { return capacity_.load(std::memory_order_relaxed); }

    /// Replace the stripe pool with a fresh one of \p n stripes (clamped to
    /// [1, 256]). Size this to the number of recording threads — e.g. the
    /// solver-pool worker count — so concurrent writers never share a
    /// stripe. Retained events are dropped (the old pool is retired, not
    /// freed: threads still holding a cached stripe pointer may finish an
    /// in-flight record into it harmlessly).
    void setStripeCount(std::size_t n);
    std::size_t stripeCount() const;

    /// Record an event on the calling thread's stripe. \p ts is absolute
    /// nowNanos(); the epoch offset is applied on export. Oldest events are
    /// overwritten when the ring is full. \p id is the flow binding id for
    /// 's'/'f' phases (ignored by the exporter otherwise).
    void record(const char* cat, const char* name, char phase, std::uint64_t ts,
                std::uint64_t dur, std::uint64_t id = 0);
    /// Record an instant event timestamped now. No-op when disabled.
    void instant(const char* cat, const char* name);
    /// Flow-event pair: call flowBegin at the emitting site and flowEnd at
    /// the handling site with the same \p name and \p id. No-ops when
    /// disabled.
    void flowBegin(const char* cat, const char* name, std::uint64_t id);
    void flowEnd(const char* cat, const char* name, std::uint64_t id);

    /// Events currently retained across all stripes (approximate while
    /// writers are running).
    std::size_t eventCount() const;
    /// Events lost: overwritten by ring wraparound, plus the rare write
    /// abandoned because a concurrent writer lapped its slot first.
    std::uint64_t droppedCount() const;
    /// Drop all retained events (stripes stay allocated). Call with writers
    /// quiescent: a concurrent writer may resurrect its in-flight event.
    void clear();

    /// All retained events sorted by timestamp; a non-zero \p lastN keeps
    /// only the newest N. Safe to call while other threads keep recording:
    /// each slot copy is validated by its seqlock and discarded when a
    /// writer lapped it mid-copy (it counts as dropped-by-wraparound, which
    /// it is). A writer caught mid-publish is retried a bounded number of
    /// times, so a stalled writer cannot starve the collector.
    std::vector<TraceEvent> collect(std::size_t lastN = 0) const;

    /// Chrome trace-event JSON ("traceEvents" array of X/i/s/f events,
    /// ts/dur in microseconds), optionally sliced to the newest \p lastN
    /// events. Same concurrency guarantee as collect().
    void writeChromeTrace(std::ostream& os, std::size_t lastN = 0) const;
    void writeChromeTrace(const std::string& path) const;

private:
    class Ring;
    struct Pool;
    Tracer();
    ~Tracer();
    Ring& localRing();
    std::shared_ptr<Pool> currentPool() const;

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> capacity_{1u << 16};
    std::uint64_t epoch_;
    /// Bumped by setStripeCount so threads drop their cached stripe pointer.
    std::atomic<std::uint64_t> generation_{1};
    mutable std::mutex mu_; ///< guards pool_/retired_ swap and iteration
    std::shared_ptr<Pool> pool_;
    /// Retired pools are kept alive for the process lifetime: a thread that
    /// cached a stripe pointer before a setStripeCount may still complete
    /// one in-flight record into it.
    std::vector<std::shared_ptr<Pool>> retired_;
};

/// RAII scoped span: records one complete ('X') event covering its
/// lifetime. Cheap no-op when the tracer is disabled at construction.
class Span {
public:
    Span(const char* cat, const char* name) : Span(cat, name, true) {}
    /// Conditional span: records only when \p wanted — used by sites whose
    /// slice should follow the causal span sampler's per-message decision
    /// (see URTX_TRACE_SPAN_IF). \p wanted false costs nothing, not even
    /// the enabled() load.
    Span(const char* cat, const char* name, bool wanted) {
        if (wanted && Tracer::global().enabled()) {
            cat_ = cat;
            name_ = name;
            start_ = nowNanos();
        }
    }
    ~Span() {
        if (cat_) {
            const std::uint64_t end = nowNanos();
            Tracer::global().record(cat_, name_, 'X', start_, end - start_);
        }
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* cat_ = nullptr;
    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
};

} // namespace urtx::obs

#if URTX_OBS
#define URTX_OBS_CONCAT2(a, b) a##b
#define URTX_OBS_CONCAT(a, b) URTX_OBS_CONCAT2(a, b)
/// Scoped span over the rest of the enclosing block.
#define URTX_TRACE_SPAN(cat, name) \
    ::urtx::obs::Span URTX_OBS_CONCAT(urtx_span_, __LINE__) { cat, name }
/// Scoped span recorded only when \p cond holds (evaluated once, before
/// the enabled check).
#define URTX_TRACE_SPAN_IF(cat, name, cond) \
    ::urtx::obs::Span URTX_OBS_CONCAT(urtx_span_, __LINE__) { cat, name, (cond) }
/// Point-in-time marker.
#define URTX_TRACE_INSTANT(cat, name) ::urtx::obs::Tracer::global().instant(cat, name)
#else
#define URTX_TRACE_SPAN(cat, name) ((void)0)
#define URTX_TRACE_SPAN_IF(cat, name, cond) ((void)0)
#define URTX_TRACE_INSTANT(cat, name) ((void)0)
#endif
