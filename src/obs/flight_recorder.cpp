#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace urtx::obs {

namespace {
/// The recorder installed on this thread; null means "use the process one".
thread_local FlightRecorder* tInstalled = nullptr;
} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(std::max<std::size_t>(capacity, 1)) {}

FlightRecorder& FlightRecorder::process() {
    static FlightRecorder* r = new FlightRecorder(); // leaked: hooks may fire at exit
    return *r;
}

FlightRecorder& FlightRecorder::global() { return tInstalled ? *tInstalled : process(); }

FlightRecorder* FlightRecorder::installed() { return tInstalled; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* r) {
    if (!r) return;
    prev_ = tInstalled;
    tInstalled = r;
    active_ = true;
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
    if (active_) tInstalled = prev_;
}

void FlightRecorder::setEnabled(bool on) { detail::setCausalBit(kCausalRecorder, on); }

void FlightRecorder::setCapacity(std::size_t events) {
    std::lock_guard lock(mu_);
    slots_.assign(std::max<std::size_t>(events, 1), Slot{});
    head_ = 0;
}

void FlightRecorder::setDumpPath(std::string path) {
    std::lock_guard lock(mu_);
    dumpPath_ = std::move(path);
}

std::string FlightRecorder::dumpPath() const {
    std::lock_guard lock(mu_);
    return dumpPath_;
}

void FlightRecorder::note(const char* cat, std::uint64_t spanId, const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::lock_guard lock(mu_);
    Slot& s = slots_[head_ % slots_.size()];
    s.ts = nowNanos();
    s.spanId = spanId;
    s.cat = cat;
    std::vsnprintf(s.text, sizeof(s.text), fmt, args);
    ++head_;
    va_end(args);
}

std::size_t FlightRecorder::eventCount() const {
    std::lock_guard lock(mu_);
    return static_cast<std::size_t>(std::min<std::uint64_t>(head_, slots_.size()));
}

std::uint64_t FlightRecorder::droppedCount() const {
    std::lock_guard lock(mu_);
    return head_ > slots_.size() ? head_ - slots_.size() : 0;
}

void FlightRecorder::clear() {
    std::lock_guard lock(mu_);
    head_ = 0;
}

namespace {

void jsonEscape(std::ostringstream& os, std::string_view s) {
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
}

} // namespace

std::string FlightRecorder::dumpString(std::string_view reason) const {
    std::ostringstream os;
    os << "{\"reason\":\"";
    jsonEscape(os, reason);
    os << "\",\"dumped_at_ns\":" << nowNanos();
    {
        std::lock_guard lock(mu_);
        const std::uint64_t n = std::min<std::uint64_t>(head_, slots_.size());
        os << ",\"events_dropped\":" << (head_ > slots_.size() ? head_ - slots_.size() : 0);
        os << ",\"events\":[";
        for (std::uint64_t i = head_ - n; i < head_; ++i) {
            const Slot& s = slots_[i % slots_.size()];
            if (i != head_ - n) os << ",";
            os << "{\"ts\":" << s.ts << ",\"cat\":\"" << s.cat << "\",\"span\":" << s.spanId
               << ",\"text\":\"";
            jsonEscape(os, s.text);
            os << "\"}";
        }
        os << "]";
    }
    // The last metrics snapshot rides along so a post-mortem shows both the
    // recent causal history and the aggregate state it ended in.
    os << ",\"metrics\":" << Registry::global().snapshot().toJson() << "}";
    return os.str();
}

std::string FlightRecorder::dumpNow(std::string_view reason) noexcept {
    try {
        const std::string body = dumpString(reason);
        std::string path;
        {
            std::lock_guard lock(mu_);
            path = dumpPath_;
        }
        std::ofstream f(path);
        if (!f) return {};
        f << body;
        f.close();
        {
            std::lock_guard lock(mu_);
            lastDumpPath_ = path;
        }
        dumps_.fetch_add(1, std::memory_order_relaxed);
#if URTX_OBS
        wellknown().obsPostmortemDumps->inc();
#endif
        return path;
    } catch (...) {
        return {};
    }
}

void FlightRecorder::onFault(const char* what) noexcept {
    if (!causalBit(kCausalRecorder)) return;
    try {
        note("fault", 0, "FAULT: %s", what);
        dumpNow(std::string("fault: ") + what);
    } catch (...) {
    }
}

std::string FlightRecorder::lastDumpPath() const {
    std::lock_guard lock(mu_);
    return lastDumpPath_;
}

} // namespace urtx::obs
