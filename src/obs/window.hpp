#pragma once
/// \file window.hpp
/// Windowed statistics over Registry snapshots: rolling rates and
/// histogram quantiles computed from *deltas* between periodic snapshots
/// instead of lifetime totals.
///
/// The Registry's counters and histograms only ever accumulate, so "how
/// busy is the daemon right now" is unanswerable from a single snapshot.
/// StatsWindow keeps a ring of timestamped snapshots captured by a caller-
/// driven tick (the serving daemon drives it from its reactor loop's poll
/// timeout); a query takes one fresh snapshot and subtracts the ring entry
/// closest to the requested window, so a 10s rate is (counter now − counter
/// 10s ago) / elapsed and a windowed quantile interpolates over the bucket
/// *deltas* accumulated inside the window only.
///
/// WcetTracker complements the windows with per-key worst-case-execution-
/// time tracking: a bounded ring of recent solve times per
/// (scenario, solver) key yielding rolling max and p99 next to the lifetime
/// worst — the measured-WCET input the schedulability-analysis admission
/// work (ROADMAP item 5a) reads.
///
/// Thread-safety: every public member takes an internal mutex; ticks are
/// expected at O(1 Hz) and queries at control-verb rate, so the lock is
/// never contended on a hot path.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace urtx::obs {

/// Ring of periodic Registry snapshots with delta-based rolling rates and
/// windowed histogram quantiles.
class StatsWindow {
public:
    /// \p source: the registry to snapshot (held by reference; must outlive
    /// the window). \p capacity: ring size — at a 1 Hz tick, 128 entries
    /// cover every window up to two minutes.
    explicit StatsWindow(Registry& source, std::size_t capacity = 128);

    /// Capture one snapshot now. Called by whoever owns the cadence (the
    /// daemon's reactor tick); never called internally by queries.
    void tick();
    /// Test seam: capture a snapshot but record \p monoNanos as its
    /// timestamp, so tests can lay out a deterministic timeline.
    void tickAt(std::uint64_t monoNanos);

    /// Number of snapshots currently retained.
    std::size_t ticks() const;
    /// Seconds between the oldest and newest retained snapshot (0 with
    /// fewer than two).
    double coverageSeconds() const;

    /// Rolling rate of counter \p name per second over the trailing
    /// \p windowSeconds: the delta between a fresh snapshot and the ring
    /// entry nearest the window boundary, divided by the *actual* elapsed
    /// time between the two. Returns 0 with an empty ring or an unknown
    /// counter.
    double rate(std::string_view name, double windowSeconds) const;

    struct WindowedQuantiles {
        double p50 = 0.0;
        double p90 = 0.0;
        double p99 = 0.0;
        std::uint64_t count = 0;     ///< observations inside the window
        double windowSeconds = 0.0;  ///< actual span the deltas cover
    };

    /// Windowed histogram quantiles for \p name: cumulative-bucket linear
    /// interpolation over the per-bucket count deltas accumulated inside
    /// the trailing \p windowSeconds. Zero-filled with no data.
    WindowedQuantiles quantiles(std::string_view name, double windowSeconds) const;

    /// Test seams: same queries with an injected "now" timestamp.
    double rateAt(std::string_view name, double windowSeconds, std::uint64_t nowNs) const;
    WindowedQuantiles quantilesAt(std::string_view name, double windowSeconds,
                                  std::uint64_t nowNs) const;

    /// The quantile estimator itself, exposed for direct testing: \p bounds
    /// are the finite "le" bucket bounds, \p deltaCounts the per-bucket
    /// count deltas (size bounds+1, last = +Inf bucket), \p q in (0, 1].
    /// Linear interpolation inside the bucket containing the target rank;
    /// mass in the +Inf bucket clamps to the highest finite bound (the
    /// Prometheus histogram_quantile convention). Returns 0 on no mass.
    static double quantileFromDeltas(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& deltaCounts, double q);

private:
    struct Entry {
        std::uint64_t nanos = 0;
        Snapshot snap;
    };
    /// Newest ring entry at least \p windowSeconds older than \p nowNs, or
    /// the oldest entry when none is that old; nullptr on an empty ring.
    const Entry* baseline(double windowSeconds, std::uint64_t nowNs) const;

    Registry& source_;
    std::size_t capacity_;
    std::deque<Entry> ring_;
    mutable std::mutex mu_;
};

/// Rolling worst-case-execution-time tracker: per (scenario, solver) key, a
/// bounded ring of the most recent solve times yielding rolling max and
/// nearest-rank p99, plus the lifetime worst and count.
class WcetTracker {
public:
    /// \p window: ring capacity per key (rolling max / p99 span).
    explicit WcetTracker(std::size_t window = 256);

    void observe(std::string_view scenario, std::string_view solver, double solveSeconds);

    struct Entry {
        std::string scenario;
        std::string solver;
        std::uint64_t count = 0;  ///< lifetime observations
        double last = 0.0;        ///< most recent solve time
        double worst = 0.0;       ///< lifetime maximum
        double rollingMax = 0.0;  ///< maximum over the retained ring
        double p99 = 0.0;         ///< nearest-rank p99 over the retained ring
    };

    /// Current table, sorted by (scenario, solver).
    std::vector<Entry> table() const;

private:
    struct Ring {
        std::vector<double> samples;  ///< ring storage, size <= window
        std::size_t next = 0;         ///< overwrite cursor once full
        std::uint64_t count = 0;
        double last = 0.0;
        double worst = 0.0;
    };

    std::size_t window_;
    std::map<std::pair<std::string, std::string>, Ring> keys_;
    mutable std::mutex mu_;
};

} // namespace urtx::obs
