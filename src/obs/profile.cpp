#include "obs/profile.hpp"

namespace urtx::obs {

const std::array<const char*, kStageCount>& stageNames() {
    static const std::array<const char*, kStageCount> names = {
        "decode",       "admission", "queue_wait", "warm_acquire",
        "cold_build",   "solve",     "encode",     "reply",
    };
    return names;
}

const char* stageName(Stage s) { return stageNames()[static_cast<std::size_t>(s)]; }

double StageProfile::offsetSeconds(Stage s) const {
    const std::uint64_t t = stampOf(s);
    if (t == 0 || originNanos == 0 || t < originNanos) return 0.0;
    return static_cast<double>(t - originNanos) * 1e-9;
}

void StageProfile::merge(const StageProfile& other) {
    if (originNanos == 0) originNanos = other.originNanos;
    enabled = enabled || other.enabled;
    for (std::size_t i = 0; i < kStageCount; ++i) {
        if (stampNanos[i] == 0) stampNanos[i] = other.stampNanos[i];
    }
}

std::map<std::string, double> StageProfile::toMap() const {
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < kStageCount; ++i) {
        if (stampNanos[i] != 0) {
            out[stageNames()[i]] = offsetSeconds(static_cast<Stage>(i));
        }
    }
    return out;
}

} // namespace urtx::obs
