#include "obs/monitor.hpp"

#include <algorithm>
#include <chrono>

#include "obs/flight_recorder.hpp"

namespace urtx::obs {

// --- Monitor ----------------------------------------------------------------

Monitor& Monitor::global() {
    static Monitor* m = new Monitor(); // leaked: hooks may fire at exit
    return *m;
}

void Monitor::setEnabled(bool on) { detail::setCausalBit(kCausalMonitor, on); }

Monitor::PerSignal& Monitor::entryFor(MonitoredSignal signal, const char* name) {
    std::lock_guard lock(mu_);
    const std::size_t idx = signal % kMaxTracked;
    if (PerSignal* e = table_[idx].load(std::memory_order_acquire)) return *e;
    auto e = std::make_unique<PerSignal>();
    e->name = name;
    // Always the process registry: the monitor is process-wide and caches
    // these pointers for its lifetime, so binding them to a (possibly
    // short-lived) scenario-scoped registry would leave them dangling.
    Registry& r = Registry::process();
    const std::string base(name);
    e->latency = &r.histogram("rt.hop_latency_seconds." + base,
                              wellknown().rtHopLatency->bounds());
    e->worst = &r.gauge("rt.hop_latency_worst_seconds." + base);
    owned_.push_back(std::move(e));
    table_[idx].store(owned_.back().get(), std::memory_order_release);
    return *owned_.back();
}

void Monitor::require(MonitoredSignal signal, const char* name, double budgetSeconds,
                      bool abortOnMiss, std::function<void(const DeadlineMiss&)> onMiss) {
    PerSignal& e = entryFor(signal, name);
    std::lock_guard lock(mu_);
    if (!e.misses) {
        e.misses = &Registry::process().counter("rt.deadline_miss." + std::string(name));
    }
    e.budget = budgetSeconds;
    e.abortOnMiss = abortOnMiss;
    e.onMiss = std::move(onMiss);
}

void Monitor::clear() {
    std::lock_guard lock(mu_);
    for (auto& slot : table_) slot.store(nullptr, std::memory_order_release);
    owned_.clear();
}

std::uint64_t Monitor::misses() const { return wellknown().rtDeadlineMiss->value(); }

void Monitor::onHop(MonitoredSignal signal, const char* name, std::uint64_t spanId,
                    std::uint64_t enqueueNanos, const char* site) {
    if (enqueueNanos == 0) return; // unstamped message (tracking enabled mid-flight)
    const double latency = static_cast<double>(nowNanos() - enqueueNanos) * 1e-9;
    wellknown().rtHopLatency->observe(latency);
    PerSignal* e = table_[signal % kMaxTracked].load(std::memory_order_acquire);
    if (!e) e = &entryFor(signal, name);
    e->latency->observe(latency);
    e->worst->max(latency);
    if (e->budget >= 0.0 && latency > e->budget) {
        wellknown().rtDeadlineMiss->inc();
        if (e->misses) e->misses->inc();
        DeadlineMiss miss;
        miss.signal = signal;
        miss.name = e->name;
        miss.spanId = spanId;
        miss.latencySeconds = latency;
        miss.budgetSeconds = e->budget;
        miss.site = site;
        if (causalBit(kCausalRecorder)) {
            FlightRecorder::global().note("monitor", spanId,
                                          "DEADLINE MISS %s at %s: %.1f us > budget %.1f us",
                                          e->name, site, latency * 1e6, e->budget * 1e6);
        }
        if (e->onMiss) e->onMiss(miss);
        if (e->abortOnMiss) {
            FlightRecorder::global().dumpNow(std::string("deadline miss: signal '") + e->name +
                                             "' handled at " + site + " after " +
                                             std::to_string(latency * 1e6) + " us (budget " +
                                             std::to_string(e->budget * 1e6) + " us)");
        }
    }
}

// --- Watchdog ---------------------------------------------------------------

Watchdog& Watchdog::global() {
    static Watchdog* w = new Watchdog(); // leaked: pool hooks may fire at exit
    return *w;
}

void Watchdog::setBudget(double seconds) {
    budgetSeconds_.store(seconds, std::memory_order_relaxed);
}

void Watchdog::setCallback(std::function<void(double)> cb) {
    std::lock_guard lock(cbMu_);
    callback_ = std::move(cb);
}

void Watchdog::start() {
    if (running_.exchange(true)) return;
    stopRequested_.store(false);
    detail::setCausalBit(kCausalWatchdog, true);
    thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
    if (!running_.load()) return;
    stopRequested_.store(true);
    if (thread_.joinable()) thread_.join();
    detail::setCausalBit(kCausalWatchdog, false);
    running_.store(false);
}

void Watchdog::loop() {
    std::uint64_t flaggedGrant = 0; // grantStart value already reported
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        const double budget = budgetSeconds_.load(std::memory_order_relaxed);
        // Poll a few times per budget so detection latency stays a fraction
        // of the budget without burning a core on tight budgets.
        const double poll = budget > 0 ? std::clamp(budget / 4.0, 100e-6, 50e-3) : 10e-3;
        std::this_thread::sleep_for(std::chrono::duration<double>(poll));
        if (budget <= 0) continue;
        const std::uint64_t start = grantStart_.load(std::memory_order_relaxed);
        if (start == 0 || start == flaggedGrant) continue;
        const double age = static_cast<double>(nowNanos() - start) * 1e-9;
        if (age <= budget) continue;
        flaggedGrant = start; // one report per stuck grant
        stalls_.fetch_add(1, std::memory_order_relaxed);
        wellknown().simSolverStalls->inc();
        if (causalBit(kCausalRecorder)) {
            FlightRecorder::global().note(
                "watchdog", 0, "SOLVER STALL: grant running %.2f ms > budget %.2f ms",
                age * 1e3, budget * 1e3);
            FlightRecorder::global().dumpNow(
                "solver grant stalled: " + std::to_string(age * 1e3) + " ms > budget " +
                std::to_string(budget * 1e3) + " ms");
        }
        std::function<void(double)> cb;
        {
            std::lock_guard lock(cbMu_);
            cb = callback_;
        }
        if (cb) cb(age);
    }
}

} // namespace urtx::obs
