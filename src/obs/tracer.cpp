#include "obs/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace urtx::obs {

namespace {
/// Default stripe pool size. Generous relative to typical worker counts so
/// hot threads land on private stripes even before the embedder calls
/// setStripeCount; each stripe is lazily allocated, so unused entries cost
/// one pointer.
constexpr std::size_t kDefaultStripes = 32;
constexpr std::size_t kMaxStripes = 256;
} // namespace

/// Fixed-capacity multi-writer event ring. head_ counts claims ever made;
/// slot = head_ % capacity. A writer claims its write index with a
/// fetch_add, then claims the *slot* by CASing the slot's seqlock from an
/// older even (published/empty) value to 2h+1. The claim fails — and the
/// event is counted lost instead of written — when the slot already shows a
/// later claim (a concurrent writer lapped us) or an odd value (an earlier
/// writer is still mid-write; co-writing would tear its event). With one
/// writer per stripe the CAS always succeeds and the fast path is the same
/// handful of stores as a single-writer seqlock ring.
///
/// Slot fields are individually atomic (relaxed stores compile to plain
/// moves on mainstream ISAs) so a reader may copy slots while writers run
/// without a data race. Torn *combinations* (fields from two different
/// events) are caught by the seqlock: the writer brackets the field stores
/// with seq = 2h+1 (in progress) / 2h+2 (event h published), and the reader
/// keeps a copied slot only when seq read the same completed value before
/// and after the field copy — see collectInto.
class Tracer::Ring {
public:
    explicit Ring(std::size_t capacity) : slots_(std::max<std::size_t>(capacity, 1)) {}

    void push(const TraceEvent& ev) {
        const std::uint64_t h = head_.fetch_add(1, std::memory_order_relaxed);
        Slot& slot = slots_[h % slots_.size()];
        const std::uint64_t claim = 2 * h + 1;
        std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
        for (;;) {
            if (seq >= claim || (seq & 1)) {
                // Lapped by a later writer, or an earlier writer is still
                // publishing into this slot. Either way the ring is being
                // overrun; drop this event rather than tear another.
                lost_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            if (slot.seq.compare_exchange_weak(seq, claim, std::memory_order_relaxed)) break;
        }
        std::atomic_thread_fence(std::memory_order_release);
        slot.ts.store(ev.ts, std::memory_order_relaxed);
        slot.dur.store(ev.dur, std::memory_order_relaxed);
        slot.id.store(ev.id, std::memory_order_relaxed);
        slot.name.store(ev.name, std::memory_order_relaxed);
        slot.cat.store(ev.cat, std::memory_order_relaxed);
        slot.phase.store(ev.phase, std::memory_order_relaxed);
        slot.tid.store(ev.tid, std::memory_order_relaxed);
        slot.seq.store(claim + 1, std::memory_order_release);
    }

    std::size_t retained() const {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(std::min<std::uint64_t>(h, slots_.size()));
    }

    std::uint64_t dropped() const {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        const std::uint64_t wrapped = h > slots_.size() ? h - slots_.size() : 0;
        return wrapped + lost_.load(std::memory_order_relaxed);
    }

    /// Reset to empty. Seqs must go back to 0 too: a stale published seq
    /// would outrank the small claim values of a restarted head and make
    /// push() drop everything. Callers quiesce writers first (Tracer::clear
    /// documents this).
    void clear() {
        head_.store(0, std::memory_order_release);
        lost_.store(0, std::memory_order_relaxed);
        for (Slot& s : slots_) s.seq.store(0, std::memory_order_release);
    }

    /// Oldest-to-newest copy of the retained events, concurrency-safe.
    /// Each slot copy is validated with its seqlock: seq must read the
    /// published value for exactly write index i (2i+2) both before and
    /// after the field copy, else a writer lapped us mid-copy and the slot
    /// is discarded (it was about to be lost to wraparound anyway). A
    /// writer caught between claim and publish (seq == 2i+1) is retried a
    /// bounded number of times — usually it finishes within a few stores —
    /// so a preempted writer can delay the collector but never wedge it.
    /// With writers quiescent every retained slot validates, so the
    /// snapshot is exact.
    void collectInto(std::vector<TraceEvent>& out) const {
        const std::uint64_t cap = slots_.size();
        const std::uint64_t h1 = head_.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(h1, cap);
        for (std::uint64_t i = h1 - n; i < h1; ++i) {
            const Slot& s = slots_[i % cap];
            const std::uint64_t want = 2 * i + 2;
            for (int attempt = 0; attempt < 64; ++attempt) {
                const std::uint64_t sq = s.seq.load(std::memory_order_acquire);
                if (sq != want) {
                    if (sq + 1 == want) continue; // mid-publish: brief retry
                    break; // lapped, abandoned claim, or older event: skip
                }
                TraceEvent ev;
                ev.ts = s.ts.load(std::memory_order_relaxed);
                ev.dur = s.dur.load(std::memory_order_relaxed);
                ev.id = s.id.load(std::memory_order_relaxed);
                ev.name = s.name.load(std::memory_order_relaxed);
                ev.cat = s.cat.load(std::memory_order_relaxed);
                ev.phase = s.phase.load(std::memory_order_relaxed);
                ev.tid = s.tid.load(std::memory_order_relaxed);
                std::atomic_thread_fence(std::memory_order_acquire);
                if (s.seq.load(std::memory_order_relaxed) == want) out.push_back(ev);
                break;
            }
        }
    }

private:
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> ts{0};
        std::atomic<std::uint64_t> dur{0};
        std::atomic<std::uint64_t> id{0};
        std::atomic<const char*> name{nullptr};
        std::atomic<const char*> cat{nullptr};
        std::atomic<char> phase{'i'};
        std::atomic<std::uint32_t> tid{0};
    };
    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> lost_{0}; ///< writes abandoned under contention
};

/// A fixed-size array of lazily created stripes. Lookup is lock-free: the
/// stripe pointer is installed with a CAS on first use, so recording
/// threads never touch the tracer mutex.
struct Tracer::Pool {
    explicit Pool(std::size_t n) : stripes(n) {
        for (auto& s : stripes) s.store(nullptr, std::memory_order_relaxed);
    }
    ~Pool() {
        for (auto& s : stripes) delete s.load(std::memory_order_relaxed);
    }
    std::vector<std::atomic<Ring*>> stripes;
};

Tracer::Tracer() : epoch_(nowNanos()), pool_(std::make_shared<Pool>(kDefaultStripes)) {}
Tracer::~Tracer() = default;

Tracer& Tracer::global() {
    static Tracer* t = new Tracer(); // leaked: threads may trace at exit
    return *t;
}

void Tracer::setRingCapacity(std::size_t events) {
    capacity_.store(std::max<std::size_t>(events, 1), std::memory_order_relaxed);
}

void Tracer::setStripeCount(std::size_t n) {
    n = std::min(std::max<std::size_t>(n, 1), kMaxStripes);
    std::lock_guard lock(mu_);
    retired_.push_back(pool_);
    pool_ = std::make_shared<Pool>(n);
    // Invalidate every thread's cached stripe pointer; the swap itself is
    // published by the mutex localRing() takes on the re-resolve.
    generation_.fetch_add(1, std::memory_order_release);
}

std::size_t Tracer::stripeCount() const {
    std::lock_guard lock(mu_);
    return pool_->stripes.size();
}

std::shared_ptr<Tracer::Pool> Tracer::currentPool() const {
    std::lock_guard lock(mu_);
    return pool_;
}

Tracer::Ring& Tracer::localRing() {
    thread_local Ring* cached = nullptr;
    thread_local std::uint64_t cachedGen = 0;
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (cached && cachedGen == gen) return *cached;
    const std::shared_ptr<Pool> pool = currentPool();
    auto& stripe = pool->stripes[detail::threadIndex() % pool->stripes.size()];
    Ring* ring = stripe.load(std::memory_order_acquire);
    if (!ring) {
        auto fresh = std::make_unique<Ring>(capacity_.load(std::memory_order_relaxed));
        Ring* expected = nullptr;
        if (stripe.compare_exchange_strong(expected, fresh.get(), std::memory_order_acq_rel)) {
            ring = fresh.release(); // pool owns it now
        } else {
            ring = expected; // another thread won the install
        }
    }
    cached = ring;
    cachedGen = gen;
    return *ring;
}

void Tracer::record(const char* cat, const char* name, char phase, std::uint64_t ts,
                    std::uint64_t dur, std::uint64_t id) {
    TraceEvent ev;
    ev.ts = ts;
    ev.dur = dur;
    ev.id = id;
    ev.name = name;
    ev.cat = cat;
    ev.phase = phase;
    ev.tid = static_cast<std::uint32_t>(detail::threadIndex());
    localRing().push(ev);
}

void Tracer::instant(const char* cat, const char* name) {
    if (!enabled()) return;
    record(cat, name, 'i', nowNanos(), 0);
}

void Tracer::flowBegin(const char* cat, const char* name, std::uint64_t id) {
    if (!enabled()) return;
    record(cat, name, 's', nowNanos(), 0, id);
}

void Tracer::flowEnd(const char* cat, const char* name, std::uint64_t id) {
    if (!enabled()) return;
    record(cat, name, 'f', nowNanos(), 0, id);
}

std::size_t Tracer::eventCount() const {
    const std::shared_ptr<Pool> pool = currentPool();
    std::size_t n = 0;
    for (const auto& s : pool->stripes) {
        if (const Ring* r = s.load(std::memory_order_acquire)) n += r->retained();
    }
    return n;
}

std::uint64_t Tracer::droppedCount() const {
    const std::shared_ptr<Pool> pool = currentPool();
    std::uint64_t n = 0;
    for (const auto& s : pool->stripes) {
        if (const Ring* r = s.load(std::memory_order_acquire)) n += r->dropped();
    }
    return n;
}

void Tracer::clear() {
    const std::shared_ptr<Pool> pool = currentPool();
    for (auto& s : pool->stripes) {
        if (Ring* r = s.load(std::memory_order_acquire)) r->clear();
    }
}

std::vector<TraceEvent> Tracer::collect(std::size_t lastN) const {
    std::vector<TraceEvent> out;
    {
        const std::shared_ptr<Pool> pool = currentPool();
        for (const auto& s : pool->stripes) {
            if (const Ring* r = s.load(std::memory_order_acquire)) r->collectInto(out);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
    if (lastN != 0 && out.size() > lastN)
        out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(lastN));
    return out;
}

void Tracer::writeChromeTrace(std::ostream& os, std::size_t lastN) const {
    const std::vector<TraceEvent> events = collect(lastN);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : events) {
        if (!first) os << ",";
        first = false;
        // Chrome expects microseconds; keep sub-us resolution as decimals.
        const double ts = static_cast<double>(ev.ts - std::min(ev.ts, epoch_)) / 1e3;
        os << "{\"name\":\"" << (ev.name ? ev.name : "?") << "\",\"cat\":\""
           << (ev.cat ? ev.cat : "urtx") << "\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
           << ev.tid << ",\"ts\":" << ts;
        if (ev.phase == 'X') os << ",\"dur\":" << static_cast<double>(ev.dur) / 1e3;
        if (ev.phase == 'i') os << ",\"s\":\"t\"";
        if (ev.phase == 's' || ev.phase == 'f') {
            os << ",\"id\":\"" << ev.id << "\"";
            // Bind the finish to its enclosing slice so Perfetto draws the
            // arrow into the handler span rather than a floating point.
            if (ev.phase == 'f') os << ",\"bp\":\"e\"";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

void Tracer::writeChromeTrace(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("Tracer::writeChromeTrace: cannot open '" + path + "'");
    writeChromeTrace(static_cast<std::ostream&>(f));
}

} // namespace urtx::obs
