#include "obs/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace urtx::obs {

/// Fixed-capacity event ring written by exactly one thread. head_ counts
/// events ever written; slot = head_ % capacity. The writer publishes each
/// event with a release store of head_.
///
/// Slot fields are individually atomic (relaxed stores compile to plain
/// moves on mainstream ISAs) so a reader may copy slots while the writer
/// runs without a data race. Torn *combinations* (fields from two different
/// events) are caught by a per-slot seqlock: the writer brackets the field
/// stores with seq = 2h+1 (in progress) / 2h+2 (event h published), and the
/// reader keeps a copied slot only when seq read the same completed value
/// before and after the field copy — see collectInto.
class Tracer::Ring {
public:
    Ring(std::size_t capacity, std::uint32_t tid)
        : slots_(std::max<std::size_t>(capacity, 1)), tid_(tid) {}

    void push(const TraceEvent& ev) {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        Slot& slot = slots_[h % slots_.size()];
        slot.seq.store(2 * h + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        slot.ts.store(ev.ts, std::memory_order_relaxed);
        slot.dur.store(ev.dur, std::memory_order_relaxed);
        slot.id.store(ev.id, std::memory_order_relaxed);
        slot.name.store(ev.name, std::memory_order_relaxed);
        slot.cat.store(ev.cat, std::memory_order_relaxed);
        slot.phase.store(ev.phase, std::memory_order_relaxed);
        slot.seq.store(2 * h + 2, std::memory_order_release);
        head_.store(h + 1, std::memory_order_release);
    }

    std::size_t retained() const {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(std::min<std::uint64_t>(h, slots_.size()));
    }

    std::uint64_t dropped() const {
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return h > slots_.size() ? h - slots_.size() : 0;
    }

    void clear() { head_.store(0, std::memory_order_release); }

    /// Oldest-to-newest copy of the retained events, concurrency-safe.
    /// Each slot copy is validated with its seqlock: seq must read the
    /// published value for exactly write index i (2i+2) both before and
    /// after the field copy, else the writer lapped us mid-copy and the
    /// slot is discarded (it was about to be lost to wraparound anyway).
    /// With the writer quiescent every retained slot validates, so the
    /// snapshot is exact.
    void collectInto(std::vector<TraceEvent>& out) const {
        const std::uint64_t cap = slots_.size();
        const std::uint64_t h1 = head_.load(std::memory_order_acquire);
        const std::uint64_t n = std::min<std::uint64_t>(h1, cap);
        for (std::uint64_t i = h1 - n; i < h1; ++i) {
            const Slot& s = slots_[i % cap];
            const std::uint64_t want = 2 * i + 2;
            if (s.seq.load(std::memory_order_acquire) != want) continue;
            TraceEvent ev;
            ev.ts = s.ts.load(std::memory_order_relaxed);
            ev.dur = s.dur.load(std::memory_order_relaxed);
            ev.id = s.id.load(std::memory_order_relaxed);
            ev.name = s.name.load(std::memory_order_relaxed);
            ev.cat = s.cat.load(std::memory_order_relaxed);
            ev.phase = s.phase.load(std::memory_order_relaxed);
            ev.tid = tid_;
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.seq.load(std::memory_order_relaxed) != want) continue;
            out.push_back(ev);
        }
    }

private:
    struct Slot {
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> ts{0};
        std::atomic<std::uint64_t> dur{0};
        std::atomic<std::uint64_t> id{0};
        std::atomic<const char*> name{nullptr};
        std::atomic<const char*> cat{nullptr};
        std::atomic<char> phase{'i'};
    };
    std::vector<Slot> slots_;
    std::uint32_t tid_;
    std::atomic<std::uint64_t> head_{0};
};

Tracer::Tracer() : epoch_(nowNanos()) {}
Tracer::~Tracer() = default;

Tracer& Tracer::global() {
    static Tracer* t = new Tracer(); // leaked: threads may trace at exit
    return *t;
}

void Tracer::setRingCapacity(std::size_t events) {
    capacity_.store(std::max<std::size_t>(events, 1), std::memory_order_relaxed);
}

Tracer::Ring& Tracer::localRing() {
    thread_local Ring* ring = nullptr;
    if (!ring) {
        std::lock_guard lock(mu_);
        const auto tid = static_cast<std::uint32_t>(rings_.size());
        rings_.push_back(std::make_unique<Ring>(capacity_.load(std::memory_order_relaxed), tid));
        ring = rings_.back().get();
    }
    return *ring;
}

void Tracer::record(const char* cat, const char* name, char phase, std::uint64_t ts,
                    std::uint64_t dur, std::uint64_t id) {
    TraceEvent ev;
    ev.ts = ts;
    ev.dur = dur;
    ev.id = id;
    ev.name = name;
    ev.cat = cat;
    ev.phase = phase;
    localRing().push(ev);
}

void Tracer::instant(const char* cat, const char* name) {
    if (!enabled()) return;
    record(cat, name, 'i', nowNanos(), 0);
}

void Tracer::flowBegin(const char* cat, const char* name, std::uint64_t id) {
    if (!enabled()) return;
    record(cat, name, 's', nowNanos(), 0, id);
}

void Tracer::flowEnd(const char* cat, const char* name, std::uint64_t id) {
    if (!enabled()) return;
    record(cat, name, 'f', nowNanos(), 0, id);
}

std::size_t Tracer::eventCount() const {
    std::lock_guard lock(mu_);
    std::size_t n = 0;
    for (const auto& r : rings_) n += r->retained();
    return n;
}

std::uint64_t Tracer::droppedCount() const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const auto& r : rings_) n += r->dropped();
    return n;
}

void Tracer::clear() {
    std::lock_guard lock(mu_);
    for (auto& r : rings_) r->clear();
}

std::vector<TraceEvent> Tracer::collect() const {
    std::vector<TraceEvent> out;
    {
        std::lock_guard lock(mu_);
        for (const auto& r : rings_) r->collectInto(out);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
    return out;
}

void Tracer::writeChromeTrace(std::ostream& os) const {
    const std::vector<TraceEvent> events = collect();
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : events) {
        if (!first) os << ",";
        first = false;
        // Chrome expects microseconds; keep sub-us resolution as decimals.
        const double ts = static_cast<double>(ev.ts - std::min(ev.ts, epoch_)) / 1e3;
        os << "{\"name\":\"" << (ev.name ? ev.name : "?") << "\",\"cat\":\""
           << (ev.cat ? ev.cat : "urtx") << "\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
           << ev.tid << ",\"ts\":" << ts;
        if (ev.phase == 'X') os << ",\"dur\":" << static_cast<double>(ev.dur) / 1e3;
        if (ev.phase == 'i') os << ",\"s\":\"t\"";
        if (ev.phase == 's' || ev.phase == 'f') {
            os << ",\"id\":\"" << ev.id << "\"";
            // Bind the finish to its enclosing slice so Perfetto draws the
            // arrow into the handler span rather than a floating point.
            if (ev.phase == 'f') os << ",\"bp\":\"e\"";
        }
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

void Tracer::writeChromeTrace(const std::string& path) const {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("Tracer::writeChromeTrace: cannot open '" + path + "'");
    writeChromeTrace(static_cast<std::ostream&>(f));
}

} // namespace urtx::obs
