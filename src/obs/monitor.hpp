#pragma once
/// \file monitor.hpp
/// Online real-time health monitors: per-signal deadline checks on the
/// causal message path, and a watchdog for stalled solver grants.
///
/// The telemetry layer (metrics.hpp / tracer.hpp) counts and times
/// individual sites; the Monitor observes the *real-time contract*: did the
/// reaction to a signal start within its declared budget of the emit?
/// Capsule and streamer reactions are both covered — Controller::deliver
/// checks messages handled by capsules, SPort::drain checks messages handed
/// to streamers — because rt::Message carries its emit timestamp and causal
/// span id from the emitting site (Port::send, timer fire, SPort::send).
///
/// All hot-path work is gated behind the shared causal mask (one relaxed
/// load per site, see obs::causalOn) and compiles out under URTX_OBS=0.
///
/// The Watchdog covers the failure mode deadlines cannot: a SolverPool
/// grant that never completes (diverging equations, a livelocked event
/// loop, a deadlocked worker). A background thread flags any grant older
/// than the wall-clock budget, bumps sim.solver_grant_stalls, invokes the
/// optional callback and asks the FlightRecorder for a post-mortem dump.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace urtx::obs {

/// Mirror of rt::SignalId (a dense interned-name index). Kept as a plain
/// integer here so the obs layer does not depend on rt headers.
using MonitoredSignal = std::uint32_t;

/// Everything a deadline-miss observer gets to see.
struct DeadlineMiss {
    MonitoredSignal signal = 0;
    const char* name = "";        ///< interned signal name (process lifetime)
    std::uint64_t spanId = 0;     ///< causal span of the late message
    double latencySeconds = 0.0;  ///< emit -> handle latency observed
    double budgetSeconds = 0.0;   ///< the declared deadline
    const char* site = "";        ///< "dispatch" (capsule) or "sport.drain" (streamer)
};

class Monitor {
public:
    /// The process-wide monitor consulted by the runtime hooks.
    static Monitor& global();

    /// Runtime switch. When off, instrumented sites pay one relaxed load.
    void setEnabled(bool on);
    bool enabled() const { return causalBit(kCausalMonitor); }

    /// Declare that every reaction to \p signal must begin within
    /// \p budgetSeconds of its emit. \p name must outlive the monitor
    /// (interned signal names qualify). On a miss: rt.deadline_miss and the
    /// per-signal miss counter bump, the per-signal worst-case gauge rises,
    /// \p onMiss (if any) runs on the handling thread, and with
    /// \p abortOnMiss the FlightRecorder writes a post-mortem dump.
    void require(MonitoredSignal signal, const char* name, double budgetSeconds,
                 bool abortOnMiss = false,
                 std::function<void(const DeadlineMiss&)> onMiss = {});

    /// Drop every declared deadline and per-signal cache (tests).
    void clear();

    /// Total deadline misses observed since the last metrics reset.
    std::uint64_t misses() const;

    /// Hot-path hook: a message emitted at \p enqueueNanos with causal span
    /// \p spanId is being handled now. Records per-signal and aggregate
    /// emit->handle latency histograms, the worst-case gauge, and checks
    /// the declared deadline. \p name is the interned signal name.
    void onHop(MonitoredSignal signal, const char* name, std::uint64_t spanId,
               std::uint64_t enqueueNanos, const char* site);

private:
    Monitor() = default;

    struct PerSignal {
        const char* name = "";
        Histogram* latency = nullptr;  ///< rt.hop_latency_seconds.<name>
        Gauge* worst = nullptr;        ///< rt.hop_latency_worst_seconds.<name>
        Counter* misses = nullptr;     ///< rt.deadline_miss.<name>; null until require()
        double budget = -1.0;          ///< < 0: no deadline declared
        bool abortOnMiss = false;
        std::function<void(const DeadlineMiss&)> onMiss;
    };

    PerSignal& entryFor(MonitoredSignal signal, const char* name);

    /// Dense signal-id -> entry table. Slots are installed once under mu_
    /// and published with a release store; the hot path does one relaxed
    /// bounds check plus one acquire load. Entries are never removed except
    /// by clear() (which requires quiescent hooks, as tests are).
    static constexpr std::size_t kMaxTracked = 4096;
    std::mutex mu_;
    std::vector<std::unique_ptr<PerSignal>> owned_;
    std::atomic<PerSignal*> table_[kMaxTracked] = {};
};

class Watchdog {
public:
    static Watchdog& global();

    /// Wall-clock budget for one solver grant; <= 0 disables the check.
    void setBudget(double seconds);
    double budget() const { return budgetSeconds_.load(std::memory_order_relaxed); }

    /// Invoked (from the watchdog thread) when a stall is flagged, with the
    /// grant's age in seconds.
    void setCallback(std::function<void(double stalledSeconds)> cb);

    /// Spawn / join the watchdog thread. start() is idempotent and also
    /// enables the SolverPool arm/disarm hooks (kCausalWatchdog bit).
    void start();
    void stop();
    bool running() const { return running_.load(std::memory_order_relaxed); }

    /// SolverPool hooks: bracket one epoch-barrier grant. Cheap (one store).
    void grantBegan() { grantStart_.store(nowNanos(), std::memory_order_relaxed); }
    void grantEnded() { grantStart_.store(0, std::memory_order_relaxed); }

    /// Stalls flagged since process start.
    std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

private:
    Watchdog() = default;
    void loop();

    std::atomic<double> budgetSeconds_{0.0};
    std::atomic<std::uint64_t> grantStart_{0}; ///< nowNanos at grant; 0 = idle
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::mutex cbMu_;
    std::function<void(double)> callback_;
    std::thread thread_;
};

} // namespace urtx::obs
