#pragma once
/// \file metrics.hpp
/// Runtime metrics: named counters, gauges and fixed-bucket histograms with
/// lock-free striped accumulation and snapshot/merge.
///
/// Writers never take a lock: each metric holds a small array of cache-line
/// padded atomic slots and a thread picks its slot by a thread-local index,
/// so concurrent increments from the controller / solver / streamer threads
/// do not contend. Reading (snapshot) sums the stripes. Snapshots are plain
/// value types that can be merged across runs or processes and exported as
/// Prometheus text or JSON.
///
/// All hot-path updates are gated behind the process-wide runtime switch
/// urtx::obs::metricsOn(); when the library is compiled with URTX_OBS=0 the
/// switch folds to a compile-time false and instrumented sites become
/// no-ops.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef URTX_OBS
#define URTX_OBS 1
#endif

/// Compile-time floor on the causal span sampling rate. A build can pin
/// e.g. -DURTX_OBS_SAMPLING_FLOOR=0.01 so no runtime knob (wire verb,
/// config file) can ever turn production tracing fully off; the default
/// floor of 0 allows rate 0 (sample nothing).
#ifndef URTX_OBS_SAMPLING_FLOOR
#define URTX_OBS_SAMPLING_FLOOR 0.0
#endif

namespace urtx::obs {

/// Monotonic nanoseconds (steady clock) for latency measurement.
std::uint64_t nowNanos();

namespace detail {
#if URTX_OBS
inline std::atomic<bool> gMetricsEnabled{false};
/// Bitmask of causal-tracking consumers (tracer / monitor / recorder /
/// watchdog). Message emit/handle sites check one relaxed load of this
/// mask; when zero, no span ids are assigned and no clocks are read.
inline std::atomic<std::uint32_t> gCausalMask{0};
/// Monotonic span-id source (0 is reserved for "untracked").
inline std::atomic<std::uint64_t> gNextSpanId{1};
#endif
/// Small dense per-thread index used to pick a stripe.
std::size_t threadIndex();
} // namespace detail

/// Consumers of causal message tracking; each keeps its own bit in the
/// shared mask so hot paths pay one load for all of them.
inline constexpr std::uint32_t kCausalTracer = 1u << 0;
inline constexpr std::uint32_t kCausalMonitor = 1u << 1;
inline constexpr std::uint32_t kCausalRecorder = 1u << 2;
inline constexpr std::uint32_t kCausalWatchdog = 1u << 3;

#if URTX_OBS
/// True when any causal-tracking consumer is enabled: emit sites then
/// stamp messages with a span id + enqueue timestamp.
inline bool causalOn() {
    return detail::gCausalMask.load(std::memory_order_relaxed) != 0;
}
/// True when the specific consumer \p bit is enabled.
inline bool causalBit(std::uint32_t bit) {
    return (detail::gCausalMask.load(std::memory_order_relaxed) & bit) != 0;
}
/// Fresh process-unique causal span id (never 0).
inline std::uint64_t newSpanId() {
    return detail::gNextSpanId.fetch_add(1, std::memory_order_relaxed);
}
namespace detail {
inline void setCausalBit(std::uint32_t bit, bool on) {
    if (on) {
        gCausalMask.fetch_or(bit, std::memory_order_relaxed);
    } else {
        gCausalMask.fetch_and(~bit, std::memory_order_relaxed);
    }
}
} // namespace detail
#else
constexpr bool causalOn() { return false; }
constexpr bool causalBit(std::uint32_t) { return false; }
inline std::uint64_t newSpanId() { return 0; }
namespace detail {
inline void setCausalBit(std::uint32_t, bool) {}
} // namespace detail
#endif

/// Runtime switch for metric *timing* instrumentation (clock reads and
/// histogram observes on hot paths). Defaults to off so uninstrumented
/// workloads pay only one relaxed load per site.
#if URTX_OBS
inline bool metricsOn() { return detail::gMetricsEnabled.load(std::memory_order_relaxed); }
inline void setMetricsEnabled(bool on) {
    detail::gMetricsEnabled.store(on, std::memory_order_relaxed);
}
#else
constexpr bool metricsOn() { return false; }
inline void setMetricsEnabled(bool) {}
#endif

/// Number of accumulation stripes per metric. Threads map onto stripes by
/// a dense thread index, so up to kStripes writer threads never share a
/// cache line.
inline constexpr std::size_t kStripes = 16;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// Monotonic event count. add() is wait-free.
class Counter {
public:
    void add(std::uint64_t n = 1) { stripe().fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    /// Sum over all stripes.
    std::uint64_t value() const;
    void reset();

private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> v{0};
    };
    std::atomic<std::uint64_t>& stripe() {
        return slots_[detail::threadIndex() % kStripes].v;
    }
    std::array<Slot, kStripes> slots_;
};

/// Last-value / extremum metric (queue depths, high-water marks).
class Gauge {
public:
    void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
    /// Raise the gauge to \p v if larger (high-water-mark update).
    void max(double v);
    double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }
    void reset() { set(0.0); }

private:
    static std::uint64_t pack(double v);
    static double unpack(std::uint64_t b);
    std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-boundary latency/size histogram. observe() is wait-free: one
/// bucket search plus striped relaxed increments.
class Histogram {
public:
    /// \p bounds: strictly increasing bucket upper bounds (inclusive, "le"
    /// semantics); an implicit +Inf bucket is appended.
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);
    const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket (non-cumulative) counts, size bounds()+1 (last = +Inf).
    std::vector<std::uint64_t> counts() const;
    std::uint64_t count() const;
    double sum() const;
    void reset();

private:
    struct alignas(64) Stripe {
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
    };
    std::vector<double> bounds_;
    std::array<Stripe, kStripes> stripes_;
};

// --- snapshots --------------------------------------------------------------

struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeSample {
    std::string name;
    double value = 0.0;
};

struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts; ///< per-bucket, size bounds+1
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// A point-in-time copy of a registry. Mergeable: counters and histogram
/// buckets add; gauges keep the maximum (all built-in gauges are
/// high-water marks).
struct Snapshot {
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    void merge(const Snapshot& other);

    const CounterSample* counter(std::string_view name) const;
    const GaugeSample* gauge(std::string_view name) const;
    const HistogramSample* histogram(std::string_view name) const;

    /// Prometheus text exposition format (names prefixed "urtx_", dots
    /// mapped to underscores, histogram buckets cumulative per the spec).
    std::string toPrometheus() const;
    /// Machine-readable JSON object.
    std::string toJson() const;
};

// --- registry ---------------------------------------------------------------

struct Wellknown;

/// Name -> metric map. Creation takes a mutex; returned references are
/// stable for the registry's lifetime, so hot paths hold them directly.
///
/// Scoping: by default there is one process-wide registry, but a caller may
/// construct additional registries and *install* one as the current
/// registry for a thread (ScopedRegistry). Registry::global() — the lookup
/// every instrumented site goes through — then resolves to the installed
/// registry on that thread, so concurrent simulation scenarios can each
/// accumulate into a private registry instead of interleaving their
/// counters. Threads with nothing installed keep the process-wide registry;
/// existing callers see no behavior change.
class Registry {
public:
    Registry();

    /// The registry instrumentation resolves against: the one installed on
    /// this thread (ScopedRegistry), or the process-wide one.
    static Registry& global();
    /// Always the process-wide registry, regardless of installed scopes.
    static Registry& process();
    /// The registry installed on this thread, or nullptr. Used to propagate
    /// a scope into threads spawned on behalf of the current one.
    static Registry* installed();

    /// Find-or-create. Throws std::logic_error when the name exists with a
    /// different kind (or, for histograms, different bounds).
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name, std::vector<double> bounds);

    Snapshot snapshot() const;
    /// Zero every metric (benchmark harness between configurations).
    void reset();

    /// This registry's table of well-known runtime metrics, built lazily on
    /// first use. Instrumented sites reach it through obs::wellknown().
    const Wellknown& wellknown();

    /// Process-unique id; never reused even if an address is. Lets the
    /// per-thread wellknown() cache detect that a destroyed registry's
    /// address was recycled by a new one.
    std::uint64_t uid() const { return uid_; }

    /// Causal span sampling rate (obs.sampling.rate): the fraction of
    /// causal spans admitted at their origin (Port::send, timer fire,
    /// SPort-agent emit). Admitted spans pay the full causal cost (span id,
    /// clock read, flow events, hop/deadline checks, recorder notes);
    /// unadmitted spans are left unstamped (spanId 0) and every downstream
    /// consumer skips them. Stored as an integer period N (admit every Nth
    /// span per thread, deterministically — no wall-clock entropy): 0 =
    /// admit none, 1 = admit all (the default), else round(1/rate). The
    /// rate is clamped to at least URTX_OBS_SAMPLING_FLOOR.
    void setSpanSamplingRate(double rate);
    double spanSamplingRate() const;
    /// The raw admit-every-Nth period behind the rate (0 = never).
    std::uint32_t spanSamplingPeriod() const {
        return samplingPeriod_.load(std::memory_order_relaxed);
    }

private:
    struct Entry {
        std::string name;
        MetricKind kind;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Gauge> g;
        std::unique_ptr<Histogram> h;
    };
    Entry* find(std::string_view name);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Entry>> entries_;
    std::uint64_t uid_;
    std::atomic<std::uint32_t> samplingPeriod_{1}; ///< 0 never, 1 all, N every Nth
    std::atomic<const Wellknown*> wk_{nullptr}; ///< published once, owned below
    std::unique_ptr<const Wellknown> wkOwned_;
};

/// RAII scope installing \p r as the current registry for this thread and
/// restoring the previous installation on destruction. A null \p r is a
/// no-op (convenient for call sites with optional scoping). Nests.
class ScopedRegistry {
public:
    explicit ScopedRegistry(Registry* r);
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry&) = delete;
    ScopedRegistry& operator=(const ScopedRegistry&) = delete;

private:
    Registry* prev_ = nullptr;
    bool active_ = false;
};

// --- well-known runtime metrics --------------------------------------------

/// The metrics the runtime layers (rt / flow / sim) write. Each Registry
/// owns one table, built on first use, so instrumented sites pay a cached
/// pointer read, not a name lookup. Registering the whole table eagerly
/// also makes every metric appear in exports even when still zero.
struct Wellknown {
    // rt: controller dispatch loop + timer service
    Counter* rtDispatched;
    Counter* rtTimersFired;
    Gauge* rtQueueDepthHwm;
    Histogram* rtTimerJitter;
    std::array<Histogram*, 5> rtDispatchLatency; ///< indexed by rt::Priority
    Counter* rtDeadlineMiss;  ///< monitored reactions past their budget (all signals)
    Histogram* rtHopLatency;  ///< emit -> handle latency across all tracked signals

    // flow: dataflow ports, signal ports, relays, solver runner
    Counter* flowDportTransfers;
    Counter* flowSportSends;
    Counter* flowSportDrained;
    Gauge* flowSportInboxHwm;
    Counter* flowRelayFanout;
    Histogram* flowSolverStep;
    Counter* flowMajorSteps;
    Counter* flowMinorSteps;

    // sim: hybrid engine
    Counter* simSteps;
    Counter* simZeroCrossings;
    Counter* simZcIterations;
    Gauge* simTimersPendingHwm;
    Counter* simMacroSteps;    ///< grid steps absorbed into coalesced solver grants
    Counter* simDrainRounds;   ///< inter-controller drain fixed-point rounds
    Histogram* simBarrierWait; ///< per-grant solver handoff: publish -> all arrived
    Counter* simSolverStalls;  ///< watchdog-flagged solver grants past their budget

    // obs: the health layer observing itself
    Counter* obsPostmortemDumps; ///< flight-recorder dump files written
    Counter* obsSpansSampled;    ///< causal spans admitted by the sampler
};

/// The well-known table of the current registry (Registry::global()). A
/// per-thread cache keyed by registry uid makes the common case one
/// thread-local read plus one compare.
const Wellknown& wellknown();

// --- causal span sampling ---------------------------------------------------

#if URTX_OBS
/// The per-span sampling decision, made exactly once at a causal span's
/// origin (after the causalOn() gate) and propagated with the span id:
/// true = stamp the message and pay the full causal path, false = leave it
/// unstamped so every downstream consumer skips it.
///
/// Deterministic counter-based 1-in-N admission against the *current*
/// registry's period (so a scoped scenario can sample at its own rate):
/// each thread counts down from a phase staggered by its dense thread
/// index — no wall-clock or PRNG entropy in the decision, so reruns admit
/// the same spans. At the default rate 1.0 the countdown is bypassed
/// entirely. Admissions count into obs.spans_sampled, which lets tests tie
/// the hop-latency histogram total back to the sampler.
inline bool sampleSpan() {
    Registry& r = Registry::global();
    const std::uint32_t period = r.spanSamplingPeriod();
    if (period == 0) return false;
    if (period > 1) {
        thread_local std::uint32_t left = 0;
        thread_local std::uint64_t uid = 0;
        if (uid != r.uid()) {
            uid = r.uid();
            left = static_cast<std::uint32_t>(detail::threadIndex() % period) + 1;
        }
        if (--left != 0) return false;
        left = period;
    }
    wellknown().obsSpansSampled->inc();
    return true;
}
#else
constexpr bool sampleSpan() { return false; }
#endif

} // namespace urtx::obs
