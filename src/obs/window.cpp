#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

namespace urtx::obs {

// --- StatsWindow ------------------------------------------------------------

StatsWindow::StatsWindow(Registry& source, std::size_t capacity)
    : source_(source), capacity_(capacity == 0 ? 1 : capacity) {}

void StatsWindow::tick() { tickAt(nowNanos()); }

void StatsWindow::tickAt(std::uint64_t monoNanos) {
    Entry e;
    e.nanos = monoNanos;
    e.snap = source_.snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(std::move(e));
    while (ring_.size() > capacity_) ring_.pop_front();
}

std::size_t StatsWindow::ticks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

double StatsWindow::coverageSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < 2) return 0.0;
    return static_cast<double>(ring_.back().nanos - ring_.front().nanos) * 1e-9;
}

const StatsWindow::Entry* StatsWindow::baseline(double windowSeconds,
                                                std::uint64_t nowNs) const {
    // Caller holds mu_.
    if (ring_.empty()) return nullptr;
    const auto windowNs = static_cast<std::uint64_t>(windowSeconds * 1e9);
    // Newest entry whose age meets the window; the ring is time-ordered, so
    // scan from the back.
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
        if (nowNs >= it->nanos && nowNs - it->nanos >= windowNs) return &*it;
    }
    return &ring_.front();
}

double StatsWindow::rate(std::string_view name, double windowSeconds) const {
    return rateAt(name, windowSeconds, nowNanos());
}

double StatsWindow::rateAt(std::string_view name, double windowSeconds,
                           std::uint64_t nowNs) const {
    const Snapshot now = source_.snapshot();
    const CounterSample* cur = now.counter(name);
    if (!cur) return 0.0;
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* base = baseline(windowSeconds, nowNs);
    if (!base || nowNs <= base->nanos) return 0.0;
    const double dt = static_cast<double>(nowNs - base->nanos) * 1e-9;
    std::uint64_t then = 0;
    if (const CounterSample* prev = base->snap.counter(name)) then = prev->value;
    if (cur->value <= then) return 0.0;
    return static_cast<double>(cur->value - then) / dt;
}

StatsWindow::WindowedQuantiles StatsWindow::quantiles(std::string_view name,
                                                      double windowSeconds) const {
    return quantilesAt(name, windowSeconds, nowNanos());
}

StatsWindow::WindowedQuantiles StatsWindow::quantilesAt(std::string_view name,
                                                        double windowSeconds,
                                                        std::uint64_t nowNs) const {
    WindowedQuantiles out;
    const Snapshot now = source_.snapshot();
    const HistogramSample* cur = now.histogram(name);
    if (!cur) return out;
    std::vector<std::uint64_t> deltas = cur->counts;
    std::lock_guard<std::mutex> lock(mu_);
    const Entry* base = baseline(windowSeconds, nowNs);
    if (base) {
        if (const HistogramSample* prev = base->snap.histogram(name)) {
            if (prev->counts.size() == deltas.size()) {
                for (std::size_t i = 0; i < deltas.size(); ++i) {
                    deltas[i] -= std::min(deltas[i], prev->counts[i]);
                }
            }
        }
        if (nowNs > base->nanos) {
            out.windowSeconds = static_cast<double>(nowNs - base->nanos) * 1e-9;
        }
    }
    for (std::uint64_t d : deltas) out.count += d;
    if (out.count == 0) return out;
    out.p50 = quantileFromDeltas(cur->bounds, deltas, 0.50);
    out.p90 = quantileFromDeltas(cur->bounds, deltas, 0.90);
    out.p99 = quantileFromDeltas(cur->bounds, deltas, 0.99);
    return out;
}

double StatsWindow::quantileFromDeltas(const std::vector<double>& bounds,
                                       const std::vector<std::uint64_t>& deltaCounts,
                                       double q) {
    if (bounds.empty() || deltaCounts.size() != bounds.size() + 1) return 0.0;
    std::uint64_t total = 0;
    for (std::uint64_t d : deltaCounts) total += d;
    if (total == 0) return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double target = q * static_cast<double>(total);
    double cum = 0.0;
    for (std::size_t i = 0; i < deltaCounts.size(); ++i) {
        const double inBucket = static_cast<double>(deltaCounts[i]);
        if (cum + inBucket < target || inBucket == 0.0) {
            cum += inBucket;
            continue;
        }
        if (i >= bounds.size()) return bounds.back();  // +Inf bucket: clamp
        const double lower = i == 0 ? 0.0 : bounds[i - 1];
        const double upper = bounds[i];
        const double frac = (target - cum) / inBucket;
        return lower + (upper - lower) * frac;
    }
    return bounds.back();
}

// --- WcetTracker ------------------------------------------------------------

WcetTracker::WcetTracker(std::size_t window) : window_(window == 0 ? 1 : window) {}

void WcetTracker::observe(std::string_view scenario, std::string_view solver,
                          double solveSeconds) {
    if (!(solveSeconds >= 0.0)) return;  // rejects NaN and negatives
    std::lock_guard<std::mutex> lock(mu_);
    Ring& ring = keys_[{std::string(scenario), std::string(solver)}];
    if (ring.samples.size() < window_) {
        ring.samples.push_back(solveSeconds);
    } else {
        ring.samples[ring.next] = solveSeconds;
        ring.next = (ring.next + 1) % window_;
    }
    ++ring.count;
    ring.last = solveSeconds;
    ring.worst = std::max(ring.worst, solveSeconds);
}

std::vector<WcetTracker::Entry> WcetTracker::table() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry> out;
    out.reserve(keys_.size());
    for (const auto& [key, ring] : keys_) {
        Entry e;
        e.scenario = key.first;
        e.solver = key.second;
        e.count = ring.count;
        e.last = ring.last;
        e.worst = ring.worst;
        if (!ring.samples.empty()) {
            std::vector<double> sorted = ring.samples;
            std::sort(sorted.begin(), sorted.end());
            e.rollingMax = sorted.back();
            const std::size_t n = sorted.size();
            const auto rank = static_cast<std::size_t>(
                std::ceil(0.99 * static_cast<double>(n)));
            e.p99 = sorted[std::min(rank == 0 ? 0 : rank - 1, n - 1)];
        }
        out.push_back(std::move(e));
    }
    return out;  // std::map iteration order == sorted by (scenario, solver)
}

} // namespace urtx::obs
