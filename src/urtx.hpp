#pragma once
/// \file urtx.hpp
/// The library's single public entry point: one include for every layer
/// (UML-RT runtime, streamer/dataflow extension, solvers, hybrid engine,
/// observability) plus the stable `urtx::` facade — a fluent
/// SystemBuilder that assembles a HybridSystem without touching the
/// layer-by-layer wiring calls.
///
///     #include "urtx.hpp"
///
///     Plant plant("plant", nullptr);
///     Supervisor sup("sup");
///     auto sys = urtx::system()
///                    .capsule(sup)
///                    .streamer(plant, "RK45", 0.01)
///                    .flow(sup.port, plant.ctl)          // port <-> SPort
///                    .trace("y", [&] { return plant.y.get(); })
///                    .build();
///     sys->run(10.0);
///
/// Migration from the layer APIs (all of which keep working — the facade
/// is sugar over them, never a replacement; see docs/ARCHITECTURE.md for
/// the full table):
///
///     sim::HybridSystem sys;             -> urtx::system()            [+ .build()]
///     sys.addController("io")            -> .controller("io")
///     sys.addCapsule(c, ctl)             -> .capsule(c)   (after .controller())
///     sys.addStreamerGroup(s,
///         solver::makeIntegrator(m), dt) -> .streamer(s, m, dt)
///     rt::connect(a, b)                  -> .flow(a, b)
///     rt::connect(a, sp.rtPort())        -> .flow(a, sp)
///     flow::flow(src, dst)               -> .flow(src, dst)
///     sys.trace().channel(n, p)          -> .trace(n, p)
///     sys.setRealtimeFactor(f)           -> .realtime(f)
///     sys.setMacroStepLimit(k)           -> .macroSteps(k)

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flow/flow.hpp"
#include "obs/metrics.hpp"
#include "rt/rt.hpp"
#include "sim/sim.hpp"
#include "solver/integrator.hpp"

namespace urtx {

/// Fluent assembly of a HybridSystem. Every method returns *this so a
/// whole system reads as one expression; build() releases the finished
/// system (the builder is then empty). The builder owns nothing but the
/// system under construction: capsules and streamers stay caller-owned,
/// exactly as with the layer APIs.
class SystemBuilder {
public:
    /// One problem collected while assembling in deferErrors() mode.
    struct BuildIssue {
        std::string code;    ///< stable id, e.g. "flow.illegal", "build.exception"
        std::string message; ///< the diagnostic the throwing API would have raised
    };
    /// validate()'s result: every deferred assembly problem, in call order.
    using BuildReport = std::vector<BuildIssue>;

    explicit SystemBuilder(double t0 = 0.0)
        : sys_(std::make_unique<sim::HybridSystem>(t0)) {}

    SystemBuilder(SystemBuilder&&) = default;
    SystemBuilder& operator=(SystemBuilder&&) = default;

    /// Switch to dry-run-friendly assembly: instead of throwing mid-build,
    /// flow() / streamer() record a BuildIssue (and skip the broken call)
    /// so validate() can report *every* problem in one pass.
    SystemBuilder& deferErrors() {
        defer_ = true;
        return *this;
    }

    /// The diagnostic report accumulated under deferErrors(); empty means
    /// everything wired cleanly so far.
    const BuildReport& validate() const { return issues_; }

    /// Make \p name the current controller (created on first mention);
    /// capsules added afterwards attach to it. Without any controller()
    /// call, capsules attach to the system's default main controller.
    SystemBuilder& controller(const std::string& name) {
        current_ = nullptr;
        for (const auto& c : sys_->controllers()) {
            if (c->name() == name) {
                current_ = c.get();
                break;
            }
        }
        if (!current_) current_ = &sys_->addController(name);
        return *this;
    }

    /// Attach a capsule tree to the current controller.
    SystemBuilder& capsule(rt::Capsule& root) {
        sys_->addCapsule(root, current_);
        return *this;
    }

    /// Register a streamer tree as one solver group (its own pool thread
    /// in MultiThread mode) integrated by \p method at major step \p dt.
    SystemBuilder& streamer(urtx::flow::Streamer& root, const std::string& method = "RK45",
                            double majorDt = 0.01) {
        if (defer_) {
            try {
                lastRunner_ =
                    &sys_->addStreamerGroup(root, solver::makeIntegrator(method), majorDt);
            } catch (const std::exception& e) {
                issues_.push_back({"solver.unknown", e.what()});
            }
            return *this;
        }
        lastRunner_ = &sys_->addStreamerGroup(root, solver::makeIntegrator(method), majorDt);
        return *this;
    }

    /// Connect two UML-RT ports (capsule <-> capsule).
    SystemBuilder& flow(rt::Port& a, rt::Port& b) {
        if (defer_) {
            try {
                rt::connect(a, b);
            } catch (const std::exception& e) {
                issues_.push_back({"connect.illegal", e.what()});
            }
            return *this;
        }
        rt::connect(a, b);
        return *this;
    }
    /// Connect a capsule port to a streamer's signal port (either order).
    SystemBuilder& flow(rt::Port& a, urtx::flow::SPort& b) { return flow(a, b.rtPort()); }
    SystemBuilder& flow(urtx::flow::SPort& a, rt::Port& b) { return flow(a.rtPort(), b); }
    /// The paper's flow connector between data ports. In deferErrors()
    /// mode an illegal flow becomes a BuildIssue (checked without side
    /// effects via flow::checkFlow) and the connection is skipped.
    SystemBuilder& flow(urtx::flow::DPort& src, urtx::flow::DPort& dst) {
        if (defer_) {
            std::string err = urtx::flow::checkFlow(src, dst);
            if (!err.empty()) {
                issues_.push_back({"flow.illegal", std::move(err)});
                return *this;
            }
        }
        urtx::flow::flow(src, dst);
        return *this;
    }

    /// Register a trace probe sampled once per grid step.
    SystemBuilder& trace(std::string name, std::function<double()> probe) {
        sys_->trace().channel(std::move(name), std::move(probe));
        return *this;
    }

    /// Soft real-time pacing factor (see HybridSystem::setRealtimeFactor).
    SystemBuilder& realtime(double factor) {
        sys_->setRealtimeFactor(factor);
        return *this;
    }

    /// Macro-step coalescing limit (see HybridSystem::setMacroStepLimit).
    SystemBuilder& macroSteps(std::uint64_t k) {
        sys_->setMacroStepLimit(k);
        return *this;
    }

    /// The runner created by the most recent streamer() — for probing,
    /// tolerance tweaks or strategy swaps before build().
    urtx::flow::SolverRunner& lastRunner() { return *lastRunner_; }

    /// The system under construction (e.g. for calls the facade does not
    /// wrap). Valid until build().
    sim::HybridSystem& peek() { return *sys_; }

    /// Release the assembled system. The builder is empty afterwards.
    std::unique_ptr<sim::HybridSystem> build() { return std::move(sys_); }

private:
    std::unique_ptr<sim::HybridSystem> sys_;
    rt::Controller* current_ = nullptr;
    urtx::flow::SolverRunner* lastRunner_ = nullptr;
    bool defer_ = false;
    BuildReport issues_;
};

/// Entry point of the facade: urtx::system().capsule(...).streamer(...)
inline SystemBuilder system(double t0 = 0.0) { return SystemBuilder(t0); }

} // namespace urtx
