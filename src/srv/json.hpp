#pragma once
/// \file json.hpp
/// Minimal JSON document model for the serving layer: parse a job file,
/// emit a result report. No external dependency — the repo's exporters
/// already hand-emit JSON (obs::Snapshot::toJson, FlightRecorder), this
/// adds the read side plus a couple of shared emit helpers.
///
/// The model is deliberately small: a Value is a tagged struct holding all
/// alternatives (cheap at job-file sizes, no variant gymnastics), objects
/// preserve member order, numbers are doubles (job files carry horizons,
/// deadlines and parameter overrides — all doubles by construction).

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urtx::srv::json {

class Value {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };
    using Member = std::pair<std::string, Value>;

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<Member> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /// Object member lookup; nullptr when absent or not an object.
    const Value* find(std::string_view key) const;

    /// Typed object-member accessors with fallbacks (absent or wrong-typed
    /// members yield the fallback; booleans coerce to 0/1 for numOr).
    double numOr(std::string_view key, double fallback) const;
    std::string strOr(std::string_view key, std::string fallback) const;
    bool boolOr(std::string_view key, bool fallback) const;
};

/// Parse one complete JSON document. On failure returns nullopt and, when
/// \p err is given, a message with the byte offset.
std::optional<Value> parse(std::string_view text, std::string* err = nullptr);

/// Escape \p s for embedding inside a JSON string literal (no quotes).
std::string escape(std::string_view s);

/// Render a double as a JSON number (finite round-trip precision; the
/// non-finite values JSON cannot express clamp to +/-1e308).
std::string number(double v);

/// Serialize a Value back to a compact single-line document that parse()
/// accepts (member order preserved, strings escaped, numbers at full
/// round-trip precision). parse(stringify(v)) == v for any parsed v.
std::string stringify(const Value& v);

/// Convenience builders for hand-assembled documents.
Value makeString(std::string s);
Value makeNumber(double v);
Value makeBool(bool b);

} // namespace urtx::srv::json
