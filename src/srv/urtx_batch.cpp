/// \file urtx_batch.cpp
/// Batch scenario server CLI: read a JSON job file, run every job across
/// the serving engine's worker pool, write a JSON report.
///
///   urtx_batch jobs.json [-o report.json] [--workers N] [--strict]
///              [--quiet] [--no-metrics]
///   urtx_batch --list
///
/// Exit status: 0 when the batch ran (even with failed jobs — the report
/// carries the per-job verdicts); with --strict, 1 when any job failed,
/// was rejected, or finished with a false verdict. 2 on usage / I/O /
/// job-file errors.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "srv/batch_io.hpp"
#include "srv/engine.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <jobs.json> [-o FILE] [--workers N] [--strict] [--quiet]\n"
                 "          [--no-metrics]\n"
                 "       %s --list\n",
                 argv0, argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    std::string jobsPath;
    std::string outPath = "urtx_batch_report.json";
    long workersOverride = -1;
    bool strict = false;
    bool quiet = false;
    bool metrics = true;
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            list = true;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--no-metrics") {
            metrics = false;
        } else if (arg == "-o" || arg == "--out") {
            if (++i >= argc) return usage(argv[0]);
            outPath = argv[i];
        } else if (arg == "--workers") {
            if (++i >= argc) return usage(argv[0]);
            workersOverride = std::strtol(argv[i], nullptr, 10);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0]);
        } else if (jobsPath.empty()) {
            jobsPath = arg;
        } else {
            return usage(argv[0]);
        }
    }

    srv::scenarios::registerBuiltins();

    if (list) {
        for (const auto& [name, description] : srv::ScenarioLibrary::global().list()) {
            std::printf("%-10s %s\n", name.c_str(), description.c_str());
        }
        return 0;
    }
    if (jobsPath.empty()) return usage(argv[0]);

    std::ifstream in(jobsPath);
    if (!in) {
        std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], jobsPath.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    srv::BatchFile batch;
    try {
        batch = srv::parseBatchFile(text.str());
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
        return 2;
    }
    if (workersOverride >= 0) batch.config.workers = static_cast<std::size_t>(workersOverride);

    srv::ServeEngine engine(batch.config);
    const srv::BatchResult result = engine.run(batch.jobs);

    const std::string report = srv::reportJson(result, metrics);
    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0], outPath.c_str());
        return 2;
    }
    out << report;

    bool verdictFail = false;
    if (!quiet) {
        std::printf("batch: %zu jobs on %zu workers in %.3f s — %zu succeeded, %zu failed, "
                    "%zu rejected, %llu steals\n",
                    result.results.size(), result.workers, result.wallSeconds,
                    result.count(srv::ScenarioStatus::Succeeded),
                    result.count(srv::ScenarioStatus::Failed),
                    result.count(srv::ScenarioStatus::Rejected),
                    static_cast<unsigned long long>(result.steals));
    }
    for (const srv::ScenarioResult& r : result.results) {
        const bool ok = r.status == srv::ScenarioStatus::Succeeded && r.passed;
        if (!ok) verdictFail = true;
        if (!quiet) {
            std::printf("  %-24s %-9s %s%s%s\n", r.name.c_str(), to_string(r.status),
                        r.status == srv::ScenarioStatus::Succeeded
                            ? (r.passed ? "pass" : "VERDICT FAIL")
                            : r.error.c_str(),
                        r.verdictDetail.empty() ? "" : " — ", r.verdictDetail.c_str());
        }
    }
    if (!quiet) std::printf("report written to %s\n", outPath.c_str());
    return strict && verdictFail ? 1 : 0;
}
