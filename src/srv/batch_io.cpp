#include "srv/batch_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "obs/profile.hpp"
#include "srv/error.hpp"
#include "srv/json.hpp"

namespace urtx::srv {

sim::ExecutionMode parseExecutionMode(const std::string& s) {
    if (s == "single" || s == "single_thread") return sim::ExecutionMode::SingleThread;
    if (s == "multi" || s == "multi_thread") return sim::ExecutionMode::MultiThread;
    throw std::runtime_error("batch file: unknown execution mode '" + s +
                             "' (expected \"single\" or \"multi\")");
}

namespace {

ScenarioParams parseParams(const json::Value& obj) {
    ScenarioParams p;
    for (const auto& [key, v] : obj.object) {
        if (v.isNumber()) {
            p.set(key, v.number);
        } else if (v.isBool()) {
            p.set(key, v.boolean ? 1.0 : 0.0);
        } else if (v.isString()) {
            p.set(key, v.string);
        } else {
            throw std::runtime_error("batch file: param '" + key +
                                     "' must be a number, bool or string");
        }
    }
    return p;
}

} // namespace

std::vector<ScenarioSpec> parseJobObject(const json::Value& job) {
    if (!job.isObject()) throw std::runtime_error("batch file: each job must be an object");
    // Same contract as scenario params: unknown keys are structured errors,
    // not silent no-ops — a typoed "horizion" must not run a default job.
    static constexpr std::string_view kJobKeys[] = {
        "scenario",     "name",         "horizon",             "mode",
        "deadline_seconds", "cost_seconds", "wall_budget_seconds", "params",
        "repeat",       "sweep",        "profile"};
    for (const auto& [key, v] : job.object) {
        bool known = false;
        for (const std::string_view k : kJobKeys) known = known || key == k;
        if (!known) {
            throw std::runtime_error("batch file: unknown job key '" + key + "'");
        }
    }
    ScenarioSpec base;
    base.scenario = job.strOr("scenario", "");
    if (base.scenario.empty()) {
        throw std::runtime_error("batch file: job missing \"scenario\" name");
    }
    base.name = job.strOr("name", "");
    base.horizon = job.numOr("horizon", base.horizon);
    base.mode = parseExecutionMode(job.strOr("mode", "single"));
    base.deadlineSeconds = job.numOr("deadline_seconds", 0.0);
    base.costSeconds = job.numOr("cost_seconds", 0.0);
    base.wallBudgetSeconds = job.numOr("wall_budget_seconds", 0.0);
    base.profile = job.boolOr("profile", false);
    if (const json::Value* params = job.find("params")) {
        if (!params->isObject()) {
            throw std::runtime_error("batch file: \"params\" must be an object");
        }
        base.params = parseParams(*params);
    }

    // "repeat": expand into N copies; "sweep" optionally varies one
    // numeric parameter linearly from..to across the copies.
    const auto repeat = static_cast<std::size_t>(job.numOr("repeat", 1));
    const json::Value* sweep = job.find("sweep");
    std::string sweepParam;
    double sweepFrom = 0, sweepTo = 0;
    if (sweep) {
        if (!sweep->isObject() || sweep->strOr("param", "").empty()) {
            throw std::runtime_error(
                "batch file: \"sweep\" needs {\"param\": ..., \"from\": ..., \"to\": ...}");
        }
        sweepParam = sweep->strOr("param", "");
        sweepFrom = sweep->numOr("from", 0.0);
        sweepTo = sweep->numOr("to", sweepFrom);
    }
    std::vector<ScenarioSpec> out;
    for (std::size_t k = 0; k < std::max<std::size_t>(repeat, 1); ++k) {
        ScenarioSpec s = base;
        if (repeat > 1 || sweep) {
            s.name = (base.name.empty() ? base.scenario : base.name) + "#" +
                     std::to_string(k);
        }
        if (sweep) {
            const double t =
                repeat > 1 ? static_cast<double>(k) / static_cast<double>(repeat - 1)
                           : 0.0;
            s.params.set(sweepParam, sweepFrom + t * (sweepTo - sweepFrom));
        }
        out.push_back(std::move(s));
    }
    return out;
}

BatchFile parseBatchFile(std::string_view text) {
    std::string err;
    const std::optional<json::Value> doc = json::parse(text, &err);
    if (!doc) throw std::runtime_error("batch file: " + err);
    if (!doc->isObject()) throw std::runtime_error("batch file: top level must be an object");

    BatchFile out;
    out.config.workers = static_cast<std::size_t>(doc->numOr("workers", 0));
    out.config.defaultCostSeconds =
        doc->numOr("default_cost_seconds", out.config.defaultCostSeconds);
    out.config.scopedMetrics = doc->boolOr("scoped_metrics", out.config.scopedMetrics);
    out.config.postmortems = doc->boolOr("postmortems", out.config.postmortems);
    out.config.admissionControl =
        doc->boolOr("admission_control", out.config.admissionControl);

    const json::Value* jobs = doc->find("jobs");
    if (!jobs || !jobs->isArray()) {
        throw std::runtime_error("batch file: missing \"jobs\" array");
    }

    for (const json::Value& job : jobs->array) {
        std::vector<ScenarioSpec> expanded = parseJobObject(job);
        for (ScenarioSpec& s : expanded) out.jobs.push_back(std::move(s));
    }
    // Default names by final position so reports are unambiguous.
    for (std::size_t i = 0; i < out.jobs.size(); ++i) {
        if (out.jobs[i].name.empty()) out.jobs[i].name = "scenario#" + std::to_string(i);
    }
    return out;
}

std::string jobJson(const ScenarioSpec& spec) {
    std::string out = "{\"scenario\": \"" + json::escape(spec.scenario) + "\"";
    if (!spec.name.empty()) out += ", \"name\": \"" + json::escape(spec.name) + "\"";
    out += ", \"horizon\": " + json::number(spec.horizon);
    out += ", \"mode\": \"";
    out += spec.mode == sim::ExecutionMode::MultiThread ? "multi" : "single";
    out += "\"";
    if (spec.deadlineSeconds > 0) {
        out += ", \"deadline_seconds\": " + json::number(spec.deadlineSeconds);
    }
    if (spec.costSeconds > 0) out += ", \"cost_seconds\": " + json::number(spec.costSeconds);
    if (spec.wallBudgetSeconds > 0) {
        out += ", \"wall_budget_seconds\": " + json::number(spec.wallBudgetSeconds);
    }
    if (spec.profile) out += ", \"profile\": true";
    if (!spec.params.nums().empty() || !spec.params.strs().empty()) {
        out += ", \"params\": {";
        bool first = true;
        for (const auto& [k, v] : spec.params.nums()) {
            if (!first) out += ", ";
            first = false;
            out += "\"" + json::escape(k) + "\": " + json::number(v);
        }
        for (const auto& [k, v] : spec.params.strs()) {
            if (!first) out += ", ";
            first = false;
            out += "\"" + json::escape(k) + "\": \"" + json::escape(v) + "\"";
        }
        out += "}";
    }
    out += "}";
    return out;
}

ResultRecord flattenResult(const ScenarioResult& r, bool includeMetrics) {
    ResultRecord rec;
    rec.name = r.name;
    rec.scenario = r.scenario;
    rec.status = r.status;
    rec.passed = r.passed;
    rec.verdict = r.verdictDetail;
    rec.error = r.error;
    rec.errorCode = r.errorCode;
    if (rec.errorCode.empty() && !rec.error.empty()) {
        rec.errorCode =
            r.status == ScenarioStatus::Rejected ? "job.rejected" : "job.failed";
    }
    rec.worker = r.worker == SIZE_MAX ? UINT64_MAX : static_cast<std::uint64_t>(r.worker);
    rec.stolen = r.stolen;
    rec.deadlineMet = r.deadlineMet;
    rec.warmReuse = r.warmReuse;
    rec.cachedResult = r.cachedResult;
    rec.watchdogTripped = r.watchdogTripped;
    rec.queueWaitSeconds = r.queueWaitSeconds;
    rec.wallSeconds = r.wallSeconds;
    rec.finishedAtSeconds = r.finishedAtSeconds;
    rec.simTime = r.simTime;
    rec.steps = r.steps;
    rec.traceRows = r.trace.rows();
    rec.traceHash = r.status == ScenarioStatus::Succeeded ? r.trace.hash() : 0;
    if (includeMetrics &&
        (!r.metrics.counters.empty() || !r.metrics.gauges.empty() ||
         !r.metrics.histograms.empty())) {
        rec.metricsJson = r.metrics.toJson();
    }
    rec.postmortemJson = r.postmortemJson;
    if (r.profile.enabled) rec.stages = r.profile.toMap();
    return rec;
}

std::string recordJson(const ResultRecord& r) {
    std::string out = "{\"name\": \"" + json::escape(r.name) + "\"";
    out += ", \"scenario\": \"" + json::escape(r.scenario) + "\"";
    out += ", \"status\": \"" + std::string(to_string(r.status)) + "\"";
    out += ", \"passed\": ";
    out += r.passed ? "true" : "false";
    if (!r.verdict.empty()) {
        out += ", \"verdict\": \"" + json::escape(r.verdict) + "\"";
    }
    if (!r.error.empty()) {
        // Unified error schema: structured object under "error", flat
        // string kept one release under "error_string" (deprecated).
        out += ", \"error\": " +
               errorJson(ErrorInfo(r.errorCode.empty() ? "job.failed" : r.errorCode,
                                   r.error));
        out += ", \"error_string\": \"" + json::escape(r.error) + "\"";
    }
    if (r.worker != UINT64_MAX) {
        out += ", \"worker\": " + std::to_string(r.worker);
        out += ", \"stolen\": ";
        out += r.stolen ? "true" : "false";
        out += ", \"queue_wait_seconds\": " + json::number(r.queueWaitSeconds);
        out += ", \"wall_seconds\": " + json::number(r.wallSeconds);
        out += ", \"finished_at_seconds\": " + json::number(r.finishedAtSeconds);
    }
    out += ", \"deadline_met\": ";
    out += r.deadlineMet ? "true" : "false";
    if (r.status == ScenarioStatus::Succeeded) {
        out += ", \"sim_time\": " + json::number(r.simTime);
        out += ", \"steps\": " + std::to_string(r.steps);
        out += ", \"trace_rows\": " + std::to_string(r.traceRows);
        char hash[24];
        std::snprintf(hash, sizeof(hash), "0x%016" PRIx64, r.traceHash);
        out += ", \"trace_hash\": \"" + std::string(hash) + "\"";
    }
    if (r.warmReuse) out += ", \"warm_reuse\": true";
    if (r.cachedResult) out += ", \"cached_result\": true";
    if (r.watchdogTripped) out += ", \"watchdog_tripped\": true";
    if (!r.stages.empty()) {
        // Canonical stage order first (the wire map alphabetizes), then any
        // keys outside the known set so nothing is silently dropped.
        out += ", \"stages\": {";
        bool firstStage = true;
        auto emit = [&](const std::string& k, double v) {
            if (!firstStage) out += ", ";
            firstStage = false;
            out += "\"" + json::escape(k) + "\": " + json::number(v);
        };
        for (const char* stage : obs::stageNames()) {
            const auto it = r.stages.find(stage);
            if (it != r.stages.end()) emit(it->first, it->second);
        }
        for (const auto& [k, v] : r.stages) {
            bool known = false;
            for (const char* stage : obs::stageNames()) known = known || k == stage;
            if (!known) emit(k, v);
        }
        out += "}";
    }
    if (!r.metricsJson.empty()) out += ", \"metrics\": " + r.metricsJson;
    if (!r.postmortemJson.empty()) out += ", \"postmortem\": " + r.postmortemJson;
    out += "}";
    return out;
}

std::string resultJson(const ScenarioResult& r, bool includeMetrics) {
    return recordJson(flattenResult(r, includeMetrics));
}

std::string reportJson(const BatchResult& batch, bool includeMetrics) {
    std::string out;
    out.reserve(4096);
    out += "{\n  \"batch\": {";
    out += "\"jobs\": " + std::to_string(batch.results.size());
    out += ", \"workers\": " + std::to_string(batch.workers);
    out += ", \"wall_seconds\": " + json::number(batch.wallSeconds);
    out += ", \"succeeded\": " + std::to_string(batch.count(ScenarioStatus::Succeeded));
    out += ", \"failed\": " + std::to_string(batch.count(ScenarioStatus::Failed));
    out += ", \"rejected\": " + std::to_string(batch.count(ScenarioStatus::Rejected));
    out += ", \"steals\": " + std::to_string(batch.steals);
    out += ", \"watchdog_trips\": " + std::to_string(batch.watchdogTrips);
    out += "},\n  \"results\": [\n";
    bool first = true;
    for (const ScenarioResult& r : batch.results) {
        if (!first) out += ",\n";
        first = false;
        out += "    " + resultJson(r, includeMetrics);
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace urtx::srv
