#include "srv/scenario.hpp"

#include <stdexcept>

#include "srv/json.hpp"

namespace urtx::srv {

double ScenarioParams::num(const std::string& key, double fallback) const {
    const auto it = nums_.find(key);
    return it != nums_.end() ? it->second : fallback;
}

std::string ScenarioParams::str(const std::string& key, std::string fallback) const {
    const auto it = strs_.find(key);
    return it != strs_.end() ? it->second : fallback;
}

std::vector<std::string> ParamSchema::unknownKeys(const ScenarioParams& p) const {
    std::vector<std::string> out;
    if (open) return out;
    for (const auto& [key, value] : p.nums()) {
        (void)value;
        if (nums.count(key) == 0) out.push_back(key);
    }
    for (const auto& [key, value] : p.strs()) {
        (void)value;
        if (strs.count(key) == 0) out.push_back(key);
    }
    return out;
}

namespace {

std::string infoJson(const ParamSchema::Info& i, bool isStr) {
    std::string out = "{\"doc\": \"" + json::escape(i.doc) + "\"";
    if (isStr) {
        if (i.hasStrDefault) out += ", \"default\": \"" + json::escape(i.strDefault) + "\"";
    } else if (i.hasDefault) {
        out += ", \"default\": " + json::number(i.def);
    }
    if (i.hasMin) out += ", \"min\": " + json::number(i.min);
    if (i.hasMax) out += ", \"max\": " + json::number(i.max);
    out += "}";
    return out;
}

std::string infoMapJson(const std::map<std::string, ParamSchema::Info>& m, bool isStr) {
    std::string out = "{";
    bool first = true;
    for (const auto& [key, info] : m) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + json::escape(key) + "\": " + infoJson(info, isStr);
    }
    out += "}";
    return out;
}

} // namespace

std::string ParamSchema::toJson() const {
    return std::string("{\"open\": ") + (open ? "true" : "false") +
           ", \"nums\": " + infoMapJson(nums, false) + ", \"strs\": " + infoMapJson(strs, true) +
           "}";
}

namespace {

std::string unknownParamMessage(const std::string& scenario,
                                const std::vector<std::string>& keys) {
    std::string msg = "scenario '" + scenario + "': unknown parameter";
    if (keys.size() > 1) msg += "s";
    msg += " ";
    for (std::size_t i = 0; i < keys.size(); ++i) {
        if (i) msg += ", ";
        msg += "'" + keys[i] + "'";
    }
    return msg;
}

} // namespace

UnknownParamError::UnknownParamError(std::string scenario, std::vector<std::string> keys)
    : std::invalid_argument(unknownParamMessage(scenario, keys)),
      scenario_(std::move(scenario)),
      keys_(std::move(keys)) {}

ScenarioLibrary& ScenarioLibrary::global() {
    static ScenarioLibrary lib;
    return lib;
}

void ScenarioLibrary::add(std::string name, std::string description, ScenarioFactory make) {
    add(std::move(name), std::move(description), ParamSchema{}, std::move(make));
}

void ScenarioLibrary::add(std::string name, std::string description, ParamSchema schema,
                          ScenarioFactory make) {
    std::lock_guard<std::mutex> lk(mu_);
    for (Entry& e : entries_) {
        if (e.name == name) {
            e.description = std::move(description);
            e.schema = std::move(schema);
            e.make = std::move(make);
            return;
        }
    }
    entries_.push_back(
        {std::move(name), std::move(description), std::move(schema), std::move(make)});
}

bool ScenarioLibrary::has(std::string_view name) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Entry& e : entries_) {
        if (e.name == name) return true;
    }
    return false;
}

std::vector<std::pair<std::string, std::string>> ScenarioLibrary::list() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.emplace_back(e.name, e.description);
    return out;
}

std::vector<ScenarioLibrary::Listing> ScenarioLibrary::listDetailed() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<Listing> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back({e.name, e.description, e.schema});
    return out;
}

ParamSchema ScenarioLibrary::schema(const std::string& name) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Entry& e : entries_) {
        if (e.name == name) return e.schema;
    }
    throw std::invalid_argument("ScenarioLibrary: unknown scenario '" + name + "'");
}

void ScenarioLibrary::validate(const std::string& name, const ScenarioParams& p) const {
    auto unknown = schema(name).unknownKeys(p);
    if (!unknown.empty()) throw UnknownParamError(name, std::move(unknown));
}

std::unique_ptr<Scenario> ScenarioLibrary::build(const std::string& name,
                                                 const ScenarioParams& p) const {
    ScenarioFactory make;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const Entry& e : entries_) {
            if (e.name == name) {
                auto unknown = e.schema.unknownKeys(p);
                if (!unknown.empty()) throw UnknownParamError(name, std::move(unknown));
                make = e.make;
                break;
            }
        }
    }
    if (!make) throw std::invalid_argument("ScenarioLibrary: unknown scenario '" + name + "'");
    return make(p);
}

namespace {

/// Incremental FNV-1a, shared by the spec hashes below and TraceData::hash.
struct Fnv1a {
    std::uint64_t h = 1469598103934665603ull;

    void byte(unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    }
    void bytes(const void* p, std::size_t n) {
        const auto* c = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i) byte(c[i]);
    }
    /// Length-prefixed so {"ab","c"} and {"a","bc"} differ.
    void str(const std::string& s) {
        const std::uint64_t n = s.size();
        bytes(&n, sizeof(n));
        bytes(s.data(), s.size());
    }
    void f64(double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        bytes(&bits, sizeof(bits));
    }
};

} // namespace

std::uint64_t ScenarioSpec::warmKey() const {
    Fnv1a f;
    f.str(scenario);
    // std::map iteration is key-sorted, so insertion order cannot leak in.
    for (const auto& [key, value] : params.nums()) {
        f.str(key);
        f.f64(value);
    }
    for (const auto& [key, value] : params.strs()) {
        f.str(key);
        f.str(value);
    }
    return f.h;
}

std::uint64_t ScenarioSpec::jobHash() const {
    Fnv1a f;
    const std::uint64_t wk = warmKey();
    f.bytes(&wk, sizeof(wk));
    f.f64(horizon);
    f.byte(mode == sim::ExecutionMode::MultiThread ? 1 : 0);
    return f.h;
}

const char* to_string(ScenarioStatus s) {
    switch (s) {
        case ScenarioStatus::Succeeded: return "succeeded";
        case ScenarioStatus::Failed: return "failed";
        case ScenarioStatus::Rejected: return "rejected";
    }
    return "?";
}

std::uint64_t TraceData::hash() const {
    // FNV-1a over the raw 8-byte patterns: any bit-level divergence in the
    // trajectory (times or samples) changes the hash.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (i * 8)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (double t : times) mix(t);
    for (double v : data) mix(v);
    return h;
}

TraceData TraceData::from(const sim::Trace& t) {
    TraceData out;
    out.channels = t.names();
    const std::size_t rows = t.rows();
    const std::size_t cols = out.channels.size();
    out.times.reserve(rows);
    out.data.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        out.times.push_back(t.timeAt(r));
        for (std::size_t c = 0; c < cols; ++c) out.data.push_back(t.valueAt(r, c));
    }
    return out;
}

} // namespace urtx::srv
