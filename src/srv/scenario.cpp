#include "srv/scenario.hpp"

#include <stdexcept>

namespace urtx::srv {

double ScenarioParams::num(const std::string& key, double fallback) const {
    const auto it = nums_.find(key);
    return it != nums_.end() ? it->second : fallback;
}

std::string ScenarioParams::str(const std::string& key, std::string fallback) const {
    const auto it = strs_.find(key);
    return it != strs_.end() ? it->second : fallback;
}

ScenarioLibrary& ScenarioLibrary::global() {
    static ScenarioLibrary lib;
    return lib;
}

void ScenarioLibrary::add(std::string name, std::string description, ScenarioFactory make) {
    std::lock_guard<std::mutex> lk(mu_);
    for (Entry& e : entries_) {
        if (e.name == name) {
            e.description = std::move(description);
            e.make = std::move(make);
            return;
        }
    }
    entries_.push_back({std::move(name), std::move(description), std::move(make)});
}

bool ScenarioLibrary::has(std::string_view name) const {
    std::lock_guard<std::mutex> lk(mu_);
    for (const Entry& e : entries_) {
        if (e.name == name) return true;
    }
    return false;
}

std::vector<std::pair<std::string, std::string>> ScenarioLibrary::list() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.emplace_back(e.name, e.description);
    return out;
}

std::unique_ptr<Scenario> ScenarioLibrary::build(const std::string& name,
                                                 const ScenarioParams& p) const {
    ScenarioFactory make;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (const Entry& e : entries_) {
            if (e.name == name) {
                make = e.make;
                break;
            }
        }
    }
    if (!make) throw std::invalid_argument("ScenarioLibrary: unknown scenario '" + name + "'");
    return make(p);
}

const char* to_string(ScenarioStatus s) {
    switch (s) {
        case ScenarioStatus::Succeeded: return "succeeded";
        case ScenarioStatus::Failed: return "failed";
        case ScenarioStatus::Rejected: return "rejected";
    }
    return "?";
}

std::uint64_t TraceData::hash() const {
    // FNV-1a over the raw 8-byte patterns: any bit-level divergence in the
    // trajectory (times or samples) changes the hash.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](double d) {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (i * 8)) & 0xFF;
            h *= 1099511628211ull;
        }
    };
    for (double t : times) mix(t);
    for (double v : data) mix(v);
    return h;
}

TraceData TraceData::from(const sim::Trace& t) {
    TraceData out;
    out.channels = t.names();
    const std::size_t rows = t.rows();
    const std::size_t cols = out.channels.size();
    out.times.reserve(rows);
    out.data.reserve(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
        out.times.push_back(t.timeAt(r));
        for (std::size_t c = 0; c < cols; ++c) out.data.push_back(t.valueAt(r, c));
    }
    return out;
}

} // namespace urtx::srv
