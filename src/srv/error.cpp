#include "srv/error.hpp"

#include "srv/json.hpp"

namespace urtx::srv {

std::string errorJson(const ErrorInfo& e) {
    std::string out = "{\"code\": \"" + json::escape(e.code) + "\", \"message\": \"" +
                      json::escape(e.message) + "\"";
    if (!e.contextJson.empty()) out += ", \"context\": " + e.contextJson;
    out += "}";
    return out;
}

std::string errorRecord(const ErrorInfo& e) {
    return "{\"status\": \"error\", \"error\": " + errorJson(e) + ", \"error_string\": \"" +
           json::escape(e.message) + "\"}";
}

} // namespace urtx::srv
