#pragma once
/// \file reactor.hpp
/// A single-threaded readiness reactor for the serving daemon: one epoll
/// instance (poll(2) fallback — selectable for tests, automatic on
/// non-Linux builds) multiplexes the listen sockets and every connection
/// fd, so thousands of concurrent connections cost two fds and zero
/// threads instead of one thread each.
///
/// Threading contract
/// ------------------
/// add/modify/remove/poll are reactor-thread-only (the daemon's event
/// thread). The only cross-thread entry point is wakeup(), which makes a
/// blocked poll() return immediately — worker callbacks use it to hand
/// flush/resume work to the event thread through the daemon's own queues.
/// Events are level-triggered: a handler that leaves data unread or
/// unwritten simply runs again on the next poll.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace urtx::srv {

class Reactor {
public:
    enum class Backend : std::uint8_t {
        Auto,  ///< epoll where available, else poll
        Epoll, ///< epoll_wait(2) — Linux only
        Poll,  ///< poll(2) — portable fallback
    };

    struct Event {
        int fd = -1;
        bool readable = false;
        bool writable = false;
        bool hangup = false; ///< EPOLLHUP/EPOLLERR (POLLHUP/POLLERR/POLLNVAL)
    };

    explicit Reactor(Backend backend = Backend::Auto);
    ~Reactor();

    Reactor(const Reactor&) = delete;
    Reactor& operator=(const Reactor&) = delete;

    /// The backend actually in use (Auto resolved).
    Backend backend() const { return backend_; }

    /// Watch \p fd. \p write arms write-readiness too (read is always on
    /// unless paused via modify). Reactor thread only.
    bool add(int fd, bool read, bool write);
    /// Re-arm the interest set of a watched fd. Reactor thread only.
    bool modify(int fd, bool read, bool write);
    /// Stop watching \p fd (the caller still owns/closes it).
    void remove(int fd);
    std::size_t watched() const { return interest_.size(); }

    /// Block up to \p timeoutMs (-1 = forever) for events or a wakeup().
    /// Returns the ready events; a pending wakeup is consumed silently.
    std::vector<Event> poll(int timeoutMs);

    /// Make a concurrent/subsequent poll() return immediately. Safe from
    /// any thread, async-signal-unsafe-free (one pipe write).
    void wakeup();

private:
    struct Interest {
        bool read = false;
        bool write = false;
    };

    Backend backend_;
    int epollFd_ = -1;     ///< epoll backend only
    int wakePipe_[2] = {-1, -1};
    std::unordered_map<int, Interest> interest_;
    std::vector<Event> scratch_;
};

} // namespace urtx::srv
