#include "srv/daemon/framing.hpp"

#include <cstring>

namespace urtx::srv::wire {

std::string preamble() {
    std::string p(wiregen::kMagic, 4);
    p.push_back(static_cast<char>(wiregen::kVersion));
    p.push_back('\0'); // flags (none defined yet)
    p.push_back('\0'); // reserved
    p.push_back('\0');
    return p;
}

bool checkPreamble(const void* data, std::string* err) {
    const auto* p = static_cast<const unsigned char*>(data);
    if (std::memcmp(p, wiregen::kMagic, 4) != 0) {
        if (err) *err = "bad wire magic";
        return false;
    }
    if (p[4] != wiregen::kVersion) {
        if (err) {
            *err = "unsupported wire version " + std::to_string(p[4]) +
                   " (daemon speaks " + std::to_string(wiregen::kVersion) + ")";
        }
        return false;
    }
    return true;
}

void appendFrame(std::string& out, FrameType type, std::string_view payload) {
    wiregen::putU32(out, static_cast<std::uint32_t>(payload.size()));
    wiregen::putU8(out, static_cast<std::uint8_t>(type));
    out.append(payload);
}

std::optional<FrameHeader> peekFrameHeader(std::string_view buf) {
    if (buf.size() < wiregen::kFrameHeaderBytes) return std::nullopt;
    const auto* p = reinterpret_cast<const unsigned char*>(buf.data());
    FrameHeader h;
    h.length = 0;
    for (int i = 0; i < 4; ++i) h.length |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    h.type = p[4];
    return h;
}

wiregen::WireJob jobToWire(const ScenarioSpec& spec) {
    wiregen::WireJob w;
    w.scenario = spec.scenario;
    w.name = spec.name;
    w.horizon = spec.horizon;
    w.mode = spec.mode == sim::ExecutionMode::MultiThread ? 1 : 0;
    w.deadline_seconds = spec.deadlineSeconds;
    w.cost_seconds = spec.costSeconds;
    w.wall_budget_seconds = spec.wallBudgetSeconds;
    w.num_params = spec.params.nums();
    for (const auto& [k, v] : spec.params.strs()) w.str_params[k] = v;
    w.profile = spec.profile;
    return w;
}

ScenarioSpec jobFromWire(const wiregen::WireJob& w) {
    ScenarioSpec spec;
    spec.scenario = w.scenario;
    spec.name = w.name;
    spec.horizon = w.horizon;
    spec.mode = w.mode == 1 ? sim::ExecutionMode::MultiThread
                            : sim::ExecutionMode::SingleThread;
    spec.deadlineSeconds = w.deadline_seconds;
    spec.costSeconds = w.cost_seconds;
    spec.wallBudgetSeconds = w.wall_budget_seconds;
    for (const auto& [k, v] : w.num_params) spec.params.set(k, v);
    for (const auto& [k, v] : w.str_params) spec.params.set(k, v);
    spec.profile = w.profile;
    return spec;
}

wiregen::WireResult resultToWire(const ResultRecord& r) {
    wiregen::WireResult w;
    w.name = r.name;
    w.scenario = r.scenario;
    w.status = static_cast<std::uint8_t>(r.status);
    w.passed = r.passed;
    w.verdict = r.verdict;
    w.error = r.error;
    w.error_code = r.errorCode;
    w.worker = r.worker;
    w.stolen = r.stolen;
    w.deadline_met = r.deadlineMet;
    w.warm_reuse = r.warmReuse;
    w.cached_result = r.cachedResult;
    w.watchdog_tripped = r.watchdogTripped;
    w.queue_wait_seconds = r.queueWaitSeconds;
    w.wall_seconds = r.wallSeconds;
    w.finished_at_seconds = r.finishedAtSeconds;
    w.sim_time = r.simTime;
    w.steps = r.steps;
    w.trace_rows = r.traceRows;
    w.trace_hash = r.traceHash;
    w.metrics_json = r.metricsJson;
    w.postmortem_json = r.postmortemJson;
    w.stages = r.stages;
    return w;
}

ResultRecord resultFromWire(const wiregen::WireResult& w) {
    ResultRecord r;
    r.name = w.name;
    r.scenario = w.scenario;
    r.status = w.status <= static_cast<std::uint8_t>(ScenarioStatus::Rejected)
                   ? static_cast<ScenarioStatus>(w.status)
                   : ScenarioStatus::Rejected;
    r.passed = w.passed;
    r.verdict = w.verdict;
    r.error = w.error;
    r.errorCode = w.error_code;
    r.worker = w.worker;
    r.stolen = w.stolen;
    r.deadlineMet = w.deadline_met;
    r.warmReuse = w.warm_reuse;
    r.cachedResult = w.cached_result;
    r.watchdogTripped = w.watchdog_tripped;
    r.queueWaitSeconds = w.queue_wait_seconds;
    r.wallSeconds = w.wall_seconds;
    r.finishedAtSeconds = w.finished_at_seconds;
    r.simTime = w.sim_time;
    r.steps = w.steps;
    r.traceRows = w.trace_rows;
    r.traceHash = w.trace_hash;
    r.metricsJson = w.metrics_json;
    r.postmortemJson = w.postmortem_json;
    r.stages = w.stages;
    return r;
}

} // namespace urtx::srv::wire
