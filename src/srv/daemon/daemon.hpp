#pragma once
/// \file daemon.hpp
/// The persistent serving daemon core: a ServeDaemon keeps one
/// ServeEngine::Session (worker pool + watchdog) resident, accepts
/// newline-delimited JSON job requests over a Unix-domain socket and/or a
/// loopback TCP socket, and streams back one result record per line as
/// jobs complete — out of submission order, matched by "name".
///
/// Wire protocol (docs/SERVING.md has the full schema)
/// ---------------------------------------------------
/// Request lines are job objects in the batch-file "jobs" element schema
/// (scenario, name, horizon, mode, params, repeat/sweep, deadlines).
/// Response lines are the per-job result records reportJson() embeds,
/// plus "warm_reuse"/"cached_result" flags. A malformed line yields one
/// {"status": "error", "error": ...} record instead of killing the
/// connection. While draining, every job line yields a Rejected record
/// with verdict "draining".
///
/// A request object carrying a string member "op" is a *control verb*, not
/// a job: "metrics" (Prometheus text + JSON snapshot of the process
/// registry), "trace" (Chrome-trace slice of the global tracer, optional
/// "last_n"), "health" (deadline misses, watchdog, drain status, queue
/// depth, sampling rate) and "set_sampling" (runtime span-sampling rate,
/// floor-clamped). Control verbs respond with exactly one JSON line, never
/// count as jobs, and keep working while the daemon drains — the
/// observability surface must stay up precisely when the daemon is
/// shutting down.
///
/// Caching
/// -------
/// Jobs first consult the ResultCache by ScenarioSpec::jobHash(): a hit
/// replays the stored record (bit-identical trace hash) without touching
/// the engine. Misses run on the session; successful runs park their
/// scenario instance in the WarmScenarioCache by warmKey() and store the
/// result.
///
/// Backpressure
/// ------------
/// Each connection has a bounded in-flight window: once
/// maxInFlightPerConnection jobs are submitted-but-unreported the reader
/// stops consuming the socket until results drain, so one firehose client
/// cannot flood the queue (TCP/Unix buffers then push back on the writer).
///
/// Shutdown
/// --------
/// beginDrain() (SIGTERM in urtx_served) stops admitting work but keeps
/// every admitted job running to its streamed record; stop() waits for
/// that drain, then closes connections and joins every thread. No job is
/// lost or double-reported across the drain edge.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "srv/cache.hpp"
#include "srv/engine.hpp"
#include "srv/scenario.hpp"

namespace urtx::obs {
class Counter;
class Gauge;
} // namespace urtx::obs

namespace urtx::srv {

namespace json {
class Value;
} // namespace json

struct DaemonConfig {
    /// Unix-domain socket path; empty = no Unix listener.
    std::string socketPath;
    /// Loopback (127.0.0.1) TCP port; 0 = no TCP listener.
    std::uint16_t tcpPort = 0;
    /// Engine/worker-pool configuration for the resident session.
    EngineConfig engine;
    /// Warm scenario instances parked between jobs (0 disables).
    std::size_t warmCacheCapacity = 16;
    /// Stored results replayed for bit-identical reruns (0 disables).
    std::size_t resultCacheCapacity = 256;
    /// Per-connection submitted-but-unreported window; the reader stalls
    /// at the limit.
    std::size_t maxInFlightPerConnection = 64;
    /// Hard cap on one request line (malformed clients can't balloon RAM).
    std::size_t maxLineBytes = 1 << 20;
    /// Embed each job's scoped metrics snapshot in its streamed record.
    bool includeMetrics = false;
};

class ServeDaemon {
public:
    explicit ServeDaemon(DaemonConfig cfg,
                         const ScenarioLibrary& lib = ScenarioLibrary::global());
    ~ServeDaemon(); ///< stop() if still running

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /// Bind the configured listeners and start their accept threads (the
    /// session itself starts in the constructor). Returns false with a
    /// reason when a bind fails. Callable without any listener configured —
    /// adoptConnection() then drives the daemon directly (tests).
    bool start(std::string* err = nullptr);

    /// Serve an already-connected stream socket (accept loops use this;
    /// tests hand in one end of a socketpair). The daemon owns \p fd.
    void adoptConnection(int fd);

    /// Stop admitting jobs; admitted ones keep running and streaming.
    void beginDrain();
    bool draining() const { return draining_.load(std::memory_order_acquire); }

    /// Graceful shutdown: beginDrain, wait for every admitted job's record
    /// to be written, close listeners and connections, join every thread.
    /// Idempotent.
    void stop();

    /// Seconds the last stop() spent draining (srvd.drain_seconds).
    double lastDrainSeconds() const { return lastDrainSeconds_; }

    std::size_t activeConnections() const;
    std::uint64_t connectionsServed() const {
        return connectionsServed_.load(std::memory_order_relaxed);
    }

    ServeEngine& engine() { return engine_; }
    ServeEngine::Session& session() { return *session_; }
    WarmScenarioCache& warmCache() { return warmCache_; }
    ResultCache& resultCache() { return resultCache_; }
    const DaemonConfig& config() const { return cfg_; }

    /// Bound TCP port (after start(); useful when cfg.tcpPort was
    /// ephemeral). 0 when no TCP listener.
    std::uint16_t boundTcpPort() const { return boundTcpPort_; }

private:
    struct Conn;

    void readerLoop(std::shared_ptr<Conn> conn);
    void acceptLoop(int listenFd);
    void handleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
    void handleControl(const std::shared_ptr<Conn>& conn, const std::string& op,
                       const json::Value& doc);
    void dispatchSpec(const std::shared_ptr<Conn>& conn, ScenarioSpec spec);
    void writeRecord(const std::shared_ptr<Conn>& conn, const std::string& record);
    void writeLine(const std::shared_ptr<Conn>& conn, const std::string& payload);
    void updateCacheGauges();
    void sweepFinishedConnections();

    DaemonConfig cfg_;
    const ScenarioLibrary& lib_;
    WarmScenarioCache warmCache_;
    ResultCache resultCache_;
    ServeEngine engine_;
    std::unique_ptr<ServeEngine::Session> session_;

    std::vector<int> listenFds_;
    std::vector<std::thread> acceptThreads_;
    std::uint16_t boundTcpPort_ = 0;

    mutable std::mutex connsMu_;
    std::list<std::shared_ptr<Conn>> conns_;

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;
    std::mutex stopMu_;
    std::atomic<std::uint64_t> connectionsServed_{0};
    double lastDrainSeconds_ = 0.0;

    // srvd.* metrics (process registry; bound once in the constructor).
    obs::Gauge* connectionsGauge_;
    obs::Counter* connectionsTotal_;
    obs::Counter* jobsReceived_;
    obs::Counter* jobsStreamed_;
    obs::Counter* rejectedDraining_;
    obs::Counter* badLines_;
    obs::Gauge* queueDepthGauge_;
    obs::Gauge* resultCacheHitRatio_;
    obs::Gauge* warmCacheHitRatio_;
    obs::Gauge* drainSeconds_;
};

} // namespace urtx::srv
