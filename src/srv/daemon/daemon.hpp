#pragma once
/// \file daemon.hpp
/// The persistent serving daemon core: a ServeDaemon keeps one
/// ServeEngine::Session (worker pool + watchdog) resident and serves job
/// requests over a Unix-domain socket and/or a loopback TCP socket. Since
/// the reactor rewrite every connection is multiplexed onto ONE event
/// thread (epoll, poll fallback): nonblocking fds, per-connection
/// read/write buffers, and level-triggered readiness — thousands of
/// concurrent connections cost a map entry each, not a thread each.
///
/// Wire protocols (docs/SERVING.md has the full schemas)
/// -----------------------------------------------------
/// A connection's first byte negotiates its framing, fixed for the
/// connection's lifetime:
///
///  * newline-JSON (fallback, the original protocol): request lines are
///    job objects in the batch-file "jobs" element schema (including
///    repeat/sweep expansion); response lines are per-job result records.
///    A malformed line yields one {"status": "error", ...} record and the
///    connection lives on.
///  * binary framing: the 8-byte preamble "URTX" + version (echoed back
///    as the accept) switches to length-prefixed frames carrying
///    generated WireJob/WireResult messages (src/codegen emits the
///    codec from the ScenarioSpec/result-record descriptors). Results are
///    bit-identical across framings — the trace hash in a binary record
///    is the same FNV-1a a JSON record renders.
///
/// A request carrying a string "op" member (sent as a JSON line or inside
/// a Control frame) is a *control verb*, not a job: "metrics", "trace",
/// "health", "set_sampling". Verbs respond with exactly one JSON
/// line/ControlResponse frame, never count as jobs, and keep answering
/// while the daemon drains.
///
/// Caching, backpressure, shutdown
/// -------------------------------
/// Jobs consult the ResultCache by jobHash() (bit-identical replay), then
/// run on the session, parking instances in the WarmScenarioCache by
/// warmKey(). Each connection has a bounded submitted-but-unreported
/// window: at the limit the reactor stops *reading* that fd (the kernel
/// buffer then pushes back on the client) and resumes as results stream.
/// beginDrain()/stop() reject new jobs, finish every admitted one, flush
/// every buffered record, then close — no job lost or double-reported.
///
/// Two historical edge bugs are fixed structurally here: a transient
/// accept(2) errno (EMFILE/ENFILE/ECONNABORTED/...) no longer kills the
/// listener — it is retried (with a short backoff on fd exhaustion) and
/// counted in srvd.accept_errors; and finished connections are reaped the
/// moment they drain, not when the *next* connection happens to arrive.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/window.hpp"
#include "srv/cache.hpp"
#include "srv/daemon/reactor.hpp"
#include "srv/engine.hpp"
#include "srv/error.hpp"
#include "srv/scenario.hpp"

namespace urtx::obs {
class Counter;
class Gauge;
class Histogram;
} // namespace urtx::obs

namespace urtx::srv {

namespace json {
class Value;
} // namespace json

/// How the reactor should treat an accept(2) failure. Exposed for tests:
/// the classification is the accept-loop-death bugfix.
enum class AcceptRetry : std::uint8_t {
    Retry,             ///< transient per-connection error: try again now
    RetryAfterBackoff, ///< fd/memory exhaustion: sleep briefly, then retry
    Fatal,             ///< the listener itself is gone (EBADF/EINVAL/...)
};
AcceptRetry acceptRetryClass(int err);

struct DaemonConfig {
    /// Unix-domain socket path; empty = no Unix listener.
    std::string socketPath;
    /// Loopback (127.0.0.1) TCP port; 0 = no TCP listener unless
    /// tcpEphemeral asks the kernel for one.
    std::uint16_t tcpPort = 0;
    /// Bind a loopback TCP listener on an ephemeral port (tcpPort ignored;
    /// read the result from boundTcpPort()). Lets a fleet harness spawn N
    /// daemons without port-collision races — urtx_served --port 0 sets
    /// this and prints the "PORT <n>" line the harness scrapes.
    bool tcpEphemeral = false;
    /// Engine/worker-pool configuration for the resident session.
    EngineConfig engine;
    /// Warm scenario instances parked between jobs (0 disables).
    std::size_t warmCacheCapacity = 16;
    /// Stored results replayed for bit-identical reruns (0 disables).
    std::size_t resultCacheCapacity = 256;
    /// Per-connection submitted-but-unreported window; the reactor stops
    /// reading the fd at the limit.
    std::size_t maxInFlightPerConnection = 64;
    /// Hard cap on one request line / binary frame payload (malformed
    /// clients can't balloon RAM).
    std::size_t maxLineBytes = 1 << 20;
    /// Embed each job's scoped metrics snapshot in its streamed record.
    bool includeMetrics = false;
    /// Event backend; Auto = epoll where available, else poll.
    Reactor::Backend reactorBackend = Reactor::Backend::Auto;
    /// Windowed-stats snapshot tick period, driven off the reactor's poll
    /// timeout. 0 disables the ticker (the stats verb then reports empty
    /// windows). One registry snapshot per tick — negligible next to job
    /// traffic at the 1 Hz default.
    double statsTickSeconds = 1.0;
    /// Snapshot ring capacity (128 ticks at 1 Hz cover a 2-minute span,
    /// comfortably past the 60s window).
    std::size_t statsWindowCapacity = 128;
};

class ServeDaemon {
public:
    /// \p lib is mutable because {"op": "define_scenario"} registers
    /// uploaded model documents into it beside the builtins.
    explicit ServeDaemon(DaemonConfig cfg, ScenarioLibrary& lib = ScenarioLibrary::global());
    ~ServeDaemon(); ///< stop() if still running

    ServeDaemon(const ServeDaemon&) = delete;
    ServeDaemon& operator=(const ServeDaemon&) = delete;

    /// Bind the configured listeners and start the reactor thread (the
    /// session itself starts in the constructor). Returns false with a
    /// reason when a bind fails. Callable without any listener configured —
    /// adoptConnection() then drives the daemon directly (tests, benches).
    bool start(std::string* err = nullptr);

    /// Serve an already-connected stream socket (the accept path uses
    /// this; tests hand in one end of a socketpair). The daemon owns
    /// \p fd and switches it nonblocking.
    void adoptConnection(int fd);

    /// Stop admitting jobs; admitted ones keep running and streaming.
    void beginDrain();
    bool draining() const { return draining_.load(std::memory_order_acquire); }

    /// Graceful shutdown: beginDrain, run every admitted job to its
    /// streamed record, flush every connection buffer, close listeners and
    /// connections, join the reactor. Idempotent.
    void stop();

    /// Seconds the last stop() spent draining (srvd.drain_seconds).
    double lastDrainSeconds() const { return lastDrainSeconds_; }

    std::size_t activeConnections() const;
    std::uint64_t connectionsServed() const {
        return connectionsServed_.load(std::memory_order_relaxed);
    }

    ServeEngine& engine() { return engine_; }
    ServeEngine::Session& session() { return *session_; }
    WarmScenarioCache& warmCache() { return warmCache_; }
    ResultCache& resultCache() { return resultCache_; }
    obs::StatsWindow& statsWindow() { return statsWindow_; }
    obs::WcetTracker& wcetTracker() { return wcet_; }
    const DaemonConfig& config() const { return cfg_; }

    /// The backend the reactor resolved (Auto -> Epoll/Poll); meaningful
    /// after start().
    Reactor::Backend reactorBackend() const;

    /// Bound TCP port (after start(); useful when cfg.tcpPort was
    /// ephemeral). 0 when no TCP listener.
    std::uint16_t boundTcpPort() const { return boundTcpPort_; }

private:
    struct Conn;

    // Reactor thread body and helpers (reactor thread only unless noted).
    void reactorLoop();
    void ensureReactorStarted();
    void drainReactorOps();
    void registerConn(const std::shared_ptr<Conn>& conn);
    void onListenReadable(int listenFd);
    void onConnEvent(const std::shared_ptr<Conn>& conn, const Reactor::Event& ev);
    void readFromConn(const std::shared_ptr<Conn>& conn, bool hangup);
    void processInput(const std::shared_ptr<Conn>& conn);
    void processJsonLines(const std::shared_ptr<Conn>& conn);
    void processBinaryFrames(const std::shared_ptr<Conn>& conn);
    void handleFrame(const std::shared_ptr<Conn>& conn, std::uint8_t type,
                     std::string_view payload);
    void updateInterest(const std::shared_ptr<Conn>& conn);
    void handlePoke(const std::shared_ptr<Conn>& conn);
    void flushConn(const std::shared_ptr<Conn>& conn);
    void finishIfDone(const std::shared_ptr<Conn>& conn);
    void closeConn(const std::shared_ptr<Conn>& conn);
    void failProtocol(const std::shared_ptr<Conn>& conn, const std::string& message);

    void handleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
    void handleControl(const std::shared_ptr<Conn>& conn, const std::string& op,
                       const json::Value& doc);
    /// \p recvNanos / \p decodedNanos: monotonic stamps from the request's
    /// arrival and end-of-parse, feeding srvd.request_latency_seconds and
    /// the decode stage of profiled jobs.
    void dispatchSpec(const std::shared_ptr<Conn>& conn, ScenarioSpec spec,
                      std::uint64_t recvNanos, std::uint64_t decodedNanos);

    /// Reactor-tick body: refresh runtime gauges and capture one windowed-
    /// stats snapshot.
    void tickStats();
    /// Update uptime / sampling-rate / tracer-stripe gauges so snapshots
    /// and verb responses carry current values.
    void refreshRuntimeGauges();
    /// The {"op":"stats"} response body (windowed rates, latency
    /// quantiles, WCET table).
    std::string statsJson();

    // Mode-aware writers (any thread; they hand buffered bytes to the
    // reactor via poke()).
    /// \p recvNanos: when nonzero, observe receive->reply into
    /// srvd.request_latency_seconds after the write.
    void writeResult(const std::shared_ptr<Conn>& conn, const ScenarioResult& res,
                     std::uint64_t recvNanos = 0);
    void writeError(const std::shared_ptr<Conn>& conn, const ErrorInfo& err);
    void writeControlResp(const std::shared_ptr<Conn>& conn, const std::string& payload);
    void writeOut(const std::shared_ptr<Conn>& conn, std::string_view bytes);
    void poke(const std::shared_ptr<Conn>& conn); ///< any thread

    void updateCacheGauges();

    DaemonConfig cfg_;
    ScenarioLibrary& lib_;
    WarmScenarioCache warmCache_;
    ResultCache resultCache_;
    ServeEngine engine_;
    std::unique_ptr<ServeEngine::Session> session_;

    std::unique_ptr<Reactor> reactor_;
    std::thread reactorThread_;
    std::mutex reactorStartMu_;
    std::atomic<bool> reactorRunning_{false};
    std::atomic<bool> reactorStop_{false};

    std::unordered_set<int> listenSet_; ///< reactor thread only
    std::atomic<bool> closeListenersReq_{false};
    std::atomic<bool> listenersClosed_{true};
    std::uint16_t boundTcpPort_ = 0;

    // Cross-thread op queues drained by the reactor at each wakeup.
    std::mutex opsMu_;
    std::vector<std::shared_ptr<Conn>> adoptQueue_;
    std::vector<std::shared_ptr<Conn>> pokeQueue_;
    std::vector<int> pendingListenFds_;

    mutable std::mutex connsMu_;
    std::unordered_map<int, std::shared_ptr<Conn>> conns_; ///< fd -> conn

    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    bool stopped_ = false;
    std::mutex stopMu_;
    std::atomic<std::uint64_t> connectionsServed_{0};
    double lastDrainSeconds_ = 0.0;

    // srvd.* metrics (process registry; bound once in the constructor).
    obs::Gauge* connectionsGauge_;
    obs::Counter* connectionsTotal_;
    obs::Counter* jobsReceived_;
    obs::Counter* jobsStreamed_;
    obs::Counter* rejectedDraining_;
    obs::Counter* badLines_;
    obs::Counter* acceptErrors_; ///< aggregate across all classes
    obs::Counter* acceptErrorsRetry_;
    obs::Counter* acceptErrorsBackoff_;
    obs::Counter* acceptErrorsFatal_;
    obs::Counter* binaryConnections_;
    obs::Gauge* queueDepthGauge_;
    obs::Gauge* resultCacheHitRatio_;
    obs::Gauge* warmCacheHitRatio_;
    // Cache occupancy + lifetime hit/miss counts mirrored from the cache
    // objects (srvd.warm_cache.* / srvd.result_cache.*), so a fleet router
    // can verify per-shard cache affinity from the metrics/health verbs.
    obs::Gauge* warmCacheHits_;
    obs::Gauge* warmCacheMisses_;
    obs::Gauge* warmCacheSize_;
    obs::Gauge* warmCacheCapacity_;
    obs::Gauge* resultCacheHits_;
    obs::Gauge* resultCacheMisses_;
    obs::Gauge* resultCacheSize_;
    obs::Gauge* resultCacheCapacity_;
    obs::Gauge* drainSeconds_;
    obs::Gauge* uptimeGauge_;
    obs::Gauge* samplingRateGauge_;
    obs::Gauge* tracerStripesGauge_;
    obs::Histogram* requestLatency_; ///< receive -> reply, incl. cached hits

    // Windowed stats (ticked by the reactor) + per-scenario WCET table.
    obs::StatsWindow statsWindow_;
    obs::WcetTracker wcet_;
    std::uint64_t startNanos_ = 0;
};

} // namespace urtx::srv
