#include "srv/daemon/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/tracer.hpp"
#include "srv/batch_io.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/error.hpp"
#include "srv/json.hpp"
#include "srv/model/service.hpp"

namespace urtx::srv {

/// One client connection on the reactor. The reactor thread owns the
/// parse-side state (mode, inBuf, readPaused, registered); the write side
/// (outBuf, fdClosed) is guarded by outMu because completion callbacks
/// write records from worker threads. The fd closes exactly once, on the
/// reactor thread, only after in-flight work drained and the out buffer
/// flushed — so a completion callback can never race a close/reuse of the
/// descriptor (it observes fdClosed under outMu instead).
struct ServeDaemon::Conn {
    explicit Conn(int f) : fd(f) {}
    ~Conn() {
        if (!fdClosed && fd >= 0) ::close(fd);
    }

    enum class Mode : std::uint8_t { Sniff, Json, Binary };

    const int fd;

    // Reactor-thread-only state.
    Mode mode = Mode::Sniff;
    std::string inBuf;
    bool registered = false; ///< in the reactor's interest set

    // Shared state.
    std::mutex outMu;
    std::string outBuf;   ///< bytes awaiting writability (guarded by outMu)
    bool fdClosed = false; ///< guarded by outMu
    std::atomic<bool> readPaused{false}; ///< written by reactor; stop() reads
    std::atomic<std::size_t> inFlight{0}; ///< submitted but not yet streamed
    std::atomic<bool> dead{false};    ///< write failed / client gone
    std::atomic<bool> peerEof{false}; ///< no more input (EOF/reset/protocol kill)
    std::atomic<bool> pokePending{false}; ///< dedupes queued pokes
    std::atomic<std::uint64_t> seq{0};    ///< default job names per connection
};

namespace {

void setNonBlocking(int fd) {
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

ScenarioResult rejectionRecord(const ScenarioSpec& spec, std::string verdict,
                               std::string code, std::string error) {
    ScenarioResult r;
    r.name = spec.name;
    r.scenario = spec.scenario;
    r.status = ScenarioStatus::Rejected;
    r.passed = false;
    r.verdictDetail = std::move(verdict);
    r.errorCode = std::move(code);
    r.error = std::move(error);
    return r;
}

/// Bucket bounds for srvd.request_latency_seconds. Cached-path replies land
/// in single-digit microseconds, so the ladder starts at 1µs; the top end
/// covers multi-second cold solves.
std::vector<double> requestLatencyBounds() {
    return {1e-6, 2.5e-6, 5e-6,  1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
            1e-3, 2.5e-3, 5e-3,  1e-2,   2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
            1.0,  2.5,    10.0};
}

} // namespace

AcceptRetry acceptRetryClass(int err) {
    switch (err) {
    // Per-connection failures: the connection that was being accepted is
    // gone (aborted handshake, network blip). The listener is fine.
    case EINTR:
    case ECONNABORTED:
#ifdef EPROTO
    case EPROTO:
#endif
    case ENETDOWN:
    case ENETUNREACH:
    case EHOSTUNREACH:
#ifdef EHOSTDOWN
    case EHOSTDOWN:
#endif
#ifdef ENONET
    case ENONET:
#endif
    case EOPNOTSUPP:
        return AcceptRetry::Retry;
    // Resource exhaustion: accepting again immediately would spin; back
    // off briefly and let connections drain fds first.
    case EMFILE:
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
        return AcceptRetry::RetryAfterBackoff;
    // EBADF/EINVAL/ENOTSOCK/...: the listener itself is unusable (stop()
    // closed it, or it was never a listening socket).
    default:
        return AcceptRetry::Fatal;
    }
}

ServeDaemon::ServeDaemon(DaemonConfig cfg, ScenarioLibrary& lib)
    : cfg_(std::move(cfg)),
      lib_(lib),
      warmCache_(cfg_.warmCacheCapacity),
      resultCache_(cfg_.resultCacheCapacity),
      engine_(cfg_.engine),
      reactor_(std::make_unique<Reactor>(cfg_.reactorBackend)),
      statsWindow_(obs::Registry::process(), cfg_.statsWindowCapacity) {
    obs::Registry& r = obs::Registry::process();
    connectionsGauge_ = &r.gauge("srvd.connections");
    connectionsTotal_ = &r.counter("srvd.connections_total");
    jobsReceived_ = &r.counter("srvd.jobs_received");
    jobsStreamed_ = &r.counter("srvd.jobs_streamed");
    rejectedDraining_ = &r.counter("srvd.rejected_draining");
    badLines_ = &r.counter("srvd.bad_lines");
    acceptErrors_ = &r.counter("srvd.accept_errors");
    acceptErrorsRetry_ = &r.counter("srvd.accept_errors.retry");
    acceptErrorsBackoff_ = &r.counter("srvd.accept_errors.backoff");
    acceptErrorsFatal_ = &r.counter("srvd.accept_errors.fatal");
    binaryConnections_ = &r.counter("srvd.binary_connections");
    queueDepthGauge_ = &r.gauge("srvd.queue_depth");
    resultCacheHitRatio_ = &r.gauge("srvd.result_cache_hit_ratio");
    warmCacheHitRatio_ = &r.gauge("srvd.warm_cache_hit_ratio");
    warmCacheHits_ = &r.gauge("srvd.warm_cache.hits");
    warmCacheMisses_ = &r.gauge("srvd.warm_cache.misses");
    warmCacheSize_ = &r.gauge("srvd.warm_cache.size");
    warmCacheCapacity_ = &r.gauge("srvd.warm_cache.capacity");
    resultCacheHits_ = &r.gauge("srvd.result_cache.hits");
    resultCacheMisses_ = &r.gauge("srvd.result_cache.misses");
    resultCacheSize_ = &r.gauge("srvd.result_cache.size");
    resultCacheCapacity_ = &r.gauge("srvd.result_cache.capacity");
    drainSeconds_ = &r.gauge("srvd.drain_seconds");
    uptimeGauge_ = &r.gauge("srvd.uptime_seconds");
    samplingRateGauge_ = &r.gauge("obs.span_sampling_rate");
    tracerStripesGauge_ = &r.gauge("obs.tracer_stripes");
    requestLatency_ = &r.histogram("srvd.request_latency_seconds", requestLatencyBounds());
    startNanos_ = obs::nowNanos();
    refreshRuntimeGauges();

    if (cfg_.warmCacheCapacity > 0) engine_.setWarmCache(&warmCache_);
    session_ = engine_.startSession(lib_);
}

ServeDaemon::~ServeDaemon() { stop(); }

Reactor::Backend ServeDaemon::reactorBackend() const { return reactor_->backend(); }

bool ServeDaemon::start(std::string* err) {
    std::vector<int> bound;
    const auto fail = [&](const std::string& what) {
        if (err) *err = what + ": " + std::strerror(errno);
        for (int fd : bound) ::close(fd);
        return false;
    };

    if (!cfg_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err) *err = "socket path too long: " + cfg_.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, cfg_.socketPath.c_str(), sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_UNIX)");
        ::unlink(cfg_.socketPath.c_str()); // stale socket from a prior run
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(" + cfg_.socketPath + ")");
        }
        if (::listen(fd, 128) != 0) {
            ::close(fd);
            return fail("listen(" + cfg_.socketPath + ")");
        }
        bound.push_back(fd);
    }

    // TCP is opt-in via a nonzero port (or an explicit ephemeral-port
    // request). No listeners configured at all is legal too — tests drive
    // adoptConnection() directly.
    if (cfg_.tcpPort != 0 || cfg_.tcpEphemeral) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.tcpEphemeral ? 0 : cfg_.tcpPort);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(127.0.0.1:" + std::to_string(cfg_.tcpPort) + ")");
        }
        if (::listen(fd, 128) != 0) {
            ::close(fd);
            return fail("listen(tcp)");
        }
        sockaddr_in boundAddr{};
        socklen_t len = sizeof(boundAddr);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&boundAddr), &len) == 0) {
            boundTcpPort_ = ntohs(boundAddr.sin_port);
        }
        bound.push_back(fd);
    }

    // Hand the listeners to the reactor only once every bind succeeded.
    if (!bound.empty()) {
        for (int fd : bound) setNonBlocking(fd);
        listenersClosed_.store(false, std::memory_order_release);
        {
            std::lock_guard<std::mutex> lk(opsMu_);
            pendingListenFds_.insert(pendingListenFds_.end(), bound.begin(), bound.end());
        }
    }
    ensureReactorStarted();
    reactor_->wakeup();
    return true;
}

void ServeDaemon::ensureReactorStarted() {
    std::lock_guard<std::mutex> lk(reactorStartMu_);
    if (reactorRunning_.load(std::memory_order_acquire)) return;
    reactorStop_.store(false, std::memory_order_release);
    reactorThread_ = std::thread([this] { reactorLoop(); });
    reactorRunning_.store(true, std::memory_order_release);
}

void ServeDaemon::adoptConnection(int fd) {
    if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
    }
    setNonBlocking(fd);
    ensureReactorStarted();
    auto conn = std::make_shared<Conn>(fd);
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        adoptQueue_.push_back(std::move(conn));
    }
    connectionsTotal_->inc();
    connectionsServed_.fetch_add(1, std::memory_order_relaxed);
    reactor_->wakeup();
}

std::size_t ServeDaemon::activeConnections() const {
    std::lock_guard<std::mutex> lk(connsMu_);
    return conns_.size();
}

// ---------------------------------------------------------------------------
// Reactor thread
// ---------------------------------------------------------------------------

void ServeDaemon::reactorLoop() {
    // The stats ticker rides the reactor's poll timeout: with no tick
    // configured the loop blocks forever as before; with one it wakes at
    // the next tick deadline, snapshots, and re-arms. Job traffic wakes the
    // poll early, so ticks never delay I/O — and a busy poll loop still
    // ticks on time because the deadline check runs every iteration.
    const bool ticking = cfg_.statsTickSeconds > 0.0;
    const std::uint64_t periodNs =
        ticking ? static_cast<std::uint64_t>(cfg_.statsTickSeconds * 1e9) : 0;
    std::uint64_t nextTickNs = ticking ? obs::nowNanos() + periodNs : 0;
    for (;;) {
        drainReactorOps();
        if (reactorStop_.load(std::memory_order_acquire)) break;
        int timeoutMs = -1;
        if (ticking) {
            std::uint64_t now = obs::nowNanos();
            if (now >= nextTickNs) {
                tickStats();
                now = obs::nowNanos();
                nextTickNs = now + periodNs;
            }
            // Round up so we never spin sub-millisecond before a deadline.
            timeoutMs = static_cast<int>((nextTickNs - now) / 1000000u) + 1;
        }
        const std::vector<Reactor::Event> events = reactor_->poll(timeoutMs);
        for (const Reactor::Event& ev : events) {
            if (listenSet_.count(ev.fd) != 0) {
                onListenReadable(ev.fd);
                continue;
            }
            std::shared_ptr<Conn> conn;
            {
                std::lock_guard<std::mutex> lk(connsMu_);
                auto it = conns_.find(ev.fd);
                if (it != conns_.end()) conn = it->second;
            }
            // A conn closed earlier in this batch leaves stale events.
            if (conn) onConnEvent(conn, ev);
        }
    }

    // Teardown (stop() requested): close every remaining connection and
    // listener on this thread, so fd lifecycle stays single-threaded.
    drainReactorOps();
    std::vector<std::shared_ptr<Conn>> remaining;
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        for (auto& [fd, c] : conns_) remaining.push_back(c);
        conns_.clear();
    }
    for (const auto& c : remaining) {
        if (c->registered) {
            reactor_->remove(c->fd);
            c->registered = false;
        }
        std::lock_guard<std::mutex> olk(c->outMu);
        if (!c->fdClosed) {
            c->fdClosed = true;
            ::shutdown(c->fd, SHUT_RDWR);
            ::close(c->fd);
        }
    }
    for (int fd : listenSet_) {
        reactor_->remove(fd);
        ::close(fd);
    }
    listenSet_.clear();
    listenersClosed_.store(true, std::memory_order_release);
    connectionsGauge_->set(0.0);
}

void ServeDaemon::drainReactorOps() {
    std::vector<std::shared_ptr<Conn>> adopts;
    std::vector<std::shared_ptr<Conn>> pokes;
    std::vector<int> newListeners;
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        adopts.swap(adoptQueue_);
        pokes.swap(pokeQueue_);
        newListeners.swap(pendingListenFds_);
    }
    const bool closingListeners = closeListenersReq_.load(std::memory_order_acquire);
    for (int fd : newListeners) {
        if (closingListeners || reactorStop_.load(std::memory_order_acquire)) {
            ::close(fd);
            continue;
        }
        listenSet_.insert(fd);
        reactor_->add(fd, /*read=*/true, /*write=*/false);
    }
    if (closingListeners && !listenersClosed_.load(std::memory_order_acquire)) {
        for (int fd : listenSet_) {
            reactor_->remove(fd);
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
        listenSet_.clear();
        listenersClosed_.store(true, std::memory_order_release);
    }
    for (const auto& c : adopts) registerConn(c);
    for (const auto& c : pokes) {
        c->pokePending.store(false, std::memory_order_release);
        handlePoke(c);
    }
}

void ServeDaemon::registerConn(const std::shared_ptr<Conn>& conn) {
    if (reactorStop_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> olk(conn->outMu);
        if (!conn->fdClosed) {
            conn->fdClosed = true;
            ::close(conn->fd);
        }
        return;
    }
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        conns_[conn->fd] = conn;
        count = conns_.size();
    }
    conn->registered = reactor_->add(conn->fd, /*read=*/true, /*write=*/false);
    connectionsGauge_->set(static_cast<double>(count));
}

void ServeDaemon::onListenReadable(int listenFd) {
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            adoptConnection(fd);
            continue;
        }
        const int e = errno;
        if (e == EAGAIN || e == EWOULDBLOCK) return;
        switch (acceptRetryClass(e)) {
        case AcceptRetry::Retry:
            if (e != EINTR) {
                acceptErrors_->inc();
                acceptErrorsRetry_->inc();
            }
            continue;
        case AcceptRetry::RetryAfterBackoff:
            // Out of fds/memory: a tight retry loop would spin at 100% CPU.
            // Sleep briefly and lean on level-triggered readiness to try
            // again next poll, once connections have given fds back.
            acceptErrors_->inc();
            acceptErrorsBackoff_->inc();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            return;
        case AcceptRetry::Fatal:
            // stop() closing the listener under us surfaces as EBADF here;
            // that clean-shutdown race is not an error, so only count a
            // fatal when nobody asked the listeners to go away.
            if (!stopping_.load(std::memory_order_acquire) &&
                !closeListenersReq_.load(std::memory_order_acquire)) {
                acceptErrors_->inc();
                acceptErrorsFatal_->inc();
            }
            return;
        }
    }
}

void ServeDaemon::onConnEvent(const std::shared_ptr<Conn>& conn,
                              const Reactor::Event& ev) {
    if (ev.writable) flushConn(conn);
    if (ev.readable || ev.hangup) readFromConn(conn, ev.hangup);
    updateInterest(conn);
    finishIfDone(conn);
}

void ServeDaemon::readFromConn(const std::shared_ptr<Conn>& conn, bool hangup) {
    if (!conn->peerEof.load(std::memory_order_acquire) &&
        !conn->dead.load(std::memory_order_acquire)) {
        char chunk[16384];
        std::size_t total = 0;
        for (;;) {
            // While paused we normally leave data in the kernel buffer (that
            // is the backpressure), but on hangup there will be no further
            // readable events — drain what remains now.
            if (conn->readPaused.load(std::memory_order_relaxed) && !hangup) break;
            const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                conn->inBuf.append(chunk, static_cast<std::size_t>(n));
                total += static_cast<std::size_t>(n);
                // Cap one event's haul so a firehose client can't starve the
                // other connections; level-triggering resumes us.
                if (total >= (256u << 10) && !hangup) break;
                continue;
            }
            if (n == 0) {
                conn->peerEof.store(true, std::memory_order_release);
                break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            conn->peerEof.store(true, std::memory_order_release); // ECONNRESET etc.
            break;
        }
    }
    processInput(conn);
}

void ServeDaemon::processInput(const std::shared_ptr<Conn>& conn) {
    if (conn->dead.load(std::memory_order_acquire)) {
        conn->inBuf.clear();
        conn->readPaused.store(false, std::memory_order_relaxed);
        return;
    }
    if (conn->mode == Conn::Mode::Sniff) {
        if (conn->inBuf.empty()) return;
        if (conn->inBuf[0] == wiregen::kMagic[0]) {
            if (conn->inBuf.size() < wiregen::kPreambleBytes) {
                if (!conn->peerEof.load(std::memory_order_acquire)) return;
                conn->mode = Conn::Mode::Json; // truncated hello at EOF
            } else if (wire::checkPreamble(conn->inBuf.data())) {
                conn->mode = Conn::Mode::Binary;
                conn->inBuf.erase(0, wiregen::kPreambleBytes);
                binaryConnections_->inc();
                writeOut(conn, wire::preamble()); // echo = handshake accept
            } else {
                // First byte matched by coincidence: newline-JSON fallback.
                conn->mode = Conn::Mode::Json;
            }
        } else {
            conn->mode = Conn::Mode::Json;
        }
    }
    if (conn->mode == Conn::Mode::Binary) {
        processBinaryFrames(conn);
    } else {
        processJsonLines(conn);
    }
}

void ServeDaemon::processJsonLines(const std::shared_ptr<Conn>& conn) {
    std::string& buf = conn->inBuf;
    std::size_t start = 0;
    for (;;) {
        if (conn->dead.load(std::memory_order_acquire)) {
            buf.clear();
            conn->readPaused.store(false, std::memory_order_relaxed);
            return;
        }
        // Backpressure: at the in-flight window stop consuming; the poke on
        // each completion resumes us.
        if (conn->inFlight.load(std::memory_order_acquire) >=
            cfg_.maxInFlightPerConnection) {
            conn->readPaused.store(true, std::memory_order_relaxed);
            break;
        }
        conn->readPaused.store(false, std::memory_order_relaxed);
        const std::size_t nl = buf.find('\n', start);
        if (nl == std::string::npos) {
            if (buf.size() - start > cfg_.maxLineBytes) {
                buf.erase(0, start);
                failProtocol(conn, "request line exceeds " +
                                       std::to_string(cfg_.maxLineBytes) + " bytes");
                return;
            }
            break;
        }
        std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) handleLine(conn, line);
    }
    buf.erase(0, std::min(start, buf.size()));
}

void ServeDaemon::processBinaryFrames(const std::shared_ptr<Conn>& conn) {
    std::string& buf = conn->inBuf;
    std::size_t start = 0;
    for (;;) {
        if (conn->dead.load(std::memory_order_acquire)) {
            buf.clear();
            conn->readPaused.store(false, std::memory_order_relaxed);
            return;
        }
        if (conn->peerEof.load(std::memory_order_acquire) && buf.empty()) break;
        if (conn->inFlight.load(std::memory_order_acquire) >=
            cfg_.maxInFlightPerConnection) {
            conn->readPaused.store(true, std::memory_order_relaxed);
            break;
        }
        conn->readPaused.store(false, std::memory_order_relaxed);
        const std::string_view rest(buf.data() + start, buf.size() - start);
        const std::optional<wire::FrameHeader> h = wire::peekFrameHeader(rest);
        if (!h) break;
        // Reject a hostile length prefix before waiting for its payload.
        if (h->length > cfg_.maxLineBytes) {
            buf.erase(0, std::min(start, buf.size()));
            failProtocol(conn, "frame payload of " + std::to_string(h->length) +
                                   " bytes exceeds " + std::to_string(cfg_.maxLineBytes));
            return;
        }
        const std::size_t need = wiregen::kFrameHeaderBytes + h->length;
        if (rest.size() < need) break;
        const std::string_view payload =
            rest.substr(wiregen::kFrameHeaderBytes, h->length);
        start += need;
        handleFrame(conn, h->type, payload);
        // failProtocol inside handleFrame clears buf; the min() below keeps
        // the trailing erase in range either way.
        if (buf.empty()) start = 0;
    }
    buf.erase(0, std::min(start, buf.size()));
}

void ServeDaemon::handleFrame(const std::shared_ptr<Conn>& conn, std::uint8_t type,
                              std::string_view payload) {
    using wire::FrameType;
    switch (static_cast<FrameType>(type)) {
    case FrameType::Job: {
        const std::uint64_t recvNs = obs::nowNanos();
        wiregen::WireJob w;
        std::string err;
        if (!wiregen::WireJob::decode(w, payload.data(), payload.size(), &err)) {
            // Malformed payload: one error record, connection survives —
            // mirrors a malformed JSON line.
            writeError(conn, ErrorInfo("proto.bad-frame", "bad job frame: " + err));
            badLines_->inc();
            return;
        }
        ScenarioSpec spec = wire::jobFromWire(w);
        if (spec.name.empty()) {
            spec.name = spec.scenario + "#" +
                        std::to_string(conn->seq.fetch_add(1, std::memory_order_relaxed));
        }
        dispatchSpec(conn, std::move(spec), recvNs, obs::nowNanos());
        return;
    }
    case FrameType::Control: {
        const std::string text(payload);
        std::string err;
        const std::optional<json::Value> doc = json::parse(text, &err);
        if (!doc || !doc->isObject()) {
            writeControlResp(
                conn, errorRecord(doc ? ErrorInfo("verb.bad-argument",
                                                  "control frame must carry a JSON object")
                                      : ErrorInfo("proto.bad-json", err)));
            badLines_->inc();
            return;
        }
        const json::Value* op = doc->find("op");
        if (!op || !op->isString()) {
            writeControlResp(conn, errorRecord(ErrorInfo("verb.bad-argument",
                                                      "control frame requires a string 'op'")));
            badLines_->inc();
            return;
        }
        handleControl(conn, op->string, *doc);
        return;
    }
    default:
        // The client-side frame types (Result/Error/ControlResponse) and
        // unknown ids are protocol violations on this direction.
        badLines_->inc();
        failProtocol(conn, "unexpected frame type " + std::to_string(type));
        return;
    }
}

void ServeDaemon::failProtocol(const std::shared_ptr<Conn>& conn,
                               const std::string& message) {
    // The stream can't be resynced: report once, stop reading, and let the
    // connection drain its in-flight records before closing.
    writeError(conn, ErrorInfo("proto.violation", message));
    badLines_->inc();
    conn->inBuf.clear();
    conn->readPaused.store(false, std::memory_order_relaxed);
    conn->peerEof.store(true, std::memory_order_release);
}

void ServeDaemon::updateInterest(const std::shared_ptr<Conn>& conn) {
    bool wantWrite = false;
    bool closed = false;
    {
        std::lock_guard<std::mutex> lk(conn->outMu);
        closed = conn->fdClosed;
        wantWrite = !conn->outBuf.empty() && !conn->dead.load(std::memory_order_acquire);
    }
    if (closed) return;
    const bool wantRead = !conn->readPaused.load(std::memory_order_relaxed) &&
                          !conn->peerEof.load(std::memory_order_acquire) &&
                          !conn->dead.load(std::memory_order_acquire);
    if (!wantRead && !wantWrite) {
        // Deregister entirely: zero-interest fds still surface EPOLLHUP
        // level-triggered, which would spin the reactor while a paused or
        // draining connection finishes up.
        if (conn->registered) {
            reactor_->remove(conn->fd);
            conn->registered = false;
        }
        return;
    }
    if (!conn->registered) {
        conn->registered = reactor_->add(conn->fd, wantRead, wantWrite);
        return;
    }
    reactor_->modify(conn->fd, wantRead, wantWrite);
}

void ServeDaemon::handlePoke(const std::shared_ptr<Conn>& conn) {
    flushConn(conn);
    if (conn->readPaused.load(std::memory_order_relaxed) &&
        conn->inFlight.load(std::memory_order_acquire) <
            cfg_.maxInFlightPerConnection) {
        conn->readPaused.store(false, std::memory_order_relaxed);
        processInput(conn); // resume on buffered input before new reads
    }
    updateInterest(conn);
    finishIfDone(conn);
}

void ServeDaemon::flushConn(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lk(conn->outMu);
    if (conn->fdClosed || conn->dead.load(std::memory_order_acquire)) {
        conn->outBuf.clear();
        return;
    }
    std::size_t off = 0;
    while (off < conn->outBuf.size()) {
        const ssize_t n = ::send(conn->fd, conn->outBuf.data() + off,
                                 conn->outBuf.size() - off, MSG_NOSIGNAL);
        if (n >= 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        conn->dead.store(true, std::memory_order_release);
        conn->outBuf.clear();
        return;
    }
    conn->outBuf.erase(0, off);
}

void ServeDaemon::finishIfDone(const std::shared_ptr<Conn>& conn) {
    bool outEmpty = false;
    {
        std::lock_guard<std::mutex> lk(conn->outMu);
        if (conn->fdClosed) return;
        outEmpty = conn->outBuf.empty();
    }
    const bool dead = conn->dead.load(std::memory_order_acquire);
    if (!conn->peerEof.load(std::memory_order_acquire) && !dead) return;
    if (conn->inFlight.load(std::memory_order_acquire) != 0) return;
    // Paused implies buffered requests; completion pokes resume and drain
    // them before we can get here with inFlight == 0 again.
    if (conn->readPaused.load(std::memory_order_relaxed)) return;
    if (!outEmpty && !dead) return; // still flushing tail records
    closeConn(conn);
}

void ServeDaemon::closeConn(const std::shared_ptr<Conn>& conn) {
    if (conn->registered) {
        reactor_->remove(conn->fd);
        conn->registered = false;
    }
    {
        std::lock_guard<std::mutex> lk(conn->outMu);
        if (conn->fdClosed) return;
        conn->fdClosed = true;
        conn->outBuf.clear();
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        conns_.erase(conn->fd);
        count = conns_.size();
    }
    connectionsGauge_->set(static_cast<double>(count));
}

// ---------------------------------------------------------------------------
// Request handling (reactor thread)
// ---------------------------------------------------------------------------

void ServeDaemon::handleLine(const std::shared_ptr<Conn>& conn, const std::string& line) {
    const std::uint64_t recvNs = obs::nowNanos();
    std::string err;
    const std::optional<json::Value> doc = json::parse(line, &err);
    if (!doc || !doc->isObject()) {
        writeError(conn, doc ? ErrorInfo("proto.bad-request", "request must be a JSON object")
                             : ErrorInfo("proto.bad-json", err));
        badLines_->inc();
        return;
    }
    // Control verbs ride the same line protocol as jobs, discriminated by a
    // string "op" member (job objects never carry one).
    if (const json::Value* op = doc->find("op"); op && op->isString()) {
        handleControl(conn, op->string, *doc);
        return;
    }
    std::vector<ScenarioSpec> specs;
    try {
        specs = parseJobObject(*doc);
    } catch (const std::exception& ex) {
        writeError(conn, ErrorInfo("job.bad-spec", ex.what()));
        badLines_->inc();
        return;
    }
    // One line can expand (via "repeat") into several specs; they share the
    // line's receive stamp and end-of-parse decode stamp.
    const std::uint64_t decodedNs = obs::nowNanos();
    for (ScenarioSpec& spec : specs) {
        if (spec.name.empty()) {
            spec.name = spec.scenario + "#" +
                        std::to_string(conn->seq.fetch_add(1, std::memory_order_relaxed));
        }
        dispatchSpec(conn, std::move(spec), recvNs, decodedNs);
    }
}

void ServeDaemon::handleControl(const std::shared_ptr<Conn>& conn, const std::string& op,
                                const json::Value& doc) {
    // Observability must stay reachable while draining: verbs are answered
    // unconditionally and never enter the job pipeline (no in-flight slot,
    // no srvd.jobs_* accounting).
    std::ostringstream out;
    if (op == "stats") {
        writeControlResp(conn, statsJson());
        return;
    }
    if (op == "metrics") {
        refreshRuntimeGauges();
        const obs::Snapshot snap = obs::Registry::process().snapshot();
        out << "{\"op\": \"metrics\", \"status\": \"ok\", \"prometheus\": \""
            << json::escape(snap.toPrometheus()) << "\", \"snapshot\": " << snap.toJson()
            << "}";
    } else if (op == "trace") {
        std::size_t lastN = 0;
        if (const json::Value* n = doc.find("last_n"); n && n->isNumber() && n->number > 0) {
            lastN = static_cast<std::size_t>(n->number);
        }
        const obs::Tracer& tracer = obs::Tracer::global();
        out << "{\"op\": \"trace\", \"status\": \"ok\", \"events_retained\": "
            << tracer.eventCount() << ", \"events_dropped\": " << tracer.droppedCount()
            << ", \"trace\": ";
        tracer.writeChromeTrace(out, lastN);
        out << "}";
    } else if (op == "health") {
        const obs::Watchdog& wd = obs::Watchdog::global();
        obs::Registry& reg = obs::Registry::process();
        out << "{\"op\": \"health\", \"status\": \"ok\""
            << ", \"draining\": " << (draining() ? "true" : "false")
            << ", \"drain_seconds\": " << json::number(lastDrainSeconds())
            << ", \"connections\": " << activeConnections()
            << ", \"queue_depth\": " << session_->queueDepth()
            << ", \"jobs_received\": " << jobsReceived_->value()
            << ", \"jobs_streamed\": " << jobsStreamed_->value()
            << ", \"rejected_draining\": " << rejectedDraining_->value()
            << ", \"bad_lines\": " << badLines_->value()
            << ", \"accept_errors\": " << acceptErrors_->value()
            << ", \"accept_errors_by_class\": {\"retry\": " << acceptErrorsRetry_->value()
            << ", \"backoff\": " << acceptErrorsBackoff_->value()
            << ", \"fatal\": " << acceptErrorsFatal_->value() << "}"
            << ", \"uptime_seconds\": "
            << json::number(static_cast<double>(obs::nowNanos() - startNanos_) * 1e-9);
        // Cache occupancy and lifetime hit/miss counts: the fleet router's
        // cache-affinity claim is verified per shard from these.
        const auto cacheJson = [&out](const char* key, std::size_t size,
                                      std::size_t capacity, std::uint64_t hits,
                                      std::uint64_t misses) {
            const std::uint64_t total = hits + misses;
            out << ", \"" << key << "\": {\"size\": " << size
                << ", \"capacity\": " << capacity << ", \"hits\": " << hits
                << ", \"misses\": " << misses << ", \"hit_ratio\": "
                << json::number(total == 0 ? 0.0
                                           : static_cast<double>(hits) /
                                                 static_cast<double>(total))
                << "}";
        };
        cacheJson("warm_cache", warmCache_.size(), warmCache_.capacity(),
                  warmCache_.hits(), warmCache_.misses());
        cacheJson("result_cache", resultCache_.size(), resultCache_.capacity(),
                  resultCache_.hits(), resultCache_.misses());
        out << ", \"deadline_misses\": " << obs::Monitor::global().misses();
        // Per-signal miss counters live in the process registry as
        // rt.deadline_miss.<signal>; surface them as a nested map.
        out << ", \"deadline_miss_by_signal\": {";
        constexpr std::string_view kMissPrefix = "rt.deadline_miss.";
        bool first = true;
        for (const obs::CounterSample& c : reg.snapshot().counters) {
            if (c.name.compare(0, kMissPrefix.size(), kMissPrefix) != 0) continue;
            if (!first) out << ", ";
            first = false;
            out << "\"" << json::escape(c.name.substr(kMissPrefix.size())) << "\": " << c.value;
        }
        out << "}"
            << ", \"watchdog\": {\"running\": " << (wd.running() ? "true" : "false")
            << ", \"budget_seconds\": " << json::number(wd.budget())
            << ", \"stalls\": " << wd.stalls() << "}"
            << ", \"sampling\": {\"rate\": " << json::number(reg.spanSamplingRate())
            << ", \"period\": " << reg.spanSamplingPeriod() << "}"
            << ", \"tracer\": {\"enabled\": "
            << (obs::Tracer::global().enabled() ? "true" : "false")
            << ", \"events\": " << obs::Tracer::global().eventCount()
            << ", \"dropped\": " << obs::Tracer::global().droppedCount() << "}}";
    } else if (op == "set_sampling") {
        const json::Value* rate = doc.find("rate");
        if (!rate || !rate->isNumber()) {
            writeControlResp(conn,
                             errorRecord(ErrorInfo("verb.bad-argument",
                                                   "set_sampling requires a numeric 'rate'")));
            badLines_->inc();
            return;
        }
        obs::Registry& reg = obs::Registry::process();
        reg.setSpanSamplingRate(rate->number);
        // Echo the *applied* rate: the compile-time floor and the integer
        // period rounding may both have adjusted the request.
        out << "{\"op\": \"set_sampling\", \"status\": \"ok\", \"rate\": "
            << json::number(reg.spanSamplingRate())
            << ", \"period\": " << reg.spanSamplingPeriod() << "}";
    } else if (op == "define_scenario") {
        const model::DefineOutcome res = model::defineScenario(lib_, doc);
        if (!res.ok) badLines_->inc();
        writeControlResp(conn, res.response);
        return;
    } else if (op == "list_scenarios") {
        writeControlResp(conn, model::listScenariosJson(lib_));
        return;
    } else {
        writeControlResp(conn, errorRecord(ErrorInfo("proto.unknown-op",
                                                     "unknown op '" + op + "'")));
        badLines_->inc();
        return;
    }
    writeControlResp(conn, out.str());
}

void ServeDaemon::dispatchSpec(const std::shared_ptr<Conn>& conn, ScenarioSpec spec,
                               std::uint64_t recvNanos, std::uint64_t decodedNanos) {
    jobsReceived_->inc();

    // Daemon-side stage seed: receive time is the table's origin; decode
    // and admission are stamped here, the engine's stamps merge in on the
    // completion path.
    obs::StageProfile seed;
    seed.enabled = spec.profile;
    seed.originNanos = recvNanos;
    seed.stampNanos[static_cast<std::size_t>(obs::Stage::Decode)] = decodedNanos;

    if (draining_.load(std::memory_order_acquire)) {
        rejectedDraining_->inc();
        writeResult(conn, rejectionRecord(spec, "draining", "job.rejected.draining",
                                    "daemon is draining"),
                    recvNanos);
        return;
    }

    // Bit-identical rerun: replay the stored record without touching the
    // engine. jobHash covers scenario + params + horizon + mode (profile is
    // deliberately excluded), so the replayed trace hash is the one a fresh
    // run would produce. The stored stage table is from the original run —
    // stale for this request — so a profiled hit gets a fresh daemon-side
    // table with no engine stages (nothing executed).
    if (cfg_.resultCacheCapacity > 0) {
        if (std::optional<ScenarioResult> hit = resultCache_.lookup(spec.jobHash())) {
            hit->name = spec.name;
            hit->cachedResult = true;
            hit->profile = obs::StageProfile{};
            if (spec.profile) {
                seed.stamp(obs::Stage::Admission);
                hit->profile = seed;
            }
            updateCacheGauges();
            writeResult(conn, *hit, recvNanos);
            return;
        }
        updateCacheGauges();
    }

    const std::uint64_t jobHash = spec.jobHash();
    const std::string scenario = spec.scenario;
    const std::string solver = spec.params.str("integrator", "default");
    conn->inFlight.fetch_add(1, std::memory_order_acq_rel);
    seed.stamp(obs::Stage::Admission);
    const bool submitted = session_->submit(
        spec, [this, conn, jobHash, seed, scenario, solver](ScenarioResult res) {
            // Solve time (build/acquire -> run returned) feeds the WCET
            // table for every executed job — the engine stamps
            // unconditionally, so unprofiled traffic contributes too.
            if (res.profile.stamped(obs::Stage::Solve)) {
                const std::uint64_t from =
                    res.profile.stamped(obs::Stage::WarmAcquire)
                        ? res.profile.stampOf(obs::Stage::WarmAcquire)
                        : res.profile.stampOf(obs::Stage::ColdBuild);
                const std::uint64_t solve = res.profile.stampOf(obs::Stage::Solve);
                if (from != 0 && solve >= from) {
                    wcet_.observe(scenario, solver,
                                  static_cast<double>(solve - from) * 1e-9);
                }
            }
            // Fold the daemon's receive/decode/admission stamps into the
            // engine's table; the seed's earlier origin wins in the merge.
            obs::StageProfile merged = seed;
            merged.merge(res.profile);
            res.profile = merged;
            if (cfg_.resultCacheCapacity > 0) resultCache_.store(jobHash, res);
            updateCacheGauges();
            queueDepthGauge_->set(static_cast<double>(session_->queueDepth()));
            if (!conn->dead.load(std::memory_order_acquire)) {
                writeResult(conn, res, seed.originNanos);
            }
            conn->inFlight.fetch_sub(1, std::memory_order_acq_rel);
            // Hand resume/flush/finish back to the reactor thread.
            poke(conn);
        });

    if (!submitted) {
        // Raced with beginDrain: report the same structured rejection the
        // fast path produces, and give the window slot back.
        conn->inFlight.fetch_sub(1, std::memory_order_acq_rel);
        rejectedDraining_->inc();
        writeResult(conn, rejectionRecord(spec, "draining", "job.rejected.draining",
                                    "daemon is draining"),
                    recvNanos);
        return;
    }
    queueDepthGauge_->set(static_cast<double>(session_->queueDepth()));
}

// ---------------------------------------------------------------------------
// Writers (any thread)
// ---------------------------------------------------------------------------

void ServeDaemon::writeResult(const std::shared_ptr<Conn>& conn,
                              const ScenarioResult& res, std::uint64_t recvNanos) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    ResultRecord rec = flattenResult(res, cfg_.includeMetrics);
    const auto render = [&] {
        std::string b;
        if (conn->mode == Conn::Mode::Binary) {
            wire::appendFrame(b, wire::FrameType::Result,
                              wire::resultToWire(rec).encode());
        } else {
            b = recordJson(rec);
            b.push_back('\n');
        }
        return b;
    };
    std::string bytes = render();
    if (res.profile.enabled && res.profile.originNanos != 0) {
        // The encode and reply stamps must land *inside* the bytes being
        // timed, so profiled records render twice: the first pass above
        // measures serialization, then the table gains encode/reply and the
        // record re-renders with the full eight stages. Reply marks the
        // hand-off decision, not the final memcpy — the second render sits
        // between the stamp and writeOut, a documented sub-stage skew.
        // Unprofiled records take the single-render path untouched.
        obs::StageProfile full = res.profile;
        full.stamp(obs::Stage::Encode);
        full.stamp(obs::Stage::Reply);
        rec.stages = full.toMap();
        bytes = render();
    }
    writeOut(conn, bytes);
    if (!conn->dead.load(std::memory_order_acquire)) jobsStreamed_->inc();
    if (recvNanos != 0) {
        requestLatency_->observe(static_cast<double>(obs::nowNanos() - recvNanos) *
                                 1e-9);
    }
}

void ServeDaemon::writeError(const std::shared_ptr<Conn>& conn, const ErrorInfo& err) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    const std::string record = errorRecord(err);
    std::string bytes;
    if (conn->mode == Conn::Mode::Binary) {
        wire::appendFrame(bytes, wire::FrameType::Error, record);
    } else {
        bytes = record;
        bytes.push_back('\n');
    }
    writeOut(conn, bytes);
    if (!conn->dead.load(std::memory_order_acquire)) jobsStreamed_->inc();
}

void ServeDaemon::writeControlResp(const std::shared_ptr<Conn>& conn,
                                   const std::string& payload) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    std::string bytes;
    if (conn->mode == Conn::Mode::Binary) {
        wire::appendFrame(bytes, wire::FrameType::ControlResponse, payload);
    } else {
        bytes = payload;
        bytes.push_back('\n');
    }
    writeOut(conn, bytes);
}

void ServeDaemon::writeOut(const std::shared_ptr<Conn>& conn, std::string_view bytes) {
    bool needPoke = false;
    {
        std::lock_guard<std::mutex> lk(conn->outMu);
        if (conn->fdClosed || conn->dead.load(std::memory_order_acquire)) return;
        if (conn->outBuf.empty()) {
            // Fast path: write straight to the socket; spill only what the
            // kernel buffer refuses.
            std::size_t off = 0;
            while (off < bytes.size()) {
                const ssize_t n = ::send(conn->fd, bytes.data() + off,
                                         bytes.size() - off, MSG_NOSIGNAL);
                if (n >= 0) {
                    off += static_cast<std::size_t>(n);
                    continue;
                }
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                // Client gone (EPIPE/ECONNRESET/...): poison the connection
                // so later records discard instead of writing into the void.
                conn->dead.store(true, std::memory_order_release);
                break;
            }
            if (!conn->dead.load(std::memory_order_acquire) && off < bytes.size()) {
                conn->outBuf.assign(bytes.substr(off));
            }
        } else {
            conn->outBuf.append(bytes);
        }
        needPoke = conn->dead.load(std::memory_order_acquire) || !conn->outBuf.empty();
        if (conn->dead.load(std::memory_order_acquire)) conn->outBuf.clear();
    }
    if (needPoke) poke(conn);
}

void ServeDaemon::poke(const std::shared_ptr<Conn>& conn) {
    if (conn->pokePending.exchange(true, std::memory_order_acq_rel)) return;
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        pokeQueue_.push_back(conn);
    }
    reactor_->wakeup();
}

void ServeDaemon::updateCacheGauges() {
    const auto ratio = [](std::uint64_t hits, std::uint64_t misses) {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    };
    resultCacheHitRatio_->set(ratio(resultCache_.hits(), resultCache_.misses()));
    warmCacheHitRatio_->set(ratio(warmCache_.hits(), warmCache_.misses()));
    warmCacheHits_->set(static_cast<double>(warmCache_.hits()));
    warmCacheMisses_->set(static_cast<double>(warmCache_.misses()));
    warmCacheSize_->set(static_cast<double>(warmCache_.size()));
    warmCacheCapacity_->set(static_cast<double>(warmCache_.capacity()));
    resultCacheHits_->set(static_cast<double>(resultCache_.hits()));
    resultCacheMisses_->set(static_cast<double>(resultCache_.misses()));
    resultCacheSize_->set(static_cast<double>(resultCache_.size()));
    resultCacheCapacity_->set(static_cast<double>(resultCache_.capacity()));
}

// ---------------------------------------------------------------------------
// Windowed stats
// ---------------------------------------------------------------------------

void ServeDaemon::refreshRuntimeGauges() {
    uptimeGauge_->set(static_cast<double>(obs::nowNanos() - startNanos_) * 1e-9);
    obs::Registry& reg = obs::Registry::process();
    samplingRateGauge_->set(reg.spanSamplingRate());
    tracerStripesGauge_->set(static_cast<double>(obs::Tracer::global().stripeCount()));
    updateCacheGauges();
}

void ServeDaemon::tickStats() {
    refreshRuntimeGauges();
    queueDepthGauge_->set(static_cast<double>(session_->queueDepth()));
    statsWindow_.tick();
}

std::string ServeDaemon::statsJson() {
    refreshRuntimeGauges();
    std::ostringstream out;
    out << "{\"op\": \"stats\", \"status\": \"ok\""
        << ", \"draining\": " << (draining() ? "true" : "false")
        << ", \"uptime_seconds\": "
        << json::number(static_cast<double>(obs::nowNanos() - startNanos_) * 1e-9)
        << ", \"ticker\": {\"period_seconds\": " << json::number(cfg_.statsTickSeconds)
        << ", \"ticks\": " << statsWindow_.ticks()
        << ", \"coverage_seconds\": " << json::number(statsWindow_.coverageSeconds())
        << "}";

    // Rolling rates from snapshot deltas. Errors = malformed requests plus
    // engine-side job failures; both are "the client saw something bad".
    struct Win {
        const char* key;
        double seconds;
    };
    constexpr Win kWindows[] = {{"1s", 1.0}, {"10s", 10.0}, {"60s", 60.0}};
    out << ", \"rates\": {";
    bool first = true;
    for (const Win& w : kWindows) {
        const double req = statsWindow_.rate("srvd.jobs_received", w.seconds);
        const double err = statsWindow_.rate("srvd.bad_lines", w.seconds) +
                           statsWindow_.rate("srv.jobs_failed", w.seconds);
        if (!first) out << ", ";
        first = false;
        out << "\"" << w.key << "\": {\"req_per_s\": " << json::number(req)
            << ", \"err_per_s\": " << json::number(err) << "}";
    }
    out << "}";

    // Windowed latency quantiles over the longest window (cumulative-bucket
    // interpolation over snapshot deltas — see obs::StatsWindow).
    const obs::StatsWindow::WindowedQuantiles q =
        statsWindow_.quantiles("srvd.request_latency_seconds", 60.0);
    out << ", \"latency_seconds\": {\"family\": \"srvd.request_latency_seconds\""
        << ", \"window_seconds\": " << json::number(q.windowSeconds)
        << ", \"count\": " << q.count << ", \"p50\": " << json::number(q.p50)
        << ", \"p90\": " << json::number(q.p90) << ", \"p99\": " << json::number(q.p99)
        << "}";

    out << ", \"wcet\": [";
    first = true;
    for (const obs::WcetTracker::Entry& e : wcet_.table()) {
        if (!first) out << ", ";
        first = false;
        out << "{\"scenario\": \"" << json::escape(e.scenario) << "\", \"solver\": \""
            << json::escape(e.solver) << "\", \"count\": " << e.count
            << ", \"last_seconds\": " << json::number(e.last)
            << ", \"worst_seconds\": " << json::number(e.worst)
            << ", \"rolling_max_seconds\": " << json::number(e.rollingMax)
            << ", \"p99_seconds\": " << json::number(e.p99) << "}";
    }
    out << "]}";
    return out.str();
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void ServeDaemon::beginDrain() {
    draining_.store(true, std::memory_order_release);
    session_->beginDrain();
}

void ServeDaemon::stop() {
    std::lock_guard<std::mutex> stopLk(stopMu_);
    if (stopped_) return;
    const auto drainStart = std::chrono::steady_clock::now();
    beginDrain();
    stopping_.store(true, std::memory_order_release);

    // Close listeners first: no new connections while draining. The
    // reactor owns the fds, so it does the closing.
    if (reactorRunning_.load(std::memory_order_acquire)) {
        closeListenersReq_.store(true, std::memory_order_release);
        reactor_->wakeup();
        while (!listenersClosed_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    } else {
        std::lock_guard<std::mutex> lk(opsMu_);
        for (int fd : pendingListenFds_) ::close(fd);
        pendingListenFds_.clear();
        listenersClosed_.store(true, std::memory_order_release);
    }

    // Every admitted job runs to completion and its record is handed to the
    // connection by the completion callback before drainWait returns.
    session_->drainWait();

    // Let the reactor finish the tail: resume paused connections (their
    // buffered requests become drain rejections), and flush every buffered
    // record to clients that are still reading.
    for (;;) {
        bool pending = false;
        {
            std::lock_guard<std::mutex> lk(connsMu_);
            for (const auto& [fd, c] : conns_) {
                if (c->dead.load(std::memory_order_acquire)) continue;
                if (c->inFlight.load(std::memory_order_acquire) != 0 ||
                    c->readPaused.load(std::memory_order_acquire)) {
                    pending = true;
                    break;
                }
                std::lock_guard<std::mutex> olk(c->outMu);
                if (!c->fdClosed && !c->outBuf.empty()) {
                    pending = true;
                    break;
                }
            }
        }
        if (!pending) break;
        reactor_->wakeup();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    lastDrainSeconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - drainStart)
            .count();
    drainSeconds_->set(lastDrainSeconds_);
    session_->stop();

    // Tear down the reactor; its exit path closes all remaining fds.
    if (reactorRunning_.load(std::memory_order_acquire)) {
        reactorStop_.store(true, std::memory_order_release);
        reactor_->wakeup();
        if (reactorThread_.joinable()) reactorThread_.join();
        reactorRunning_.store(false, std::memory_order_release);
    }
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        for (const auto& c : adoptQueue_) {
            std::lock_guard<std::mutex> olk(c->outMu);
            if (!c->fdClosed) {
                c->fdClosed = true;
                ::close(c->fd);
            }
        }
        adoptQueue_.clear();
        pokeQueue_.clear();
    }

    if (!cfg_.socketPath.empty()) ::unlink(cfg_.socketPath.c_str());
    connectionsGauge_->set(0.0);
    stopped_ = true;
}

} // namespace urtx::srv
