#include "srv/daemon/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/tracer.hpp"
#include "srv/batch_io.hpp"
#include "srv/json.hpp"

namespace urtx::srv {

/// One client connection. Lifetime is shared between the reader thread,
/// the accept/sweep bookkeeping and every in-flight job callback — the fd
/// closes only in the destructor, after the last of them lets go, so a
/// completion callback can never race a close/reuse of the descriptor.
struct ServeDaemon::Conn {
    explicit Conn(int f) : fd(f) {}
    ~Conn() {
        if (fd >= 0) ::close(fd);
    }

    int fd;
    std::mutex writeMu;              ///< serializes whole-record writes
    std::mutex mu;                   ///< guards inFlight with cv
    std::condition_variable cv;      ///< backpressure + drain wakeups
    std::size_t inFlight = 0;        ///< submitted but not yet streamed
    std::atomic<bool> dead{false};   ///< write failed / client gone
    std::atomic<bool> finished{false}; ///< reader exited and in-flight drained
    std::atomic<std::uint64_t> seq{0}; ///< default job names per connection
    std::thread reader;
};

namespace {

ScenarioResult rejectionRecord(const ScenarioSpec& spec, std::string verdict,
                               std::string error) {
    ScenarioResult r;
    r.name = spec.name;
    r.scenario = spec.scenario;
    r.status = ScenarioStatus::Rejected;
    r.passed = false;
    r.verdictDetail = std::move(verdict);
    r.error = std::move(error);
    return r;
}

std::string errorRecord(const std::string& message) {
    return "{\"status\": \"error\", \"error\": \"" + json::escape(message) + "\"}";
}

} // namespace

ServeDaemon::ServeDaemon(DaemonConfig cfg, const ScenarioLibrary& lib)
    : cfg_(std::move(cfg)),
      lib_(lib),
      warmCache_(cfg_.warmCacheCapacity),
      resultCache_(cfg_.resultCacheCapacity),
      engine_(cfg_.engine) {
    obs::Registry& r = obs::Registry::process();
    connectionsGauge_ = &r.gauge("srvd.connections");
    connectionsTotal_ = &r.counter("srvd.connections_total");
    jobsReceived_ = &r.counter("srvd.jobs_received");
    jobsStreamed_ = &r.counter("srvd.jobs_streamed");
    rejectedDraining_ = &r.counter("srvd.rejected_draining");
    badLines_ = &r.counter("srvd.bad_lines");
    queueDepthGauge_ = &r.gauge("srvd.queue_depth");
    resultCacheHitRatio_ = &r.gauge("srvd.result_cache_hit_ratio");
    warmCacheHitRatio_ = &r.gauge("srvd.warm_cache_hit_ratio");
    drainSeconds_ = &r.gauge("srvd.drain_seconds");

    if (cfg_.warmCacheCapacity > 0) engine_.setWarmCache(&warmCache_);
    session_ = engine_.startSession(lib_);
}

ServeDaemon::~ServeDaemon() { stop(); }

bool ServeDaemon::start(std::string* err) {
    const auto fail = [&](const std::string& what) {
        if (err) *err = what + ": " + std::strerror(errno);
        for (int fd : listenFds_) ::close(fd);
        listenFds_.clear();
        return false;
    };

    if (!cfg_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err) *err = "socket path too long: " + cfg_.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, cfg_.socketPath.c_str(), sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_UNIX)");
        ::unlink(cfg_.socketPath.c_str()); // stale socket from a prior run
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(" + cfg_.socketPath + ")");
        }
        if (::listen(fd, 64) != 0) {
            ::close(fd);
            return fail("listen(" + cfg_.socketPath + ")");
        }
        listenFds_.push_back(fd);
    }

    // TCP is opt-in via a nonzero port. No listeners configured at all is
    // legal too — tests drive adoptConnection() directly.
    if (cfg_.tcpPort != 0) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.tcpPort);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // loopback only
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(127.0.0.1:" + std::to_string(cfg_.tcpPort) + ")");
        }
        if (::listen(fd, 64) != 0) {
            ::close(fd);
            return fail("listen(tcp)");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
            boundTcpPort_ = ntohs(bound.sin_port);
        }
        listenFds_.push_back(fd);
    }

    for (int fd : listenFds_) {
        acceptThreads_.emplace_back([this, fd] { acceptLoop(fd); });
    }
    return true;
}

void ServeDaemon::acceptLoop(int listenFd) {
    while (!stopping_.load(std::memory_order_acquire)) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return; // listener closed (stop) or fatal — accept loop ends
        }
        adoptConnection(fd);
    }
}

void ServeDaemon::adoptConnection(int fd) {
    if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
    }
    auto conn = std::make_shared<Conn>(fd);
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        sweepFinishedConnections();
        conns_.push_back(conn);
    }
    connectionsTotal_->inc();
    connectionsServed_.fetch_add(1, std::memory_order_relaxed);
    connectionsGauge_->set(static_cast<double>(activeConnections()));
    conn->reader = std::thread([this, conn] { readerLoop(conn); });
}

void ServeDaemon::sweepFinishedConnections() {
    // Caller holds connsMu_. Reap connections whose reader has exited and
    // whose in-flight work is fully streamed.
    for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire) && (*it)->reader.joinable()) {
            (*it)->reader.join();
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

std::size_t ServeDaemon::activeConnections() const {
    std::lock_guard<std::mutex> lk(connsMu_);
    std::size_t n = 0;
    for (const auto& c : conns_) {
        if (!c->finished.load(std::memory_order_acquire)) ++n;
    }
    return n;
}

void ServeDaemon::readerLoop(std::shared_ptr<Conn> conn) {
    std::string buf;
    char chunk[4096];
    while (!conn->dead.load(std::memory_order_acquire) &&
           !stopping_.load(std::memory_order_acquire)) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break; // EOF or error: client stopped sending
        }
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
             nl = buf.find('\n', start)) {
            std::string line = buf.substr(start, nl - start);
            start = nl + 1;
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (!line.empty()) handleLine(conn, line);
        }
        buf.erase(0, start);
        if (buf.size() > cfg_.maxLineBytes) {
            writeRecord(conn, errorRecord("request line exceeds " +
                                          std::to_string(cfg_.maxLineBytes) + " bytes"));
            badLines_->inc();
            break;
        }
    }
    // The client may half-close and keep reading: stream every in-flight
    // record before declaring the connection finished.
    {
        std::unique_lock<std::mutex> lk(conn->mu);
        conn->cv.wait(lk, [&] { return conn->inFlight == 0; });
    }
    // Signal EOF to a half-closed client that is still tailing results; the
    // fd itself stays open until the Conn is reaped (callbacks may hold it).
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->finished.store(true, std::memory_order_release);
    conn->cv.notify_all();
    connectionsGauge_->set(static_cast<double>(activeConnections()));
}

void ServeDaemon::handleLine(const std::shared_ptr<Conn>& conn, const std::string& line) {
    std::string err;
    const std::optional<json::Value> doc = json::parse(line, &err);
    if (!doc || !doc->isObject()) {
        writeRecord(conn, errorRecord(doc ? "request must be a JSON object" : err));
        badLines_->inc();
        return;
    }
    // Control verbs ride the same line protocol as jobs, discriminated by a
    // string "op" member (job objects never carry one).
    if (const json::Value* op = doc->find("op"); op && op->isString()) {
        handleControl(conn, op->string, *doc);
        return;
    }
    std::vector<ScenarioSpec> specs;
    try {
        specs = parseJobObject(*doc);
    } catch (const std::exception& ex) {
        writeRecord(conn, errorRecord(ex.what()));
        badLines_->inc();
        return;
    }
    for (ScenarioSpec& spec : specs) {
        if (spec.name.empty()) {
            spec.name = spec.scenario + "#" +
                        std::to_string(conn->seq.fetch_add(1, std::memory_order_relaxed));
        }
        dispatchSpec(conn, std::move(spec));
    }
}

void ServeDaemon::handleControl(const std::shared_ptr<Conn>& conn, const std::string& op,
                                const json::Value& doc) {
    // Observability must stay reachable while draining: verbs are answered
    // unconditionally and never enter the job pipeline (no in-flight slot,
    // no srvd.jobs_* accounting).
    std::ostringstream out;
    if (op == "metrics") {
        const obs::Snapshot snap = obs::Registry::process().snapshot();
        out << "{\"op\": \"metrics\", \"status\": \"ok\", \"prometheus\": \""
            << json::escape(snap.toPrometheus()) << "\", \"snapshot\": " << snap.toJson()
            << "}";
    } else if (op == "trace") {
        std::size_t lastN = 0;
        if (const json::Value* n = doc.find("last_n"); n && n->isNumber() && n->number > 0) {
            lastN = static_cast<std::size_t>(n->number);
        }
        const obs::Tracer& tracer = obs::Tracer::global();
        out << "{\"op\": \"trace\", \"status\": \"ok\", \"events_retained\": "
            << tracer.eventCount() << ", \"events_dropped\": " << tracer.droppedCount()
            << ", \"trace\": ";
        tracer.writeChromeTrace(out, lastN);
        out << "}";
    } else if (op == "health") {
        const obs::Watchdog& wd = obs::Watchdog::global();
        obs::Registry& reg = obs::Registry::process();
        out << "{\"op\": \"health\", \"status\": \"ok\""
            << ", \"draining\": " << (draining() ? "true" : "false")
            << ", \"drain_seconds\": " << json::number(lastDrainSeconds())
            << ", \"connections\": " << activeConnections()
            << ", \"queue_depth\": " << session_->queueDepth()
            << ", \"jobs_received\": " << jobsReceived_->value()
            << ", \"jobs_streamed\": " << jobsStreamed_->value()
            << ", \"rejected_draining\": " << rejectedDraining_->value()
            << ", \"bad_lines\": " << badLines_->value()
            << ", \"deadline_misses\": " << obs::Monitor::global().misses();
        // Per-signal miss counters live in the process registry as
        // rt.deadline_miss.<signal>; surface them as a nested map.
        out << ", \"deadline_miss_by_signal\": {";
        constexpr std::string_view kMissPrefix = "rt.deadline_miss.";
        bool first = true;
        for (const obs::CounterSample& c : reg.snapshot().counters) {
            if (c.name.compare(0, kMissPrefix.size(), kMissPrefix) != 0) continue;
            if (!first) out << ", ";
            first = false;
            out << "\"" << json::escape(c.name.substr(kMissPrefix.size())) << "\": " << c.value;
        }
        out << "}"
            << ", \"watchdog\": {\"running\": " << (wd.running() ? "true" : "false")
            << ", \"budget_seconds\": " << json::number(wd.budget())
            << ", \"stalls\": " << wd.stalls() << "}"
            << ", \"sampling\": {\"rate\": " << json::number(reg.spanSamplingRate())
            << ", \"period\": " << reg.spanSamplingPeriod() << "}"
            << ", \"tracer\": {\"enabled\": "
            << (obs::Tracer::global().enabled() ? "true" : "false")
            << ", \"events\": " << obs::Tracer::global().eventCount()
            << ", \"dropped\": " << obs::Tracer::global().droppedCount() << "}}";
    } else if (op == "set_sampling") {
        const json::Value* rate = doc.find("rate");
        if (!rate || !rate->isNumber()) {
            writeLine(conn, errorRecord("set_sampling requires a numeric 'rate'"));
            badLines_->inc();
            return;
        }
        obs::Registry& reg = obs::Registry::process();
        reg.setSpanSamplingRate(rate->number);
        // Echo the *applied* rate: the compile-time floor and the integer
        // period rounding may both have adjusted the request.
        out << "{\"op\": \"set_sampling\", \"status\": \"ok\", \"rate\": "
            << json::number(reg.spanSamplingRate())
            << ", \"period\": " << reg.spanSamplingPeriod() << "}";
    } else {
        writeLine(conn, errorRecord("unknown op '" + op + "'"));
        badLines_->inc();
        return;
    }
    writeLine(conn, out.str());
}

void ServeDaemon::dispatchSpec(const std::shared_ptr<Conn>& conn, ScenarioSpec spec) {
    jobsReceived_->inc();

    if (draining_.load(std::memory_order_acquire)) {
        rejectedDraining_->inc();
        writeRecord(conn, resultJson(rejectionRecord(spec, "draining",
                                                     "daemon is draining"),
                                     cfg_.includeMetrics));
        return;
    }

    // Bit-identical rerun: replay the stored record without touching the
    // engine. jobHash covers scenario + params + horizon + mode, so the
    // replayed trace hash is the one a fresh run would produce.
    if (cfg_.resultCacheCapacity > 0) {
        if (std::optional<ScenarioResult> hit = resultCache_.lookup(spec.jobHash())) {
            hit->name = spec.name;
            hit->cachedResult = true;
            updateCacheGauges();
            writeRecord(conn, resultJson(*hit, cfg_.includeMetrics));
            return;
        }
        updateCacheGauges();
    }

    // Backpressure: stall the reader at the in-flight window; the kernel
    // socket buffer then pushes back on the client.
    {
        std::unique_lock<std::mutex> lk(conn->mu);
        conn->cv.wait(lk, [&] {
            return conn->inFlight < cfg_.maxInFlightPerConnection ||
                   conn->dead.load(std::memory_order_acquire) ||
                   stopping_.load(std::memory_order_acquire);
        });
        if (conn->dead.load(std::memory_order_acquire)) return;
        ++conn->inFlight;
    }

    const std::uint64_t jobHash = spec.jobHash();
    const bool submitted = session_->submit(
        spec, [this, conn, jobHash](ScenarioResult res) {
            if (cfg_.resultCacheCapacity > 0) resultCache_.store(jobHash, res);
            updateCacheGauges();
            queueDepthGauge_->set(static_cast<double>(session_->queueDepth()));
            if (!conn->dead.load(std::memory_order_acquire)) {
                writeRecord(conn, resultJson(res, cfg_.includeMetrics));
            }
            {
                std::lock_guard<std::mutex> lk(conn->mu);
                --conn->inFlight;
            }
            conn->cv.notify_all();
        });

    if (!submitted) {
        // Raced with beginDrain: report the same structured rejection the
        // fast path produces, and give the window slot back.
        {
            std::lock_guard<std::mutex> lk(conn->mu);
            --conn->inFlight;
        }
        conn->cv.notify_all();
        rejectedDraining_->inc();
        writeRecord(conn, resultJson(rejectionRecord(spec, "draining",
                                                     "daemon is draining"),
                                     cfg_.includeMetrics));
        return;
    }
    queueDepthGauge_->set(static_cast<double>(session_->queueDepth()));
}

void ServeDaemon::writeLine(const std::shared_ptr<Conn>& conn,
                            const std::string& payload) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lk(conn->writeMu);
    std::string line = payload;
    line.push_back('\n');
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::send(conn->fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            // Client gone (EPIPE/ECONNRESET/...): poison the connection so
            // later callbacks discard instead of writing into the void.
            conn->dead.store(true, std::memory_order_release);
            conn->cv.notify_all();
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

void ServeDaemon::writeRecord(const std::shared_ptr<Conn>& conn,
                              const std::string& record) {
    if (conn->dead.load(std::memory_order_acquire)) return;
    writeLine(conn, record);
    if (!conn->dead.load(std::memory_order_acquire)) jobsStreamed_->inc();
}

void ServeDaemon::updateCacheGauges() {
    const auto ratio = [](std::uint64_t hits, std::uint64_t misses) {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    };
    resultCacheHitRatio_->set(ratio(resultCache_.hits(), resultCache_.misses()));
    warmCacheHitRatio_->set(ratio(warmCache_.hits(), warmCache_.misses()));
}

void ServeDaemon::beginDrain() {
    draining_.store(true, std::memory_order_release);
    session_->beginDrain();
}

void ServeDaemon::stop() {
    std::lock_guard<std::mutex> stopLk(stopMu_);
    if (stopped_) return;
    const auto drainStart = std::chrono::steady_clock::now();
    beginDrain();

    // Close listeners first: no new connections while draining.
    stopping_.store(true, std::memory_order_release);
    for (int fd : listenFds_) ::shutdown(fd, SHUT_RDWR);
    for (std::thread& t : acceptThreads_) {
        if (t.joinable()) t.join();
    }
    for (int fd : listenFds_) ::close(fd);
    listenFds_.clear();
    acceptThreads_.clear();

    // Every admitted job runs to completion and its record is written by
    // the completion callback before drainWait returns.
    session_->drainWait();
    lastDrainSeconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - drainStart)
            .count();
    drainSeconds_->set(lastDrainSeconds_);
    session_->stop();

    // Unblock readers (recv / backpressure waits) and join them.
    std::list<std::shared_ptr<Conn>> conns;
    {
        std::lock_guard<std::mutex> lk(connsMu_);
        conns.swap(conns_);
    }
    for (auto& c : conns) {
        ::shutdown(c->fd, SHUT_RDWR);
        c->cv.notify_all();
    }
    for (auto& c : conns) {
        if (c->reader.joinable()) c->reader.join();
    }
    conns.clear();

    if (!cfg_.socketPath.empty()) ::unlink(cfg_.socketPath.c_str());
    connectionsGauge_->set(0.0);
    stopped_ = true;
}

} // namespace urtx::srv
