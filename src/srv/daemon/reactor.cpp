#include "srv/daemon/reactor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>

#if defined(__linux__)
#include <sys/epoll.h>
#define URTX_HAVE_EPOLL 1
#else
#define URTX_HAVE_EPOLL 0
#endif

namespace urtx::srv {

namespace {

void setNonBlockingCloexec(int fd) {
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    const int fdfl = ::fcntl(fd, F_GETFD, 0);
    if (fdfl >= 0) ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC);
}

} // namespace

Reactor::Reactor(Backend backend) : backend_(backend) {
    if (backend_ == Backend::Auto) {
        backend_ = URTX_HAVE_EPOLL ? Backend::Epoll : Backend::Poll;
    }
#if !URTX_HAVE_EPOLL
    backend_ = Backend::Poll;
#endif
    if (::pipe(wakePipe_) != 0) {
        wakePipe_[0] = wakePipe_[1] = -1;
    } else {
        setNonBlockingCloexec(wakePipe_[0]);
        setNonBlockingCloexec(wakePipe_[1]);
    }
#if URTX_HAVE_EPOLL
    if (backend_ == Backend::Epoll) {
        epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
        if (epollFd_ < 0) {
            backend_ = Backend::Poll; // degraded but functional
        } else if (wakePipe_[0] >= 0) {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = wakePipe_[0];
            ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakePipe_[0], &ev);
        }
    }
#endif
}

Reactor::~Reactor() {
    if (epollFd_ >= 0) ::close(epollFd_);
    if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
    if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
}

bool Reactor::add(int fd, bool read, bool write) {
    interest_[fd] = Interest{read, write};
#if URTX_HAVE_EPOLL
    if (backend_ == Backend::Epoll) {
        epoll_event ev{};
        ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            interest_.erase(fd);
            return false;
        }
    }
#endif
    return true;
}

bool Reactor::modify(int fd, bool read, bool write) {
    auto it = interest_.find(fd);
    if (it == interest_.end()) return false;
    if (it->second.read == read && it->second.write == write) return true;
    it->second = Interest{read, write};
#if URTX_HAVE_EPOLL
    if (backend_ == Backend::Epoll) {
        epoll_event ev{};
        ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        return ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) == 0;
    }
#endif
    return true;
}

void Reactor::remove(int fd) {
    if (interest_.erase(fd) == 0) return;
#if URTX_HAVE_EPOLL
    if (backend_ == Backend::Epoll) {
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
}

std::vector<Reactor::Event> Reactor::poll(int timeoutMs) {
    scratch_.clear();
#if URTX_HAVE_EPOLL
    if (backend_ == Backend::Epoll) {
        epoll_event evs[64];
        const int n = ::epoll_wait(epollFd_, evs, 64, timeoutMs);
        if (n < 0) return scratch_; // EINTR: caller just polls again
        for (int i = 0; i < n; ++i) {
            const int fd = evs[i].data.fd;
            if (fd == wakePipe_[0]) {
                char buf[256];
                while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
                }
                continue;
            }
            Event e;
            e.fd = fd;
            e.readable = (evs[i].events & EPOLLIN) != 0;
            e.writable = (evs[i].events & EPOLLOUT) != 0;
            e.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
            scratch_.push_back(e);
        }
        return scratch_;
    }
#endif
    std::vector<pollfd> pfds;
    pfds.reserve(interest_.size() + 1);
    if (wakePipe_[0] >= 0) pfds.push_back(pollfd{wakePipe_[0], POLLIN, 0});
    for (const auto& [fd, in] : interest_) {
        short ev = 0;
        if (in.read) ev |= POLLIN;
        if (in.write) ev |= POLLOUT;
        pfds.push_back(pollfd{fd, ev, 0});
    }
    const int n = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (n <= 0) return scratch_;
    for (const pollfd& p : pfds) {
        if (p.revents == 0) continue;
        if (p.fd == wakePipe_[0]) {
            char buf[256];
            while (::read(wakePipe_[0], buf, sizeof(buf)) > 0) {
            }
            continue;
        }
        Event e;
        e.fd = p.fd;
        e.readable = (p.revents & POLLIN) != 0;
        e.writable = (p.revents & POLLOUT) != 0;
        e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
        scratch_.push_back(e);
    }
    return scratch_;
}

void Reactor::wakeup() {
    if (wakePipe_[1] < 0) return;
    const char b = 1;
    [[maybe_unused]] const ssize_t n = ::write(wakePipe_[1], &b, 1);
}

} // namespace urtx::srv
