#pragma once
/// \file framing.hpp
/// Runtime face of the generated binary wire protocol: preamble
/// negotiation, length-prefixed frame assembly/parsing, and the
/// conversions between serving types (ScenarioSpec, ResultRecord) and the
/// generated messages (WireJob, WireResult) in urtx_wire_format.hpp.
///
/// Negotiation: a connection's first byte decides its framing. '{' (or
/// anything that is not the magic's first byte) keeps the newline-JSON
/// protocol unchanged; the 8-byte preamble "URTX" + version + flags +
/// reserved switches to binary frames, and the daemon echoes the preamble
/// back as the accept. Framing is per connection and fixed once decided.
///
/// Frame layout (all little-endian):
///     u32 payload_length | u8 frame_type | payload bytes
/// Job/Result payloads are generated-message encodings; Error, Control
/// and ControlResponse payloads carry the corresponding JSON line of the
/// fallback protocol verbatim, so the observability surface is identical
/// across framings.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "srv/batch_io.hpp"
#include "srv/scenario.hpp"
#include "urtx_wire_format.hpp"

namespace urtx::srv::wire {

using wiregen::FrameType;

/// The 8-byte hello a binary client sends and the daemon echoes.
std::string preamble();

/// Validate an 8-byte preamble (magic + supported version).
bool checkPreamble(const void* data, std::string* err = nullptr);

/// Append one frame (header + payload) to \p out.
void appendFrame(std::string& out, FrameType type, std::string_view payload);

/// A parsed frame header.
struct FrameHeader {
    std::uint32_t length = 0;
    std::uint8_t type = 0;
};

/// Peek a frame header from \p buf (returns nullopt while fewer than
/// kFrameHeaderBytes are buffered). The caller enforces its own length
/// cap before waiting for the payload.
std::optional<FrameHeader> peekFrameHeader(std::string_view buf);

/// ScenarioSpec -> WireJob (exact mirror; repeat/sweep are client-side).
wiregen::WireJob jobToWire(const ScenarioSpec& spec);
/// WireJob -> ScenarioSpec.
ScenarioSpec jobFromWire(const wiregen::WireJob& w);

/// ResultRecord -> WireResult (exact mirror).
wiregen::WireResult resultToWire(const ResultRecord& r);
/// WireResult -> ResultRecord. Unknown status bytes clamp to Rejected.
ResultRecord resultFromWire(const wiregen::WireResult& w);

} // namespace urtx::srv::wire
