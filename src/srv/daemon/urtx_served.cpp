/// \file urtx_served.cpp
/// The serving daemon CLI: keep a ServeEngine session resident and serve
/// newline-delimited JSON jobs over a Unix-domain socket and/or loopback
/// TCP. SIGTERM/SIGINT drain gracefully: admitted jobs finish and stream
/// their records, new jobs are rejected with verdict "draining".
///
///   urtx_served --socket PATH [--tcp PORT | --port PORT] [--workers N]
///               [--warm-cache N] [--result-cache N] [--window N]
///               [--sampling RATE] [--stats-tick SECONDS]
///               [--reactor auto|epoll|poll] [--metrics] [--quiet]
///
/// --port is --tcp that also accepts 0: the daemon then binds an ephemeral
/// loopback port chosen by the kernel. Whenever a TCP listener is bound the
/// daemon prints one "PORT <n>" line on *stdout* (flushed before serving),
/// so a fleet harness can spawn N daemons with --port 0 and scrape their
/// real ports without port-collision races.
///
/// --reactor pins the event backend (default auto: epoll on Linux, poll
/// elsewhere) — mostly useful for exercising the poll fallback in CI.
///
/// --stats-tick sets the windowed-stats snapshot cadence (default 1 s; 0
/// disables the ticker, leaving the {"op": "stats"} verb with empty
/// windows).
///
/// --sampling sets the initial causal span sampling rate (process
/// registry; jobs inherit it). Clients adjust it later with the
/// {"op": "set_sampling"} wire verb and read metrics/trace/health with the
/// other control verbs (docs/SERVING.md).
///
/// Exit status: 0 after a clean drain, 2 on usage/bind errors.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "srv/daemon/daemon.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace srv = urtx::srv;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --socket PATH [--tcp PORT | --port PORT] [--workers N]\n"
                 "          [--warm-cache N] [--result-cache N] [--window N]\n"
                 "          [--sampling RATE] [--stats-tick SECONDS]\n"
                 "          [--reactor auto|epoll|poll] [--metrics] [--quiet]\n",
                 argv0);
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    srv::DaemonConfig cfg;
    bool quiet = false;
    double sampling = -1.0; // < 0: leave the registry default (1.0)

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--socket") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.socketPath = v;
        } else if (arg == "--tcp") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.tcpPort = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--port") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.tcpPort = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
            cfg.tcpEphemeral = cfg.tcpPort == 0;
        } else if (arg == "--workers") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.engine.workers = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--warm-cache") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.warmCacheCapacity = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--result-cache") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.resultCacheCapacity =
                static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--window") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.maxInFlightPerConnection =
                static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--sampling") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            sampling = std::strtod(v, nullptr);
        } else if (arg == "--stats-tick") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.statsTickSeconds = std::strtod(v, nullptr);
        } else if (arg == "--reactor") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            const std::string backend = v;
            if (backend == "auto") {
                cfg.reactorBackend = srv::Reactor::Backend::Auto;
            } else if (backend == "epoll") {
                cfg.reactorBackend = srv::Reactor::Backend::Epoll;
            } else if (backend == "poll") {
                cfg.reactorBackend = srv::Reactor::Backend::Poll;
            } else {
                std::fprintf(stderr, "%s: unknown reactor backend '%s'\n", argv[0], v);
                return usage(argv[0]);
            }
        } else if (arg == "--metrics") {
            cfg.includeMetrics = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (cfg.socketPath.empty() && cfg.tcpPort == 0 && !cfg.tcpEphemeral) {
        return usage(argv[0]);
    }

    // Route SIGTERM/SIGINT to an explicit sigwait below (inherited by every
    // daemon thread) so shutdown is a drain, not a kill.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    srv::scenarios::registerBuiltins();
    if (sampling >= 0.0) urtx::obs::Registry::process().setSpanSamplingRate(sampling);
    // Size the tracer stripe pool to the recording threads (workers + the
    // daemon's own reader/accept threads) so concurrent jobs never share a
    // tracing ring while the trace/health verbs collect.
    {
        std::size_t workers = cfg.engine.workers;
        if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
        urtx::obs::Tracer::global().setStripeCount(workers + 8);
    }
    srv::ServeDaemon daemon(std::move(cfg));
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    // The machine-scrapeable port announcement goes to stdout (and is
    // flushed before any serving happens) so `urtx_served --port 0 | head -1`
    // style harness plumbing never races the bind.
    if (daemon.boundTcpPort() != 0) {
        std::printf("PORT %u\n", daemon.boundTcpPort());
        std::fflush(stdout);
    }
    if (!quiet) {
        if (!daemon.config().socketPath.empty()) {
            std::fprintf(stderr, "urtx_served: listening on %s\n",
                         daemon.config().socketPath.c_str());
        }
        if (daemon.boundTcpPort() != 0) {
            std::fprintf(stderr, "urtx_served: listening on 127.0.0.1:%u\n",
                         daemon.boundTcpPort());
        }
    }

    int sig = 0;
    sigwait(&sigs, &sig);
    if (!quiet) {
        std::fprintf(stderr, "urtx_served: %s — draining\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
    }
    daemon.stop();
    if (!quiet) {
        std::fprintf(stderr,
                     "urtx_served: drained in %.3f s (%llu connections served)\n",
                     daemon.lastDrainSeconds(),
                     static_cast<unsigned long long>(daemon.connectionsServed()));
    }
    return 0;
}
