/// \file urtx_client.cpp
/// Submit jobs to a running urtx_served and tail the streamed result
/// records. Jobs come from a batch file (same schema as urtx_batch,
/// including repeat/sweep expansion) or single job lines on stdin ("-").
///
///   urtx_client --socket PATH jobs.json [--strict] [--quiet]
///   urtx_client --tcp PORT jobs.json
///   urtx_client --socket PATH --binary jobs.json   # length-prefixed frames
///   echo '{"scenario": "tank"}' | urtx_client --socket PATH -
///
/// --binary negotiates the generated length-prefixed wire protocol (the
/// "URTX" preamble; see docs/SERVING.md): jobs travel as encoded WireJob
/// frames and results come back as WireResult frames, which the client
/// re-renders to the exact JSON record lines the fallback protocol
/// streams — output is byte-identical across framings, trace hashes
/// included.
///
/// Observability verbs (usable with or without a jobs file; applied before
/// any jobs are submitted):
///
///   urtx_client --socket PATH --metrics          # Prometheus text to stdout
///   urtx_client --socket PATH --health           # health JSON line
///   urtx_client --socket PATH --stats            # windowed rates/quantiles/WCET
///   urtx_client --socket PATH --trace [--trace-last N]  # Chrome trace JSON
///   urtx_client --socket PATH --set-sampling 0.01 jobs.json
///   urtx_client --socket PATH --define-model tank.model.json jobs.json
///   urtx_client --socket PATH --list-scenarios
///
/// --define-model uploads a scenario model document (docs/MODEL_FORMAT.md)
/// via {"op": "define_scenario"} before any jobs are submitted, so the
/// same invocation can immediately run the model it defined; repeatable.
/// --list-scenarios prints the daemon's scenario catalogue (names,
/// descriptions, parameter schemas with defaults and bounds).
///
/// --metrics decodes the daemon's response and prints the embedded
/// Prometheus exposition text; the other verbs print the raw one-line JSON
/// response (pipe --trace through `jq .trace` for a chrome://tracing
/// file).
///
/// --profile sets "profile": true on every submitted job: each returned
/// record carries a "stages" table of per-stage offsets (seconds from
/// receive) without perturbing the result payload — trace hashes stay
/// identical to unprofiled runs.
///
/// Records stream to stdout as the daemon finishes them (out of
/// submission order). Exit status: 0 when every job succeeded with a
/// passing verdict under --strict (otherwise 0 once all records arrive);
/// 1 under --strict with any failure/rejection; 2 on usage/connect/parse
/// errors, or when the daemon closes early with records outstanding.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "srv/batch_io.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/json.hpp"

namespace srv = urtx::srv;
namespace json = urtx::srv::json;
namespace wire = urtx::srv::wire;
namespace wiregen = urtx::srv::wiregen;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s (--socket PATH | --tcp PORT) [<jobs.json|->] [--strict]\n"
                 "          [--quiet] [--binary] [--profile] [--metrics] [--health]\n"
                 "          [--stats] [--trace [--trace-last N]] [--set-sampling RATE]\n"
                 "          [--define-model FILE]... [--list-scenarios]\n",
                 argv0);
    return 2;
}

int connectUnix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int connectTcp(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool sendAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/// One queued request: either a job spec (framed or rendered per mode) or
/// a control-verb JSON text (sent verbatim in both framings).
struct Request {
    bool isControl = false;
    srv::ScenarioSpec spec;
    std::string control;
};

} // namespace

int main(int argc, char** argv) {
    std::string socketPath;
    std::uint16_t tcpPort = 0;
    std::string jobsPath;
    bool strict = false;
    bool quiet = false;
    bool binary = false;
    bool profile = false;
    bool wantMetrics = false;
    bool wantHealth = false;
    bool wantStats = false;
    bool wantTrace = false;
    bool wantListScenarios = false;
    std::vector<std::string> modelPaths;
    std::size_t traceLast = 0;
    double setSampling = -1.0; // < 0: don't send the verb

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            if (++i >= argc) return usage(argv[0]);
            socketPath = argv[i];
        } else if (arg == "--tcp") {
            if (++i >= argc) return usage(argv[0]);
            tcpPort = static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10));
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--binary") {
            binary = true;
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--metrics") {
            wantMetrics = true;
        } else if (arg == "--health") {
            wantHealth = true;
        } else if (arg == "--stats") {
            wantStats = true;
        } else if (arg == "--trace") {
            wantTrace = true;
        } else if (arg == "--trace-last") {
            if (++i >= argc) return usage(argv[0]);
            traceLast = static_cast<std::size_t>(std::strtoul(argv[i], nullptr, 10));
        } else if (arg == "--set-sampling") {
            if (++i >= argc) return usage(argv[0]);
            setSampling = std::strtod(argv[i], nullptr);
        } else if (arg == "--define-model") {
            if (++i >= argc) return usage(argv[0]);
            modelPaths.emplace_back(argv[i]);
        } else if (arg == "--list-scenarios") {
            wantListScenarios = true;
        } else if (arg == "-" || arg.empty() || arg[0] != '-') {
            if (!jobsPath.empty()) return usage(argv[0]);
            jobsPath = arg;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    const bool anyVerb = wantMetrics || wantHealth || wantStats || wantTrace ||
                         wantListScenarios || !modelPaths.empty() || setSampling >= 0.0;
    if ((jobsPath.empty() && !anyVerb) || (socketPath.empty() && tcpPort == 0)) {
        return usage(argv[0]);
    }

    // Assemble every request before connecting so a parse error never
    // half-submits a batch. set_sampling goes first — it must take effect
    // before any job samples against the process registry — and the
    // read-only verbs last, after the jobs are at least submitted.
    std::vector<Request> requests;
    const auto pushControl = [&](std::string text) {
        Request r;
        r.isControl = true;
        r.control = std::move(text);
        requests.push_back(std::move(r));
    };
    const auto pushJob = [&](srv::ScenarioSpec spec) {
        Request r;
        r.spec = std::move(spec);
        if (profile) r.spec.profile = true;
        requests.push_back(std::move(r));
    };
    if (setSampling >= 0.0) {
        pushControl("{\"op\": \"set_sampling\", \"rate\": " + json::number(setSampling) +
                    "}");
    }
    // Model uploads precede the jobs so a batch can run the scenarios it
    // just defined.
    for (const std::string& path : modelPaths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], path.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string err;
        const auto doc = json::parse(text.str(), &err);
        if (!doc || !doc->isObject()) {
            std::fprintf(stderr, "%s: %s: %s\n", argv[0], path.c_str(),
                         doc ? "model document must be a JSON object" : err.c_str());
            return 2;
        }
        pushControl("{\"op\": \"define_scenario\", \"model\": " + json::stringify(*doc) +
                    "}");
    }
    if (jobsPath.empty()) {
        // verbs only
    } else if (jobsPath == "-") {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.empty()) continue;
            std::string err;
            const auto doc = json::parse(line, &err);
            if (!doc) {
                std::fprintf(stderr, "%s: stdin: %s\n", argv[0], err.c_str());
                return 2;
            }
            std::vector<srv::ScenarioSpec> specs;
            try {
                specs = srv::parseJobObject(*doc);
            } catch (const std::exception& ex) {
                std::fprintf(stderr, "%s: stdin: %s\n", argv[0], ex.what());
                return 2;
            }
            for (srv::ScenarioSpec& s : specs) pushJob(std::move(s));
        }
    } else {
        std::ifstream in(jobsPath);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], jobsPath.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        srv::BatchFile batch;
        try {
            batch = srv::parseBatchFile(text.str());
        } catch (const std::exception& ex) {
            std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
            return 2;
        }
        for (srv::ScenarioSpec& s : batch.jobs) pushJob(std::move(s));
    }
    if (wantListScenarios) pushControl("{\"op\": \"list_scenarios\"}");
    if (wantMetrics) pushControl("{\"op\": \"metrics\"}");
    if (wantHealth) pushControl("{\"op\": \"health\"}");
    if (wantStats) pushControl("{\"op\": \"stats\"}");
    if (wantTrace) {
        std::string verb = "{\"op\": \"trace\"";
        if (traceLast > 0) verb += ", \"last_n\": " + std::to_string(traceLast);
        pushControl(verb + "}");
    }
    const std::size_t expected = requests.size();
    if (expected == 0) {
        if (!quiet) std::fprintf(stderr, "%s: no jobs to submit\n", argv[0]);
        return 0;
    }

    const int fd = socketPath.empty() ? connectTcp(tcpPort) : connectUnix(socketPath);
    if (fd < 0) {
        std::fprintf(stderr, "%s: cannot connect (%s)\n", argv[0], std::strerror(errno));
        return 2;
    }

    std::string outbound;
    if (binary) {
        outbound = wire::preamble();
        for (const Request& r : requests) {
            if (r.isControl) {
                wire::appendFrame(outbound, wire::FrameType::Control, r.control);
            } else {
                wire::appendFrame(outbound, wire::FrameType::Job,
                                  wire::jobToWire(r.spec).encode());
            }
        }
    } else {
        for (const Request& r : requests) {
            outbound += r.isControl ? r.control : srv::jobJson(r.spec);
            outbound.push_back('\n');
        }
    }
    if (!sendAll(fd, outbound)) {
        std::fprintf(stderr, "%s: send failed (%s)\n", argv[0], std::strerror(errno));
        ::close(fd);
        return 2;
    }
    ::shutdown(fd, SHUT_WR); // half-close: everything submitted, now tail

    std::size_t received = 0;
    bool anyBad = false;
    // One streamed record (or control response), already rendered as a JSON
    // line — identical handling for both framings.
    const auto handleRecordLine = [&](const std::string& line) {
        if (line.empty()) return;
        ++received;
        const auto rec = json::parse(line);
        // Control-verb responses are not job records: --metrics prints
        // the decoded Prometheus text, the rest print their raw JSON
        // line; none of them participate in --strict verdicts.
        if (rec && rec->find("op")) {
            const std::string op = rec->strOr("op", "");
            if (rec->strOr("status", "error") != "ok") {
                anyBad = true;
                std::printf("%s\n", line.c_str());
            } else if (op == "metrics") {
                const json::Value* prom = rec->find("prometheus");
                if (prom && prom->isString()) {
                    std::fputs(prom->string.c_str(), stdout);
                } else {
                    std::printf("%s\n", line.c_str());
                }
            } else {
                std::printf("%s\n", line.c_str());
            }
            return;
        }
        std::printf("%s\n", line.c_str());
        const std::string status = rec ? rec->strOr("status", "error") : "error";
        if (status != "succeeded" || !(rec && rec->boolOr("passed", false))) {
            anyBad = true;
        }
        if (!quiet && rec) {
            std::fprintf(stderr, "  %-24s %-9s%s%s\n",
                         rec->strOr("name", "?").c_str(), status.c_str(),
                         rec->boolOr("cached_result", false) ? " [cached]" : "",
                         rec->boolOr("warm_reuse", false) ? " [warm]" : "");
        }
    };

    std::string buf;
    char chunk[4096];
    bool handshook = !binary;
    bool wireError = false;
    while (received < expected && !wireError) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break; // daemon closed early
        buf.append(chunk, static_cast<std::size_t>(n));
        if (binary) {
            if (!handshook) {
                if (buf.size() < wiregen::kPreambleBytes) continue;
                std::string err;
                if (!wire::checkPreamble(buf.data(), &err)) {
                    std::fprintf(stderr, "%s: handshake rejected: %s\n", argv[0],
                                 err.c_str());
                    ::close(fd);
                    return 2;
                }
                buf.erase(0, wiregen::kPreambleBytes);
                handshook = true;
            }
            for (;;) {
                const auto h = wire::peekFrameHeader(buf);
                if (!h || buf.size() < wiregen::kFrameHeaderBytes + h->length) break;
                const char* payload = buf.data() + wiregen::kFrameHeaderBytes;
                const std::size_t len = h->length;
                switch (static_cast<wire::FrameType>(h->type)) {
                case wire::FrameType::Result: {
                    wiregen::WireResult w;
                    std::string err;
                    if (!wiregen::WireResult::decode(w, payload, len, &err)) {
                        std::fprintf(stderr, "%s: bad result frame: %s\n", argv[0],
                                     err.c_str());
                        wireError = true;
                        break;
                    }
                    handleRecordLine(srv::recordJson(wire::resultFromWire(w)));
                    break;
                }
                case wire::FrameType::Error:
                case wire::FrameType::ControlResponse:
                    // JSON text payloads, verbatim from the fallback protocol.
                    handleRecordLine(std::string(payload, len));
                    break;
                default:
                    std::fprintf(stderr, "%s: unexpected frame type %u\n", argv[0],
                                 static_cast<unsigned>(h->type));
                    wireError = true;
                    break;
                }
                if (wireError) break;
                buf.erase(0, wiregen::kFrameHeaderBytes + len);
            }
        } else {
            std::size_t start = 0;
            for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
                 nl = buf.find('\n', start)) {
                const std::string line = buf.substr(start, nl - start);
                start = nl + 1;
                handleRecordLine(line);
            }
            buf.erase(0, start);
        }
    }
    ::close(fd);

    if (received < expected) {
        std::fprintf(stderr, "%s: connection closed with %zu of %zu records received\n",
                     argv[0], received, expected);
        return 2;
    }
    return strict && anyBad ? 1 : 0;
}
