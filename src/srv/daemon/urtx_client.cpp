/// \file urtx_client.cpp
/// Submit jobs to a running urtx_served and tail the streamed result
/// records. Jobs come from a batch file (same schema as urtx_batch,
/// including repeat/sweep expansion) or single job lines on stdin ("-").
///
///   urtx_client --socket PATH jobs.json [--strict] [--quiet]
///   urtx_client --tcp PORT jobs.json
///   echo '{"scenario": "tank"}' | urtx_client --socket PATH -
///
/// Records stream to stdout as the daemon finishes them (out of
/// submission order). Exit status: 0 when every job succeeded with a
/// passing verdict under --strict (otherwise 0 once all records arrive);
/// 1 under --strict with any failure/rejection; 2 on usage/connect/parse
/// errors, or when the daemon closes early with records outstanding.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "srv/batch_io.hpp"
#include "srv/json.hpp"

namespace srv = urtx::srv;
namespace json = urtx::srv::json;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s (--socket PATH | --tcp PORT) <jobs.json|-> [--strict]\n"
                 "          [--quiet]\n",
                 argv0);
    return 2;
}

int connectUnix(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int connectTcp(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool sendAll(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

int main(int argc, char** argv) {
    std::string socketPath;
    std::uint16_t tcpPort = 0;
    std::string jobsPath;
    bool strict = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket") {
            if (++i >= argc) return usage(argv[0]);
            socketPath = argv[i];
        } else if (arg == "--tcp") {
            if (++i >= argc) return usage(argv[0]);
            tcpPort = static_cast<std::uint16_t>(std::strtoul(argv[i], nullptr, 10));
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "-" || arg.empty() || arg[0] != '-') {
            if (!jobsPath.empty()) return usage(argv[0]);
            jobsPath = arg;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (jobsPath.empty() || (socketPath.empty() && tcpPort == 0)) return usage(argv[0]);

    // Assemble the job lines before connecting so a parse error never
    // half-submits a batch.
    std::vector<std::string> lines;
    std::size_t expected = 0;
    if (jobsPath == "-") {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line.empty()) continue;
            std::string err;
            const auto doc = json::parse(line, &err);
            if (!doc) {
                std::fprintf(stderr, "%s: stdin: %s\n", argv[0], err.c_str());
                return 2;
            }
            std::vector<srv::ScenarioSpec> specs;
            try {
                specs = srv::parseJobObject(*doc);
            } catch (const std::exception& ex) {
                std::fprintf(stderr, "%s: stdin: %s\n", argv[0], ex.what());
                return 2;
            }
            for (const srv::ScenarioSpec& s : specs) lines.push_back(srv::jobJson(s));
        }
    } else {
        std::ifstream in(jobsPath);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read '%s'\n", argv[0], jobsPath.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        srv::BatchFile batch;
        try {
            batch = srv::parseBatchFile(text.str());
        } catch (const std::exception& ex) {
            std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
            return 2;
        }
        for (const srv::ScenarioSpec& s : batch.jobs) lines.push_back(srv::jobJson(s));
    }
    expected = lines.size();
    if (expected == 0) {
        if (!quiet) std::fprintf(stderr, "%s: no jobs to submit\n", argv[0]);
        return 0;
    }

    const int fd = socketPath.empty() ? connectTcp(tcpPort) : connectUnix(socketPath);
    if (fd < 0) {
        std::fprintf(stderr, "%s: cannot connect (%s)\n", argv[0], std::strerror(errno));
        return 2;
    }

    for (const std::string& l : lines) {
        if (!sendAll(fd, l + "\n")) {
            std::fprintf(stderr, "%s: send failed (%s)\n", argv[0], std::strerror(errno));
            ::close(fd);
            return 2;
        }
    }
    ::shutdown(fd, SHUT_WR); // half-close: everything submitted, now tail

    std::string buf;
    char chunk[4096];
    std::size_t received = 0;
    bool anyBad = false;
    while (received < expected) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break; // daemon closed early
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
             nl = buf.find('\n', start)) {
            const std::string line = buf.substr(start, nl - start);
            start = nl + 1;
            if (line.empty()) continue;
            ++received;
            std::printf("%s\n", line.c_str());
            const auto rec = json::parse(line);
            const std::string status = rec ? rec->strOr("status", "error") : "error";
            if (status != "succeeded" || !(rec && rec->boolOr("passed", false))) {
                anyBad = true;
            }
            if (!quiet && rec) {
                std::fprintf(stderr, "  %-24s %-9s%s%s\n",
                             rec->strOr("name", "?").c_str(), status.c_str(),
                             rec->boolOr("cached_result", false) ? " [cached]" : "",
                             rec->boolOr("warm_reuse", false) ? " [warm]" : "");
            }
        }
        buf.erase(0, start);
    }
    ::close(fd);

    if (received < expected) {
        std::fprintf(stderr, "%s: connection closed with %zu of %zu records received\n",
                     argv[0], received, expected);
        return 2;
    }
    return strict && anyBad ? 1 : 0;
}
