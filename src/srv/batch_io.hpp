#pragma once
/// \file batch_io.hpp
/// Serialization boundary of the serving engine: parse a JSON job file
/// into (EngineConfig, ScenarioSpecs), render a BatchResult as the JSON
/// report. See docs/SERVING.md for both schemas.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "srv/engine.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv::json {
class Value;
} // namespace urtx::srv::json

namespace urtx::srv {

struct BatchFile {
    EngineConfig config;
    std::vector<ScenarioSpec> jobs;
};

/// Parse a job file. Unknown scenario names are not checked here (the
/// engine reports them as failures); malformed JSON or a structurally
/// invalid file throws std::runtime_error with a reason.
BatchFile parseBatchFile(std::string_view text);

/// Parse an execution-mode string ("single"/"single_thread" or
/// "multi"/"multi_thread"); throws std::runtime_error otherwise.
sim::ExecutionMode parseExecutionMode(const std::string& s);

/// Parse one job object (same schema as an element of the batch file's
/// "jobs" array, including "repeat"/"sweep" expansion) into the specs it
/// denotes. Throws std::runtime_error on structural errors. Shared by the
/// batch file reader and the daemon's per-line wire protocol.
std::vector<ScenarioSpec> parseJobObject(const json::Value& job);

/// Serialize one spec as a single-line job object that parseJobObject
/// round-trips (scenario, name, horizon, mode, deadlines, params).
std::string jobJson(const ScenarioSpec& spec);

/// The flat, serialization-ready mirror of a ScenarioResult: every sparse
/// field resolved (trace reduced to rows + hash, metrics/post-mortem to
/// embedded JSON text). One renderer consumes it — the daemon's JSON
/// path and a binary client re-rendering decoded records produce
/// byte-identical lines — and the generated WireResult message mirrors it
/// field for field (src/codegen/wire_schema.cpp).
struct ResultRecord {
    std::string name;
    std::string scenario;
    ScenarioStatus status = ScenarioStatus::Rejected;
    bool passed = false;
    std::string verdict;
    std::string error;     ///< human-readable failure / rejection reason
    std::string errorCode; ///< stable machine-readable id; defaulted by status when unset
    std::uint64_t worker = UINT64_MAX; ///< UINT64_MAX = never dispatched
    bool stolen = false;
    bool deadlineMet = true;
    bool warmReuse = false;
    bool cachedResult = false;
    bool watchdogTripped = false;
    double queueWaitSeconds = 0.0;
    double wallSeconds = 0.0;
    double finishedAtSeconds = 0.0;
    double simTime = 0.0;
    std::uint64_t steps = 0;
    std::uint64_t traceRows = 0;
    std::uint64_t traceHash = 0;
    std::string metricsJson;    ///< empty = omit
    std::string postmortemJson; ///< empty = omit
    /// Stage name -> offset seconds from receive ("profile": true jobs
    /// only; empty = omit). Rendered in canonical stage order via
    /// obs::stageNames(), not map order.
    std::map<std::string, double> stages;
};

/// Flatten a ScenarioResult (computes the trace hash once; honors
/// \p includeMetrics the way resultJson always has).
ResultRecord flattenResult(const ScenarioResult& r, bool includeMetrics = true);

/// Render a flat record as the single-line JSON result schema.
std::string recordJson(const ResultRecord& r);

/// Render one result as a single-line JSON record (the same record shape
/// reportJson embeds per job). Streamed by the daemon as jobs complete.
/// Equivalent to recordJson(flattenResult(r, includeMetrics)).
std::string resultJson(const ScenarioResult& r, bool includeMetrics = true);

/// Render the report. \p includeMetrics embeds each job's scoped metrics
/// snapshot; post-mortems of failed jobs are always embedded when present.
std::string reportJson(const BatchResult& batch, bool includeMetrics = true);

} // namespace urtx::srv
