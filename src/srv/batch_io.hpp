#pragma once
/// \file batch_io.hpp
/// Serialization boundary of the serving engine: parse a JSON job file
/// into (EngineConfig, ScenarioSpecs), render a BatchResult as the JSON
/// report. See docs/SERVING.md for both schemas.

#include <string>
#include <string_view>
#include <vector>

#include "srv/engine.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv {

struct BatchFile {
    EngineConfig config;
    std::vector<ScenarioSpec> jobs;
};

/// Parse a job file. Unknown scenario names are not checked here (the
/// engine reports them as failures); malformed JSON or a structurally
/// invalid file throws std::runtime_error with a reason.
BatchFile parseBatchFile(std::string_view text);

/// Render the report. \p includeMetrics embeds each job's scoped metrics
/// snapshot; post-mortems of failed jobs are always embedded when present.
std::string reportJson(const BatchResult& batch, bool includeMetrics = true);

} // namespace urtx::srv
