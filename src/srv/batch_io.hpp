#pragma once
/// \file batch_io.hpp
/// Serialization boundary of the serving engine: parse a JSON job file
/// into (EngineConfig, ScenarioSpecs), render a BatchResult as the JSON
/// report. See docs/SERVING.md for both schemas.

#include <string>
#include <string_view>
#include <vector>

#include "srv/engine.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv::json {
class Value;
} // namespace urtx::srv::json

namespace urtx::srv {

struct BatchFile {
    EngineConfig config;
    std::vector<ScenarioSpec> jobs;
};

/// Parse a job file. Unknown scenario names are not checked here (the
/// engine reports them as failures); malformed JSON or a structurally
/// invalid file throws std::runtime_error with a reason.
BatchFile parseBatchFile(std::string_view text);

/// Parse an execution-mode string ("single"/"single_thread" or
/// "multi"/"multi_thread"); throws std::runtime_error otherwise.
sim::ExecutionMode parseExecutionMode(const std::string& s);

/// Parse one job object (same schema as an element of the batch file's
/// "jobs" array, including "repeat"/"sweep" expansion) into the specs it
/// denotes. Throws std::runtime_error on structural errors. Shared by the
/// batch file reader and the daemon's per-line wire protocol.
std::vector<ScenarioSpec> parseJobObject(const json::Value& job);

/// Serialize one spec as a single-line job object that parseJobObject
/// round-trips (scenario, name, horizon, mode, deadlines, params).
std::string jobJson(const ScenarioSpec& spec);

/// Render one result as a single-line JSON record (the same record shape
/// reportJson embeds per job). Streamed by the daemon as jobs complete.
std::string resultJson(const ScenarioResult& r, bool includeMetrics = true);

/// Render the report. \p includeMetrics embeds each job's scoped metrics
/// snapshot; post-mortems of failed jobs are always embedded when present.
std::string reportJson(const BatchResult& batch, bool includeMetrics = true);

} // namespace urtx::srv
