#include "srv/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace urtx::srv::json {

const Value* Value::find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const Member& m : object) {
        if (m.first == key) return &m.second;
    }
    return nullptr;
}

double Value::numOr(std::string_view key, double fallback) const {
    const Value* v = find(key);
    if (!v) return fallback;
    if (v->isNumber()) return v->number;
    if (v->isBool()) return v->boolean ? 1.0 : 0.0;
    return fallback;
}

std::string Value::strOr(std::string_view key, std::string fallback) const {
    const Value* v = find(key);
    return v && v->isString() ? v->string : fallback;
}

bool Value::boolOr(std::string_view key, bool fallback) const {
    const Value* v = find(key);
    return v && v->isBool() ? v->boolean : fallback;
}

namespace {

/// Recursive-descent parser. Depth-limited so a pathological input cannot
/// blow the stack.
class Parser {
public:
    explicit Parser(std::string_view s) : s_(s) {}

    std::optional<Value> run(std::string* err) {
        Value v;
        skipWs();
        if (!value(v, 0)) {
            if (err) *err = err_;
            return std::nullopt;
        }
        skipWs();
        if (pos_ != s_.size()) {
            if (err) *err = "trailing characters at offset " + std::to_string(pos_);
            return std::nullopt;
        }
        return v;
    }

private:
    static constexpr std::size_t kMaxDepth = 64;

    bool fail(const std::string& what) {
        if (err_.empty()) err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs() {
        while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }

    bool consume(char c) {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char* word, Value& out, Value&& v) {
        const std::string_view w(word);
        if (s_.compare(pos_, w.size(), w) != 0) return fail("bad literal");
        pos_ += w.size();
        out = std::move(v);
        return true;
    }

    bool hex4(unsigned& cp) {
        if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
        cp = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
        }
        return true;
    }

    bool string(std::string& out) {
        if (!consume('"')) return fail("expected '\"'");
        out.clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size()) break;
            const char e = s_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    unsigned cp = 0;
                    if (!hex4(cp)) return false;
                    // Surrogate pairs: a high surrogate must be followed by
                    // an escaped low surrogate; the pair combines into one
                    // supplementary-plane code point. Lone surrogates are a
                    // parse error — they have no valid UTF-8 encoding, so
                    // accepting them would break escape/parse round-trips.
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        if (pos_ + 2 > s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u') {
                            return fail("unpaired high surrogate");
                        }
                        pos_ += 2;
                        unsigned lo = 0;
                        if (!hex4(lo)) return false;
                        if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired high surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("unpaired low surrogate");
                    }
                    if (cp < 0x80) {
                        out.push_back(static_cast<char>(cp));
                    } else if (cp < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                    } else if (cp < 0x10000) {
                        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
                        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                    }
                    break;
                }
                default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool number(Value& out) {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) return fail("expected value");
        const std::string text(s_.substr(start, pos_ - start));
        char* end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("bad number");
        }
        out.kind = Value::Kind::Number;
        out.number = v;
        return true;
    }

    bool value(Value& out, std::size_t depth) {
        if (depth > kMaxDepth) return fail("nesting too deep");
        skipWs();
        if (pos_ >= s_.size()) return fail("unexpected end of input");
        const char c = s_[pos_];
        if (c == '{') return object(out, depth);
        if (c == '[') return array(out, depth);
        if (c == '"') {
            out.kind = Value::Kind::String;
            return string(out.string);
        }
        if (c == 't') {
            Value v;
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return literal("true", out, std::move(v));
        }
        if (c == 'f') {
            Value v;
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return literal("false", out, std::move(v));
        }
        if (c == 'n') return literal("null", out, Value{});
        return number(out);
    }

    bool object(Value& out, std::size_t depth) {
        consume('{');
        out.kind = Value::Kind::Object;
        skipWs();
        if (consume('}')) return true;
        while (true) {
            skipWs();
            Value::Member m;
            if (!string(m.first)) return false;
            skipWs();
            if (!consume(':')) return fail("expected ':'");
            if (!value(m.second, depth + 1)) return false;
            out.object.push_back(std::move(m));
            skipWs();
            if (consume('}')) return true;
            if (!consume(',')) return fail("expected ',' or '}'");
        }
    }

    bool array(Value& out, std::size_t depth) {
        consume('[');
        out.kind = Value::Kind::Array;
        skipWs();
        if (consume(']')) return true;
        while (true) {
            Value v;
            if (!value(v, depth + 1)) return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (consume(']')) return true;
            if (!consume(',')) return fail("expected ',' or ']'");
        }
    }

    std::string_view s_;
    std::size_t pos_ = 0;
    std::string err_;
};

} // namespace

std::optional<Value> parse(std::string_view text, std::string* err) {
    return Parser(text).run(err);
}

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

std::string number(double v) {
    if (!std::isfinite(v)) return v > 0 ? "1e308" : "-1e308";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

void stringifyInto(const Value& v, std::string& out) {
    switch (v.kind) {
        case Value::Kind::Null: out += "null"; break;
        case Value::Kind::Bool: out += v.boolean ? "true" : "false"; break;
        case Value::Kind::Number: out += number(v.number); break;
        case Value::Kind::String:
            out.push_back('"');
            out += escape(v.string);
            out.push_back('"');
            break;
        case Value::Kind::Array: {
            out.push_back('[');
            bool first = true;
            for (const Value& e : v.array) {
                if (!first) out.push_back(',');
                first = false;
                stringifyInto(e, out);
            }
            out.push_back(']');
            break;
        }
        case Value::Kind::Object: {
            out.push_back('{');
            bool first = true;
            for (const Value::Member& m : v.object) {
                if (!first) out.push_back(',');
                first = false;
                out.push_back('"');
                out += escape(m.first);
                out += "\":";
                stringifyInto(m.second, out);
            }
            out.push_back('}');
            break;
        }
    }
}

} // namespace

std::string stringify(const Value& v) {
    std::string out;
    stringifyInto(v, out);
    return out;
}

Value makeString(std::string s) {
    Value v;
    v.kind = Value::Kind::String;
    v.string = std::move(s);
    return v;
}

Value makeNumber(double n) {
    Value v;
    v.kind = Value::Kind::Number;
    v.number = n;
    return v;
}

Value makeBool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
}

} // namespace urtx::srv::json
