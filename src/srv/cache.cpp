#include "srv/cache.hpp"

namespace urtx::srv {

WarmScenarioCache::Lease WarmScenarioCache::acquire(std::uint64_t key) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return {};
    }
    Lease lease{std::move(it->second->scenario), true};
    lru_.erase(it->second);
    index_.erase(it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return lease;
}

void WarmScenarioCache::release(std::uint64_t key, std::unique_ptr<Scenario> scenario) {
    if (!scenario || capacity_ == 0) return;
    // Reset outside the lock: it touches solver state and capsule trees and
    // may take real time; only the park/evict bookkeeping is serialized.
    bool ok = false;
    try {
        ok = scenario->reset();
    } catch (...) {
        ok = false;
    }
    if (!ok) return; // not reusable — destroy instead of parking
    std::unique_ptr<Scenario> evicted;
    {
        std::lock_guard<std::mutex> lk(mu_);
        lru_.push_front(Entry{key, std::move(scenario)});
        index_.emplace(key, lru_.begin());
        if (lru_.size() > capacity_) {
            const auto last = std::prev(lru_.end());
            auto range = index_.equal_range(last->key);
            for (auto i = range.first; i != range.second; ++i) {
                if (i->second == last) {
                    index_.erase(i);
                    break;
                }
            }
            evicted = std::move(last->scenario);
            lru_.erase(last);
        }
    }
    // `evicted` destroys its whole HybridSystem here, outside the lock.
}

std::size_t WarmScenarioCache::size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return lru_.size();
}

void WarmScenarioCache::clear() {
    std::list<Entry> drop;
    std::lock_guard<std::mutex> lk(mu_);
    index_.clear();
    drop.swap(lru_);
}

std::optional<ScenarioResult> ResultCache::lookup(std::uint64_t jobHash) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(jobHash);
    if (it == index_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second); // bump to most recent
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->result;
}

void ResultCache::store(std::uint64_t jobHash, const ScenarioResult& result) {
    if (capacity_ == 0 || result.status != ScenarioStatus::Succeeded) return;
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(jobHash);
    if (it != index_.end()) {
        it->second->result = result;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{jobHash, result});
    index_.emplace(jobHash, lru_.begin());
    if (lru_.size() > capacity_) {
        const auto last = std::prev(lru_.end());
        index_.erase(last->key);
        lru_.erase(last);
    }
}

std::size_t ResultCache::size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return lru_.size();
}

void ResultCache::clear() {
    std::lock_guard<std::mutex> lk(mu_);
    index_.clear();
    lru_.clear();
}

} // namespace urtx::srv
