#pragma once
/// \file scenario.hpp
/// Scenario model for the serving engine.
///
/// A *scenario* is a self-contained hybrid simulation job: a factory builds
/// a private HybridSystem (plus the capsules / streamers it wires up),
/// the engine runs it to a horizon, and a verdict hook grades the final
/// state. Factories live in a ScenarioLibrary so job files, tests, the
/// examples and the engine all construct the same systems — one definition
/// per system instead of one copy per call site.
///
/// A ScenarioSpec is the serializable half: which factory, which parameter
/// overrides, how far to run, and the serving constraints (completion
/// deadline for admission control, wall-clock budget for the watchdog).
/// A ScenarioResult is everything the engine reports back per job.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sim/hybrid_system.hpp"

namespace urtx::srv {

/// Factory inputs: numeric and string parameter overrides. Numeric
/// parameters typically forward into flow::Streamer::setParam; string
/// parameters select discrete choices (integrator method, variants).
class ScenarioParams {
public:
    double num(const std::string& key, double fallback = 0.0) const;
    std::string str(const std::string& key, std::string fallback = {}) const;
    bool hasNum(const std::string& key) const { return nums_.count(key) > 0; }
    bool hasStr(const std::string& key) const { return strs_.count(key) > 0; }

    void set(const std::string& key, double value) { nums_[key] = value; }
    void set(const std::string& key, std::string value) { strs_[key] = std::move(value); }

    const std::map<std::string, double>& nums() const { return nums_; }
    const std::map<std::string, std::string>& strs() const { return strs_; }

private:
    std::map<std::string, double> nums_;
    std::map<std::string, std::string> strs_;
};

/// The declared parameter surface of a factory: which numeric and string
/// keys it accepts (key -> one-line description, shown in error messages
/// and --list output). Factories registered with a schema get their
/// overrides validated at build time; unknown keys are a structured
/// UnknownParamError instead of a silent no-op, so a typo ("quin" for
/// "qin") fails loudly rather than running the wrong experiment.
struct ParamSchema {
    /// Everything declared about one parameter: description plus optional
    /// default and bounds (surfaced by list_scenarios / --list-scenarios
    /// and enforced by model-compiled factories).
    struct Info {
        std::string doc;
        double def = 0.0;
        bool hasDefault = false;
        double min = 0.0;
        bool hasMin = false;
        double max = 0.0;
        bool hasMax = false;
        std::string strDefault; ///< string parameters only
        bool hasStrDefault = false;

        Info& withDefault(double v) {
            def = v;
            hasDefault = true;
            return *this;
        }
        Info& withMin(double v) {
            min = v;
            hasMin = true;
            return *this;
        }
        Info& withMax(double v) {
            max = v;
            hasMax = true;
            return *this;
        }
    };

    std::map<std::string, Info> nums;
    std::map<std::string, Info> strs;
    /// Open schemas accept any key (ad-hoc factories, tests).
    bool open = true;

    /// Declare a numeric parameter; returns its Info for chaining
    /// (.withDefault / .withMin / .withMax).
    Info& num(const std::string& key, std::string doc) {
        Info& i = nums[key];
        i.doc = std::move(doc);
        return i;
    }
    Info& num(const std::string& key, std::string doc, double def) {
        return num(key, std::move(doc)).withDefault(def);
    }
    /// Declare a string parameter (optionally with a default).
    Info& str(const std::string& key, std::string doc) {
        Info& i = strs[key];
        i.doc = std::move(doc);
        return i;
    }
    Info& str(const std::string& key, std::string doc, std::string def) {
        Info& i = str(key, std::move(doc));
        i.strDefault = std::move(def);
        i.hasStrDefault = true;
        return i;
    }

    /// Keys in \p p that this schema does not declare (empty when open).
    std::vector<std::string> unknownKeys(const ScenarioParams& p) const;

    /// JSON object: {"open": ..., "nums": {...}, "strs": {...}} with doc /
    /// default / min / max per key — the wire shape used by list_scenarios.
    std::string toJson() const;
};

/// Thrown when a spec carries parameter keys the target factory does not
/// declare. Carries the offending scenario and keys so serving layers can
/// report a structured rejection instead of a flat what() string.
class UnknownParamError : public std::invalid_argument {
public:
    UnknownParamError(std::string scenario, std::vector<std::string> keys);

    const std::string& scenario() const { return scenario_; }
    const std::vector<std::string>& keys() const { return keys_; }

private:
    std::string scenario_;
    std::vector<std::string> keys_;
};

/// A built, runnable scenario instance. Owns its HybridSystem and every
/// capsule / streamer wired into it; destruction tears the whole world
/// down. Concrete scenarios may expose their components for examples and
/// tests to poke at.
class Scenario {
public:
    virtual ~Scenario() = default;

    virtual sim::HybridSystem& system() = 0;

    /// Post-run pass/fail judgment on the final state; append a
    /// human-readable explanation to \p detail. Default: pass.
    virtual bool verdict(std::string& detail) const {
        (void)detail;
        return true;
    }

    /// Rewind this instance to its just-built state so it can run again
    /// (warm reuse by the serving layer, skipping factory construction).
    /// Return true only when the rerun is indistinguishable from a fresh
    /// build — bit-identical trajectories. Default: not reusable.
    virtual bool reset() { return false; }
};

using ScenarioFactory = std::function<std::unique_ptr<Scenario>(const ScenarioParams&)>;

/// Name -> factory registry. Thread-safe; a batch run only reads it.
class ScenarioLibrary {
public:
    /// The process-wide library (builtins registered by
    /// scenarios::registerBuiltins, tests may add their own).
    static ScenarioLibrary& global();

    /// Register (or replace) a factory with an open schema (no parameter
    /// validation — ad-hoc factories, tests).
    void add(std::string name, std::string description, ScenarioFactory make);
    /// Register (or replace) a factory with a declared parameter surface;
    /// build() rejects undeclared keys with UnknownParamError.
    void add(std::string name, std::string description, ParamSchema schema,
             ScenarioFactory make);
    bool has(std::string_view name) const;
    /// (name, description) pairs in registration order.
    std::vector<std::pair<std::string, std::string>> list() const;

    /// One registered factory as seen by list_scenarios.
    struct Listing {
        std::string name;
        std::string description;
        ParamSchema schema;
    };
    /// Every registered factory with its schema, registration order.
    std::vector<Listing> listDetailed() const;
    /// The declared schema (open when the factory was registered without
    /// one); throws std::invalid_argument for unknown names.
    ParamSchema schema(const std::string& name) const;

    /// Check \p p against the factory's schema without building; throws
    /// UnknownParamError on undeclared keys, std::invalid_argument on an
    /// unknown scenario name.
    void validate(const std::string& name, const ScenarioParams& p) const;

    /// Build an instance; throws std::invalid_argument for unknown names
    /// and UnknownParamError for undeclared parameter keys.
    std::unique_ptr<Scenario> build(const std::string& name, const ScenarioParams& p) const;

private:
    struct Entry {
        std::string name;
        std::string description;
        ParamSchema schema;
        ScenarioFactory make;
    };

    mutable std::mutex mu_;
    std::vector<Entry> entries_;
};

/// One job in a batch: factory + overrides + horizon + serving constraints.
struct ScenarioSpec {
    std::string name;     ///< job name in the report (default: scenario#index)
    std::string scenario; ///< ScenarioLibrary factory name
    ScenarioParams params;
    double horizon = 1.0; ///< simulate to t = horizon
    sim::ExecutionMode mode = sim::ExecutionMode::SingleThread;
    /// Wall-clock completion deadline measured from batch start; jobs whose
    /// deadline cannot be met are rejected by admission control. 0 = none.
    double deadlineSeconds = 0.0;
    /// Estimated wall cost used by admission control; 0 = engine default.
    double costSeconds = 0.0;
    /// Per-run wall-clock budget enforced by the engine watchdog via
    /// HybridSystem::requestStop. 0 = none.
    double wallBudgetSeconds = 0.0;
    /// Attach the per-stage latency table to this job's result record
    /// ("profile": true in the job object). Pure observability: excluded
    /// from warmKey()/jobHash(), so profiled runs share caches with — and
    /// stay bit-identical to — unprofiled ones.
    bool profile = false;

    /// FNV-1a over the *model identity*: scenario name + canonical
    /// (sorted-key) parameters. Two specs with equal warm keys build
    /// interchangeable systems, so a warm cached instance of one can serve
    /// the other after reset(). Horizon, mode and serving constraints are
    /// deliberately excluded — they do not change what gets built.
    std::uint64_t warmKey() const;
    /// FNV-1a over the full *job identity*: warmKey() + horizon bits +
    /// execution mode. Equal job hashes mean bit-identical runs, so a
    /// result cache may replay a stored ScenarioResult.
    std::uint64_t jobHash() const;
};

enum class ScenarioStatus : std::uint8_t {
    Succeeded, ///< ran to its horizon (verdict may still be fail)
    Failed,    ///< threw, or the watchdog stopped it
    Rejected   ///< admission control refused to run it
};

const char* to_string(ScenarioStatus s);

/// Plain copy of a finished trace: safe to keep after the scenario (and the
/// probe targets its Trace pointed into) is destroyed.
struct TraceData {
    std::vector<std::string> channels;
    std::vector<double> times;
    std::vector<double> data; ///< row-major rows x channels

    std::size_t rows() const { return times.size(); }
    double valueAt(std::size_t row, std::size_t ch) const {
        return data.at(row * channels.size() + ch);
    }

    /// FNV-1a over the raw bit patterns of times and data — equal hashes
    /// across runs mean bit-identical trajectories.
    std::uint64_t hash() const;

    static TraceData from(const sim::Trace& t);
};

/// Everything the engine reports for one job.
struct ScenarioResult {
    std::string name;
    std::string scenario;
    ScenarioStatus status = ScenarioStatus::Rejected;
    bool passed = false;        ///< verdict; meaningful when Succeeded
    std::string verdictDetail;
    std::string error;          ///< failure / rejection reason (human-readable)
    std::string errorCode;      ///< stable machine-readable error id ("job.failed", ...)
    bool watchdogTripped = false;

    std::size_t worker = SIZE_MAX; ///< worker that ran it; SIZE_MAX = never ran
    bool stolen = false;           ///< ran on a worker it was not planned onto
    bool warmReuse = false;        ///< ran on a reset cached instance (no rebuild)
    bool cachedResult = false;     ///< replayed from the result cache (no run at all)
    double queueWaitSeconds = 0.0; ///< batch start -> dispatch
    double wallSeconds = 0.0;      ///< dispatch -> finish
    double finishedAtSeconds = 0.0; ///< batch start -> finish
    bool deadlineMet = true;       ///< finishedAt <= deadline (when declared)

    double simTime = 0.0;
    std::uint64_t steps = 0;
    TraceData trace;
    obs::Snapshot metrics;      ///< scenario-scoped registry snapshot
    std::string postmortemJson; ///< flight-recorder dump; non-empty on failure

    /// Stage stamps (queue-wait / warm-acquire / cold-build / solve filled
    /// by the engine; decode / admission / encode / reply by the daemon).
    /// Rendered into the record only when profile.enabled.
    obs::StageProfile profile;
};

} // namespace urtx::srv
