#include "srv/scenarios/scenarios.hpp"

namespace urtx::srv::scenarios {

namespace {
constexpr double kGravity = 9.81;
constexpr double kMass = 0.2;   // kg
constexpr double kLength = 0.5; // m
constexpr double kDamping = 0.01;
} // namespace

rt::Protocol& pendulumProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"PendulumMode"};
        q.out("nearUpright").out("leftZone"); // pendulum -> supervisor
        q.in("setMode");                      // supervisor -> controller
        return q;
    }();
    return p;
}

Pendulum::Pendulum(std::string name, flow::Streamer* parent)
    : flow::Streamer(std::move(name), parent),
      torque(*this, "torque", flow::DPortDir::In, flow::FlowType::real()),
      state(*this, "state", flow::DPortDir::Out,
            flow::FlowType::record(
                {{"theta", flow::FlowType::real()}, {"omega", flow::FlowType::real()}})),
      events(*this, "events", pendulumProtocol(), false) {
    setParam("theta0", 0.05); // initial angle from the hanging position
    setParam("omega0", 0.0);
}

void Pendulum::initState(double, std::span<double> x) {
    x[0] = param("theta0");
    x[1] = param("omega0");
}

void Pendulum::derivatives(double, std::span<const double> x, std::span<double> dx) {
    const double ml2 = kMass * kLength * kLength;
    dx[0] = x[1];
    dx[1] = (-kMass * kGravity * kLength * std::sin(x[0]) - kDamping * x[1] + torque.get()) /
            ml2;
}

void Pendulum::outputs(double, std::span<const double> x) {
    state.set(x[0], 0);
    state.set(x[1], 1);
}

/// Catch zone: |θ - π| < 0.15 rad and |θ'| < 2 rad/s.
double Pendulum::eventFunction(double, std::span<const double> x) const {
    const double dTheta = std::abs(std::remainder(x[0] - M_PI, 2.0 * M_PI));
    const double speedOk = 2.0 - std::abs(x[1]);
    return std::min(0.15 - dTheta, speedOk);
}

void Pendulum::onEvent(double t, bool rising) {
    events.send(rising ? "nearUpright" : "leftZone", t);
}

PendulumController::PendulumController(std::string name, flow::Streamer* parent)
    : flow::Streamer(std::move(name), parent),
      meas(*this, "meas", flow::DPortDir::In,
           flow::FlowType::record(
               {{"theta", flow::FlowType::real()}, {"omega", flow::FlowType::real()}})),
      torque(*this, "torque", flow::DPortDir::Out, flow::FlowType::real()),
      mode(*this, "mode", pendulumProtocol(), true) {
    setParam("balancing", 0.0);
    setParam("swingGain", 4.0);
    setParam("balanceKp", 8.0);
    setParam("balanceKd", 2.0);
    setParam("torqueMax", 1.5);
}

void PendulumController::outputs(double, std::span<const double>) {
    const double theta = meas.get(0);
    const double omega = meas.get(1);
    const double uMax = param("torqueMax");
    double u;
    if (param("balancing") > 0.5) {
        // Strategy B: LQR-ish state feedback around upright.
        const double e = std::remainder(theta - M_PI, 2.0 * M_PI);
        u = -(param("balanceKp") * e + param("balanceKd") * omega);
    } else {
        // Strategy A: energy pumping toward E* (upright energy, with a
        // small margin so the pendulum actually crests the top).
        const double ml2 = kMass * kLength * kLength;
        const double energy =
            0.5 * ml2 * omega * omega - kMass * kGravity * kLength * std::cos(theta);
        const double eStar = 1.02 * kMass * kGravity * kLength;
        const double drive = (eStar - energy) * (omega >= 0 ? 1.0 : -1.0);
        u = std::clamp(param("swingGain") * drive, -uMax, uMax);
    }
    torque.set(std::clamp(u, -uMax, uMax));
}

void PendulumController::onSignal(flow::SPort&, const rt::Message& m) {
    if (m.signal == rt::signal("setMode")) setParam("balancing", m.dataOr<double>(0.0));
}

PendulumSupervisor::PendulumSupervisor(std::string name, bool verbose)
    : rt::Capsule(std::move(name)),
      fromPlant(*this, "fromPlant", pendulumProtocol(), true),
      toController(*this, "toController", pendulumProtocol(), false) {
    auto& swingUp = machine().state("SwingUp");
    auto& balance = machine().state("Balance");
    machine().initial(swingUp);
    machine().transition(swingUp, balance).on("nearUpright").act(
        [this, verbose](const rt::Message& m) {
            if (verbose) {
                std::printf("  [%6.3f s] supervisor: SwingUp -> Balance\n",
                            m.dataOr<double>(0.0));
            }
            toController.send("setMode", 1.0);
            ++switches;
        });
    machine().transition(balance, swingUp).on("leftZone").act(
        [this, verbose](const rt::Message& m) {
            if (verbose) {
                std::printf("  [%6.3f s] supervisor: Balance -> SwingUp (fell out)\n",
                            m.dataOr<double>(0.0));
            }
            toController.send("setMode", 0.0);
            ++switches;
        });
}

PendulumScenario::PendulumScenario(const ScenarioParams& p) {
    const bool verbose = p.num("verbose", 0.0) > 0.5;
    pend_ = std::make_unique<Pendulum>("pendulum", &group_);
    ctl_ = std::make_unique<PendulumController>("controller", &group_);
    applyParams(*pend_, p);
    applyParams(*ctl_, p);
    sup_ = std::make_unique<PendulumSupervisor>("supervisor", verbose);
    // Data flows must exist before .streamer() flattens the network.
    urtx::SystemBuilder b;
    b.flow(pend_->state, ctl_->meas)
        .flow(ctl_->torque, pend_->torque)
        .capsule(*sup_)
        .streamer(group_, p.str("integrator", "RK45"), p.num("dt", 0.002))
        .flow(sup_->fromPlant, pend_->events)
        .flow(sup_->toController, ctl_->mode)
        .trace("theta", [this] { return pend_->state.get(0); })
        .trace("torque", [this] { return ctl_->torque.get(); });
    runner_ = &b.lastRunner();
    sys_ = b.build();
}

bool PendulumScenario::verdict(std::string& detail) const {
    const double theta = pend_->state.get(0);
    const double omega = pend_->state.get(1);
    const double err = std::abs(std::remainder(theta - M_PI, 2.0 * M_PI));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "|theta - pi| = %.4f rad, omega = %.4f rad/s, mode switches = %d", err,
                  omega, sup_->switches);
    detail += buf;
    if (sys_->now() < 15.0) {
        detail += " (horizon too short to judge balance)";
        return true;
    }
    return err < 0.15 && std::abs(omega) < 2.0;
}

} // namespace urtx::srv::scenarios
