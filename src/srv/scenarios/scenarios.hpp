#pragma once
/// \file scenarios.hpp
/// The repo's built-in scenario factories: the tank / cruise-control /
/// inverted-pendulum systems that used to be constructed inline in the
/// examples, packaged as reusable Scenario classes, plus a deliberately
/// throwing scenario for fault-isolation tests.
///
/// The component classes (streamers, capsules) are defined here so the
/// examples can keep poking at them directly (probe ports, read state
/// machines, swap integrators) while batch serving builds the very same
/// systems by name through the ScenarioLibrary. All narrative printf
/// output is gated behind the "verbose" parameter (default off — a batch
/// worker pool printing interleaved narration would be noise).
///
/// Common parameters (every factory):
///   verbose     0/1   narrative output (default 0)
///   integrator  name  solver::makeIntegrator name (per-scenario default)
///   dt          s     solver major step (per-scenario default)
/// Any other numeric parameter naming an existing streamer parameter is
/// forwarded (e.g. tank "qin", cruise "v0", see each class).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>
#include <string>

#include "srv/scenario.hpp"
#include "urtx.hpp"

namespace urtx::srv::scenarios {

/// Register "tank", "cruise", "pendulum" and "faulty" into \p lib. Each
/// factory is registered with a closed ParamSchema covering its full
/// parameter surface, so a misspelt key is an UnknownParamError at build
/// time instead of a silently ignored override.
void registerBuiltins(ScenarioLibrary& lib = ScenarioLibrary::global());

/// Forward every numeric override in \p p that names an existing parameter
/// of \p s (keys belonging to a sibling streamer are skipped here; keys
/// belonging to *nobody* were already rejected by the factory's schema).
void applyParams(flow::Streamer& s, const ScenarioParams& p);

// --- two-tank level control (examples/tank_system.cpp) ----------------------

rt::Protocol& tankProtocol();

/// Plant:  tank1 --(valve)--> tank2 --(outlet)-->
///   dh1/dt = (qin - k1 a sqrt(h1)) / A1
///   dh2/dt = (k1 a sqrt(h1) - k2 sqrt(h2)) / A2
/// with a zero-crossing alarm surface at h1 = hmax.
class TwoTank final : public flow::Streamer {
public:
    TwoTank(std::string name, flow::Streamer* parent)
        : flow::Streamer(std::move(name), parent),
          h1(*this, "h1", flow::DPortDir::Out, flow::FlowType::real()),
          h2(*this, "h2", flow::DPortDir::Out, flow::FlowType::real()),
          ctl(*this, "ctl", tankProtocol(), false),
          faultIn(*this, "faultIn", tankProtocol(), false) {
        setParam("qin", 0.8);   // pump flow
        setParam("valve", 1.0); // commanded opening
        setParam("stuck", 0.0); // fault flag
        setParam("stuckAt", 0.15);
        setParam("hmax", 2.0); // alarm threshold for tank1
        setParam("h1_0", 1.0);
        setParam("h2_0", 0.5);
        setParam("verbose", 0.0);
    }

    flow::DPort h1;
    flow::DPort h2;
    flow::SPort ctl;
    flow::SPort faultIn; ///< second signal path: fault injection

    double valveOpening() const {
        return param("stuck") > 0.5 ? param("stuckAt") : param("valve");
    }

    std::size_t stateSize() const override { return 2; }
    void initState(double, std::span<double> x) override {
        x[0] = param("h1_0");
        x[1] = param("h2_0");
    }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        const double a = valveOpening();
        const double q12 = 0.6 * a * std::sqrt(std::max(0.0, x[0]));
        const double qout = 0.5 * std::sqrt(std::max(0.0, x[1]));
        dx[0] = (param("qin") - q12) / 1.0;
        dx[1] = (q12 - qout) / 1.5;
    }
    void outputs(double, std::span<const double> x) override {
        h1.set(x[0]);
        h2.set(x[1]);
    }
    bool directFeedthrough() const override { return false; }

    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override {
        return param("hmax") - x[0]; // negative => overfull
    }
    void onEvent(double t, bool rising) override {
        if (!rising) {
            if (param("verbose") > 0.5) {
                std::printf("  [%6.2f s] plant: tank1 level %.3f m crossed ALARM threshold\n",
                            t, h1.get());
            }
            ctl.send("levelHigh", t);
        } else {
            if (param("verbose") > 0.5) {
                std::printf("  [%6.2f s] plant: tank1 back below threshold\n", t);
            }
            ctl.send("levelOk", t);
        }
    }
    void onSignal(flow::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("setPump")) setParam("qin", m.dataOr<double>(0.0));
        if (m.signal == rt::signal("setValve")) setParam("valve", m.dataOr<double>(1.0));
        if (m.signal == rt::signal("stickValve")) {
            setParam("stuck", 1.0);
            if (param("verbose") > 0.5) {
                std::printf("  [%6.2f s] plant: FAULT injected — valve stuck at %.0f %%\n",
                            m.dataOr<double>(0.0), 100.0 * param("stuckAt"));
            }
        }
    }
};

/// Normal <-> Shutdown on the plant's levelHigh / levelOk alarms.
class TankSupervisor final : public rt::Capsule {
public:
    explicit TankSupervisor(std::string name, bool verbose = false)
        : rt::Capsule(std::move(name)), plant(*this, "plant", tankProtocol(), true) {
        auto& normal = machine().state("Normal");
        auto& shutdown = machine().state("Shutdown");
        machine().initial(normal);
        machine().transition(normal, shutdown).on("levelHigh").act(
            [this, verbose](const rt::Message& m) {
                if (verbose) {
                    std::printf("  [%6.2f s] supervisor: Normal -> Shutdown (pump off)\n",
                                m.dataOr<double>(0.0));
                }
                plant.send("setPump", 0.0);
            });
        machine().transition(shutdown, normal).on("levelOk").act(
            [this, verbose](const rt::Message& m) {
                if (verbose) {
                    std::printf(
                        "  [%6.2f s] supervisor: Shutdown -> Normal (pump restored at 50 %%)\n",
                        m.dataOr<double>(0.0));
                }
                plant.send("setPump", 0.4);
            });
    }
    rt::Port plant;
};

/// Scripted fault injector. It talks to the plant through a dedicated
/// SPort (SPorts are point-to-point, so it cannot share the supervisor's):
/// in MultiThread mode a direct setParam() from this capsule's thread
/// would race the solver thread reading parameters mid-equation — signals
/// are drained at step boundaries, which is the thread-safe path.
class FaultInjector final : public rt::Capsule {
public:
    /// \p faultAt < 0 disables the injection.
    explicit FaultInjector(std::string name, double faultAt = 30.0, bool verbose = false)
        : rt::Capsule(std::move(name)),
          plant(*this, "plant", tankProtocol(), true),
          faultAt_(faultAt),
          verbose_(verbose) {}
    rt::Port plant;

protected:
    void onInit() override {
        if (faultAt_ >= 0) informIn(faultAt_, "inject");
    }
    void onMessage(const rt::Message& m) override {
        if (m.signalName() == "inject") {
            plant.send("stickValve", now());
            if (verbose_) std::printf("  [%6.2f s] fault injector: valve stuck!\n", now());
        }
    }

private:
    double faultAt_;
    bool verbose_;
};

/// Extra parameters: faultAt (s, default 30; < 0 disables the fault) plus
/// every TwoTank parameter. Trace channels: h1, h2, pump. Verdict: tank1
/// never parked above the alarm threshold.
class TankScenario final : public Scenario {
public:
    explicit TankScenario(const ScenarioParams& p);

    sim::HybridSystem& system() override { return *sys_; }
    bool verdict(std::string& detail) const override;
    bool reset() override {
        sys_->reset();
        return true;
    }

    TwoTank& tank() { return *tank_; }
    TankSupervisor& supervisor() { return *sup_; }

private:
    std::unique_ptr<sim::HybridSystem> sys_;
    flow::Streamer group_{"process"};
    std::unique_ptr<TwoTank> tank_;
    std::unique_ptr<TankSupervisor> sup_;
    std::unique_ptr<FaultInjector> fault_;
};

// --- cruise control (examples/cruise_control.cpp) ---------------------------

rt::Protocol& cruiseProtocol();

/// Vehicle longitudinal dynamics m v' = F - b v - c v|v|.
class Vehicle final : public flow::Streamer {
public:
    Vehicle(std::string name, flow::Streamer* parent)
        : flow::Streamer(std::move(name), parent),
          force(*this, "force", flow::DPortDir::In, flow::FlowType::real()),
          speed(*this, "speed", flow::DPortDir::Out, flow::FlowType::real()) {
        setParam("m", 1200.0);
        setParam("b", 30.0);
        setParam("c", 0.9);
        setParam("v0", 20.0);
    }

    flow::DPort force;
    flow::DPort speed;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> x) override { x[0] = param("v0"); }
    void derivatives(double, std::span<const double> x, std::span<double> dx) override {
        const double v = x[0];
        dx[0] = (force.get() - param("b") * v - param("c") * v * std::abs(v)) / param("m");
    }
    void outputs(double, std::span<const double> x) override { speed.set(x[0]); }
    bool directFeedthrough() const override { return false; }
};

/// Gated PI speed controller (the streamer solver tunes its parameters on
/// signals from the cruise capsule).
class SpeedController final : public flow::Streamer {
public:
    SpeedController(std::string name, flow::Streamer* parent)
        : flow::Streamer(std::move(name), parent),
          meas(*this, "meas", flow::DPortDir::In, flow::FlowType::real()),
          force(*this, "force", flow::DPortDir::Out, flow::FlowType::real()),
          ctl(*this, "ctl", cruiseProtocol(), true) {
        setParam("enabled", 0.0);
        setParam("vset", 0.0);
        setParam("kp", 900.0);
        setParam("ki", 120.0);
    }

    flow::DPort meas;
    flow::DPort force;
    flow::SPort ctl;

    std::size_t stateSize() const override { return 1; } // integral of error
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = param("enabled") > 0.5 ? (param("vset") - meas.get()) : 0.0;
    }
    void outputs(double, std::span<const double> x) override {
        if (param("enabled") < 0.5) {
            force.set(0.0);
            return;
        }
        const double e = param("vset") - meas.get();
        const double u = param("kp") * e + param("ki") * x[0];
        force.set(std::clamp(u, -4000.0, 4000.0));
    }
    void update(double, std::span<double> x) override {
        if (param("enabled") < 0.5) x[0] = 0.0; // reset integral when disabled
    }
    void onSignal(flow::SPort&, const rt::Message& m) override {
        if (m.signal == rt::signal("enable")) setParam("enabled", 1.0);
        if (m.signal == rt::signal("disable")) setParam("enabled", 0.0);
        if (m.signal == rt::signal("setpoint")) setParam("vset", m.dataOr<double>(0.0));
    }
};

/// The cruise capsule: Off / Standby / Active / Override.
class CruiseCapsule final : public rt::Capsule {
public:
    explicit CruiseCapsule(std::string name, bool verbose = false)
        : rt::Capsule(std::move(name)),
          driver(*this, "driver", cruiseProtocol(), false),
          plant(*this, "plant", cruiseProtocol(), false) {
        auto& off = machine().state("Off");
        auto& standby = machine().state("Standby");
        auto& active = machine().state("Active");
        auto& overrideSt = machine().state("Override");
        machine().initial(off);

        machine().transition(off, standby).on(driver, "power");
        machine().transition(standby, off).on(driver, "power");
        machine().transition(standby, active).on(driver, "set").act(
            [this, verbose](const rt::Message& m) {
                const double v = m.dataOr<double>(25.0);
                if (verbose) {
                    std::printf("  [%6.2f s] cruise: Standby -> Active (set %.1f m/s)\n",
                                now(), v);
                }
                plant.send("setpoint", v);
                plant.send("enable");
            });
        machine().internal(active).on(driver, "set").act(
            [this, verbose](const rt::Message& m) {
                const double v = m.dataOr<double>(25.0);
                if (verbose) {
                    std::printf("  [%6.2f s] cruise: new setpoint %.1f m/s\n", now(), v);
                }
                plant.send("setpoint", v);
            });
        machine().transition(active, overrideSt).on(driver, "brake").act(
            [this, verbose](const rt::Message&) {
                if (verbose) {
                    std::printf("  [%6.2f s] cruise: Active -> Override (brake)\n", now());
                }
                plant.send("disable");
            });
        machine().transition(overrideSt, active).on(driver, "resume").act(
            [this, verbose](const rt::Message&) {
                if (verbose) {
                    std::printf("  [%6.2f s] cruise: Override -> Active (resume)\n", now());
                }
                plant.send("enable");
            });
        machine().transition(active, standby).on(driver, "cancel").act(
            [this, verbose](const rt::Message&) {
                if (verbose) {
                    std::printf("  [%6.2f s] cruise: Active -> Standby (cancel)\n", now());
                }
                plant.send("disable");
            });
    }

    rt::Port driver;
    rt::Port plant;
};

/// Driver inputs delivered through timers (scripted scenario): power at
/// 1 s, set 30 m/s at 2 s, brake at 20 s, resume at 25 s, set 35 m/s at
/// 40 s — scaled by the "script_scale" parameter so short-horizon batch
/// jobs still exercise the whole state machine.
class CruiseDriver final : public rt::Capsule {
public:
    explicit CruiseDriver(std::string name, double scale = 1.0)
        : rt::Capsule(std::move(name)),
          out(*this, "out", cruiseProtocol(), true),
          scale_(scale) {}
    rt::Port out;

protected:
    void onInit() override {
        informIn(1.0 * scale_, "t_power");
        informIn(2.0 * scale_, "t_set");
        informIn(20.0 * scale_, "t_brake");
        informIn(25.0 * scale_, "t_resume");
        informIn(40.0 * scale_, "t_faster");
    }
    void onMessage(const rt::Message& m) override {
        const auto sig = m.signalName();
        if (sig == "t_power") out.send("power");
        if (sig == "t_set") out.send("set", 30.0);
        if (sig == "t_brake") out.send("brake");
        if (sig == "t_resume") out.send("resume");
        if (sig == "t_faster") out.send("set", 35.0);
    }

private:
    double scale_;
};

/// Extra parameters: script_scale (default 1) plus every Vehicle /
/// SpeedController parameter (v0, vset, kp, ...). Trace channels: v, F.
/// Verdict: speed stays physical, and once the controller is engaged and
/// given time to settle it tracks the setpoint.
class CruiseScenario final : public Scenario {
public:
    explicit CruiseScenario(const ScenarioParams& p);

    sim::HybridSystem& system() override { return *sys_; }
    bool verdict(std::string& detail) const override;
    bool reset() override {
        sys_->reset();
        return true;
    }

    Vehicle& car() { return *car_; }
    SpeedController& pi() { return *pi_; }
    CruiseCapsule& cruise() { return *cruise_; }

private:
    std::unique_ptr<sim::HybridSystem> sys_;
    flow::Streamer group_{"drivetrain"};
    std::unique_ptr<Vehicle> car_;
    std::unique_ptr<SpeedController> pi_;
    std::unique_ptr<CruiseCapsule> cruise_;
    std::unique_ptr<CruiseDriver> driver_;
    double scale_ = 1.0;
};

// --- inverted pendulum (examples/inverted_pendulum.cpp) ---------------------

rt::Protocol& pendulumProtocol();

/// ml² θ'' = -mgl sin θ - b θ' + u, θ measured from the hanging position
/// (upright is θ = π), with a catch-zone zero-crossing surface.
class Pendulum final : public flow::Streamer {
public:
    Pendulum(std::string name, flow::Streamer* parent);

    flow::DPort torque;
    flow::DPort state;
    flow::SPort events;

    std::size_t stateSize() const override { return 2; }
    void initState(double, std::span<double> x) override;
    void derivatives(double, std::span<const double> x, std::span<double> dx) override;
    void outputs(double, std::span<const double> x) override;
    bool directFeedthrough() const override { return false; }
    bool hasEvent() const override { return true; }
    double eventFunction(double, std::span<const double> x) const override;
    void onEvent(double t, bool rising) override;
};

/// Strategy side of the paper's Figure 1: two torque laws behind one
/// streamer — "swingup" energy pumping and "balance" state feedback.
class PendulumController final : public flow::Streamer {
public:
    PendulumController(std::string name, flow::Streamer* parent);

    flow::DPort meas;
    flow::DPort torque;
    flow::SPort mode;

    void outputs(double, std::span<const double>) override;
    void onSignal(flow::SPort&, const rt::Message& m) override;
};

/// State side of Figure 1: SwingUp <-> Balance on the catch-zone events.
class PendulumSupervisor final : public rt::Capsule {
public:
    explicit PendulumSupervisor(std::string name, bool verbose = false);

    rt::Port fromPlant;
    rt::Port toController;
    int switches = 0;

protected:
    void onReset() override { switches = 0; }
};

/// Extra parameters: integrator (default "RK45"), dt (default 0.002) plus
/// the Pendulum / PendulumController parameters (theta0, swingGain, ...).
/// Trace channels: theta, torque. Verdict: balanced upright once the
/// horizon is long enough to judge.
class PendulumScenario final : public Scenario {
public:
    explicit PendulumScenario(const ScenarioParams& p);

    sim::HybridSystem& system() override { return *sys_; }
    bool verdict(std::string& detail) const override;
    bool reset() override {
        sys_->reset();
        return true;
    }

    Pendulum& pendulum() { return *pend_; }
    PendulumController& controller() { return *ctl_; }
    PendulumSupervisor& supervisor() { return *sup_; }
    flow::SolverRunner& runner() { return *runner_; }

private:
    std::unique_ptr<sim::HybridSystem> sys_;
    flow::Streamer group_{"pendulumGroup"};
    std::unique_ptr<Pendulum> pend_;
    std::unique_ptr<PendulumController> ctl_;
    std::unique_ptr<PendulumSupervisor> sup_;
    flow::SolverRunner* runner_ = nullptr;
};

// --- deliberate failure (isolation tests) -----------------------------------

/// Integrates dx/dt = 1 and throws std::runtime_error from update() once
/// t >= throwAt. Parameters: throwAt (default 0.25; a huge value turns
/// this into a well-behaved long-running job for watchdog tests), dt
/// (default 0.01). Trace channel: x.
class FaultyScenario final : public Scenario {
public:
    explicit FaultyScenario(const ScenarioParams& p);
    ~FaultyScenario() override;

    sim::HybridSystem& system() override { return *sys_; }

private:
    class ThrowingStreamer;
    std::unique_ptr<sim::HybridSystem> sys_;
    flow::Streamer group_{"faultyGroup"};
    std::unique_ptr<ThrowingStreamer> leaf_;
};

} // namespace urtx::srv::scenarios
