#include "srv/scenarios/scenarios.hpp"

#include <stdexcept>

namespace urtx::srv::scenarios {

void applyParams(flow::Streamer& s, const ScenarioParams& p) {
    for (const auto& [key, value] : p.nums()) {
        if (s.hasParam(key)) s.setParam(key, value);
    }
}

// --- deliberate failure -----------------------------------------------------

class FaultyScenario::ThrowingStreamer final : public flow::Streamer {
public:
    ThrowingStreamer(std::string name, flow::Streamer* parent, double throwAt)
        : flow::Streamer(std::move(name), parent),
          x(*this, "x", flow::DPortDir::Out, flow::FlowType::real()),
          throwAt_(throwAt) {}

    flow::DPort x;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> s) override { s[0] = 0.0; }
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = 1.0;
    }
    void outputs(double, std::span<const double> s) override { x.set(s[0]); }
    bool directFeedthrough() const override { return false; }
    void update(double t, std::span<double>) override {
        if (t >= throwAt_) {
            throw std::runtime_error("injected failure: ThrowingStreamer tripped at t=" +
                                     std::to_string(t));
        }
    }

private:
    double throwAt_;
};

FaultyScenario::FaultyScenario(const ScenarioParams& p) {
    leaf_ = std::make_unique<ThrowingStreamer>("bomb", &group_, p.num("throwAt", 0.25));
    sys_ = urtx::system()
               .streamer(group_, p.str("integrator", "Euler"), p.num("dt", 0.01))
               .trace("x", [this] { return leaf_->x.get(); })
               .build();
}

FaultyScenario::~FaultyScenario() = default;

// --- registry ---------------------------------------------------------------

namespace {

/// Keys every builtin accepts. dt / integrator defaults vary per scenario,
/// so they are declared here and given their defaults by each schema.
ParamSchema commonSchema(double dt, const char* integrator = "RK45") {
    ParamSchema s;
    s.open = false;
    s.num("verbose", "narrative output (0/1)", 0.0);
    s.num("dt", "solver major step (seconds)", dt);
    s.str("integrator", "solver::makeIntegrator name", integrator);
    return s;
}

ParamSchema tankSchema() {
    ParamSchema s = commonSchema(0.05);
    s.num("faultAt", "valve-stuck injection time (s, < 0 disables)", 30.0);
    s.num("qin", "pump inflow", 0.8).withMin(0.0);
    s.num("valve", "commanded valve opening", 1.0).withMin(0.0).withMax(1.0);
    s.num("stuck", "valve stuck fault flag", 0.0);
    s.num("stuckAt", "opening the valve sticks at", 0.15);
    s.num("hmax", "tank1 alarm threshold", 2.0);
    s.num("h1_0", "tank1 initial level", 1.0).withMin(0.0);
    s.num("h2_0", "tank2 initial level", 0.5).withMin(0.0);
    return s;
}

ParamSchema cruiseSchema() {
    ParamSchema s = commonSchema(0.02, "RK4");
    s.num("script_scale", "driver script time scale", 1.0);
    s.num("m", "vehicle mass", 1200.0).withMin(1.0);
    s.num("b", "linear drag", 30.0);
    s.num("c", "quadratic drag", 0.9);
    s.num("v0", "initial speed", 20.0);
    s.num("enabled", "PI initially engaged", 0.0);
    s.num("vset", "initial setpoint", 0.0);
    s.num("kp", "PI proportional gain", 900.0);
    s.num("ki", "PI integral gain", 120.0);
    return s;
}

ParamSchema pendulumSchema() {
    ParamSchema s = commonSchema(0.002);
    s.num("theta0", "initial angle from hanging", 0.05);
    s.num("omega0", "initial angular velocity", 0.0);
    s.num("balancing", "start in balance mode", 0.0);
    s.num("swingGain", "energy-pumping gain", 4.0);
    s.num("balanceKp", "balance proportional gain", 8.0);
    s.num("balanceKd", "balance derivative gain", 2.0);
    s.num("torqueMax", "torque saturation", 1.5);
    return s;
}

ParamSchema faultySchema() {
    ParamSchema s = commonSchema(0.01, "Euler");
    s.num("throwAt", "simulation time the streamer throws at", 0.25);
    return s;
}

} // namespace

void registerBuiltins(ScenarioLibrary& lib) {
    lib.add("tank", "two-tank level supervision with a stuck-valve fault injection",
            tankSchema(),
            [](const ScenarioParams& p) { return std::make_unique<TankScenario>(p); });
    lib.add("cruise", "cruise-control state machine over vehicle longitudinal dynamics",
            cruiseSchema(),
            [](const ScenarioParams& p) { return std::make_unique<CruiseScenario>(p); });
    lib.add("pendulum", "inverted-pendulum swing-up and catch with mode-switching control",
            pendulumSchema(),
            [](const ScenarioParams& p) { return std::make_unique<PendulumScenario>(p); });
    lib.add("faulty", "deliberately throwing scenario (fault-isolation and watchdog tests)",
            faultySchema(),
            [](const ScenarioParams& p) { return std::make_unique<FaultyScenario>(p); });
}

} // namespace urtx::srv::scenarios
