#include "srv/scenarios/scenarios.hpp"

#include <stdexcept>

namespace urtx::srv::scenarios {

void applyParams(flow::Streamer& s, const ScenarioParams& p) {
    for (const auto& [key, value] : p.nums()) {
        if (s.hasParam(key)) s.setParam(key, value);
    }
}

// --- deliberate failure -----------------------------------------------------

class FaultyScenario::ThrowingStreamer final : public flow::Streamer {
public:
    ThrowingStreamer(std::string name, flow::Streamer* parent, double throwAt)
        : flow::Streamer(std::move(name), parent),
          x(*this, "x", flow::DPortDir::Out, flow::FlowType::real()),
          throwAt_(throwAt) {}

    flow::DPort x;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> s) override { s[0] = 0.0; }
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = 1.0;
    }
    void outputs(double, std::span<const double> s) override { x.set(s[0]); }
    bool directFeedthrough() const override { return false; }
    void update(double t, std::span<double>) override {
        if (t >= throwAt_) {
            throw std::runtime_error("injected failure: ThrowingStreamer tripped at t=" +
                                     std::to_string(t));
        }
    }

private:
    double throwAt_;
};

FaultyScenario::FaultyScenario(const ScenarioParams& p) {
    leaf_ = std::make_unique<ThrowingStreamer>("bomb", &group_, p.num("throwAt", 0.25));
    sys_.addStreamerGroup(group_, solver::makeIntegrator(p.str("integrator", "Euler")),
                          p.num("dt", 0.01));
    sys_.trace().channel("x", [this] { return leaf_->x.get(); });
}

FaultyScenario::~FaultyScenario() = default;

// --- registry ---------------------------------------------------------------

void registerBuiltins(ScenarioLibrary& lib) {
    lib.add("tank", "two-tank level supervision with a stuck-valve fault injection",
            [](const ScenarioParams& p) { return std::make_unique<TankScenario>(p); });
    lib.add("cruise", "cruise-control state machine over vehicle longitudinal dynamics",
            [](const ScenarioParams& p) { return std::make_unique<CruiseScenario>(p); });
    lib.add("pendulum", "inverted-pendulum swing-up and catch with mode-switching control",
            [](const ScenarioParams& p) { return std::make_unique<PendulumScenario>(p); });
    lib.add("faulty", "deliberately throwing scenario (fault-isolation and watchdog tests)",
            [](const ScenarioParams& p) { return std::make_unique<FaultyScenario>(p); });
}

} // namespace urtx::srv::scenarios
