#include "srv/scenarios/scenarios.hpp"

#include <stdexcept>

namespace urtx::srv::scenarios {

void applyParams(flow::Streamer& s, const ScenarioParams& p) {
    for (const auto& [key, value] : p.nums()) {
        if (s.hasParam(key)) s.setParam(key, value);
    }
}

// --- deliberate failure -----------------------------------------------------

class FaultyScenario::ThrowingStreamer final : public flow::Streamer {
public:
    ThrowingStreamer(std::string name, flow::Streamer* parent, double throwAt)
        : flow::Streamer(std::move(name), parent),
          x(*this, "x", flow::DPortDir::Out, flow::FlowType::real()),
          throwAt_(throwAt) {}

    flow::DPort x;

    std::size_t stateSize() const override { return 1; }
    void initState(double, std::span<double> s) override { s[0] = 0.0; }
    void derivatives(double, std::span<const double>, std::span<double> dx) override {
        dx[0] = 1.0;
    }
    void outputs(double, std::span<const double> s) override { x.set(s[0]); }
    bool directFeedthrough() const override { return false; }
    void update(double t, std::span<double>) override {
        if (t >= throwAt_) {
            throw std::runtime_error("injected failure: ThrowingStreamer tripped at t=" +
                                     std::to_string(t));
        }
    }

private:
    double throwAt_;
};

FaultyScenario::FaultyScenario(const ScenarioParams& p) {
    leaf_ = std::make_unique<ThrowingStreamer>("bomb", &group_, p.num("throwAt", 0.25));
    sys_ = urtx::system()
               .streamer(group_, p.str("integrator", "Euler"), p.num("dt", 0.01))
               .trace("x", [this] { return leaf_->x.get(); })
               .build();
}

FaultyScenario::~FaultyScenario() = default;

// --- registry ---------------------------------------------------------------

namespace {

/// Keys every builtin accepts.
ParamSchema commonSchema() {
    ParamSchema s;
    s.open = false;
    s.nums["verbose"] = "narrative output (0/1, default 0)";
    s.nums["dt"] = "solver major step (seconds, per-scenario default)";
    s.strs["integrator"] = "solver::makeIntegrator name (per-scenario default)";
    return s;
}

ParamSchema tankSchema() {
    ParamSchema s = commonSchema();
    s.nums["faultAt"] = "valve-stuck injection time (s, < 0 disables; default 30)";
    s.nums["qin"] = "pump inflow (default 0.8)";
    s.nums["valve"] = "commanded valve opening (default 1.0)";
    s.nums["stuck"] = "valve stuck fault flag (default 0)";
    s.nums["stuckAt"] = "opening the valve sticks at (default 0.15)";
    s.nums["hmax"] = "tank1 alarm threshold (default 2.0)";
    s.nums["h1_0"] = "tank1 initial level (default 1.0)";
    s.nums["h2_0"] = "tank2 initial level (default 0.5)";
    return s;
}

ParamSchema cruiseSchema() {
    ParamSchema s = commonSchema();
    s.nums["script_scale"] = "driver script time scale (default 1)";
    s.nums["m"] = "vehicle mass (default 1200)";
    s.nums["b"] = "linear drag (default 30)";
    s.nums["c"] = "quadratic drag (default 0.9)";
    s.nums["v0"] = "initial speed (default 20)";
    s.nums["enabled"] = "PI initially engaged (default 0)";
    s.nums["vset"] = "initial setpoint (default 0)";
    s.nums["kp"] = "PI proportional gain (default 900)";
    s.nums["ki"] = "PI integral gain (default 120)";
    return s;
}

ParamSchema pendulumSchema() {
    ParamSchema s = commonSchema();
    s.nums["theta0"] = "initial angle from hanging (default 0.05)";
    s.nums["omega0"] = "initial angular velocity (default 0)";
    s.nums["balancing"] = "start in balance mode (default 0)";
    s.nums["swingGain"] = "energy-pumping gain (default 4)";
    s.nums["balanceKp"] = "balance proportional gain (default 8)";
    s.nums["balanceKd"] = "balance derivative gain (default 2)";
    s.nums["torqueMax"] = "torque saturation (default 1.5)";
    return s;
}

ParamSchema faultySchema() {
    ParamSchema s = commonSchema();
    s.nums["throwAt"] = "simulation time the streamer throws at (default 0.25)";
    return s;
}

} // namespace

void registerBuiltins(ScenarioLibrary& lib) {
    lib.add("tank", "two-tank level supervision with a stuck-valve fault injection",
            tankSchema(),
            [](const ScenarioParams& p) { return std::make_unique<TankScenario>(p); });
    lib.add("cruise", "cruise-control state machine over vehicle longitudinal dynamics",
            cruiseSchema(),
            [](const ScenarioParams& p) { return std::make_unique<CruiseScenario>(p); });
    lib.add("pendulum", "inverted-pendulum swing-up and catch with mode-switching control",
            pendulumSchema(),
            [](const ScenarioParams& p) { return std::make_unique<PendulumScenario>(p); });
    lib.add("faulty", "deliberately throwing scenario (fault-isolation and watchdog tests)",
            faultySchema(),
            [](const ScenarioParams& p) { return std::make_unique<FaultyScenario>(p); });
}

} // namespace urtx::srv::scenarios
