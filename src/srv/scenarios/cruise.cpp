#include "srv/scenarios/scenarios.hpp"

namespace urtx::srv::scenarios {

rt::Protocol& cruiseProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Cruise"};
        q.in("power").in("set").in("cancel").in("brake").in("resume"); // driver -> capsule
        q.out("enable").out("disable").out("setpoint"); // capsule -> plant group
        return q;
    }();
    return p;
}

CruiseScenario::CruiseScenario(const ScenarioParams& p) {
    const bool verbose = p.num("verbose", 0.0) > 0.5;
    scale_ = p.num("script_scale", 1.0);
    car_ = std::make_unique<Vehicle>("car", &group_);
    pi_ = std::make_unique<SpeedController>("pi", &group_);
    applyParams(*car_, p);
    applyParams(*pi_, p);
    cruise_ = std::make_unique<CruiseCapsule>("cruise", verbose);
    driver_ = std::make_unique<CruiseDriver>("driver", scale_);
    // Data flows must exist before .streamer() flattens the network.
    sys_ = urtx::system()
               .flow(car_->speed, pi_->meas)
               .flow(pi_->force, car_->force)
               .capsule(*cruise_)
               .capsule(*driver_)
               .streamer(group_, p.str("integrator", "RK4"), p.num("dt", 0.02))
               .flow(driver_->out, cruise_->driver)
               .flow(cruise_->plant, pi_->ctl)
               .trace("v", [this] { return car_->speed.get(); })
               .trace("F", [this] { return pi_->force.get(); })
               .build();
}

bool CruiseScenario::verdict(std::string& detail) const {
    const double v = car_->speed.get();
    char buf[144];
    if (!std::isfinite(v) || std::abs(v) > 150.0) {
        std::snprintf(buf, sizeof(buf), "speed diverged: v = %g m/s", v);
        detail += buf;
        return false;
    }
    const double vset = pi_->param("vset");
    std::snprintf(buf, sizeof(buf), "v = %.2f m/s, setpoint %.1f m/s, cruise %s", v, vset,
                  cruise_->machine().currentPath().c_str());
    detail += buf;
    // Tracking is only judged in the script's settled windows — at least
    // ten (scaled) seconds after an engagement-affecting driver event
    // (set @2, brake @20, resume @25, new setpoint @40).
    const double t = scale_ > 0 ? sys_->now() / scale_ : sys_->now();
    const bool settled = (t >= 12.0 && t < 20.0) || (t >= 35.0 && t < 40.0) || t >= 50.0;
    if (pi_->param("enabled") > 0.5 && settled && std::abs(v - vset) >= 2.0) {
        detail += " — tracking error out of band";
        return false;
    }
    return true;
}

} // namespace urtx::srv::scenarios
