#include "srv/scenarios/scenarios.hpp"

namespace urtx::srv::scenarios {

rt::Protocol& tankProtocol() {
    static rt::Protocol p = [] {
        rt::Protocol q{"Tank"};
        q.out("levelHigh").out("levelOk");               // plant -> supervisor
        q.in("setPump").in("setValve").in("stickValve"); // supervisor/fault -> plant
        return q;
    }();
    return p;
}

TankScenario::TankScenario(const ScenarioParams& p) {
    const bool verbose = p.num("verbose", 0.0) > 0.5;
    tank_ = std::make_unique<TwoTank>("tanks", &group_);
    sup_ = std::make_unique<TankSupervisor>("supervisor", verbose);
    fault_ = std::make_unique<FaultInjector>("fault", p.num("faultAt", 30.0), verbose);
    applyParams(*tank_, p);
    sys_ = urtx::system()
               .capsule(*sup_)
               .capsule(*fault_)
               .streamer(group_, p.str("integrator", "RK45"), p.num("dt", 0.05))
               .flow(sup_->plant, tank_->ctl)
               .flow(fault_->plant, tank_->faultIn)
               .trace("h1", [this] { return tank_->h1.get(); })
               .trace("h2", [this] { return tank_->h2.get(); })
               .trace("pump", [this] { return tank_->param("qin"); })
               .build();
}

bool TankScenario::verdict(std::string& detail) const {
    const double level = tank_->h1.get();
    const double hmax = tank_->param("hmax");
    char buf[128];
    std::snprintf(buf, sizeof(buf), "h1 = %.3f m (alarm %.3f m), supervisor %s", level,
                  hmax, sup_->machine().currentPath().c_str());
    detail += buf;
    // The supervisor may let the level hover around the threshold (alarm ->
    // pump off -> drain -> pump on), but it must never park above it.
    return level <= hmax + 0.05;
}

} // namespace urtx::srv::scenarios
