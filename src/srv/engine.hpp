#pragma once
/// \file engine.hpp
/// The scenario-serving engine: run a batch of ScenarioSpecs across a
/// worker pool with work stealing, deadline-driven admission control and
/// per-scenario fault isolation.
///
/// Scheduling
/// ----------
/// Jobs are planned earliest-deadline-first onto per-worker deques by
/// greedy min-projected-load assignment (deadline-less jobs go last, in
/// submission order). Each worker drains its own deque from the front and,
/// when empty, steals from the back of the most-loaded sibling — so a skewed
/// cost estimate degrades into stealing, not idle workers.
///
/// Admission control
/// -----------------
/// A job carrying a deadline is checked twice against its wall-cost
/// estimate (spec.costSeconds, defaulting to EngineConfig::defaultCostSeconds):
/// at planning time (projected queue position would already blow the
/// deadline) and again at dispatch (elapsed + estimate past the deadline).
/// Rejected jobs never build a system; they report ScenarioStatus::Rejected
/// with the reason, and feed the srv.jobs_rejected counter.
///
/// Isolation
/// ---------
/// Every job runs against a private HybridSystem built fresh from its
/// factory, under a private obs::Registry and obs::FlightRecorder installed
/// for the duration of the run (ScopedRegistry / ScopedFlightRecorder —
/// propagated into controller and solver-pool threads the run spawns). A
/// throwing scenario is caught on its worker: the job reports Failed with
/// the exception text and a flight-recorder post-mortem JSON; every other
/// job is untouched. Jobs with a wallBudgetSeconds are additionally guarded
/// by the engine watchdog thread, which trips HybridSystem::requestStop so
/// a runaway simulation aborts cooperatively at its next grid step.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "srv/scenario.hpp"

namespace urtx::obs {
class Counter;
class Gauge;
class Histogram;
} // namespace urtx::obs

namespace urtx::srv {

class WarmScenarioCache;

struct EngineConfig {
    /// Worker threads; 0 = hardware concurrency.
    std::size_t workers = 0;
    /// Admission-control wall-cost estimate for jobs that declare none.
    double defaultCostSeconds = 0.05;
    /// Give each job a private metrics registry (snapshot attached to its
    /// result); the engine enables the process metrics gate for the duration
    /// of the batch and restores it afterwards. Off = jobs write the process
    /// registry like any other code, at whatever gate state the caller set.
    bool scopedMetrics = true;
    /// Give each job a private flight recorder and attach its dump to the
    /// result on failure.
    bool postmortems = true;
    /// Enforce deadlines at planning and dispatch time. Off = deadlines are
    /// only reported (deadlineMet), never rejected.
    bool admissionControl = true;
    /// Watchdog poll period for wall-budget enforcement.
    double watchdogPollSeconds = 0.005;
    /// Event capacity of each per-job flight recorder.
    std::size_t recorderCapacity = 256;
};

struct BatchResult {
    std::vector<ScenarioResult> results; ///< submission order
    std::size_t workers = 0;
    double wallSeconds = 0.0;
    std::uint64_t steals = 0;
    std::uint64_t watchdogTrips = 0;

    std::size_t count(ScenarioStatus s) const;
};

class ServeEngine {
public:
    explicit ServeEngine(EngineConfig cfg = {});

    /// Run the whole batch; blocks until every job has succeeded, failed or
    /// been rejected. Results come back in submission order.
    BatchResult run(const std::vector<ScenarioSpec>& specs,
                    const ScenarioLibrary& lib = ScenarioLibrary::global());

    /// Attach a warm-scenario cache (caller-owned, must outlive the engine
    /// and every session): jobs then acquire built instances by
    /// ScenarioSpec::warmKey() and park them back after a successful run.
    /// nullptr detaches. Affects both run() batches and sessions started
    /// afterwards.
    void setWarmCache(WarmScenarioCache* cache) { warmCache_ = cache; }
    WarmScenarioCache* warmCache() const { return warmCache_; }

    const EngineConfig& config() const { return cfg_; }

    /// A resident worker pool that outlives any single batch: jobs are
    /// submitted one at a time, scheduled earliest-absolute-deadline-first,
    /// and reported through a per-job callback as they finish. This is the
    /// serving daemon's engine face — the pool, the watchdog and any warm
    /// cache stay hot between requests.
    ///
    /// Deadlines are measured from *submit* (not batch start); admission
    /// control re-checks at dispatch exactly like the batch path. stop()
    /// and the destructor drain gracefully: everything admitted still runs,
    /// nothing new is accepted.
    class Session {
    public:
        /// Invoked on a worker thread when the job finishes (any status).
        using Callback = std::function<void(ScenarioResult)>;

        ~Session(); ///< stops (graceful drain) if still running
        Session(const Session&) = delete;
        Session& operator=(const Session&) = delete;

        /// Queue one job. Returns false — without queuing — once draining
        /// or stopped; the caller owns the structured rejection.
        bool submit(ScenarioSpec spec, Callback done);

        /// Stop accepting jobs; admitted ones keep running.
        void beginDrain();
        bool draining() const;
        /// Block until the queue is empty and every worker is idle.
        void drainWait();
        /// beginDrain + drainWait + join the pool. Idempotent.
        void stop();

        std::size_t queueDepth() const;
        std::size_t inFlight() const;

    private:
        friend class ServeEngine;
        struct Impl;
        explicit Session(std::unique_ptr<Impl> impl);
        std::unique_ptr<Impl> impl_;
    };

    /// Spin up a resident session (workers + watchdog started immediately).
    std::unique_ptr<Session> startSession(
        const ScenarioLibrary& lib = ScenarioLibrary::global());

private:
    EngineConfig cfg_;
    WarmScenarioCache* warmCache_ = nullptr;

    // srv.* metrics, bound eagerly to the process registry (engine-level
    // accounting must not land in a scenario's private registry, and the
    // pointers must outlive every scoped thread that writes them).
    obs::Counter* jobsSubmitted_;
    obs::Counter* jobsCompleted_;
    obs::Counter* jobsFailed_;
    obs::Counter* jobsRejected_;
    obs::Counter* steals_;
    obs::Counter* watchdogTrips_;
    obs::Counter* deadlinesMet_;
    obs::Counter* deadlinesMissed_;
    obs::Histogram* queueWait_;
    obs::Histogram* jobWall_;
    obs::Gauge* workersBusyHwm_;
};

} // namespace urtx::srv
