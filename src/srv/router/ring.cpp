#include "srv/router/ring.hpp"

#include <algorithm>

namespace urtx::srv::router {

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

namespace {

std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t vnodeHash(const std::string& id, std::size_t vnode) {
    return mix64(fnv1a(id + "#" + std::to_string(vnode)));
}

} // namespace

HashRing::HashRing(std::size_t virtualNodes)
    : virtualNodes_(virtualNodes == 0 ? 1 : virtualNodes) {}

void HashRing::add(const std::string& id) {
    if (contains(id)) return;
    const auto backend = static_cast<std::uint32_t>(backends_.size());
    backends_.push_back(id);
    points_.reserve(points_.size() + virtualNodes_);
    for (std::size_t v = 0; v < virtualNodes_; ++v) {
        points_.push_back(Point{vnodeHash(id, v), backend});
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) { return a.hash < b.hash; });
}

void HashRing::remove(const std::string& id) {
    const auto it = std::find(backends_.begin(), backends_.end(), id);
    if (it == backends_.end()) return;
    backends_.erase(it);
    // Rebuild from scratch: indices into backends_ shifted, and rebalance is
    // rare (ejection / re-admission), so simplicity beats an in-place patch.
    std::vector<std::string> ids = std::move(backends_);
    backends_.clear();
    points_.clear();
    for (const std::string& b : ids) add(b);
}

bool HashRing::contains(const std::string& id) const {
    return std::find(backends_.begin(), backends_.end(), id) != backends_.end();
}

std::size_t HashRing::lowerPoint(std::uint64_t h) const {
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), h,
        [](const Point& p, std::uint64_t v) { return p.hash < v; });
    return it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
}

const std::string* HashRing::owner(std::uint64_t key) const {
    if (points_.empty()) return nullptr;
    return &backends_[points_[lowerPoint(mix64(key))].backend];
}

const std::string* HashRing::successor(std::uint64_t key, const std::string& exclude) const {
    if (points_.empty()) return nullptr;
    const std::size_t start = lowerPoint(mix64(key));
    for (std::size_t i = 0; i < points_.size(); ++i) {
        const std::string& id = backends_[points_[(start + i) % points_.size()].backend];
        if (id != exclude) return &id;
    }
    return nullptr;
}

} // namespace urtx::srv::router
