/// \file urtx_router.cpp
/// The fleet router CLI: front a ring of urtx_served shards with one
/// consistent-hash sharding daemon speaking the same wire protocol.
///
///   urtx_router --backend SPEC [--backend SPEC ...]
///               [--socket PATH] [--tcp PORT | --port PORT] [--vnodes N]
///               [--probe-interval S] [--probe-timeout S] [--probe-fail N]
///               [--hedge-timeout S] [--reconnect S] [--window N]
///               [--stats-tick S] [--reactor auto|epoll|poll]
///               [--shard-pid PID ...] [--quiet]
///
/// A backend SPEC is "[id=]PORT" (loopback TCP) or "[id=]/path" (Unix
/// socket); the optional id names the shard in health/metrics output.
/// --port 0 binds an ephemeral loopback port and prints one "PORT <n>"
/// line on stdout, same contract as urtx_served.
///
/// SIGTERM/SIGINT drain the fleet tier gracefully: the router stops
/// admitting jobs (structured "draining" rejections), waits until every
/// routed job's reply reached its client, then — when --shard-pid was
/// given — propagates SIGTERM to each shard so the whole fleet drains
/// without losing or duplicating a single job.
///
/// Exit status: 0 after a clean drain, 2 on usage/bind errors.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/types.h>
#include <unistd.h>

#include "srv/router/router.hpp"

namespace router = urtx::srv::router;
namespace srv = urtx::srv;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s --backend SPEC [--backend SPEC ...]\n"
                 "          [--socket PATH] [--tcp PORT | --port PORT] [--vnodes N]\n"
                 "          [--probe-interval S] [--probe-timeout S] [--probe-fail N]\n"
                 "          [--hedge-timeout S] [--reconnect S] [--window N]\n"
                 "          [--stats-tick S] [--reactor auto|epoll|poll]\n"
                 "          [--shard-pid PID ...] [--quiet]\n"
                 "  SPEC: [id=]PORT (loopback TCP) or [id=]/path (Unix socket)\n",
                 argv0);
    return 2;
}

bool parseBackendSpec(const std::string& spec, router::BackendAddress& out) {
    std::string rest = spec;
    const std::size_t eq = rest.find('=');
    if (eq != std::string::npos && rest.find('/') != 0) {
        out.id = rest.substr(0, eq);
        rest = rest.substr(eq + 1);
    }
    if (rest.empty()) return false;
    if (rest.find('/') != std::string::npos) {
        out.socketPath = rest;
        return true;
    }
    char* end = nullptr;
    const unsigned long port = std::strtoul(rest.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port == 0 || port > 65535) return false;
    out.tcpPort = static_cast<std::uint16_t>(port);
    return true;
}

} // namespace

int main(int argc, char** argv) {
    router::RouterConfig cfg;
    std::vector<pid_t> shardPids;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return ++i < argc ? argv[i] : nullptr;
        };
        if (arg == "--backend") {
            const char* v = next();
            router::BackendAddress addr;
            if (!v || !parseBackendSpec(v, addr)) {
                std::fprintf(stderr, "%s: bad backend spec '%s'\n", argv[0],
                             v ? v : "");
                return usage(argv[0]);
            }
            cfg.backends.push_back(std::move(addr));
        } else if (arg == "--socket") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.socketPath = v;
        } else if (arg == "--tcp") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.tcpPort = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--port") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.tcpPort = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
            cfg.tcpEphemeral = cfg.tcpPort == 0;
        } else if (arg == "--vnodes") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.virtualNodes = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--probe-interval") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.probeIntervalSeconds = std::strtod(v, nullptr);
        } else if (arg == "--probe-timeout") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.probeTimeoutSeconds = std::strtod(v, nullptr);
        } else if (arg == "--probe-fail") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.probeFailThreshold = static_cast<int>(std::strtol(v, nullptr, 10));
        } else if (arg == "--hedge-timeout") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.hedgeTimeoutSeconds = std::strtod(v, nullptr);
        } else if (arg == "--reconnect") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.reconnectSeconds = std::strtod(v, nullptr);
        } else if (arg == "--window") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.maxInFlightPerClient =
                static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--stats-tick") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            cfg.statsTickSeconds = std::strtod(v, nullptr);
        } else if (arg == "--reactor") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            const std::string backend = v;
            if (backend == "auto") {
                cfg.reactorBackend = srv::Reactor::Backend::Auto;
            } else if (backend == "epoll") {
                cfg.reactorBackend = srv::Reactor::Backend::Epoll;
            } else if (backend == "poll") {
                cfg.reactorBackend = srv::Reactor::Backend::Poll;
            } else {
                std::fprintf(stderr, "%s: unknown reactor backend '%s'\n", argv[0], v);
                return usage(argv[0]);
            }
        } else if (arg == "--shard-pid") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            shardPids.push_back(static_cast<pid_t>(std::strtol(v, nullptr, 10)));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (cfg.backends.empty()) {
        std::fprintf(stderr, "%s: at least one --backend is required\n", argv[0]);
        return usage(argv[0]);
    }
    if (cfg.socketPath.empty() && cfg.tcpPort == 0 && !cfg.tcpEphemeral) {
        return usage(argv[0]);
    }

    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    sigaddset(&sigs, SIGINT);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
    std::signal(SIGPIPE, SIG_IGN);

    router::RouterDaemon daemon(std::move(cfg));
    std::string err;
    if (!daemon.start(&err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }
    // Same machine-scrapeable contract as urtx_served: announce the real
    // port on stdout, flushed before any serving happens.
    if (daemon.boundTcpPort() != 0) {
        std::printf("PORT %u\n", daemon.boundTcpPort());
        std::fflush(stdout);
    }
    if (!quiet) {
        if (!daemon.config().socketPath.empty()) {
            std::fprintf(stderr, "urtx_router: listening on %s\n",
                         daemon.config().socketPath.c_str());
        }
        if (daemon.boundTcpPort() != 0) {
            std::fprintf(stderr, "urtx_router: listening on 127.0.0.1:%u\n",
                         daemon.boundTcpPort());
        }
        std::fprintf(stderr, "urtx_router: %zu backend(s) configured\n",
                     daemon.config().backends.size());
    }

    int sig = 0;
    sigwait(&sigs, &sig);
    if (!quiet) {
        std::fprintf(stderr, "urtx_router: %s — draining fleet\n",
                     sig == SIGTERM ? "SIGTERM" : "SIGINT");
    }
    // Drain order matters: the router first stops admitting and waits for
    // every routed job's reply to reach its client — the shards must stay
    // up for that — and only then passes the drain downstream.
    daemon.stop();
    for (const pid_t pid : shardPids) {
        if (pid > 0) ::kill(pid, SIGTERM);
    }
    if (!quiet) {
        std::fprintf(stderr, "urtx_router: drained (%zu shard(s) signalled)\n",
                     shardPids.size());
    }
    return 0;
}
