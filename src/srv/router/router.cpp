#include "srv/router/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <sstream>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "srv/batch_io.hpp"
#include "srv/daemon/framing.hpp"
#include "srv/error.hpp"
#include "srv/json.hpp"
#include "srv/model/service.hpp"

namespace urtx::srv::router {

namespace {

void setNonBlocking(int fd) {
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl >= 0) ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

std::string errorRecord(const std::string& code, const std::string& message) {
    return urtx::srv::errorRecord(ErrorInfo(code, message));
}

ResultRecord rejectionRec(const ScenarioSpec& spec, std::string verdict,
                          std::string code, std::string error) {
    ResultRecord r;
    r.name = spec.name;
    r.scenario = spec.scenario;
    r.status = ScenarioStatus::Rejected;
    r.passed = false;
    r.verdict = std::move(verdict);
    r.errorCode = std::move(code);
    r.error = std::move(error);
    return r;
}

/// Same ladder as srvd.request_latency_seconds so fleet and standalone
/// latency histograms are directly comparable.
std::vector<double> requestLatencyBounds() {
    return {1e-6, 2.5e-6, 5e-6,  1e-5,   2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
            1e-3, 2.5e-3, 5e-3,  1e-2,   2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
            1.0,  2.5,    10.0};
}

/// Router-assigned reply token <-> the job name sent upstream. Tokens never
/// collide with client names because the client's name never crosses the
/// router; it is restored from the Pending entry on the way back.
std::string tokenName(std::uint64_t token) { return "r" + std::to_string(token); }

bool tokenFromName(const std::string& name, std::uint64_t& token) {
    if (name.size() < 2 || name[0] != 'r') return false;
    std::uint64_t v = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    token = v;
    return true;
}

/// Generous cap for backend -> router frames: a shard's trace/metrics
/// control responses can far exceed the client-side request cap.
constexpr std::size_t kBackendFrameCap = 64u << 20;

constexpr std::uint64_t kTickNs = 25ull * 1000 * 1000; // 25 ms housekeeping

} // namespace

/// One downstream client connection. All state is reactor-thread-only —
/// unlike ServeDaemon there are no worker threads; backend replies arrive
/// on the same reactor that owns the client, so no locking is needed.
struct RouterDaemon::Client {
    explicit Client(int f) : fd(f) {}
    ~Client() {
        if (!fdClosed && fd >= 0) ::close(fd);
    }

    enum class Mode : std::uint8_t { Sniff, Json, Binary };

    const int fd;
    Mode mode = Mode::Sniff;
    std::string inBuf;
    std::string outBuf;
    bool registered = false;
    bool readPaused = false;
    bool peerEof = false;
    bool dead = false;
    bool fdClosed = false;
    /// Routed jobs + outstanding fan-outs awaiting a reply to this client.
    std::size_t inFlight = 0;
    /// True while the input loop is consuming this client's buffer: a
    /// same-stack completion (e.g. an empty fan-out) must not close the
    /// connection out from under the loop.
    bool processing = false;
    std::uint64_t seq = 0; ///< default job names per connection
};

/// A client-issued control verb in flight across the fleet: one expected
/// response per shard it was sent to; completes (and answers the client)
/// when the last shard responds or is torn down.
struct RouterDaemon::Fanout {
    std::shared_ptr<Client> client;
    std::string op;
    std::size_t awaiting = 0;
    /// True while startFanout is still enqueueing: a shard torn down by its
    /// own enqueue answers immediately, and completion must wait for the
    /// remaining shards to be offered the verb first.
    bool dispatching = false;
    std::vector<std::pair<std::string, std::string>> responses; ///< shard id, payload
};

/// One upstream urtx_served shard and its (single, pipelined) connection.
struct RouterDaemon::Backend {
    /// Down -> Connecting -> Handshaking -> Probation -> Up. Probation is
    /// connected + preamble-accepted but not yet ring-admitted: one clean
    /// health probe response promotes it (first admission or re-admission).
    enum class State : std::uint8_t { Down, Connecting, Handshaking, Probation, Up };

    BackendAddress addr;
    State state = State::Down;
    int fd = -1;
    bool registered = false;
    std::string inBuf;
    std::string outBuf;
    std::size_t preambleGot = 0; ///< echoed-preamble bytes consumed

    /// Control responses come back in request order on a daemon connection,
    /// so a FIFO of waiters matches them: a null fanout is an internal
    /// health probe.
    std::deque<std::shared_ptr<Fanout>> controlFifo;
    std::unordered_set<std::uint64_t> inflightTokens;

    bool probeOutstanding = false;
    bool probeCountedOverdue = false;
    std::uint64_t probeSentNs = 0;
    std::uint64_t lastProbeNs = 0;
    std::uint64_t nextConnectNs = 0;
    std::uint64_t ejections = 0;
    bool everAdmitted = false;
};

/// One routed job: which client asked, what it was really called, where it
/// currently sits, and how often it has been (re)placed.
struct RouterDaemon::Pending {
    std::shared_ptr<Client> client;
    std::string originalName;
    ScenarioSpec spec; ///< name rewritten to the reply token
    std::uint64_t key = 0;
    std::string backendId; ///< current placement
    std::uint64_t recvNs = 0;
    std::uint64_t sentNs = 0;
    unsigned attempts = 0;
};

RouterDaemon::RouterDaemon(RouterConfig cfg)
    : cfg_(std::move(cfg)),
      ring_(cfg_.virtualNodes),
      reactor_(std::make_unique<Reactor>(cfg_.reactorBackend)),
      statsWindow_(obs::Registry::process(), cfg_.statsWindowCapacity) {
    obs::Registry& r = obs::Registry::process();
    connectionsTotal_ = &r.counter("router.connections_total");
    connectionsGauge_ = &r.gauge("router.connections");
    jobsReceived_ = &r.counter("router.jobs_received");
    jobsRouted_ = &r.counter("router.jobs_routed");
    jobsCompleted_ = &r.counter("router.jobs_completed");
    jobsFailed_ = &r.counter("router.jobs_failed");
    rejectedDraining_ = &r.counter("router.rejected_draining");
    rejectedNoBackend_ = &r.counter("router.rejected_no_backend");
    retries_ = &r.counter("router.retries");
    backendEjections_ = &r.counter("router.backend_ejections");
    backendReadmissions_ = &r.counter("router.backend_readmissions");
    probeTimeouts_ = &r.counter("router.probe_timeouts");
    hedgeEjections_ = &r.counter("router.hedge_ejections");
    badLines_ = &r.counter("router.bad_lines");
    orphanReplies_ = &r.counter("router.orphan_replies");
    backendsUpGauge_ = &r.gauge("router.backends_up");
    pendingGauge_ = &r.gauge("router.pending_jobs");
    requestLatency_ =
        &r.histogram("router.request_latency_seconds", requestLatencyBounds());
    startNanos_ = obs::nowNanos();

    for (const BackendAddress& a : cfg_.backends) {
        auto b = std::make_unique<Backend>();
        b->addr = a;
        if (b->addr.id.empty()) {
            b->addr.id = !a.socketPath.empty()
                             ? a.socketPath
                             : "127.0.0.1:" + std::to_string(a.tcpPort);
        }
        backends_.push_back(std::move(b));
    }
}

RouterDaemon::~RouterDaemon() { stop(); }

bool RouterDaemon::start(std::string* err) {
    std::vector<int> bound;
    const auto fail = [&](const std::string& what) {
        if (err) *err = what + ": " + std::strerror(errno);
        for (int fd : bound) ::close(fd);
        return false;
    };

    if (!cfg_.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (cfg_.socketPath.size() >= sizeof(addr.sun_path)) {
            if (err) *err = "socket path too long: " + cfg_.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, cfg_.socketPath.c_str(), sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_UNIX)");
        ::unlink(cfg_.socketPath.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(" + cfg_.socketPath + ")");
        }
        if (::listen(fd, 128) != 0) {
            ::close(fd);
            return fail("listen(" + cfg_.socketPath + ")");
        }
        bound.push_back(fd);
    }

    if (cfg_.tcpPort != 0 || cfg_.tcpEphemeral) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg_.tcpEphemeral ? 0 : cfg_.tcpPort);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
            ::close(fd);
            return fail("bind(127.0.0.1:" + std::to_string(cfg_.tcpPort) + ")");
        }
        if (::listen(fd, 128) != 0) {
            ::close(fd);
            return fail("listen(tcp)");
        }
        sockaddr_in boundAddr{};
        socklen_t len = sizeof(boundAddr);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&boundAddr), &len) == 0) {
            boundTcpPort_ = ntohs(boundAddr.sin_port);
        }
        bound.push_back(fd);
    }

    if (!bound.empty()) {
        for (int fd : bound) setNonBlocking(fd);
        listenersClosed_.store(false, std::memory_order_release);
        std::lock_guard<std::mutex> lk(opsMu_);
        pendingListenFds_.insert(pendingListenFds_.end(), bound.begin(), bound.end());
    }

    {
        std::lock_guard<std::mutex> lk(startMu_);
        if (!reactorRunning_.load(std::memory_order_acquire)) {
            reactorStop_.store(false, std::memory_order_release);
            reactorThread_ = std::thread([this] { reactorLoop(); });
            reactorRunning_.store(true, std::memory_order_release);
        }
    }
    reactor_->wakeup();
    return true;
}

void RouterDaemon::adoptConnection(int fd) {
    if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
    }
    setNonBlocking(fd);
    {
        std::lock_guard<std::mutex> lk(startMu_);
        if (!reactorRunning_.load(std::memory_order_acquire)) {
            reactorStop_.store(false, std::memory_order_release);
            reactorThread_ = std::thread([this] { reactorLoop(); });
            reactorRunning_.store(true, std::memory_order_release);
        }
    }
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        adoptQueue_.push_back(fd);
    }
    connectionsTotal_->inc();
    reactor_->wakeup();
}

void RouterDaemon::beginDrain() {
    draining_.store(true, std::memory_order_release);
    reactor_->wakeup();
}

// ---------------------------------------------------------------------------
// Reactor thread
// ---------------------------------------------------------------------------

void RouterDaemon::reactorLoop() {
    const std::uint64_t statsPeriodNs =
        cfg_.statsTickSeconds > 0.0
            ? static_cast<std::uint64_t>(cfg_.statsTickSeconds * 1e9)
            : 0;
    nextStatsTickNs_ = statsPeriodNs != 0 ? obs::nowNanos() + statsPeriodNs : 0;
    std::uint64_t nextTickNs = obs::nowNanos();
    for (;;) {
        drainOps();
        if (reactorStop_.load(std::memory_order_acquire)) break;
        std::uint64_t now = obs::nowNanos();
        if (now >= nextTickNs) {
            tick(now);
            now = obs::nowNanos();
            nextTickNs = now + kTickNs;
        }
        const int timeoutMs = static_cast<int>((nextTickNs - now) / 1000000u) + 1;
        const std::vector<Reactor::Event> events = reactor_->poll(timeoutMs);
        for (const Reactor::Event& ev : events) {
            if (std::find(listenFds_.begin(), listenFds_.end(), ev.fd) !=
                listenFds_.end()) {
                onListenReadable(ev.fd);
                continue;
            }
            if (auto it = clients_.find(ev.fd); it != clients_.end()) {
                // Copy: the handler may closeClient() and erase the map node
                // out from under a reference into it.
                const std::shared_ptr<Client> c = it->second;
                onClientEvent(c, ev);
                continue;
            }
            for (auto& b : backends_) {
                if (b->fd == ev.fd) {
                    onBackendEvent(*b, ev);
                    break;
                }
            }
        }
    }

    // Teardown on this thread so fd lifecycle stays single-threaded.
    drainOps();
    std::vector<std::shared_ptr<Client>> remaining;
    remaining.reserve(clients_.size());
    for (auto& [fd, c] : clients_) remaining.push_back(c);
    clients_.clear();
    clientCount_.store(0, std::memory_order_release);
    for (const auto& c : remaining) {
        if (c->registered) reactor_->remove(c->fd);
        c->registered = false;
        if (!c->fdClosed) {
            c->fdClosed = true;
            ::shutdown(c->fd, SHUT_RDWR);
            ::close(c->fd);
        }
    }
    for (auto& b : backends_) {
        if (b->fd >= 0) {
            if (b->registered) reactor_->remove(b->fd);
            b->registered = false;
            ::close(b->fd);
            b->fd = -1;
        }
        b->state = Backend::State::Down;
    }
    for (int fd : listenFds_) {
        reactor_->remove(fd);
        ::close(fd);
    }
    listenFds_.clear();
    listenersClosed_.store(true, std::memory_order_release);
    connectionsGauge_->set(0.0);
}

void RouterDaemon::drainOps() {
    std::vector<int> adopts;
    std::vector<int> newListeners;
    {
        std::lock_guard<std::mutex> lk(opsMu_);
        adopts.swap(adoptQueue_);
        newListeners.swap(pendingListenFds_);
    }
    const bool closing = closeListenersReq_.load(std::memory_order_acquire);
    for (int fd : newListeners) {
        if (closing || reactorStop_.load(std::memory_order_acquire)) {
            ::close(fd);
            continue;
        }
        listenFds_.push_back(fd);
        reactor_->add(fd, /*read=*/true, /*write=*/false);
    }
    if (closing && !listenersClosed_.load(std::memory_order_acquire)) {
        for (int fd : listenFds_) {
            reactor_->remove(fd);
            ::shutdown(fd, SHUT_RDWR);
            ::close(fd);
        }
        listenFds_.clear();
        listenersClosed_.store(true, std::memory_order_release);
    }
    for (int fd : adopts) {
        if (reactorStop_.load(std::memory_order_acquire)) {
            ::close(fd);
            continue;
        }
        registerClient(std::make_shared<Client>(fd));
    }
}

void RouterDaemon::tick(std::uint64_t nowNs) {
    // Backend lifecycle: reconnect the down, probe the live, eject the
    // unresponsive. All from this one place, all on the reactor thread.
    const auto probeIntervalNs =
        static_cast<std::uint64_t>(cfg_.probeIntervalSeconds * 1e9);
    const auto probeTimeoutNs =
        static_cast<std::uint64_t>(cfg_.probeTimeoutSeconds * 1e9);
    const auto hedgeNs = static_cast<std::uint64_t>(cfg_.hedgeTimeoutSeconds * 1e9);

    for (auto& bp : backends_) {
        Backend& b = *bp;
        if (b.state == Backend::State::Down) {
            if (nowNs >= b.nextConnectNs) connectBackend(b, nowNs);
            continue;
        }
        if (b.state == Backend::State::Connecting ||
            b.state == Backend::State::Handshaking) {
            // A connect/handshake that outlives the probe timeout is a dead
            // or wedged shard; give the socket back and retry later.
            if (nowNs - b.probeSentNs > probeTimeoutNs) {
                backendDown(b, "connect timeout");
            }
            continue;
        }
        if (!b.probeOutstanding) {
            if (nowNs - b.lastProbeNs >= probeIntervalNs) sendProbe(b, nowNs);
            continue;
        }
        const std::uint64_t overdue = nowNs - b.probeSentNs;
        if (overdue > probeTimeoutNs && !b.probeCountedOverdue) {
            b.probeCountedOverdue = true;
            probeTimeouts_->inc();
        }
        if (overdue >
            probeTimeoutNs * static_cast<std::uint64_t>(
                                 std::max(1, cfg_.probeFailThreshold))) {
            backendDown(b, "probe timeout");
            continue;
        }
        if (overdue > probeTimeoutNs && hedgeNs != 0) {
            // Hedge: a stranded job plus one overdue probe is enough — do
            // not wait out the full threshold while a client blocks.
            bool stranded = false;
            for (const std::uint64_t token : b.inflightTokens) {
                const auto it = pending_.find(token);
                if (it != pending_.end() && nowNs - it->second.sentNs > hedgeNs) {
                    stranded = true;
                    break;
                }
            }
            if (stranded) {
                hedgeEjections_->inc();
                backendDown(b, "hedge timeout with stranded job");
                continue;
            }
        }
    }

    if (nextStatsTickNs_ != 0 && nowNs >= nextStatsTickNs_) {
        backendsUpGauge_->set(static_cast<double>(backendsUp_.load()));
        pendingGauge_->set(static_cast<double>(pending_.size()));
        statsWindow_.tick();
        nextStatsTickNs_ =
            nowNs + static_cast<std::uint64_t>(cfg_.statsTickSeconds * 1e9);
    }

    // Drain completion: every routed job answered, every reply flushed.
    if (stopping_.load(std::memory_order_acquire) &&
        !drainComplete_.load(std::memory_order_acquire)) {
        bool quiescent = pending_.empty();
        if (quiescent) {
            for (const auto& [fd, c] : clients_) {
                if (c->dead) continue;
                if (c->inFlight != 0 || c->readPaused || !c->outBuf.empty()) {
                    quiescent = false;
                    break;
                }
            }
        }
        if (quiescent) drainComplete_.store(true, std::memory_order_release);
    }
}

void RouterDaemon::onListenReadable(int listenFd) {
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            setNonBlocking(fd);
            connectionsTotal_->inc();
            registerClient(std::make_shared<Client>(fd));
            continue;
        }
        if (errno == EINTR) continue;
        return; // EAGAIN, or the listener is going away under stop()
    }
}

void RouterDaemon::registerClient(const std::shared_ptr<Client>& c) {
    clients_[c->fd] = c;
    clientCount_.store(clients_.size(), std::memory_order_release);
    connectionsGauge_->set(static_cast<double>(clients_.size()));
    c->registered = reactor_->add(c->fd, /*read=*/true, /*write=*/false);
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void RouterDaemon::onClientEvent(const std::shared_ptr<Client>& c,
                                 const Reactor::Event& ev) {
    if (ev.writable) flushClient(c);
    if (ev.readable || ev.hangup) readClient(c, ev.hangup);
    updateClientInterest(c);
    finishClientIfDone(c);
}

void RouterDaemon::readClient(const std::shared_ptr<Client>& c, bool hangup) {
    if (!c->peerEof && !c->dead) {
        char chunk[16384];
        std::size_t total = 0;
        for (;;) {
            if (c->readPaused && !hangup) break;
            const ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
            if (n > 0) {
                c->inBuf.append(chunk, static_cast<std::size_t>(n));
                total += static_cast<std::size_t>(n);
                if (total >= (256u << 10) && !hangup) break;
                continue;
            }
            if (n == 0) {
                c->peerEof = true;
                break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            c->peerEof = true; // ECONNRESET etc.
            break;
        }
    }
    processClientInput(c);
}

void RouterDaemon::processClientInput(const std::shared_ptr<Client>& c) {
    if (c->dead) {
        c->inBuf.clear();
        c->readPaused = false;
        return;
    }
    if (c->mode == Client::Mode::Sniff) {
        if (c->inBuf.empty()) return;
        if (c->inBuf[0] == wiregen::kMagic[0]) {
            if (c->inBuf.size() < wiregen::kPreambleBytes) {
                if (!c->peerEof) return;
                c->mode = Client::Mode::Json; // truncated hello at EOF
            } else if (wire::checkPreamble(c->inBuf.data())) {
                c->mode = Client::Mode::Binary;
                c->inBuf.erase(0, wiregen::kPreambleBytes);
                writeClientOut(c, wire::preamble()); // echo = handshake accept
            } else {
                c->mode = Client::Mode::Json;
            }
        } else {
            c->mode = Client::Mode::Json;
        }
    }
    if (c->mode == Client::Mode::Binary) {
        processClientFrames(c);
    } else {
        processClientJson(c);
    }
}

void RouterDaemon::processClientJson(const std::shared_ptr<Client>& c) {
    std::string& buf = c->inBuf;
    std::size_t start = 0;
    c->processing = true;
    for (;;) {
        if (c->dead) {
            buf.clear();
            c->readPaused = false;
            c->processing = false;
            return;
        }
        if (c->inFlight >= cfg_.maxInFlightPerClient) {
            c->readPaused = true;
            break;
        }
        c->readPaused = false;
        const std::size_t nl = buf.find('\n', start);
        if (nl == std::string::npos) {
            if (buf.size() - start > cfg_.maxLineBytes) {
                buf.erase(0, start);
                failClientProtocol(c, "request line exceeds " +
                                          std::to_string(cfg_.maxLineBytes) + " bytes");
                c->processing = false;
                return;
            }
            break;
        }
        std::string line = buf.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) handleClientLine(c, line);
        if (buf.empty()) start = 0; // failClientProtocol cleared the buffer
    }
    buf.erase(0, std::min(start, buf.size()));
    c->processing = false;
    finishClientIfDone(c);
}

void RouterDaemon::processClientFrames(const std::shared_ptr<Client>& c) {
    std::string& buf = c->inBuf;
    std::size_t start = 0;
    c->processing = true;
    for (;;) {
        if (c->dead) {
            buf.clear();
            c->readPaused = false;
            c->processing = false;
            return;
        }
        if (c->peerEof && buf.empty()) break;
        if (c->inFlight >= cfg_.maxInFlightPerClient) {
            c->readPaused = true;
            break;
        }
        c->readPaused = false;
        const std::string_view rest(buf.data() + start, buf.size() - start);
        const std::optional<wire::FrameHeader> h = wire::peekFrameHeader(rest);
        if (!h) break;
        if (h->length > cfg_.maxLineBytes) {
            buf.erase(0, std::min(start, buf.size()));
            failClientProtocol(c, "frame payload of " + std::to_string(h->length) +
                                      " bytes exceeds " +
                                      std::to_string(cfg_.maxLineBytes));
            c->processing = false;
            return;
        }
        const std::size_t need = wiregen::kFrameHeaderBytes + h->length;
        if (rest.size() < need) break;
        const std::string payload(rest.substr(wiregen::kFrameHeaderBytes, h->length));
        start += need;
        switch (static_cast<wire::FrameType>(h->type)) {
        case wire::FrameType::Job: {
            const std::uint64_t recvNs = obs::nowNanos();
            wiregen::WireJob w;
            std::string err;
            if (!wiregen::WireJob::decode(w, payload.data(), payload.size(), &err)) {
                writeClientError(c, "proto.bad-frame", "bad job frame: " + err);
                badLines_->inc();
                break;
            }
            routeSpec(c, wire::jobFromWire(w), recvNs);
            break;
        }
        case wire::FrameType::Control: {
            std::string err;
            const std::optional<json::Value> doc = json::parse(payload, &err);
            if (!doc || !doc->isObject()) {
                writeClientControl(
                    c, doc ? errorRecord("verb.bad-argument",
                                         "control frame must carry a JSON object")
                           : errorRecord("proto.bad-json", err));
                badLines_->inc();
                break;
            }
            const json::Value* op = doc->find("op");
            if (!op || !op->isString()) {
                writeClientControl(
                    c, errorRecord("verb.bad-argument",
                                   "control frame requires a string 'op'"));
                badLines_->inc();
                break;
            }
            handleClientControl(c, op->string, *doc);
            break;
        }
        default:
            badLines_->inc();
            failClientProtocol(c, "unexpected frame type " + std::to_string(h->type));
            c->processing = false;
            return;
        }
        if (buf.empty()) start = 0;
    }
    buf.erase(0, std::min(start, buf.size()));
    c->processing = false;
    finishClientIfDone(c);
}

void RouterDaemon::handleClientLine(const std::shared_ptr<Client>& c,
                                    const std::string& line) {
    const std::uint64_t recvNs = obs::nowNanos();
    std::string err;
    const std::optional<json::Value> doc = json::parse(line, &err);
    if (!doc || !doc->isObject()) {
        writeClientError(c, doc ? "proto.bad-request" : "proto.bad-json",
                         doc ? "request must be a JSON object" : err);
        badLines_->inc();
        return;
    }
    if (const json::Value* op = doc->find("op"); op && op->isString()) {
        handleClientControl(c, op->string, *doc);
        return;
    }
    std::vector<ScenarioSpec> specs;
    try {
        specs = parseJobObject(*doc);
    } catch (const std::exception& ex) {
        writeClientError(c, "job.bad-spec", ex.what());
        badLines_->inc();
        return;
    }
    for (ScenarioSpec& spec : specs) routeSpec(c, std::move(spec), recvNs);
}

void RouterDaemon::handleClientControl(const std::shared_ptr<Client>& c,
                                       const std::string& op, const json::Value& doc) {
    // The fleet-wide verbs fan out to every live shard and aggregate;
    // everything else is answered (or rejected) locally. Observability must
    // stay reachable while draining, so none of this checks draining_.
    if (op == "metrics" || op == "health" || op == "stats" || op == "trace" ||
        op == "set_sampling") {
        if (op == "set_sampling") {
            const json::Value* rate = doc.find("rate");
            if (!rate || !rate->isNumber()) {
                writeClientControl(
                    c, errorRecord("verb.bad-argument",
                                   "set_sampling requires a numeric 'rate'"));
                badLines_->inc();
                return;
            }
        }
        startFanout(c, op, json::stringify(doc));
        return;
    }
    if (op == "list_scenarios") {
        startFanout(c, op, json::stringify(doc));
        return;
    }
    if (op == "define_scenario") {
        // Validate here so a bad document is rejected once by the router
        // instead of N times by N shards, and so the model name is known
        // before anything hits the wire: good uploads are remembered under
        // that name and replayed to every shard admitted later.
        const model::DefineOutcome res = model::validateDefineVerb(doc);
        if (!res.ok) {
            writeClientControl(c, res.response);
            badLines_->inc();
            return;
        }
        const std::string verbJson = json::stringify(doc);
        models_[res.name] = verbJson;
        startFanout(c, op, verbJson);
        return;
    }
    writeClientControl(c, errorRecord("proto.unknown-op", "unknown op '" + op + "'"));
    badLines_->inc();
}

void RouterDaemon::routeSpec(const std::shared_ptr<Client>& c, ScenarioSpec spec,
                             std::uint64_t recvNs) {
    jobsReceived_->inc();
    if (spec.name.empty()) spec.name = spec.scenario + "#" + std::to_string(c->seq++);
    if (draining_.load(std::memory_order_acquire)) {
        rejectedDraining_->inc();
        writeClientRejection(c, spec, "draining", "job.rejected.draining",
                             "router is draining");
        return;
    }
    if (ring_.empty()) {
        rejectedNoBackend_->inc();
        writeClientRejection(c, spec, "no_backend", "router.no-backend",
                             "no backend available");
        return;
    }
    const std::uint64_t token = nextToken_++;
    Pending p;
    p.client = c;
    p.originalName = std::move(spec.name);
    spec.name = tokenName(token);
    p.key = spec.warmKey();
    p.spec = std::move(spec);
    p.recvNs = recvNs;
    pending_.emplace(token, std::move(p));
    c->inFlight++;
    setPendingCount();
    dispatchToken(token);
}

void RouterDaemon::updateClientInterest(const std::shared_ptr<Client>& c) {
    if (c->fdClosed) return;
    const bool wantWrite = !c->outBuf.empty() && !c->dead;
    const bool wantRead = !c->readPaused && !c->peerEof && !c->dead;
    if (!wantRead && !wantWrite) {
        if (c->registered) {
            reactor_->remove(c->fd);
            c->registered = false;
        }
        return;
    }
    if (!c->registered) {
        c->registered = reactor_->add(c->fd, wantRead, wantWrite);
        return;
    }
    reactor_->modify(c->fd, wantRead, wantWrite);
}

void RouterDaemon::flushClient(const std::shared_ptr<Client>& c) {
    if (c->fdClosed || c->dead) {
        c->outBuf.clear();
        return;
    }
    std::size_t off = 0;
    while (off < c->outBuf.size()) {
        const ssize_t n = ::send(c->fd, c->outBuf.data() + off,
                                 c->outBuf.size() - off, MSG_NOSIGNAL);
        if (n >= 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        c->dead = true;
        c->outBuf.clear();
        return;
    }
    c->outBuf.erase(0, off);
}

void RouterDaemon::finishClientIfDone(const std::shared_ptr<Client>& c) {
    if (c->fdClosed || c->processing) return;
    if (!c->peerEof && !c->dead) return;
    if (c->inFlight != 0) return;
    if (c->readPaused) return; // buffered requests still pending resume
    if (!c->outBuf.empty() && !c->dead) return;
    closeClient(c);
}

void RouterDaemon::closeClient(const std::shared_ptr<Client>& c) {
    if (c->registered) {
        reactor_->remove(c->fd);
        c->registered = false;
    }
    if (c->fdClosed) return;
    c->fdClosed = true;
    c->outBuf.clear();
    ::shutdown(c->fd, SHUT_RDWR);
    ::close(c->fd);
    clients_.erase(c->fd);
    clientCount_.store(clients_.size(), std::memory_order_release);
    connectionsGauge_->set(static_cast<double>(clients_.size()));
}

void RouterDaemon::failClientProtocol(const std::shared_ptr<Client>& c,
                                      const std::string& msg) {
    writeClientError(c, "proto.violation", msg);
    badLines_->inc();
    c->inBuf.clear();
    c->readPaused = false;
    c->peerEof = true;
}

void RouterDaemon::resumeClient(const std::shared_ptr<Client>& c) {
    if (c->fdClosed) return;
    if (c->readPaused && c->inFlight < cfg_.maxInFlightPerClient) {
        c->readPaused = false;
        processClientInput(c); // buffered input before new reads
    }
    updateClientInterest(c);
    finishClientIfDone(c);
}

void RouterDaemon::writeClientRecord(const std::shared_ptr<Client>& c,
                                     const ResultRecord& rec) {
    if (c->dead || c->fdClosed) return;
    std::string bytes;
    if (c->mode == Client::Mode::Binary) {
        wire::appendFrame(bytes, wire::FrameType::Result,
                          wire::resultToWire(rec).encode());
    } else {
        bytes = recordJson(rec);
        bytes.push_back('\n');
    }
    writeClientOut(c, bytes);
}

void RouterDaemon::writeClientError(const std::shared_ptr<Client>& c,
                                    const std::string& code,
                                    const std::string& message) {
    if (c->dead || c->fdClosed) return;
    const std::string record = errorRecord(code, message);
    std::string bytes;
    if (c->mode == Client::Mode::Binary) {
        wire::appendFrame(bytes, wire::FrameType::Error, record);
    } else {
        bytes = record;
        bytes.push_back('\n');
    }
    writeClientOut(c, bytes);
}

void RouterDaemon::writeClientControl(const std::shared_ptr<Client>& c,
                                      const std::string& payload) {
    if (c->dead || c->fdClosed) return;
    std::string bytes;
    if (c->mode == Client::Mode::Binary) {
        wire::appendFrame(bytes, wire::FrameType::ControlResponse, payload);
    } else {
        bytes = payload;
        bytes.push_back('\n');
    }
    writeClientOut(c, bytes);
}

void RouterDaemon::writeClientRejection(const std::shared_ptr<Client>& c,
                                        const ScenarioSpec& spec,
                                        const std::string& verdict,
                                        const std::string& code,
                                        const std::string& error) {
    writeClientRecord(c, rejectionRec(spec, verdict, code, error));
}

void RouterDaemon::writeClientOut(const std::shared_ptr<Client>& c,
                                  std::string_view bytes) {
    if (c->fdClosed || c->dead) return;
    if (c->outBuf.empty()) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n = ::send(c->fd, bytes.data() + off, bytes.size() - off,
                                     MSG_NOSIGNAL);
            if (n >= 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            c->dead = true; // EPIPE/ECONNRESET: discard later records
            return;
        }
        if (off < bytes.size()) c->outBuf.assign(bytes.substr(off));
    } else {
        c->outBuf.append(bytes);
    }
    updateClientInterest(c);
}

// ---------------------------------------------------------------------------
// Backend side
// ---------------------------------------------------------------------------

RouterDaemon::Backend* RouterDaemon::backendById(const std::string& id) {
    for (auto& b : backends_) {
        if (b->addr.id == id) return b.get();
    }
    return nullptr;
}

void RouterDaemon::connectBackend(Backend& b, std::uint64_t nowNs) {
    int fd = -1;
    if (!b.addr.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (b.addr.socketPath.size() >= sizeof(addr.sun_path)) {
            b.nextConnectNs =
                nowNs + static_cast<std::uint64_t>(cfg_.reconnectSeconds * 1e9);
            return;
        }
        std::strncpy(addr.sun_path, b.addr.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0) {
            setNonBlocking(fd);
            if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
                errno != EINPROGRESS) {
                ::close(fd);
                fd = -1;
            }
        }
    } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(b.addr.tcpPort);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd >= 0) {
            setNonBlocking(fd);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
                errno != EINPROGRESS) {
                ::close(fd);
                fd = -1;
            }
        }
    }
    if (fd < 0) {
        b.nextConnectNs =
            nowNs + static_cast<std::uint64_t>(cfg_.reconnectSeconds * 1e9);
        return;
    }
    b.fd = fd;
    b.state = Backend::State::Connecting;
    b.probeSentNs = nowNs; // reused as the connect deadline origin
    b.registered = reactor_->add(fd, /*read=*/false, /*write=*/true);
}

void RouterDaemon::onBackendEvent(Backend& b, const Reactor::Event& ev) {
    if (b.state == Backend::State::Connecting) {
        if (ev.hangup && !ev.writable) {
            backendDown(b, "connect refused");
            return;
        }
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(b.fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
            backendDown(b, std::string("connect: ") + std::strerror(soerr));
            return;
        }
        finishBackendConnect(b);
        return;
    }
    if (ev.writable) {
        // Flush the out buffer straight from here (same pattern as clients).
        std::size_t off = 0;
        while (off < b.outBuf.size()) {
            const ssize_t n = ::send(b.fd, b.outBuf.data() + off,
                                     b.outBuf.size() - off, MSG_NOSIGNAL);
            if (n >= 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            backendDown(b, "write error");
            return;
        }
        b.outBuf.erase(0, off);
    }
    if (ev.readable || ev.hangup) readBackend(b);
    if (b.fd >= 0 && b.state != Backend::State::Down) updateBackendInterest(b);
}

void RouterDaemon::finishBackendConnect(Backend& b) {
    b.state = Backend::State::Handshaking;
    b.preambleGot = 0;
    b.probeSentNs = obs::nowNanos(); // handshake deadline origin
    writeBackend(b, wire::preamble());
    if (b.fd >= 0) updateBackendInterest(b);
}

void RouterDaemon::readBackend(Backend& b) {
    char chunk[65536];
    for (;;) {
        const ssize_t n = ::recv(b.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            b.inBuf.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            // EOF from a shard with work outstanding: instant ejection.
            processBackendInput(b);
            if (b.state != Backend::State::Down) backendDown(b, "connection closed");
            return;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        processBackendInput(b);
        if (b.state != Backend::State::Down) backendDown(b, "read error");
        return;
    }
    processBackendInput(b);
}

void RouterDaemon::processBackendInput(Backend& b) {
    if (b.state == Backend::State::Handshaking) {
        if (b.inBuf.size() < wiregen::kPreambleBytes) return;
        std::string err;
        if (!wire::checkPreamble(b.inBuf.data(), &err)) {
            backendDown(b, "bad preamble echo: " + err);
            return;
        }
        b.inBuf.erase(0, wiregen::kPreambleBytes);
        b.state = Backend::State::Probation;
        b.probeOutstanding = false;
        sendProbe(b, obs::nowNanos()); // a clean response admits the shard
    }
    std::string& buf = b.inBuf;
    std::size_t start = 0;
    for (;;) {
        if (b.state == Backend::State::Down || b.fd < 0) return; // torn down mid-loop
        const std::string_view rest(buf.data() + start, buf.size() - start);
        const std::optional<wire::FrameHeader> h = wire::peekFrameHeader(rest);
        if (!h) break;
        if (h->length > kBackendFrameCap) {
            backendDown(b, "oversized frame from shard");
            return;
        }
        const std::size_t need = wiregen::kFrameHeaderBytes + h->length;
        if (rest.size() < need) break;
        const std::string payload(rest.substr(wiregen::kFrameHeaderBytes, h->length));
        start += need;
        switch (static_cast<wire::FrameType>(h->type)) {
        case wire::FrameType::Result: {
            wiregen::WireResult w;
            std::string err;
            if (!wiregen::WireResult::decode(w, payload.data(), payload.size(), &err)) {
                backendDown(b, "bad result frame: " + err);
                return;
            }
            handleBackendResult(b, wire::resultFromWire(w));
            break;
        }
        case wire::FrameType::Error: {
            // The daemon only emits Error for malformed input; the router
            // sends well-formed frames, so treat it as a shard-side fault
            // on whatever is oldest rather than guessing a token.
            orphanReplies_->inc();
            break;
        }
        case wire::FrameType::ControlResponse:
            handleBackendControlResp(b, payload);
            break;
        default:
            backendDown(b, "unexpected frame type from shard");
            return;
        }
        if (b.state == Backend::State::Down || b.fd < 0) return;
    }
    buf.erase(0, std::min(start, buf.size()));
}

void RouterDaemon::handleBackendResult(Backend& b, const ResultRecord& rec) {
    std::uint64_t token = 0;
    if (!tokenFromName(rec.name, token) || pending_.find(token) == pending_.end()) {
        orphanReplies_->inc();
        return;
    }
    // A shard that started draining rejects the job instead of running it.
    // Eject it and let backendDown retry everything it still holds — this
    // token included, which is why it stays in the inflight set here.
    if (rec.status == ScenarioStatus::Rejected && rec.verdict == "draining") {
        backendDown(b, "shard draining");
        return;
    }
    b.inflightTokens.erase(token);
    deliverToken(token, rec);
}

void RouterDaemon::handleBackendControlResp(Backend& b, const std::string& payload) {
    if (b.controlFifo.empty()) {
        orphanReplies_->inc();
        return;
    }
    std::shared_ptr<Fanout> f = std::move(b.controlFifo.front());
    b.controlFifo.pop_front();
    if (!f) {
        // Internal health probe.
        b.probeOutstanding = false;
        b.probeCountedOverdue = false;
        std::string err;
        const std::optional<json::Value> doc = json::parse(payload, &err);
        const bool drainingShard = doc && doc->boolOr("draining", false);
        if (drainingShard) {
            backendDown(b, "shard draining");
            return;
        }
        if (b.state == Backend::State::Probation) admitBackend(b);
        return;
    }
    fanoutResponse(f, b.addr.id, payload);
}

void RouterDaemon::admitBackend(Backend& b) {
    b.state = Backend::State::Up;
    ring_.add(b.addr.id);
    if (b.everAdmitted) backendReadmissions_->inc();
    b.everAdmitted = true;
    backendsUp_.store(ring_.backendCount(), std::memory_order_release);
    backendsUpGauge_->set(static_cast<double>(ring_.backendCount()));

    // Replay every uploaded model so this shard serves the same catalogue
    // as the rest of the fleet. The frames are queued on the connection
    // before any job can be routed here, so a job naming an uploaded model
    // never overtakes its definition. A client-less fan-out absorbs each
    // response through the normal FIFO.
    for (const auto& [name, verbJson] : models_) {
        (void)name;
        auto f = std::make_shared<Fanout>();
        f->op = "define_scenario";
        f->awaiting = 1;
        b.controlFifo.push_back(f);
        std::string bytes;
        wire::appendFrame(bytes, wire::FrameType::Control, verbJson);
        writeBackend(b, bytes);
        if (b.state != Backend::State::Up) return; // torn down mid-replay
    }
}

void RouterDaemon::backendDown(Backend& b, const std::string& reason) {
    const bool wasUp = b.state == Backend::State::Up;
    if (b.fd >= 0) {
        if (b.registered) reactor_->remove(b.fd);
        b.registered = false;
        ::close(b.fd);
        b.fd = -1;
    }
    b.state = Backend::State::Down;
    b.inBuf.clear();
    b.outBuf.clear();
    b.probeOutstanding = false;
    b.probeCountedOverdue = false;
    b.nextConnectNs =
        obs::nowNanos() + static_cast<std::uint64_t>(cfg_.reconnectSeconds * 1e9);

    // Outstanding fan-outs get a structured per-shard error so the merged
    // response still completes.
    std::deque<std::shared_ptr<Fanout>> waiters;
    waiters.swap(b.controlFifo);
    for (auto& f : waiters) {
        if (f) {
            fanoutResponse(f, b.addr.id,
                           errorRecord("router.shard-down", "shard down: " + reason));
        }
    }

    if (wasUp) {
        ring_.remove(b.addr.id);
        backendEjections_->inc();
        b.ejections++;
        backendsUp_.store(ring_.backendCount(), std::memory_order_release);
        backendsUpGauge_->set(static_cast<double>(ring_.backendCount()));
    }

    // Retry the dead shard's jobs on their ring successor (the connection
    // is gone, so a duplicate reply for any of these is impossible).
    std::unordered_set<std::uint64_t> tokens;
    tokens.swap(b.inflightTokens);
    for (const std::uint64_t token : tokens) retryToken(token, b.addr.id);
}

void RouterDaemon::sendProbe(Backend& b, std::uint64_t nowNs) {
    b.controlFifo.push_back(nullptr);
    b.probeOutstanding = true;
    b.probeCountedOverdue = false;
    b.probeSentNs = nowNs;
    b.lastProbeNs = nowNs;
    std::string bytes;
    wire::appendFrame(bytes, wire::FrameType::Control, "{\"op\": \"health\"}");
    writeBackend(b, bytes);
}

void RouterDaemon::writeBackend(Backend& b, std::string_view bytes) {
    if (b.fd < 0) return;
    if (b.outBuf.empty()) {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(b.fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
            if (n >= 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            backendDown(b, "write error");
            return;
        }
        if (off < bytes.size()) b.outBuf.assign(bytes.substr(off));
    } else {
        b.outBuf.append(bytes);
    }
    updateBackendInterest(b);
}

void RouterDaemon::updateBackendInterest(Backend& b) {
    if (b.fd < 0) return;
    const bool wantWrite = !b.outBuf.empty();
    const bool wantRead = b.state != Backend::State::Connecting;
    if (!b.registered) {
        b.registered = reactor_->add(b.fd, wantRead, wantWrite);
        return;
    }
    reactor_->modify(b.fd, wantRead, wantWrite);
}

// ---------------------------------------------------------------------------
// Routing core
// ---------------------------------------------------------------------------

void RouterDaemon::dispatchToken(std::uint64_t token) {
    auto it = pending_.find(token);
    if (it == pending_.end()) return;
    Pending& p = it->second;
    const std::string* ownerId = ring_.owner(p.key);
    Backend* b = ownerId ? backendById(*ownerId) : nullptr;
    if (!b || b->state != Backend::State::Up) {
        failToken(token, "router.no-backend", "no backend available");
        return;
    }
    p.backendId = b->addr.id;
    p.sentNs = obs::nowNanos();
    p.attempts++;
    jobsRouted_->inc();
    std::string bytes;
    wire::appendFrame(bytes, wire::FrameType::Job, wire::jobToWire(p.spec).encode());
    b->inflightTokens.insert(token);
    writeBackend(*b, bytes);
}

void RouterDaemon::retryToken(std::uint64_t token, const std::string& deadBackend) {
    auto it = pending_.find(token);
    if (it == pending_.end()) return;
    Pending& p = it->second;
    p.backendId.clear();
    const unsigned maxAttempts =
        cfg_.maxAttemptsPerJob != 0
            ? cfg_.maxAttemptsPerJob
            : static_cast<unsigned>(std::max<std::size_t>(1, cfg_.backends.size()));
    if (p.attempts >= maxAttempts) {
        failToken(token, "router.shard-down",
                  "shard " + deadBackend + " failed and retries exhausted");
        return;
    }
    // After ring_.remove the dead shard's keys already point at their
    // successor, but the ejection may still be pending (drain rejection
    // path), so exclude it explicitly.
    const std::string* nextId = ring_.successor(p.key, deadBackend);
    Backend* b = nextId ? backendById(*nextId) : nullptr;
    if (!b || b->state != Backend::State::Up) {
        failToken(token, "router.shard-down",
                  "shard " + deadBackend + " failed and no successor is up");
        return;
    }
    retries_->inc();
    p.backendId = b->addr.id;
    p.sentNs = obs::nowNanos();
    p.attempts++;
    jobsRouted_->inc();
    std::string bytes;
    wire::appendFrame(bytes, wire::FrameType::Job, wire::jobToWire(p.spec).encode());
    b->inflightTokens.insert(token);
    writeBackend(*b, bytes);
}

void RouterDaemon::failToken(std::uint64_t token, const std::string& code,
                             const std::string& error) {
    auto it = pending_.find(token);
    if (it == pending_.end()) return;
    Pending p = std::move(it->second);
    pending_.erase(it);
    setPendingCount();
    jobsFailed_->inc();
    ResultRecord rec;
    rec.name = p.originalName;
    rec.scenario = p.spec.scenario;
    rec.status = ScenarioStatus::Failed;
    rec.passed = false;
    rec.errorCode = code;
    rec.error = error;
    const std::shared_ptr<Client> c = p.client;
    if (c) {
        writeClientRecord(c, rec);
        if (c->inFlight > 0) c->inFlight--;
        if (p.recvNs != 0) {
            requestLatency_->observe(static_cast<double>(obs::nowNanos() - p.recvNs) *
                                     1e-9);
        }
        resumeClient(c);
    }
}

void RouterDaemon::deliverToken(std::uint64_t token, ResultRecord rec) {
    auto it = pending_.find(token);
    if (it == pending_.end()) {
        orphanReplies_->inc();
        return;
    }
    Pending p = std::move(it->second);
    pending_.erase(it);
    setPendingCount();
    rec.name = p.originalName;
    jobsCompleted_->inc();
    const std::shared_ptr<Client> c = p.client;
    if (c) {
        writeClientRecord(c, rec);
        if (c->inFlight > 0) c->inFlight--;
        if (p.recvNs != 0) {
            requestLatency_->observe(static_cast<double>(obs::nowNanos() - p.recvNs) *
                                     1e-9);
        }
        resumeClient(c);
    }
}

void RouterDaemon::setPendingCount() {
    pendingCount_.store(pending_.size(), std::memory_order_release);
    pendingGauge_->set(static_cast<double>(pending_.size()));
}

// ---------------------------------------------------------------------------
// Fan-out verbs
// ---------------------------------------------------------------------------

void RouterDaemon::startFanout(const std::shared_ptr<Client>& c, const std::string& op,
                               const std::string& verbJson) {
    auto f = std::make_shared<Fanout>();
    f->client = c;
    f->op = op;
    f->dispatching = true;
    c->inFlight++;
    std::string bytes;
    wire::appendFrame(bytes, wire::FrameType::Control, verbJson);
    for (auto& bp : backends_) {
        Backend& b = *bp;
        if (b.state != Backend::State::Up) continue;
        b.controlFifo.push_back(f);
        f->awaiting++;
        // writeBackend may tear the shard down, in which case backendDown
        // already answered this fan-out for the shard with an error entry.
        writeBackend(b, bytes);
    }
    f->dispatching = false;
    if (f->awaiting == 0) finishFanout(f);
}

void RouterDaemon::fanoutResponse(const std::shared_ptr<Fanout>& f,
                                  const std::string& shardId,
                                  const std::string& payload) {
    f->responses.emplace_back(shardId, payload);
    if (f->awaiting > 0) f->awaiting--;
    if (f->awaiting == 0 && !f->dispatching) finishFanout(f);
}

void RouterDaemon::finishFanout(const std::shared_ptr<Fanout>& f) {
    // Model-replay fan-outs have no requesting client; their responses are
    // absorbed here.
    if (!f->client) return;
    const std::shared_ptr<Client>& c = f->client;
    std::ostringstream out;
    out << "{\"op\": \"" << json::escape(f->op) << "\", \"status\": \"ok\""
        << ", \"router\": " << (f->op == "stats" ? routerStatsJson() : routerSection());

    if (f->op == "health") {
        // Fleet aggregate: sum each shard's cache occupancy/traffic so the
        // capacity-scaling story is one lookup, not N.
        double whits = 0, wmiss = 0, wsize = 0, wcap = 0;
        double rhits = 0, rmiss = 0, rsize = 0, rcap = 0;
        std::size_t healthyShards = 0;
        for (const auto& [id, payload] : f->responses) {
            const std::optional<json::Value> doc = json::parse(payload);
            if (!doc || !doc->isObject()) continue;
            const json::Value* wc = doc->find("warm_cache");
            const json::Value* rc = doc->find("result_cache");
            if (!wc && !rc) continue;
            healthyShards++;
            if (wc) {
                whits += wc->numOr("hits", 0);
                wmiss += wc->numOr("misses", 0);
                wsize += wc->numOr("size", 0);
                wcap += wc->numOr("capacity", 0);
            }
            if (rc) {
                rhits += rc->numOr("hits", 0);
                rmiss += rc->numOr("misses", 0);
                rsize += rc->numOr("size", 0);
                rcap += rc->numOr("capacity", 0);
            }
        }
        const auto agg = [&out](const char* key, double hits, double misses,
                                double size, double cap) {
            const double total = hits + misses;
            out << ", \"" << key << "\": {\"size\": " << json::number(size)
                << ", \"capacity\": " << json::number(cap)
                << ", \"hits\": " << json::number(hits)
                << ", \"misses\": " << json::number(misses)
                << ", \"hit_ratio\": " << json::number(total == 0 ? 0.0 : hits / total)
                << "}";
        };
        out << ", \"fleet\": {\"shards_reporting\": " << healthyShards;
        agg("warm_cache", whits, wmiss, wsize, wcap);
        agg("result_cache", rhits, rmiss, rsize, rcap);
        out << "}";
    }

    if (f->op == "list_scenarios") {
        // Fleet union: one deduplicated catalogue (sorted by name) beside
        // the verbatim per-shard payloads. Shards normally agree; after a
        // partial upload the union still shows everything at least one
        // shard can run.
        std::map<std::string, std::string> merged;
        for (const auto& [id, payload] : f->responses) {
            const std::optional<json::Value> doc = json::parse(payload);
            if (!doc || !doc->isObject()) continue;
            const json::Value* arr = doc->find("scenarios");
            if (!arr || !arr->isArray()) continue;
            for (const json::Value& sc : arr->array) {
                if (!sc.isObject()) continue;
                const std::string name = sc.strOr("name", "");
                if (!name.empty()) merged.emplace(name, json::stringify(sc));
            }
        }
        out << ", \"scenarios\": [";
        bool firstScenario = true;
        for (const auto& [name, body] : merged) {
            (void)name;
            if (!firstScenario) out << ", ";
            firstScenario = false;
            out << body;
        }
        out << "]";
    }

    out << ", \"shards\": {";
    bool first = true;
    for (const auto& [id, payload] : f->responses) {
        if (!first) out << ", ";
        first = false;
        // Payloads are complete JSON documents; embed them verbatim.
        out << "\"" << json::escape(id) << "\": " << payload;
    }
    out << "}}";
    writeClientControl(c, out.str());
    if (c->inFlight > 0) c->inFlight--;
    resumeClient(c);
}

std::string RouterDaemon::routerSection() {
    std::ostringstream out;
    out << "{\"draining\": " << (draining() ? "true" : "false")
        << ", \"uptime_seconds\": "
        << json::number(static_cast<double>(obs::nowNanos() - startNanos_) * 1e-9)
        << ", \"connections\": " << clients_.size()
        << ", \"backends_up\": " << ring_.backendCount()
        << ", \"pending_jobs\": " << pending_.size()
        << ", \"virtual_nodes\": " << ring_.virtualNodes()
        << ", \"jobs_received\": " << jobsReceived_->value()
        << ", \"jobs_routed\": " << jobsRouted_->value()
        << ", \"jobs_completed\": " << jobsCompleted_->value()
        << ", \"jobs_failed\": " << jobsFailed_->value()
        << ", \"retries\": " << retries_->value()
        << ", \"rejected_draining\": " << rejectedDraining_->value()
        << ", \"rejected_no_backend\": " << rejectedNoBackend_->value()
        << ", \"backend_ejections\": " << backendEjections_->value()
        << ", \"backend_readmissions\": " << backendReadmissions_->value()
        << ", \"probe_timeouts\": " << probeTimeouts_->value()
        << ", \"hedge_ejections\": " << hedgeEjections_->value()
        << ", \"bad_lines\": " << badLines_->value()
        << ", \"orphan_replies\": " << orphanReplies_->value() << ", \"backends\": [";
    bool first = true;
    for (const auto& bp : backends_) {
        const Backend& b = *bp;
        const char* state = "down";
        switch (b.state) {
        case Backend::State::Down: state = "down"; break;
        case Backend::State::Connecting: state = "connecting"; break;
        case Backend::State::Handshaking: state = "handshaking"; break;
        case Backend::State::Probation: state = "probation"; break;
        case Backend::State::Up: state = "up"; break;
        }
        if (!first) out << ", ";
        first = false;
        out << "{\"id\": \"" << json::escape(b.addr.id) << "\", \"state\": \"" << state
            << "\", \"ejections\": " << b.ejections
            << ", \"inflight\": " << b.inflightTokens.size() << "}";
    }
    out << "]}";
    return out.str();
}

std::string RouterDaemon::routerStatsJson() {
    std::ostringstream out;
    out << "{\"draining\": " << (draining() ? "true" : "false")
        << ", \"uptime_seconds\": "
        << json::number(static_cast<double>(obs::nowNanos() - startNanos_) * 1e-9)
        << ", \"ticker\": {\"period_seconds\": " << json::number(cfg_.statsTickSeconds)
        << ", \"ticks\": " << statsWindow_.ticks()
        << ", \"coverage_seconds\": " << json::number(statsWindow_.coverageSeconds())
        << "}";
    struct Win {
        const char* key;
        double seconds;
    };
    constexpr Win kWindows[] = {{"1s", 1.0}, {"10s", 10.0}, {"60s", 60.0}};
    out << ", \"rates\": {";
    bool first = true;
    for (const Win& w : kWindows) {
        const double req = statsWindow_.rate("router.jobs_received", w.seconds);
        const double err = statsWindow_.rate("router.bad_lines", w.seconds) +
                           statsWindow_.rate("router.jobs_failed", w.seconds);
        if (!first) out << ", ";
        first = false;
        out << "\"" << w.key << "\": {\"req_per_s\": " << json::number(req)
            << ", \"err_per_s\": " << json::number(err) << "}";
    }
    out << "}";
    const obs::StatsWindow::WindowedQuantiles q =
        statsWindow_.quantiles("router.request_latency_seconds", 60.0);
    out << ", \"latency_seconds\": {\"family\": \"router.request_latency_seconds\""
        << ", \"window_seconds\": " << json::number(q.windowSeconds)
        << ", \"count\": " << q.count << ", \"p50\": " << json::number(q.p50)
        << ", \"p90\": " << json::number(q.p90) << ", \"p99\": " << json::number(q.p99)
        << "}, \"backends_up\": " << ring_.backendCount()
        << ", \"pending_jobs\": " << pending_.size() << "}";
    return out.str();
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void RouterDaemon::stop() {
    std::lock_guard<std::mutex> stopLk(stopMu_);
    if (stopped_) return;
    beginDrain();
    stopping_.store(true, std::memory_order_release);

    if (reactorRunning_.load(std::memory_order_acquire)) {
        closeListenersReq_.store(true, std::memory_order_release);
        reactor_->wakeup();
        while (!listenersClosed_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // The reactor's tick declares the drain complete once every routed
        // job has answered and every client buffer flushed; retries, probe
        // ejections and failure records all bound the wait.
        while (!drainComplete_.load(std::memory_order_acquire)) {
            reactor_->wakeup();
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        reactorStop_.store(true, std::memory_order_release);
        reactor_->wakeup();
        if (reactorThread_.joinable()) reactorThread_.join();
        reactorRunning_.store(false, std::memory_order_release);
    } else {
        std::lock_guard<std::mutex> lk(opsMu_);
        for (int fd : pendingListenFds_) ::close(fd);
        pendingListenFds_.clear();
        for (int fd : adoptQueue_) ::close(fd);
        adoptQueue_.clear();
        listenersClosed_.store(true, std::memory_order_release);
    }

    if (!cfg_.socketPath.empty()) ::unlink(cfg_.socketPath.c_str());
    connectionsGauge_->set(0.0);
    stopped_ = true;
}

} // namespace urtx::srv::router
