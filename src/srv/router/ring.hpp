#pragma once
/// \file ring.hpp
/// Consistent-hash ring for the fleet router.
///
/// Each backend contributes `virtualNodes` points on a 64-bit ring (hash of
/// "<id>#<vnode>"), and a key is owned by the first point clockwise from the
/// key's own hash. Virtual nodes smooth the shard-size distribution (with 64
/// vnodes the max/min shard load ratio over a uniform key corpus stays well
/// under 2); consistency bounds rebalancing — removing one of N backends
/// remaps only that backend's ~1/N of the keyspace, everything else keeps
/// its owner, so the surviving shards' warm/result caches stay hot.
///
/// Keys are ScenarioSpec::warmKey() values (FNV-1a); the ring re-mixes both
/// keys and vnode hashes through a 64-bit finalizer so FNV's weaker high
/// bits cannot cluster the ring. Not thread-safe — the router mutates and
/// reads it from its single reactor thread.

#include <cstdint>
#include <string>
#include <vector>

namespace urtx::srv::router {

/// splitmix64 finalizer: full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x);

class HashRing {
public:
    explicit HashRing(std::size_t virtualNodes = 64);

    /// Add a backend's vnodes (no-op when already present).
    void add(const std::string& id);
    /// Remove a backend's vnodes (no-op when absent).
    void remove(const std::string& id);
    bool contains(const std::string& id) const;

    std::size_t backendCount() const { return backends_.size(); }
    std::size_t virtualNodes() const { return virtualNodes_; }
    bool empty() const { return points_.empty(); }
    /// Backend ids in insertion order.
    const std::vector<std::string>& backends() const { return backends_; }

    /// The backend owning \p key, or nullptr on an empty ring. The pointer
    /// is invalidated by the next add/remove.
    const std::string* owner(std::uint64_t key) const;

    /// The first backend clockwise from \p key that is not \p exclude —
    /// where a key lands after its owner is ejected. nullptr when no other
    /// backend exists.
    const std::string* successor(std::uint64_t key, const std::string& exclude) const;

private:
    struct Point {
        std::uint64_t hash;
        std::uint32_t backend; ///< index into backends_
    };

    std::size_t lowerPoint(std::uint64_t h) const;

    std::size_t virtualNodes_;
    std::vector<std::string> backends_;
    std::vector<Point> points_; ///< sorted by hash
};

} // namespace urtx::srv::router
