#pragma once
/// \file router.hpp
/// The fleet-tier sharding router: a standalone daemon that speaks the
/// urtx_served wire protocol (both newline-JSON and binary framing,
/// preamble-negotiated per client connection) on the front and proxies each
/// job to one of N urtx_served backends on the back, chosen by consistent-
/// hashing the job's ScenarioSpec::warmKey() onto a virtual-node ring — so
/// every backend's WarmScenarioCache and ResultCache stay hot for "its"
/// scenarios, and the fleet's aggregate cache capacity scales with N.
///
/// Proxying
/// --------
/// Upstream connections always use the generated binary framing (one
/// pipelined connection per backend). Replies are matched per connection:
/// job results by a router-assigned token spliced into the job name
/// (restored before the record reaches the client — the name is excluded
/// from warmKey()/jobHash(), so caching and trace hashes are untouched),
/// and control responses by FIFO order (the daemon answers verbs in
/// request order on its reactor thread).
///
/// Robustness
/// ----------
/// A periodic health probe ({"op": "health"}) rides every backend
/// connection. A backend is *ejected* — removed from the ring, connection
/// torn down — when its connection dies, when it rejects jobs as draining,
/// or when probes go unanswered past the timeout threshold; a stranded
/// in-flight job older than the hedge timeout tightens that to a single
/// overdue probe, bounding how long a wedged shard can sit on a reply.
/// Jobs in flight on an ejected backend are retried on the ring successor.
/// Because a retry happens only after the old connection is gone, a job
/// can never produce two replies; because scenario runs are deterministic,
/// a retried job's trace hash is bit-identical to the original's. Ejected
/// backends are probed for *re-admission*: reconnect, handshake, one clean
/// health response, and they rejoin the ring (moving only their own shard
/// of the keyspace back).
///
/// Control verbs from clients fan out: metrics / health / stats collect
/// one response per live shard and answer with the merged document (plus a
/// "router" section); set_sampling broadcasts to every shard. Graceful
/// drain (stop()) rejects new jobs with verdict "draining", waits for
/// every routed job's reply to reach its client, flushes, then closes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/window.hpp"
#include "srv/daemon/reactor.hpp"
#include "srv/router/ring.hpp"
#include "srv/scenario.hpp"

namespace urtx::obs {
class Counter;
class Gauge;
class Histogram;
} // namespace urtx::obs

namespace urtx::srv {
struct ResultRecord;
namespace json {
class Value;
} // namespace json

namespace router {

/// One urtx_served backend: a loopback TCP port or a Unix-domain socket
/// path (exactly one set). `id` names the shard in metrics, health output
/// and tests; empty = derived from the address.
struct BackendAddress {
    std::string id;
    std::string socketPath;
    std::uint16_t tcpPort = 0;
};

struct RouterConfig {
    /// Front listeners (same semantics as DaemonConfig).
    std::string socketPath;
    std::uint16_t tcpPort = 0;
    bool tcpEphemeral = false;

    std::vector<BackendAddress> backends;

    /// Virtual nodes per backend on the consistent-hash ring.
    std::size_t virtualNodes = 64;
    /// Health-probe cadence per backend connection.
    double probeIntervalSeconds = 0.25;
    /// A probe unanswered this long counts as one failure.
    double probeTimeoutSeconds = 1.0;
    /// Consecutive unanswered-probe intervals before ejection.
    int probeFailThreshold = 2;
    /// An in-flight job stranded this long forces its backend's ejection
    /// check after a single overdue probe (instead of the full threshold).
    double hedgeTimeoutSeconds = 3.0;
    /// Reconnect/re-admission attempt cadence for down/ejected backends.
    double reconnectSeconds = 0.25;
    /// Give up on a job after this many placements (0 = number of backends).
    unsigned maxAttemptsPerJob = 0;

    /// Per-client submitted-but-unreplied window; reads pause at the limit.
    std::size_t maxInFlightPerClient = 256;
    /// Hard cap on one request line / frame payload.
    std::size_t maxLineBytes = 1 << 20;
    Reactor::Backend reactorBackend = Reactor::Backend::Auto;
    /// Windowed-stats snapshot cadence for the router's own stats section
    /// (0 disables).
    double statsTickSeconds = 1.0;
    std::size_t statsWindowCapacity = 128;
};

class RouterDaemon {
public:
    explicit RouterDaemon(RouterConfig cfg);
    ~RouterDaemon(); ///< stop() if still running

    RouterDaemon(const RouterDaemon&) = delete;
    RouterDaemon& operator=(const RouterDaemon&) = delete;

    /// Bind the front listeners and start the reactor (backend connections
    /// are established asynchronously; poll backendsUp() or the health verb
    /// for readiness). Returns false with a reason on bind failure.
    bool start(std::string* err = nullptr);

    /// Serve an already-connected client stream socket (tests hand in one
    /// end of a socketpair). The router owns \p fd.
    void adoptConnection(int fd);

    /// Stop admitting jobs (new ones get verdict "draining"); in-flight
    /// jobs keep streaming.
    void beginDrain();
    bool draining() const { return draining_.load(std::memory_order_acquire); }

    /// Graceful shutdown: beginDrain, wait for every routed job's reply to
    /// reach its client, flush, close everything, join. Idempotent.
    void stop();

    std::uint16_t boundTcpPort() const { return boundTcpPort_; }
    /// Backends currently in the ring (connected + probe-healthy).
    std::size_t backendsUp() const { return backendsUp_.load(std::memory_order_acquire); }
    /// Jobs routed but not yet replied to a client.
    std::size_t pendingJobs() const { return pendingCount_.load(std::memory_order_acquire); }
    std::size_t activeConnections() const {
        return clientCount_.load(std::memory_order_acquire);
    }
    const RouterConfig& config() const { return cfg_; }

private:
    struct Client;
    struct Backend;
    struct Fanout;
    struct Pending;

    // Reactor thread body and helpers (reactor thread only).
    void reactorLoop();
    void drainOps();
    void tick(std::uint64_t nowNs);
    void onListenReadable(int listenFd);
    void registerClient(const std::shared_ptr<Client>& c);

    // Client side.
    void onClientEvent(const std::shared_ptr<Client>& c, const Reactor::Event& ev);
    void readClient(const std::shared_ptr<Client>& c, bool hangup);
    void processClientInput(const std::shared_ptr<Client>& c);
    void processClientJson(const std::shared_ptr<Client>& c);
    void processClientFrames(const std::shared_ptr<Client>& c);
    void handleClientLine(const std::shared_ptr<Client>& c, const std::string& line);
    void handleClientControl(const std::shared_ptr<Client>& c, const std::string& op,
                             const json::Value& doc);
    void routeSpec(const std::shared_ptr<Client>& c, ScenarioSpec spec,
                   std::uint64_t recvNs);
    void updateClientInterest(const std::shared_ptr<Client>& c);
    void flushClient(const std::shared_ptr<Client>& c);
    void finishClientIfDone(const std::shared_ptr<Client>& c);
    void closeClient(const std::shared_ptr<Client>& c);
    void failClientProtocol(const std::shared_ptr<Client>& c, const std::string& msg);
    void resumeClient(const std::shared_ptr<Client>& c);

    // Record/response writers toward a client (reactor thread).
    void writeClientRecord(const std::shared_ptr<Client>& c, const ResultRecord& rec);
    void writeClientError(const std::shared_ptr<Client>& c, const std::string& code,
                          const std::string& message);
    void writeClientControl(const std::shared_ptr<Client>& c, const std::string& payload);
    void writeClientRejection(const std::shared_ptr<Client>& c, const ScenarioSpec& spec,
                              const std::string& verdict, const std::string& code,
                              const std::string& error);
    void writeClientOut(const std::shared_ptr<Client>& c, std::string_view bytes);

    // Backend side.
    Backend* backendById(const std::string& id);
    void connectBackend(Backend& b, std::uint64_t nowNs);
    void onBackendEvent(Backend& b, const Reactor::Event& ev);
    void finishBackendConnect(Backend& b);
    void readBackend(Backend& b);
    void processBackendInput(Backend& b);
    void handleBackendResult(Backend& b, const ResultRecord& rec);
    void handleBackendControlResp(Backend& b, const std::string& payload);
    void admitBackend(Backend& b);
    void backendDown(Backend& b, const std::string& reason);
    void sendProbe(Backend& b, std::uint64_t nowNs);
    void writeBackend(Backend& b, std::string_view bytes);
    void updateBackendInterest(Backend& b);

    // Routing core.
    void dispatchToken(std::uint64_t token);
    void retryToken(std::uint64_t token, const std::string& deadBackend);
    void failToken(std::uint64_t token, const std::string& code,
                   const std::string& error);
    void deliverToken(std::uint64_t token, ResultRecord rec);
    void setPendingCount();

    // Fan-out verbs.
    void startFanout(const std::shared_ptr<Client>& c, const std::string& op,
                     const std::string& verbJson);
    void fanoutResponse(const std::shared_ptr<Fanout>& f, const std::string& shardId,
                        const std::string& payload);
    void finishFanout(const std::shared_ptr<Fanout>& f);
    std::string routerSection();
    std::string routerStatsJson();

    RouterConfig cfg_;
    HashRing ring_;

    /// Uploaded model documents by model name: the define_scenario verb
    /// JSON exactly as fanned out, replayed to every shard admitted (or
    /// re-admitted) later so the whole fleet converges on one catalogue.
    /// Reactor thread only.
    std::map<std::string, std::string> models_;

    std::unique_ptr<Reactor> reactor_;
    std::thread reactorThread_;
    std::mutex startMu_;
    std::atomic<bool> reactorRunning_{false};
    std::atomic<bool> reactorStop_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> drainComplete_{false};
    bool stopped_ = false;
    std::mutex stopMu_;

    std::vector<int> listenFds_; ///< reactor thread only
    std::atomic<bool> closeListenersReq_{false};
    std::atomic<bool> listenersClosed_{true};
    std::uint16_t boundTcpPort_ = 0;

    // Cross-thread op queue (adopted fds + pending listeners).
    std::mutex opsMu_;
    std::vector<int> adoptQueue_;
    std::vector<int> pendingListenFds_;

    // Reactor-thread-only state.
    std::unordered_map<int, std::shared_ptr<Client>> clients_; ///< fd -> client
    std::vector<std::unique_ptr<Backend>> backends_;
    std::unordered_map<std::uint64_t, Pending> pending_;       ///< token -> job
    std::uint64_t nextToken_ = 1;
    std::uint64_t startNanos_ = 0;
    std::uint64_t nextStatsTickNs_ = 0;

    std::atomic<std::size_t> pendingCount_{0};
    std::atomic<std::size_t> clientCount_{0};
    std::atomic<std::size_t> backendsUp_{0};

    // router.* metrics (process registry).
    obs::Counter* connectionsTotal_;
    obs::Gauge* connectionsGauge_;
    obs::Counter* jobsReceived_;
    obs::Counter* jobsRouted_;
    obs::Counter* jobsCompleted_;
    obs::Counter* jobsFailed_;
    obs::Counter* rejectedDraining_;
    obs::Counter* rejectedNoBackend_;
    obs::Counter* retries_;
    obs::Counter* backendEjections_;
    obs::Counter* backendReadmissions_;
    obs::Counter* probeTimeouts_;
    obs::Counter* hedgeEjections_;
    obs::Counter* badLines_;
    obs::Counter* orphanReplies_;
    obs::Gauge* backendsUpGauge_;
    obs::Gauge* pendingGauge_;
    obs::Histogram* requestLatency_; ///< client receive -> reply handed off

    obs::StatsWindow statsWindow_;
};

} // namespace router
} // namespace urtx::srv
