#pragma once
/// \file cache.hpp
/// The serving layer's two caches.
///
/// WarmScenarioCache keeps *built systems* alive between jobs: a released
/// instance is reset (clock, capsules, solver state, parameters) and parked
/// under its ScenarioSpec::warmKey(), so the next job with the same model
/// identity skips factory construction entirely. Scenarios whose reset()
/// declines — or throws — are destroyed instead of cached; correctness
/// never depends on a hit.
///
/// ResultCache keeps *finished results* keyed by ScenarioSpec::jobHash():
/// a bit-identical rerun (same model, horizon and mode) replays the stored
/// ScenarioResult without running anything. Only Succeeded results are
/// stored — failures and rejections depend on transient conditions
/// (watchdog budgets, admission load) and must re-run.
///
/// Both are bounded LRU and thread-safe; both are owned by whoever wires
/// them into the engine (the daemon), not by the engine itself.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "srv/scenario.hpp"

namespace urtx::srv {

class WarmScenarioCache {
public:
    explicit WarmScenarioCache(std::size_t capacity = 16) : capacity_(capacity) {}

    /// What acquire() hands out: the instance (nullptr on a miss) and
    /// whether it came warm from the cache.
    struct Lease {
        std::unique_ptr<Scenario> scenario;
        bool warm = false;
    };

    /// Pop an instance parked under \p key; Lease.scenario is nullptr on a
    /// miss (the caller builds fresh).
    Lease acquire(std::uint64_t key);

    /// Hand an instance back after its run. The cache resets it and parks
    /// it under \p key; instances that refuse to reset (or throw while
    /// resetting) are destroyed. Evicts least-recently-used beyond
    /// capacity. Null scenarios are ignored.
    void release(std::uint64_t key, std::unique_ptr<Scenario> scenario);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    void clear();

private:
    struct Entry {
        std::uint64_t key;
        std::unique_ptr<Scenario> scenario;
    };

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recently used
    /// key -> entries (several instances of one model may be parked while
    /// parallel workers run the same sweep).
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

class ResultCache {
public:
    explicit ResultCache(std::size_t capacity = 256) : capacity_(capacity) {}

    /// Stored result for \p jobHash, or nullopt.
    std::optional<ScenarioResult> lookup(std::uint64_t jobHash);

    /// Store a finished result; anything but Succeeded is ignored.
    void store(std::uint64_t jobHash, const ScenarioResult& result);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    void clear();

private:
    struct Entry {
        std::uint64_t key;
        ScenarioResult result;
    };

    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace urtx::srv
