#pragma once
/// \file error.hpp
/// The unified wire error schema.
///
/// Every verb failure, protocol violation and job rejection the serving
/// tier reports — newline-JSON lines, binary Error frames, router-forwarded
/// shard failures — shares one structured shape:
///
///   {"status": "error",
///    "error": {"code": "<stable-id>", "message": "...", "context": {...}},
///    "error_string": "..."}
///
/// `code` is a stable dotted identifier (e.g. "proto.unknown-op",
/// "model.invalid", "router.shard-down") that clients can branch on without
/// parsing prose; `context` is an optional JSON object carrying
/// machine-readable detail (the offending op, validator diagnostics, ...).
/// `error_string` mirrors `message` for clients of the pre-schema protocol
/// that expected a flat string; it is deprecated and kept for one release
/// (docs/SERVING.md lists the schema and the current code registry).

#include <string>
#include <utility>

namespace urtx::srv {

/// One structured wire error: stable code + human message + optional
/// serialized JSON context object.
struct ErrorInfo {
    std::string code;
    std::string message;
    std::string contextJson; ///< serialized JSON object; empty = no context

    ErrorInfo() = default;
    ErrorInfo(std::string c, std::string m, std::string ctx = {})
        : code(std::move(c)), message(std::move(m)), contextJson(std::move(ctx)) {}
};

/// The bare error object: {"code": ..., "message": ..., "context": {...}}
/// (context omitted when empty).
std::string errorJson(const ErrorInfo& e);

/// A full one-line error response:
/// {"status": "error", "error": {...}, "error_string": "..."}
std::string errorRecord(const ErrorInfo& e);

} // namespace urtx::srv
