#include "srv/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "srv/cache.hpp"

namespace urtx::srv {

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

/// What the engine watchdog needs to see about a worker's current job.
/// sys is only valid while set; the worker clears it (under mu) before the
/// HybridSystem is destroyed, so the watchdog can never poke a dead system.
struct RunningSlot {
    std::mutex mu;
    sim::HybridSystem* sys = nullptr;
    Clock::time_point start{};
    double budgetSeconds = 0.0;
    bool tripped = false;
};

/// Clears the slot's system pointer before the scenario (declared earlier
/// in the same scope, hence destroyed later) tears the system down — on
/// both the normal and the exceptional exit path.
struct SlotGuard {
    RunningSlot& slot;
    ~SlotGuard() {
        std::lock_guard<std::mutex> lk(slot.mu);
        slot.sys = nullptr;
    }
};

/// Job wall / queue-wait buckets. The sub-100µs tiers matter for the
/// serving path: daemon queue waits and cached replays sit in the µs
/// range, and windowed quantile interpolation clips anything below the
/// lowest bound into one coarse bucket.
std::vector<double> wallBounds() {
    return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,  1e-4, 3e-4, 1e-3, 3e-3,
            1e-2, 3e-2,   1e-1, 3e-1, 1.0,    3.0, 10.0, 30.0, 100.0};
}

/// Everything the run-one-job core needs from the engine. The counters are
/// process-registry pointers (valid for the process lifetime).
struct ExecCtx {
    const EngineConfig* cfg;
    obs::Counter* jobsCompleted;
    obs::Counter* jobsFailed;
    WarmScenarioCache* warmCache;
};

/// The shared run-one-job core, used by batch workers and session workers
/// alike: install scoped obs, build the scenario (or lease a warm instance
/// from the cache), run it under the watchdog slot, grade the verdict, and
/// isolate any fault into the result. Fills status / passed / error / trace
/// / wallSeconds / metrics; dispatch bookkeeping (queue wait, steal flags,
/// deadline accounting) stays with the caller.
void executeScenario(const ExecCtx& ctx, const ScenarioSpec& spec, ScenarioResult& res,
                     RunningSlot& slot, const ScenarioLibrary& lib, std::size_t jobId) {
    obs::Registry local;
    // A job's spans sample against its own scoped registry, so the fleet's
    // process-wide sampling rate (set_sampling wire verb, --sampling flag)
    // must be inherited here or served jobs would always sample at 1.0.
    local.setSpanSamplingRate(obs::Registry::process().spanSamplingRate());
    obs::FlightRecorder recorder(ctx.cfg->recorderCapacity);
    // Unique automatic-dump path per job: concurrent failures must not
    // overwrite each other's post-mortem file.
    recorder.setDumpPath("urtx_postmortem_job" + std::to_string(jobId) + ".json");
    obs::ScopedRegistry scope(ctx.cfg->scopedMetrics ? &local : nullptr);
    obs::ScopedFlightRecorder rscope(ctx.cfg->postmortems ? &recorder : nullptr);

    const Clock::time_point runStart = Clock::now();
    try {
        std::unique_ptr<Scenario> sc;
        if (ctx.warmCache) {
            auto lease = ctx.warmCache->acquire(spec.warmKey());
            if (lease.scenario) {
                sc = std::move(lease.scenario);
                res.warmReuse = true;
            }
        }
        if (sc) {
            res.profile.stamp(obs::Stage::WarmAcquire);
        } else {
            sc = lib.build(spec.scenario, spec.params);
            res.profile.stamp(obs::Stage::ColdBuild);
        }
        sim::HybridSystem& sys = sc->system();
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            slot.sys = &sys;
            slot.start = runStart;
            slot.budgetSeconds = spec.wallBudgetSeconds;
            slot.tripped = false;
        }
        SlotGuard guard{slot}; // after sc: clears slot before ~Scenario
        sys.run(spec.horizon, spec.mode);
        res.profile.stamp(obs::Stage::Solve);
        // Detach from the watchdog *now*: the cache release below resets
        // the system (including its stop-request flag), and a late
        // requestStop() would poison the parked instance's next run.
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            slot.sys = nullptr;
        }
        res.simTime = sys.now();
        res.steps = sys.steps();
        res.trace = TraceData::from(sys.trace());
        res.passed = sc->verdict(res.verdictDetail);
        res.status = ScenarioStatus::Succeeded;
        ctx.jobsCompleted->inc();
        if (ctx.warmCache) ctx.warmCache->release(spec.warmKey(), std::move(sc));
    } catch (const UnknownParamError& ex) {
        res.status = ScenarioStatus::Failed;
        res.error = ex.what();
        res.errorCode = "param.unknown";
        if (ctx.cfg->postmortems) res.postmortemJson = recorder.dumpString(res.error);
        ctx.jobsFailed->inc();
    } catch (const std::invalid_argument& ex) {
        // Unknown scenario name, parameter bound violation, bad solver name.
        res.status = ScenarioStatus::Failed;
        res.error = ex.what();
        res.errorCode = "job.bad-argument";
        if (ctx.cfg->postmortems) res.postmortemJson = recorder.dumpString(res.error);
        ctx.jobsFailed->inc();
    } catch (const std::exception& ex) {
        bool tripped = false;
        {
            std::lock_guard<std::mutex> lk(slot.mu);
            tripped = slot.tripped;
        }
        res.status = ScenarioStatus::Failed;
        res.watchdogTripped = tripped;
        res.error = tripped ? "watchdog: wall budget " + std::to_string(spec.wallBudgetSeconds) +
                                  "s exceeded (" + ex.what() + ")"
                            : ex.what();
        res.errorCode = tripped ? "job.failed.watchdog" : "job.failed.exception";
        if (ctx.cfg->postmortems) res.postmortemJson = recorder.dumpString(res.error);
        ctx.jobsFailed->inc();
    } catch (...) {
        res.status = ScenarioStatus::Failed;
        res.error = "unknown exception";
        res.errorCode = "job.failed.exception";
        if (ctx.cfg->postmortems) res.postmortemJson = recorder.dumpString(res.error);
        ctx.jobsFailed->inc();
    }
    res.wallSeconds = secondsBetween(runStart, Clock::now());
    if (ctx.cfg->scopedMetrics) res.metrics = local.snapshot();
}

} // namespace

std::size_t BatchResult::count(ScenarioStatus s) const {
    std::size_t n = 0;
    for (const ScenarioResult& r : results) {
        if (r.status == s) ++n;
    }
    return n;
}

ServeEngine::ServeEngine(EngineConfig cfg) : cfg_(cfg) {
    // Engine accounting lives in the process registry: a scenario's scoped
    // registry dies with its job, and these pointers are written from
    // worker threads that have a scope installed.
    obs::Registry& r = obs::Registry::process();
    jobsSubmitted_ = &r.counter("srv.jobs_submitted");
    jobsCompleted_ = &r.counter("srv.jobs_completed");
    jobsFailed_ = &r.counter("srv.jobs_failed");
    jobsRejected_ = &r.counter("srv.jobs_rejected");
    steals_ = &r.counter("srv.steals");
    watchdogTrips_ = &r.counter("srv.watchdog_trips");
    deadlinesMet_ = &r.counter("srv.deadlines_met");
    deadlinesMissed_ = &r.counter("srv.deadlines_missed");
    queueWait_ = &r.histogram("srv.queue_wait_seconds", wallBounds());
    jobWall_ = &r.histogram("srv.job_wall_seconds", wallBounds());
    workersBusyHwm_ = &r.gauge("srv.workers_busy_hwm");
}

BatchResult ServeEngine::run(const std::vector<ScenarioSpec>& specs,
                             const ScenarioLibrary& lib) {
    const std::size_t n = specs.size();
    std::size_t workers = cfg_.workers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    if (workers > n && n > 0) workers = n;

    BatchResult batch;
    batch.workers = workers;
    batch.results.resize(n);
    jobsSubmitted_->add(n);
    for (std::size_t i = 0; i < n; ++i) {
        batch.results[i].name = specs[i].name.empty()
                                    ? "scenario#" + std::to_string(i)
                                    : specs[i].name;
        batch.results[i].scenario = specs[i].scenario;
    }
    if (n == 0) return batch;

    const auto est = [&](std::size_t i) {
        return specs[i].costSeconds > 0 ? specs[i].costSeconds : cfg_.defaultCostSeconds;
    };

    // --- plan: EDF order, greedy min-load assignment ------------------------
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const double da = specs[a].deadlineSeconds;
        const double db = specs[b].deadlineSeconds;
        if ((da > 0) != (db > 0)) return da > 0; // deadline-less jobs last
        return da > 0 && da < db;
    });

    std::vector<std::deque<std::size_t>> queues(workers);
    std::vector<std::unique_ptr<std::mutex>> queueMu(workers);
    for (auto& m : queueMu) m = std::make_unique<std::mutex>();
    std::vector<double> load(workers, 0.0);
    std::vector<std::size_t> plannedWorker(n, 0);
    std::size_t queued = 0;

    for (std::size_t i : order) {
        std::size_t best = 0;
        for (std::size_t w = 1; w < workers; ++w) {
            if (load[w] < load[best]) best = w;
        }
        const double projected = load[best] + est(i);
        const double deadline = specs[i].deadlineSeconds;
        if (cfg_.admissionControl && deadline > 0 && projected > deadline) {
            ScenarioResult& res = batch.results[i];
            res.status = ScenarioStatus::Rejected;
            res.deadlineMet = false;
            res.errorCode = "job.rejected.deadline";
            res.error = "admission control: projected completion " +
                        std::to_string(projected) + "s exceeds deadline " +
                        std::to_string(deadline) + "s";
            jobsRejected_->inc();
            deadlinesMissed_->inc();
            continue;
        }
        plannedWorker[i] = best;
        queues[best].push_back(i);
        load[best] = projected;
        ++queued;
    }

    // --- execute ------------------------------------------------------------
    // The recorder enable switch is a process-global causal-gate bit, so it
    // is toggled once around the whole batch (each job still records into
    // its own scoped ring) and restored afterwards — a batch must not leave
    // the process recorder enabled behind the caller's back.
    struct RecorderGate {
        bool activated;
        explicit RecorderGate(bool wanted)
            : activated(wanted && !obs::FlightRecorder::process().enabled()) {
            if (activated) obs::FlightRecorder::process().setEnabled(true);
        }
        ~RecorderGate() {
            if (activated) obs::FlightRecorder::process().setEnabled(false);
        }
    } recorderGate(cfg_.postmortems);

    // Same deal for the metrics gate: scoped per-job snapshots are only
    // meaningful if instrumented sites actually record, so turn the gate on
    // for the batch and put it back the way we found it.
    struct MetricsGate {
        bool activated;
        explicit MetricsGate(bool wanted) : activated(wanted && !obs::metricsOn()) {
            if (activated) obs::setMetricsEnabled(true);
        }
        ~MetricsGate() {
            if (activated) obs::setMetricsEnabled(false);
        }
    } metricsGate(cfg_.scopedMetrics);

    const Clock::time_point batchStart = Clock::now();
    std::atomic<std::size_t> remaining{queued};
    std::atomic<std::uint64_t> stealCount{0};
    std::atomic<std::uint64_t> tripCount{0};
    std::atomic<std::size_t> busy{0};
    std::vector<RunningSlot> slots(workers);
    std::atomic<bool> watchdogRun{true};

    const auto runJob = [&](std::size_t idx, std::size_t w, RunningSlot& slot) {
        const ScenarioSpec& spec = specs[idx];
        ScenarioResult& res = batch.results[idx];
        const double dispatchAt = secondsBetween(batchStart, Clock::now());
        res.queueWaitSeconds = dispatchAt;
        res.worker = w;
        res.stolen = (w != plannedWorker[idx]);
        res.profile.enabled = spec.profile;
        res.profile.stamp(obs::Stage::QueueWait);
        queueWait_->observe(dispatchAt);
        if (res.stolen) {
            steals_->inc();
            stealCount.fetch_add(1, std::memory_order_relaxed);
        }

        if (cfg_.admissionControl && spec.deadlineSeconds > 0 &&
            dispatchAt + est(idx) > spec.deadlineSeconds) {
            res.status = ScenarioStatus::Rejected;
            res.deadlineMet = false;
            res.errorCode = "job.rejected.deadline";
            res.error = "admission control: dispatched at " + std::to_string(dispatchAt) +
                        "s, estimate " + std::to_string(est(idx)) +
                        "s cannot meet deadline " + std::to_string(spec.deadlineSeconds) + "s";
            jobsRejected_->inc();
            deadlinesMissed_->inc();
            return;
        }

        const std::size_t nowBusy = busy.fetch_add(1, std::memory_order_relaxed) + 1;
        workersBusyHwm_->max(static_cast<double>(nowBusy));

        const ExecCtx ctx{&cfg_, jobsCompleted_, jobsFailed_, warmCache_};
        executeScenario(ctx, spec, res, slot, lib, idx);
        busy.fetch_sub(1, std::memory_order_relaxed);

        res.finishedAtSeconds = secondsBetween(batchStart, Clock::now());
        jobWall_->observe(res.wallSeconds);
        if (spec.deadlineSeconds > 0) {
            res.deadlineMet = res.finishedAtSeconds <= spec.deadlineSeconds;
            (res.deadlineMet ? deadlinesMet_ : deadlinesMissed_)->inc();
        }
    };

    // Claim the next job: own queue front first; else steal from the back
    // of the fullest sibling queue. Returns SIZE_MAX when nothing was
    // claimable this instant (another worker may still be mid-claim).
    const auto claim = [&](std::size_t w, bool& stole) -> std::size_t {
        stole = false;
        {
            std::lock_guard<std::mutex> lk(*queueMu[w]);
            if (!queues[w].empty()) {
                const std::size_t idx = queues[w].front();
                queues[w].pop_front();
                return idx;
            }
        }
        // Pick the richest victim (size read under its lock), then re-check
        // under the lock at steal time — it may have drained in between.
        std::size_t victim = SIZE_MAX;
        std::size_t most = 0;
        for (std::size_t v = 0; v < workers; ++v) {
            if (v == w) continue;
            std::size_t sz;
            {
                std::lock_guard<std::mutex> lk(*queueMu[v]);
                sz = queues[v].size();
            }
            if (sz > most) {
                most = sz;
                victim = v;
            }
        }
        if (victim == SIZE_MAX) return SIZE_MAX;
        std::lock_guard<std::mutex> lk(*queueMu[victim]);
        if (queues[victim].empty()) return SIZE_MAX;
        const std::size_t idx = queues[victim].back();
        queues[victim].pop_back();
        stole = true;
        return idx;
    };

    const auto workerLoop = [&](std::size_t w) {
        while (remaining.load(std::memory_order_acquire) > 0) {
            bool stole = false;
            const std::size_t idx = claim(w, stole);
            if (idx == SIZE_MAX) {
                std::this_thread::yield();
                continue;
            }
            runJob(idx, w, slots[w]);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    // Watchdog: only spun up when some job actually carries a wall budget.
    bool anyBudget = false;
    for (const ScenarioSpec& s : specs) anyBudget |= s.wallBudgetSeconds > 0;
    std::thread watchdog;
    if (anyBudget && cfg_.watchdogPollSeconds > 0) {
        watchdog = std::thread([&] {
            const auto poll = std::chrono::duration<double>(cfg_.watchdogPollSeconds);
            while (watchdogRun.load(std::memory_order_acquire)) {
                for (RunningSlot& slot : slots) {
                    std::lock_guard<std::mutex> lk(slot.mu);
                    if (!slot.sys || slot.tripped || slot.budgetSeconds <= 0) continue;
                    if (secondsBetween(slot.start, Clock::now()) > slot.budgetSeconds) {
                        slot.sys->requestStop();
                        slot.tripped = true;
                        watchdogTrips_->inc();
                        tripCount.fetch_add(1, std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(poll);
            }
        });
    }

    if (workers == 1) {
        workerLoop(0); // degenerate pool: run inline, no thread hop
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] { workerLoop(w); });
        }
        for (std::thread& t : pool) t.join();
    }

    watchdogRun.store(false, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();

    batch.wallSeconds = secondsBetween(batchStart, Clock::now());
    batch.steals = stealCount.load(std::memory_order_relaxed);
    batch.watchdogTrips = tripCount.load(std::memory_order_relaxed);
    return batch;
}

// --- persistent session -----------------------------------------------------

namespace {

struct PendingJob {
    ScenarioSpec spec;
    ServeEngine::Session::Callback cb;
    Clock::time_point submitted;
};

/// EDF key: (absolute deadline in steady-clock seconds, submission seq).
/// Deadline-less jobs sort last (+inf) and FIFO among themselves.
using EdfKey = std::pair<double, std::uint64_t>;

double absoluteDeadline(Clock::time_point submitted, double deadlineSeconds) {
    if (deadlineSeconds <= 0) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(submitted.time_since_epoch()).count() +
           deadlineSeconds;
}

} // namespace

struct ServeEngine::Session::Impl {
    ServeEngine* engine;
    const ScenarioLibrary* lib;
    EngineConfig cfg;          ///< snapshot at session start
    WarmScenarioCache* warmCache;
    obs::Counter* jobsSubmitted;
    obs::Counter* jobsCompleted;
    obs::Counter* jobsFailed;
    obs::Counter* jobsRejected;
    obs::Counter* watchdogTrips;
    obs::Counter* deadlinesMet;
    obs::Counter* deadlinesMissed;
    obs::Histogram* queueWait;
    obs::Histogram* jobWall;

    std::size_t workers = 1;
    std::deque<RunningSlot> slots; ///< deque: RunningSlot is not movable
    std::vector<std::thread> pool;
    std::thread watchdog;
    std::atomic<bool> watchdogRun{true};

    mutable std::mutex mu;
    std::condition_variable cv;     ///< workers: work available / stopping
    std::condition_variable idleCv; ///< drainWait: queue empty + all idle
    std::map<EdfKey, PendingJob> queue;
    std::uint64_t seq = 0;
    std::size_t inFlight = 0;
    std::uint64_t jobId = 0; ///< monotonically unique post-mortem file ids
    bool draining = false;
    bool stopping = false;
    bool joined = false;

    double est(const ScenarioSpec& s) const {
        return s.costSeconds > 0 ? s.costSeconds : cfg.defaultCostSeconds;
    }

    void workerLoop(std::size_t w) {
        for (;;) {
            PendingJob job;
            std::size_t myJobId;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv.wait(lk, [&] { return stopping || !queue.empty(); });
                if (queue.empty()) return; // stopping and drained
                auto node = queue.extract(queue.begin());
                job = std::move(node.mapped());
                ++inFlight;
                myJobId = jobId++;
            }

            ScenarioResult res;
            res.name = job.spec.name.empty() ? "scenario#" + std::to_string(myJobId)
                                             : job.spec.name;
            res.scenario = job.spec.scenario;
            const double waited = secondsBetween(job.submitted, Clock::now());
            res.queueWaitSeconds = waited;
            res.worker = w;
            res.profile.enabled = job.spec.profile;
            res.profile.stamp(obs::Stage::QueueWait);
            queueWait->observe(waited);

            if (cfg.admissionControl && job.spec.deadlineSeconds > 0 &&
                waited + est(job.spec) > job.spec.deadlineSeconds) {
                res.status = ScenarioStatus::Rejected;
                res.deadlineMet = false;
                res.errorCode = "job.rejected.deadline";
                res.error = "admission control: dispatched " + std::to_string(waited) +
                            "s after submit, estimate " + std::to_string(est(job.spec)) +
                            "s cannot meet deadline " +
                            std::to_string(job.spec.deadlineSeconds) + "s";
                jobsRejected->inc();
                deadlinesMissed->inc();
            } else {
                const ExecCtx ctx{&cfg, jobsCompleted, jobsFailed, warmCache};
                executeScenario(ctx, job.spec, res, slots[w], *lib, myJobId);
                res.finishedAtSeconds = secondsBetween(job.submitted, Clock::now());
                jobWall->observe(res.wallSeconds);
                if (job.spec.deadlineSeconds > 0) {
                    res.deadlineMet = res.finishedAtSeconds <= job.spec.deadlineSeconds;
                    (res.deadlineMet ? deadlinesMet : deadlinesMissed)->inc();
                }
            }

            if (job.cb) {
                try {
                    job.cb(std::move(res));
                } catch (...) {
                    // A reporting failure (dead client) must not kill the worker.
                }
            }
            {
                std::lock_guard<std::mutex> lk(mu);
                --inFlight;
                if (queue.empty() && inFlight == 0) idleCv.notify_all();
            }
        }
    }

    void watchdogLoop() {
        const auto poll = std::chrono::duration<double>(cfg.watchdogPollSeconds);
        while (watchdogRun.load(std::memory_order_acquire)) {
            for (RunningSlot& slot : slots) {
                std::lock_guard<std::mutex> lk(slot.mu);
                if (!slot.sys || slot.tripped || slot.budgetSeconds <= 0) continue;
                if (secondsBetween(slot.start, Clock::now()) > slot.budgetSeconds) {
                    slot.sys->requestStop();
                    slot.tripped = true;
                    watchdogTrips->inc();
                }
            }
            std::this_thread::sleep_for(poll);
        }
    }
};

ServeEngine::Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

ServeEngine::Session::~Session() {
    if (impl_) stop();
}

bool ServeEngine::Session::submit(ScenarioSpec spec, Callback done) {
    Impl& im = *impl_;
    const Clock::time_point now = Clock::now();
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (im.draining || im.stopping) return false;
        const EdfKey key{absoluteDeadline(now, spec.deadlineSeconds), im.seq++};
        im.queue.emplace(key, PendingJob{std::move(spec), std::move(done), now});
    }
    im.jobsSubmitted->inc();
    im.cv.notify_one();
    return true;
}

void ServeEngine::Session::beginDrain() {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->draining = true;
}

bool ServeEngine::Session::draining() const {
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->draining;
}

void ServeEngine::Session::drainWait() {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->idleCv.wait(lk, [this] {
        return impl_->queue.empty() && impl_->inFlight == 0;
    });
}

void ServeEngine::Session::stop() {
    Impl& im = *impl_;
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (im.joined) return;
        im.draining = true;
        im.stopping = true;
    }
    im.cv.notify_all();
    for (std::thread& t : im.pool) {
        if (t.joinable()) t.join();
    }
    im.watchdogRun.store(false, std::memory_order_release);
    if (im.watchdog.joinable()) im.watchdog.join();
    std::lock_guard<std::mutex> lk(im.mu);
    im.joined = true;
    im.idleCv.notify_all();
}

std::size_t ServeEngine::Session::queueDepth() const {
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->queue.size();
}

std::size_t ServeEngine::Session::inFlight() const {
    std::lock_guard<std::mutex> lk(impl_->mu);
    return impl_->inFlight;
}

std::unique_ptr<ServeEngine::Session> ServeEngine::startSession(const ScenarioLibrary& lib) {
    auto impl = std::make_unique<Session::Impl>();
    impl->engine = this;
    impl->lib = &lib;
    impl->cfg = cfg_;
    impl->warmCache = warmCache_;
    impl->jobsSubmitted = jobsSubmitted_;
    impl->jobsCompleted = jobsCompleted_;
    impl->jobsFailed = jobsFailed_;
    impl->jobsRejected = jobsRejected_;
    impl->watchdogTrips = watchdogTrips_;
    impl->deadlinesMet = deadlinesMet_;
    impl->deadlinesMissed = deadlinesMissed_;
    impl->queueWait = queueWait_;
    impl->jobWall = jobWall_;

    std::size_t workers = cfg_.workers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    impl->workers = workers;
    for (std::size_t w = 0; w < workers; ++w) impl->slots.emplace_back();

    Session::Impl* raw = impl.get();
    impl->pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        impl->pool.emplace_back([raw, w] { raw->workerLoop(w); });
    }
    if (cfg_.watchdogPollSeconds > 0) {
        impl->watchdog = std::thread([raw] { raw->watchdogLoop(); });
    }
    return std::unique_ptr<Session>(new Session(std::move(impl)));
}

} // namespace urtx::srv
