#include "srv/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace urtx::srv {

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

/// What the engine watchdog needs to see about a worker's current job.
/// sys is only valid while set; the worker clears it (under mu) before the
/// HybridSystem is destroyed, so the watchdog can never poke a dead system.
struct RunningSlot {
    std::mutex mu;
    sim::HybridSystem* sys = nullptr;
    Clock::time_point start{};
    double budgetSeconds = 0.0;
    bool tripped = false;
};

/// Clears the slot's system pointer before the scenario (declared earlier
/// in the same scope, hence destroyed later) tears the system down — on
/// both the normal and the exceptional exit path.
struct SlotGuard {
    RunningSlot& slot;
    ~SlotGuard() {
        std::lock_guard<std::mutex> lk(slot.mu);
        slot.sys = nullptr;
    }
};

std::vector<double> wallBounds() {
    return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0};
}

} // namespace

std::size_t BatchResult::count(ScenarioStatus s) const {
    std::size_t n = 0;
    for (const ScenarioResult& r : results) {
        if (r.status == s) ++n;
    }
    return n;
}

ServeEngine::ServeEngine(EngineConfig cfg) : cfg_(cfg) {
    // Engine accounting lives in the process registry: a scenario's scoped
    // registry dies with its job, and these pointers are written from
    // worker threads that have a scope installed.
    obs::Registry& r = obs::Registry::process();
    jobsSubmitted_ = &r.counter("srv.jobs_submitted");
    jobsCompleted_ = &r.counter("srv.jobs_completed");
    jobsFailed_ = &r.counter("srv.jobs_failed");
    jobsRejected_ = &r.counter("srv.jobs_rejected");
    steals_ = &r.counter("srv.steals");
    watchdogTrips_ = &r.counter("srv.watchdog_trips");
    deadlinesMet_ = &r.counter("srv.deadlines_met");
    deadlinesMissed_ = &r.counter("srv.deadlines_missed");
    queueWait_ = &r.histogram("srv.queue_wait_seconds", wallBounds());
    jobWall_ = &r.histogram("srv.job_wall_seconds", wallBounds());
    workersBusyHwm_ = &r.gauge("srv.workers_busy_hwm");
}

BatchResult ServeEngine::run(const std::vector<ScenarioSpec>& specs,
                             const ScenarioLibrary& lib) {
    const std::size_t n = specs.size();
    std::size_t workers = cfg_.workers;
    if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
    if (workers > n && n > 0) workers = n;

    BatchResult batch;
    batch.workers = workers;
    batch.results.resize(n);
    jobsSubmitted_->add(n);
    for (std::size_t i = 0; i < n; ++i) {
        batch.results[i].name = specs[i].name.empty()
                                    ? "scenario#" + std::to_string(i)
                                    : specs[i].name;
        batch.results[i].scenario = specs[i].scenario;
    }
    if (n == 0) return batch;

    const auto est = [&](std::size_t i) {
        return specs[i].costSeconds > 0 ? specs[i].costSeconds : cfg_.defaultCostSeconds;
    };

    // --- plan: EDF order, greedy min-load assignment ------------------------
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const double da = specs[a].deadlineSeconds;
        const double db = specs[b].deadlineSeconds;
        if ((da > 0) != (db > 0)) return da > 0; // deadline-less jobs last
        return da > 0 && da < db;
    });

    std::vector<std::deque<std::size_t>> queues(workers);
    std::vector<std::unique_ptr<std::mutex>> queueMu(workers);
    for (auto& m : queueMu) m = std::make_unique<std::mutex>();
    std::vector<double> load(workers, 0.0);
    std::vector<std::size_t> plannedWorker(n, 0);
    std::size_t queued = 0;

    for (std::size_t i : order) {
        std::size_t best = 0;
        for (std::size_t w = 1; w < workers; ++w) {
            if (load[w] < load[best]) best = w;
        }
        const double projected = load[best] + est(i);
        const double deadline = specs[i].deadlineSeconds;
        if (cfg_.admissionControl && deadline > 0 && projected > deadline) {
            ScenarioResult& res = batch.results[i];
            res.status = ScenarioStatus::Rejected;
            res.deadlineMet = false;
            res.error = "admission control: projected completion " +
                        std::to_string(projected) + "s exceeds deadline " +
                        std::to_string(deadline) + "s";
            jobsRejected_->inc();
            deadlinesMissed_->inc();
            continue;
        }
        plannedWorker[i] = best;
        queues[best].push_back(i);
        load[best] = projected;
        ++queued;
    }

    // --- execute ------------------------------------------------------------
    // The recorder enable switch is a process-global causal-gate bit, so it
    // is toggled once around the whole batch (each job still records into
    // its own scoped ring) and restored afterwards — a batch must not leave
    // the process recorder enabled behind the caller's back.
    struct RecorderGate {
        bool activated;
        explicit RecorderGate(bool wanted)
            : activated(wanted && !obs::FlightRecorder::process().enabled()) {
            if (activated) obs::FlightRecorder::process().setEnabled(true);
        }
        ~RecorderGate() {
            if (activated) obs::FlightRecorder::process().setEnabled(false);
        }
    } recorderGate(cfg_.postmortems);

    // Same deal for the metrics gate: scoped per-job snapshots are only
    // meaningful if instrumented sites actually record, so turn the gate on
    // for the batch and put it back the way we found it.
    struct MetricsGate {
        bool activated;
        explicit MetricsGate(bool wanted) : activated(wanted && !obs::metricsOn()) {
            if (activated) obs::setMetricsEnabled(true);
        }
        ~MetricsGate() {
            if (activated) obs::setMetricsEnabled(false);
        }
    } metricsGate(cfg_.scopedMetrics);

    const Clock::time_point batchStart = Clock::now();
    std::atomic<std::size_t> remaining{queued};
    std::atomic<std::uint64_t> stealCount{0};
    std::atomic<std::uint64_t> tripCount{0};
    std::atomic<std::size_t> busy{0};
    std::vector<RunningSlot> slots(workers);
    std::atomic<bool> watchdogRun{true};

    const auto runJob = [&](std::size_t idx, std::size_t w, RunningSlot& slot) {
        const ScenarioSpec& spec = specs[idx];
        ScenarioResult& res = batch.results[idx];
        const double dispatchAt = secondsBetween(batchStart, Clock::now());
        res.queueWaitSeconds = dispatchAt;
        res.worker = w;
        res.stolen = (w != plannedWorker[idx]);
        queueWait_->observe(dispatchAt);
        if (res.stolen) {
            steals_->inc();
            stealCount.fetch_add(1, std::memory_order_relaxed);
        }

        if (cfg_.admissionControl && spec.deadlineSeconds > 0 &&
            dispatchAt + est(idx) > spec.deadlineSeconds) {
            res.status = ScenarioStatus::Rejected;
            res.deadlineMet = false;
            res.error = "admission control: dispatched at " + std::to_string(dispatchAt) +
                        "s, estimate " + std::to_string(est(idx)) +
                        "s cannot meet deadline " + std::to_string(spec.deadlineSeconds) + "s";
            jobsRejected_->inc();
            deadlinesMissed_->inc();
            return;
        }

        const std::size_t nowBusy = busy.fetch_add(1, std::memory_order_relaxed) + 1;
        workersBusyHwm_->max(static_cast<double>(nowBusy));

        obs::Registry local;
        obs::FlightRecorder recorder(cfg_.recorderCapacity);
        // Unique automatic-dump path per job: concurrent failures must not
        // overwrite each other's post-mortem file.
        recorder.setDumpPath("urtx_postmortem_job" + std::to_string(idx) + ".json");
        obs::ScopedRegistry scope(cfg_.scopedMetrics ? &local : nullptr);
        obs::ScopedFlightRecorder rscope(cfg_.postmortems ? &recorder : nullptr);

        const Clock::time_point runStart = Clock::now();
        try {
            std::unique_ptr<Scenario> sc = lib.build(spec.scenario, spec.params);
            sim::HybridSystem& sys = sc->system();
            {
                std::lock_guard<std::mutex> lk(slot.mu);
                slot.sys = &sys;
                slot.start = runStart;
                slot.budgetSeconds = spec.wallBudgetSeconds;
                slot.tripped = false;
            }
            SlotGuard guard{slot}; // after sc: clears slot before ~Scenario
            sys.run(spec.horizon, spec.mode);
            res.simTime = sys.now();
            res.steps = sys.steps();
            res.trace = TraceData::from(sys.trace());
            res.passed = sc->verdict(res.verdictDetail);
            res.status = ScenarioStatus::Succeeded;
            jobsCompleted_->inc();
        } catch (const std::exception& ex) {
            bool tripped = false;
            {
                std::lock_guard<std::mutex> lk(slot.mu);
                tripped = slot.tripped;
            }
            res.status = ScenarioStatus::Failed;
            res.watchdogTripped = tripped;
            res.error = tripped ? "watchdog: wall budget " +
                                      std::to_string(spec.wallBudgetSeconds) +
                                      "s exceeded (" + ex.what() + ")"
                                : ex.what();
            if (cfg_.postmortems) res.postmortemJson = recorder.dumpString(res.error);
            jobsFailed_->inc();
        } catch (...) {
            res.status = ScenarioStatus::Failed;
            res.error = "unknown exception";
            if (cfg_.postmortems) res.postmortemJson = recorder.dumpString(res.error);
            jobsFailed_->inc();
        }
        busy.fetch_sub(1, std::memory_order_relaxed);

        const Clock::time_point end = Clock::now();
        res.wallSeconds = secondsBetween(runStart, end);
        res.finishedAtSeconds = secondsBetween(batchStart, end);
        jobWall_->observe(res.wallSeconds);
        if (spec.deadlineSeconds > 0) {
            res.deadlineMet = res.finishedAtSeconds <= spec.deadlineSeconds;
            (res.deadlineMet ? deadlinesMet_ : deadlinesMissed_)->inc();
        }
        if (cfg_.scopedMetrics) res.metrics = local.snapshot();
    };

    // Claim the next job: own queue front first; else steal from the back
    // of the fullest sibling queue. Returns SIZE_MAX when nothing was
    // claimable this instant (another worker may still be mid-claim).
    const auto claim = [&](std::size_t w, bool& stole) -> std::size_t {
        stole = false;
        {
            std::lock_guard<std::mutex> lk(*queueMu[w]);
            if (!queues[w].empty()) {
                const std::size_t idx = queues[w].front();
                queues[w].pop_front();
                return idx;
            }
        }
        // Pick the richest victim (size read under its lock), then re-check
        // under the lock at steal time — it may have drained in between.
        std::size_t victim = SIZE_MAX;
        std::size_t most = 0;
        for (std::size_t v = 0; v < workers; ++v) {
            if (v == w) continue;
            std::size_t sz;
            {
                std::lock_guard<std::mutex> lk(*queueMu[v]);
                sz = queues[v].size();
            }
            if (sz > most) {
                most = sz;
                victim = v;
            }
        }
        if (victim == SIZE_MAX) return SIZE_MAX;
        std::lock_guard<std::mutex> lk(*queueMu[victim]);
        if (queues[victim].empty()) return SIZE_MAX;
        const std::size_t idx = queues[victim].back();
        queues[victim].pop_back();
        stole = true;
        return idx;
    };

    const auto workerLoop = [&](std::size_t w) {
        while (remaining.load(std::memory_order_acquire) > 0) {
            bool stole = false;
            const std::size_t idx = claim(w, stole);
            if (idx == SIZE_MAX) {
                std::this_thread::yield();
                continue;
            }
            runJob(idx, w, slots[w]);
            remaining.fetch_sub(1, std::memory_order_acq_rel);
        }
    };

    // Watchdog: only spun up when some job actually carries a wall budget.
    bool anyBudget = false;
    for (const ScenarioSpec& s : specs) anyBudget |= s.wallBudgetSeconds > 0;
    std::thread watchdog;
    if (anyBudget && cfg_.watchdogPollSeconds > 0) {
        watchdog = std::thread([&] {
            const auto poll = std::chrono::duration<double>(cfg_.watchdogPollSeconds);
            while (watchdogRun.load(std::memory_order_acquire)) {
                for (RunningSlot& slot : slots) {
                    std::lock_guard<std::mutex> lk(slot.mu);
                    if (!slot.sys || slot.tripped || slot.budgetSeconds <= 0) continue;
                    if (secondsBetween(slot.start, Clock::now()) > slot.budgetSeconds) {
                        slot.sys->requestStop();
                        slot.tripped = true;
                        watchdogTrips_->inc();
                        tripCount.fetch_add(1, std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(poll);
            }
        });
    }

    if (workers == 1) {
        workerLoop(0); // degenerate pool: run inline, no thread hop
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] { workerLoop(w); });
        }
        for (std::thread& t : pool) t.join();
    }

    watchdogRun.store(false, std::memory_order_release);
    if (watchdog.joinable()) watchdog.join();

    batch.wallSeconds = secondsBetween(batchStart, Clock::now());
    batch.steals = stealCount.load(std::memory_order_relaxed);
    batch.watchdogTrips = tripCount.load(std::memory_order_relaxed);
    return batch;
}

} // namespace urtx::srv
