#include "srv/model/components.hpp"

#include <algorithm>

#include "flow/sport.hpp"
#include "rt/port.hpp"
#include "rt/protocol.hpp"
#include "srv/scenarios/scenarios.hpp"

namespace urtx::srv::model {

ComponentRegistry& ComponentRegistry::global() {
    static ComponentRegistry reg = [] {
        ComponentRegistry r;
        registerBuiltinComponents(r);
        return r;
    }();
    return reg;
}

void ComponentRegistry::add(ComponentType type) {
    // Introspect the port surface from a throwaway prototype so the
    // validator checks the same structure the compiler will build.
    type.ports.clear();
    type.defaultParams.clear();
    const ScenarioParams defaults;
    if (type.kind == ComponentType::Kind::Streamer) {
        flow::Streamer proto("__proto");
        const auto inst = type.makeStreamer("__p", &proto, defaults);
        for (const flow::DPort* d : inst->dports()) {
            PortInfo pi;
            pi.kind = PortInfo::Kind::DPort;
            pi.name = d->name();
            pi.dir = d->dir();
            pi.type = d->type();
            type.ports.push_back(std::move(pi));
        }
        for (const flow::SPort* s : inst->sports()) {
            PortInfo pi;
            pi.kind = PortInfo::Kind::SPort;
            pi.name = s->name();
            pi.conjugated = s->conjugated();
            pi.protocol = s->protocol().name();
            type.ports.push_back(std::move(pi));
        }
        type.defaultParams = inst->params();
    } else {
        const auto inst = type.makeCapsule("__p", defaults);
        for (const rt::Port* p : inst->ports()) {
            PortInfo pi;
            pi.kind = PortInfo::Kind::RtPort;
            pi.name = p->name();
            pi.conjugated = p->conjugated();
            pi.protocol = p->protocol().name();
            type.ports.push_back(std::move(pi));
        }
    }
    for (ComponentType& t : types_) {
        if (t.name == type.name) {
            t = std::move(type);
            return;
        }
    }
    types_.push_back(std::move(type));
}

const ComponentType* ComponentRegistry::find(std::string_view name) const {
    for (const ComponentType& t : types_) {
        if (t.name == name) return &t;
    }
    return nullptr;
}

std::vector<std::string> ComponentRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(types_.size());
    for (const ComponentType& t : types_) out.push_back(t.name);
    std::sort(out.begin(), out.end());
    return out;
}

const PortInfo* findPort(const ComponentType& t, std::string_view port) {
    for (const PortInfo& p : t.ports) {
        if (p.name == port) return &p;
    }
    return nullptr;
}

void registerBuiltinComponents(ComponentRegistry& reg) {
    namespace sc = urtx::srv::scenarios;
    const auto verboseOf = [](const ScenarioParams& p) { return p.num("verbose", 0.0) > 0.5; };

    // --- tank family --------------------------------------------------------
    {
        ComponentType t;
        t.name = "TwoTank";
        t.kind = ComponentType::Kind::Streamer;
        t.doc = "two-tank level plant with stuck-valve fault and alarm events";
        t.makeStreamer = [](std::string n, flow::Streamer* parent, const ScenarioParams&) {
            return std::make_unique<sc::TwoTank>(std::move(n), parent);
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "TankSupervisor";
        t.kind = ComponentType::Kind::Capsule;
        t.doc = "Normal <-> Shutdown supervisor on the tank alarm signals";
        t.makeCapsule = [verboseOf](std::string n, const ScenarioParams& p) {
            return std::make_unique<sc::TankSupervisor>(std::move(n), verboseOf(p));
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "FaultInjector";
        t.kind = ComponentType::Kind::Capsule;
        t.doc = "scripted valve-stuck fault injection capsule";
        t.ctorParams = {{"faultAt", "valve-stuck injection time (s, < 0 disables)", 30.0}};
        t.makeCapsule = [verboseOf](std::string n, const ScenarioParams& p) {
            return std::make_unique<sc::FaultInjector>(std::move(n), p.num("faultAt", 30.0),
                                                       verboseOf(p));
        };
        reg.add(std::move(t));
    }

    // --- cruise family ------------------------------------------------------
    {
        ComponentType t;
        t.name = "Vehicle";
        t.kind = ComponentType::Kind::Streamer;
        t.doc = "vehicle longitudinal dynamics m v' = F - b v - c v|v|";
        t.makeStreamer = [](std::string n, flow::Streamer* parent, const ScenarioParams&) {
            return std::make_unique<sc::Vehicle>(std::move(n), parent);
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "SpeedController";
        t.kind = ComponentType::Kind::Streamer;
        t.doc = "gated PI speed controller tuned over its SPort";
        t.makeStreamer = [](std::string n, flow::Streamer* parent, const ScenarioParams&) {
            return std::make_unique<sc::SpeedController>(std::move(n), parent);
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "CruiseCapsule";
        t.kind = ComponentType::Kind::Capsule;
        t.doc = "Off / Standby / Active / Override cruise state machine";
        t.makeCapsule = [verboseOf](std::string n, const ScenarioParams& p) {
            return std::make_unique<sc::CruiseCapsule>(std::move(n), verboseOf(p));
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "CruiseDriver";
        t.kind = ComponentType::Kind::Capsule;
        t.doc = "scripted driver inputs (power / set / brake / resume)";
        t.ctorParams = {{"script_scale", "driver script time scale", 1.0}};
        t.makeCapsule = [](std::string n, const ScenarioParams& p) {
            return std::make_unique<sc::CruiseDriver>(std::move(n), p.num("script_scale", 1.0));
        };
        reg.add(std::move(t));
    }

    // --- pendulum family ----------------------------------------------------
    {
        ComponentType t;
        t.name = "Pendulum";
        t.kind = ComponentType::Kind::Streamer;
        t.doc = "pendulum dynamics with a catch-zone event surface";
        t.makeStreamer = [](std::string n, flow::Streamer* parent, const ScenarioParams&) {
            return std::make_unique<sc::Pendulum>(std::move(n), parent);
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "PendulumController";
        t.kind = ComponentType::Kind::Streamer;
        t.doc = "swing-up / balance torque laws behind one streamer";
        t.makeStreamer = [](std::string n, flow::Streamer* parent, const ScenarioParams&) {
            return std::make_unique<sc::PendulumController>(std::move(n), parent);
        };
        reg.add(std::move(t));
    }
    {
        ComponentType t;
        t.name = "PendulumSupervisor";
        t.kind = ComponentType::Kind::Capsule;
        t.doc = "SwingUp <-> Balance supervisor on the catch-zone events";
        t.makeCapsule = [verboseOf](std::string n, const ScenarioParams& p) {
            return std::make_unique<sc::PendulumSupervisor>(std::move(n), verboseOf(p));
        };
        reg.add(std::move(t));
    }
}

} // namespace urtx::srv::model
