#pragma once
/// \file service.hpp
/// Wire-facing half of the model subsystem, shared by the daemon and the
/// router: the {"op": "define_scenario"} and {"op": "list_scenarios"}
/// verbs as pure JSON-in / JSON-out functions so both serving tiers emit
/// identical records.

#include <string>

#include "srv/json.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv::model {

/// Outcome of one define_scenario request.
struct DefineOutcome {
    bool ok = false;
    std::string name;     ///< registered scenario name (ok only)
    std::string response; ///< complete one-line JSON record to send back
};

/// Handle {"op": "define_scenario", "model": {...}}: parse the embedded
/// model document, run the structural validator (paper rules 1-7), and on
/// success compile-register it in \p lib beside the builtins. On any
/// diagnostic the response is the unified error schema with code
/// "model.invalid" and the full deterministic diagnostic list under
/// error.context.diagnostics.
DefineOutcome defineScenario(ScenarioLibrary& lib, const json::Value& verb);

/// Parse + validate a define_scenario verb WITHOUT registering anything.
/// On failure the outcome carries the exact error response defineScenario
/// would send; on success only ok/name are set (response stays empty).
/// Used by the router to reject a bad upload once instead of N times, and
/// to learn the model name it stores the verb under for shard replay.
DefineOutcome validateDefineVerb(const json::Value& verb);

/// {"status": "ok", "op": "list_scenarios", "scenarios": [{"name",
/// "description", "schema"}...]} — every registered factory (builtin and
/// uploaded) with its ParamSchema (defaults and bounds included).
std::string listScenariosJson(const ScenarioLibrary& lib);

} // namespace urtx::srv::model
