#pragma once
/// \file components.hpp
/// The component registry: the library of capsule and streamer types a
/// model document can instantiate by name.
///
/// Each registered type carries a factory (used by the compiler) and a
/// *port surface* introspected once from a prototype instance (used by the
/// validator): DPorts with direction and flow type, SPorts and capsule
/// ports with protocol and conjugation, plus the streamer's default
/// parameter map. Validation therefore checks real port structure — the
/// same structure the compiled system will have — not a hand-maintained
/// shadow table.
///
/// The builtin component set covers the three example systems (tank,
/// cruise, pendulum), so the committed .model.json files re-express the
/// builtin factories and stay bit-identical to them.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "flow/streamer.hpp"
#include "rt/capsule.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv::model {

/// One port of a component type, as seen by the validator.
struct PortInfo {
    enum class Kind : std::uint8_t { DPort, SPort, RtPort };
    Kind kind = Kind::DPort;
    std::string name;
    flow::DPortDir dir = flow::DPortDir::In; ///< DPort only
    flow::FlowType type;                     ///< DPort only
    bool conjugated = false;                 ///< SPort / RtPort
    std::string protocol;                    ///< SPort / RtPort protocol name
};

/// An extra job parameter a component's *constructor* consumes (beyond the
/// streamer parameter map), e.g. FaultInjector's "faultAt".
struct CtorParam {
    std::string name;
    std::string doc;
    double def = 0.0;
};

/// One registered component type.
struct ComponentType {
    enum class Kind : std::uint8_t { Streamer, Capsule };

    std::string name; ///< e.g. "TwoTank"
    Kind kind = Kind::Streamer;
    std::string doc;
    std::vector<CtorParam> ctorParams;

    /// Streamer factory (kind == Streamer): instance named \p name under
    /// \p parent, constructor inputs drawn from \p p exactly as the builtin
    /// scenario factories draw them.
    std::function<std::unique_ptr<flow::Streamer>(std::string name, flow::Streamer* parent,
                                                  const ScenarioParams& p)>
        makeStreamer;
    /// Capsule factory (kind == Capsule).
    std::function<std::unique_ptr<rt::Capsule>(std::string name, const ScenarioParams& p)>
        makeCapsule;

    /// Introspected port surface + default streamer parameters (lazily
    /// built from a prototype instance; empty params for capsules).
    std::vector<PortInfo> ports;
    std::map<std::string, double> defaultParams;
};

/// Name -> ComponentType registry. The process-wide instance carries the
/// builtin types; tests may register their own.
class ComponentRegistry {
public:
    /// The process-wide registry, builtins registered on first use.
    static ComponentRegistry& global();

    /// Register (or replace) a type; introspects the port surface from a
    /// prototype instance immediately.
    void add(ComponentType type);

    const ComponentType* find(std::string_view name) const;
    /// Registered type names, sorted.
    std::vector<std::string> names() const;

private:
    std::vector<ComponentType> types_;
};

/// Register the builtin tank / cruise / pendulum component families into
/// \p reg (idempotent re-registration).
void registerBuiltinComponents(ComponentRegistry& reg);

/// Find a port on a component type by name; nullptr when absent.
const PortInfo* findPort(const ComponentType& t, std::string_view port);

} // namespace urtx::srv::model
