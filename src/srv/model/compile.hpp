#pragma once
/// \file compile.hpp
/// The model compiler: lowers a *validated* ModelDoc onto
/// urtx::SystemBuilder into a live, warm-cacheable Scenario.
///
/// The compiler replays exactly the construction order the builtin C++
/// factories use, so a committed .model.json re-expressing a builtin
/// produces bit-identical trajectories (equal trace hashes):
///
///   1. group root streamers (document order)
///   2. streamer components as children of their group (document order)
///   3. relays, then capsules (document order)
///   4. applyParams on each streamer component (document order)
///   5. SystemBuilder: DPort dataflows first ("data flows must exist
///      before .streamer() flattens the network"), then capsules, then one
///      .streamer() per group — integrator/dt overridable per job via the
///      "integrator"/"dt" parameters, exactly like the builtins — then
///      signal flows, then traces, then build().

#include <memory>
#include <string>

#include "srv/model/model.hpp"
#include "srv/scenario.hpp"

namespace urtx::srv::model {

/// Derive the declared parameter surface of a model: its "params" entries
/// plus the auto keys every compiled model accepts (integrator, dt,
/// verbose), each component type's constructor parameters, and each
/// streamer component's own parameter map. Closed schema.
ParamSchema schemaFor(const ModelDoc& doc);

/// Register \p doc (already parse- and validation-clean) as a factory in
/// \p lib under doc->name, beside the builtins: same schema validation,
/// same warmKey/jobHash/trace-hash participation, warm-reusable via
/// HybridSystem::reset. Replaces any previous registration of that name.
void registerModel(ScenarioLibrary& lib, std::shared_ptr<const ModelDoc> doc);

/// Build one live instance (used by registerModel's factory; exposed for
/// tests). Throws std::invalid_argument when \p p violates a declared
/// parameter bound.
std::unique_ptr<Scenario> compileModel(std::shared_ptr<const ModelDoc> doc,
                                       const ScenarioParams& p);

} // namespace urtx::srv::model
