#include "srv/model/service.hpp"

#include <memory>
#include <utility>

#include "srv/error.hpp"
#include "srv/model/compile.hpp"
#include "srv/model/model.hpp"

namespace urtx::srv::model {

namespace {

/// Shared validation front half of defineScenario / validateDefineVerb:
/// returns true with the parsed document, or false with out.response set
/// to the unified-schema rejection record.
bool checkDefineVerb(const json::Value& verb, ModelDoc& doc, DefineOutcome& out) {
    const json::Value* modelDoc = verb.find("model");
    if (!modelDoc || !modelDoc->isObject()) {
        ErrorInfo e("verb.bad-argument",
                    "define_scenario requires a \"model\" object (the model document)");
        out.response = "{\"status\": \"error\", \"op\": \"define_scenario\", \"error\": " +
                       errorJson(e) + ", \"error_string\": \"" + json::escape(e.message) +
                       "\"}";
        return false;
    }

    Report r;
    doc = parseModel(*modelDoc, r);
    if (r.ok()) validateModel(doc, r);
    if (!r.ok()) {
        ErrorInfo e("model.invalid",
                    "model document rejected: " + std::to_string(r.size()) + " diagnostic" +
                        (r.size() == 1 ? "" : "s"),
                    "{\"diagnostics\": " + r.toJson() + "}");
        out.response = "{\"status\": \"error\", \"op\": \"define_scenario\", \"model\": \"" +
                       json::escape(doc.name) + "\", \"error\": " + errorJson(e) +
                       ", \"error_string\": \"" + json::escape(e.message) + "\"}";
        return false;
    }
    return true;
}

} // namespace

DefineOutcome validateDefineVerb(const json::Value& verb) {
    DefineOutcome out;
    ModelDoc doc;
    if (checkDefineVerb(verb, doc, out)) {
        out.ok = true;
        out.name = doc.name;
        out.response.clear();
    }
    return out;
}

DefineOutcome defineScenario(ScenarioLibrary& lib, const json::Value& verb) {
    DefineOutcome out;
    ModelDoc doc;
    if (!checkDefineVerb(verb, doc, out)) return out;

    auto shared = std::make_shared<const ModelDoc>(std::move(doc));
    registerModel(lib, shared);
    out.ok = true;
    out.name = shared->name;
    out.response = "{\"status\": \"ok\", \"op\": \"define_scenario\", \"model\": \"" +
                   json::escape(shared->name) + "\", \"components\": " +
                   std::to_string(shared->components.size()) + ", \"flows\": " +
                   std::to_string(shared->flows.size()) + ", \"traces\": " +
                   std::to_string(shared->traces.size()) + "}";
    return out;
}

std::string listScenariosJson(const ScenarioLibrary& lib) {
    std::string out = "{\"status\": \"ok\", \"op\": \"list_scenarios\", \"scenarios\": [";
    bool first = true;
    for (const auto& entry : lib.listDetailed()) {
        if (!first) out += ", ";
        first = false;
        out += "{\"name\": \"" + json::escape(entry.name) + "\", \"description\": \"" +
               json::escape(entry.description) + "\", \"schema\": " + entry.schema.toJson() +
               "}";
    }
    out += "]}";
    return out;
}

} // namespace urtx::srv::model
