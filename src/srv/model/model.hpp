#pragma once
/// \file model.hpp
/// The declarative scenario definition language: a JSON model document
/// covering the paper's Table 1 stereotypes — capsules, streamers,
/// DPorts/SPorts, flows, relays, solver choice, parameters — parsed into a
/// ModelDoc and checked by a structural validator enforcing the paper's
/// rules 1-7 with machine-readable diagnostics (see report.hpp and
/// docs/MODEL_FORMAT.md for the format reference and the full rule/code
/// table).
///
/// A model document looks like:
///
///   {"model": "tank-model",
///    "description": "two-tank level supervision (uploaded)",
///    "groups": [{"name": "process", "integrator": "RK45", "dt": 0.05}],
///    "components": [
///      {"name": "tanks", "type": "TwoTank", "group": "process"},
///      {"name": "supervisor", "type": "TankSupervisor"},
///      {"name": "fault", "type": "FaultInjector"}],
///    "relays": [],
///    "flows": [
///      {"from": "supervisor.plant", "to": "tanks.ctl"},
///      {"from": "fault.plant", "to": "tanks.faultIn"}],
///    "traces": [
///      {"channel": "h1", "probe": "tanks.h1"},
///      {"channel": "pump", "probe": "tanks.param.qin"}],
///    "params": [
///      {"name": "qin", "default": 0.8, "min": 0, "max": 10,
///       "doc": "pump inflow"}]}
///
/// Component types name entries of the ComponentRegistry (components.hpp);
/// the compiler (compile.hpp) lowers a validated ModelDoc onto
/// urtx::SystemBuilder into a live, warm-cacheable Scenario.

#include <cstddef>
#include <string>
#include <vector>

#include "srv/json.hpp"
#include "srv/model/report.hpp"

namespace urtx::srv::model {

/// A declared job parameter with optional default and bounds.
struct ParamDecl {
    std::string name;
    std::string doc;
    double def = 0.0;
    bool hasDefault = false;
    double min = 0.0;
    bool hasMin = false;
    double max = 0.0;
    bool hasMax = false;
};

/// One solver group: a streamer tree integrated by one solver strategy at
/// one major step (the paper's "behaviour is implemented by a solver").
struct GroupDecl {
    std::string name;
    std::string integrator = "RK45";
    double dt = 0.01;
};

/// One capsule or streamer instance of a registered component type.
struct ComponentDecl {
    std::string name;
    std::string type;
    std::string group; ///< solver group (streamers); must be empty for capsules
};

/// The paper's relay connector: duplicates one flow into >= 2 similar flows.
struct RelayDecl {
    std::string name;
    std::string group;
    std::string type = "real"; ///< flow type: "real" | "int" | "bool"
    std::size_t fanout = 2;
};

/// One connector. Endpoints are "component.port"; the endpoint kinds select
/// the connector variant (Port-Port, Port-SPort, SPort-Port, DPort-DPort).
struct FlowDecl {
    std::string from;
    std::string to;
};

/// One trace channel. Probes: "comp.port" (DPort slot 0),
/// "comp.port[i]" (slot i), "comp.param.key" (streamer parameter).
struct TraceDecl {
    std::string channel;
    std::string probe;
};

/// The parsed model document, in document order throughout (validation and
/// compilation both traverse these vectors front to back, so diagnostics
/// and construction order are deterministic).
struct ModelDoc {
    std::string name;
    std::string description;
    std::vector<ParamDecl> params;
    std::vector<GroupDecl> groups;
    std::vector<ComponentDecl> components;
    std::vector<RelayDecl> relays;
    std::vector<FlowDecl> flows;
    std::vector<TraceDecl> traces;
};

/// Parse a model document. Strict: unknown keys, wrong-typed fields and
/// missing required fields become model.parse.* diagnostics in \p r (the
/// returned doc is best-effort; use it only when r.ok()). Never throws.
ModelDoc parseModel(const json::Value& doc, Report& r);

/// Convenience overload: parse \p text as JSON first (model.parse.bad-json
/// on malformed input), then as a model document.
ModelDoc parseModel(const std::string& text, Report& r);

/// Structural validation: the paper's rules 1-7 plus referential checks,
/// appended to \p r in deterministic document order. Requires a parse-clean
/// doc. Codes (docs/MODEL_FORMAT.md has the full table):
///
///   rule1.unknown-port        flow/trace endpoint names no port of its component
///   rule2.unknown-solver      group integrator is not a known solver strategy
///   rule2.bad-step            group major step dt <= 0
///   rule3.flow-type-mismatch  DPort flow where src type is not a subset of dst
///   rule3.bad-endpoints       DPort flow that is not out -> in
///   rule4.relay-fanout        relay with fanout < 2
///   rule4.fanout-requires-relay  an out DPort feeding more than one flow
///   rule5.capsule-dport       dataflow endpoint on a capsule port
///   rule6.capsule-in-streamer capsule declared inside a solver group
///   rule7.ungrouped-streamer  streamer outside any solver group
///
/// plus model.* referential codes (unknown-component, unknown-type,
/// unknown-group, duplicate-name, duplicate-feeder, protocol-mismatch,
/// conjugation, bad-probe, param bounds).
void validateModel(const ModelDoc& doc, Report& r);

} // namespace urtx::srv::model
