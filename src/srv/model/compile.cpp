#include "srv/model/compile.hpp"

#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "flow/relay.hpp"
#include "flow/sport.hpp"
#include "rt/capsule.hpp"
#include "rt/port.hpp"
#include "srv/model/components.hpp"
#include "srv/scenarios/scenarios.hpp"
#include "urtx.hpp"

namespace urtx::srv::model {

namespace {

flow::FlowType relayType(const std::string& name) {
    if (name == "int") return flow::FlowType::integer();
    if (name == "bool") return flow::FlowType::boolean();
    return flow::FlowType::real();
}

/// Split a (validated) "comp.port" endpoint.
std::pair<std::string, std::string> split(const std::string& ep) {
    const std::size_t dot = ep.find('.');
    return {ep.substr(0, dot), ep.substr(dot + 1)};
}

/// A compiled model instance. Member order mirrors the builtin scenario
/// classes (sys_ first, then group roots, then components) so teardown
/// order matches: components before their group, groups before the system.
class CompiledScenario final : public Scenario {
public:
    CompiledScenario(std::shared_ptr<const ModelDoc> doc, const ScenarioParams& p);

    sim::HybridSystem& system() override { return *sys_; }
    bool reset() override {
        sys_->reset();
        return true;
    }

private:
    flow::DPort& dport(const std::string& ep);

    std::shared_ptr<const ModelDoc> doc_;
    std::unique_ptr<sim::HybridSystem> sys_;
    std::vector<std::unique_ptr<flow::Streamer>> groups_;
    std::vector<std::unique_ptr<flow::Streamer>> streamers_;
    std::vector<std::unique_ptr<flow::Relay>> relays_;
    std::vector<std::unique_ptr<rt::Capsule>> capsules_;
    std::map<std::string, flow::Streamer*> streamerOf_;
    std::map<std::string, flow::Relay*> relayOf_;
    std::map<std::string, rt::Capsule*> capsuleOf_;
};

flow::DPort& CompiledScenario::dport(const std::string& ep) {
    const auto [comp, port] = split(ep);
    if (const auto it = streamerOf_.find(comp); it != streamerOf_.end()) {
        return *it->second->findDPort(port);
    }
    flow::Relay& rel = *relayOf_.at(comp);
    if (port == "in") return rel.in();
    return rel.out(static_cast<std::size_t>(std::stoul(port.substr(3))));
}

CompiledScenario::CompiledScenario(std::shared_ptr<const ModelDoc> doc,
                                   const ScenarioParams& p)
    : doc_(std::move(doc)) {
    const ModelDoc& m = *doc_;
    const ComponentRegistry& reg = ComponentRegistry::global();

    for (const ParamDecl& pd : m.params) {
        if (!p.hasNum(pd.name)) continue;
        const double v = p.num(pd.name);
        if ((pd.hasMin && v < pd.min) || (pd.hasMax && v > pd.max)) {
            throw std::invalid_argument("model '" + m.name + "': parameter '" + pd.name +
                                        "' = " + std::to_string(v) +
                                        " violates its declared bounds");
        }
    }

    std::map<std::string, flow::Streamer*> groupOf;
    for (const GroupDecl& g : m.groups) {
        groups_.push_back(std::make_unique<flow::Streamer>(g.name));
        groupOf[g.name] = groups_.back().get();
    }
    for (const ComponentDecl& c : m.components) {
        const ComponentType& t = *reg.find(c.type);
        if (t.kind != ComponentType::Kind::Streamer) continue;
        streamers_.push_back(t.makeStreamer(c.name, groupOf.at(c.group), p));
        streamerOf_[c.name] = streamers_.back().get();
    }
    for (const RelayDecl& rd : m.relays) {
        relays_.push_back(std::make_unique<flow::Relay>(rd.name, groupOf.at(rd.group),
                                                        relayType(rd.type), rd.fanout));
        relayOf_[rd.name] = relays_.back().get();
    }
    for (const ComponentDecl& c : m.components) {
        const ComponentType& t = *reg.find(c.type);
        if (t.kind != ComponentType::Kind::Capsule) continue;
        capsules_.push_back(t.makeCapsule(c.name, p));
        capsuleOf_[c.name] = capsules_.back().get();
    }
    for (auto& s : streamers_) scenarios::applyParams(*s, p);

    urtx::SystemBuilder b;
    for (const FlowDecl& f : m.flows) {
        // Dataflows before .streamer() flattens the network, as in the
        // builtin factories.
        const auto [fc, fp] = split(f.from);
        const auto [tc, tp] = split(f.to);
        const bool fromCapsule = capsuleOf_.count(fc) > 0;
        const bool toCapsule = capsuleOf_.count(tc) > 0;
        if (fromCapsule || toCapsule) continue; // signal flow, wired later
        if (streamerOf_.count(fc) && streamerOf_.at(fc)->findSPort(fp)) continue;
        if (streamerOf_.count(tc) && streamerOf_.at(tc)->findSPort(tp)) continue;
        b.flow(dport(f.from), dport(f.to));
    }
    for (auto& c : capsules_) b.capsule(*c);
    for (std::size_t i = 0; i < m.groups.size(); ++i) {
        b.streamer(*groups_[i], p.str("integrator", m.groups[i].integrator),
                   p.num("dt", m.groups[i].dt));
    }
    for (const FlowDecl& f : m.flows) {
        const auto [fc, fp] = split(f.from);
        const auto [tc, tp] = split(f.to);
        rt::Port* fromPort = capsuleOf_.count(fc) ? capsuleOf_.at(fc)->findPort(fp) : nullptr;
        rt::Port* toPort = capsuleOf_.count(tc) ? capsuleOf_.at(tc)->findPort(tp) : nullptr;
        flow::SPort* fromSig =
            streamerOf_.count(fc) ? streamerOf_.at(fc)->findSPort(fp) : nullptr;
        flow::SPort* toSig = streamerOf_.count(tc) ? streamerOf_.at(tc)->findSPort(tp) : nullptr;
        if (fromPort && toPort) {
            b.flow(*fromPort, *toPort);
        } else if (fromPort && toSig) {
            b.flow(*fromPort, *toSig);
        } else if (fromSig && toPort) {
            b.flow(*fromSig, *toPort);
        }
        // else: a dataflow, already wired above
    }
    for (const TraceDecl& t : m.traces) {
        const auto [comp, rest] = split(t.probe);
        if (rest.rfind("param.", 0) == 0) {
            flow::Streamer* s = streamerOf_.at(comp);
            const std::string key = rest.substr(6);
            b.trace(t.channel, [s, key] { return s->param(key); });
            continue;
        }
        std::string port = rest;
        std::size_t index = 0;
        if (const std::size_t br = rest.find('['); br != std::string::npos) {
            index = static_cast<std::size_t>(std::stoul(rest.substr(br + 1)));
            port = rest.substr(0, br);
        }
        const flow::DPort* d = &dport(comp + "." + port);
        b.trace(t.channel, [d, index] { return d->get(index); });
    }
    sys_ = b.build();
}

} // namespace

ParamSchema schemaFor(const ModelDoc& doc) {
    const ComponentRegistry& reg = ComponentRegistry::global();
    ParamSchema s;
    s.open = false;
    s.str("integrator", "solver strategy for every group",
          doc.groups.empty() ? "RK45" : doc.groups.front().integrator);
    s.num("dt", "major step override for every group (s)",
          doc.groups.empty() ? 0.01 : doc.groups.front().dt);
    s.num("verbose", "verbose capsule logging when > 0.5", 0.0);
    for (const ComponentDecl& c : doc.components) {
        const ComponentType* t = reg.find(c.type);
        if (!t) continue;
        for (const CtorParam& cp : t->ctorParams) {
            s.num(cp.name, cp.doc + " (" + c.name + ")", cp.def);
        }
        for (const auto& [key, def] : t->defaultParams) {
            s.num(key, "parameter of " + c.name + " (" + c.type + ")", def);
        }
    }
    for (const ParamDecl& p : doc.params) {
        auto& info = s.num(p.name, p.doc);
        if (p.hasDefault) info.withDefault(p.def);
        if (p.hasMin) info.withMin(p.min);
        if (p.hasMax) info.withMax(p.max);
    }
    return s;
}

std::unique_ptr<Scenario> compileModel(std::shared_ptr<const ModelDoc> doc,
                                       const ScenarioParams& p) {
    return std::make_unique<CompiledScenario>(std::move(doc), p);
}

void registerModel(ScenarioLibrary& lib, std::shared_ptr<const ModelDoc> doc) {
    std::string desc = doc->description.empty() ? "uploaded model document"
                                                : doc->description;
    const std::string name = doc->name;
    lib.add(name, std::move(desc), schemaFor(*doc),
            [doc](const ScenarioParams& p) { return compileModel(doc, p); });
}

} // namespace urtx::srv::model
