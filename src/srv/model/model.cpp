#include "srv/model/model.hpp"

#include <cstdlib>
#include <optional>
#include <set>
#include <string_view>

#include "flow/flow_type.hpp"
#include "solver/integrator.hpp"
#include "srv/model/components.hpp"

namespace urtx::srv::model {

namespace {

// ---------------------------------------------------------------- parse side

std::string at(const std::string& base, std::size_t i) {
    return base + "/" + std::to_string(i);
}

/// Strict key check, parseJobObject-style: every member of \p obj must be
/// one of \p keys.
void checkKeys(const json::Value& obj, std::initializer_list<const char*> keys,
               const std::string& loc, Report& r) {
    for (const auto& [key, value] : obj.object) {
        (void)value;
        bool known = false;
        for (const char* k : keys) {
            if (key == k) {
                known = true;
                break;
            }
        }
        if (!known) {
            r.add("model.parse.unknown-key", loc + "/" + key,
                  "unknown key '" + key + "' in model document");
        }
    }
}

/// Fetch a required string member; empty optional (plus a diagnostic) when
/// absent or wrong-typed.
std::optional<std::string> reqStr(const json::Value& obj, const char* key,
                                  const std::string& loc, Report& r) {
    const json::Value* v = obj.find(key);
    if (!v) {
        r.add("model.parse.missing-field", loc, std::string("missing required field '") + key +
                                                    "'");
        return std::nullopt;
    }
    if (!v->isString()) {
        r.add("model.parse.bad-field", loc + "/" + key,
              std::string("field '") + key + "' must be a string");
        return std::nullopt;
    }
    return v->string;
}

/// Optional numeric member; diagnostic on wrong type.
std::optional<double> optNum(const json::Value& obj, const char* key, const std::string& loc,
                             Report& r) {
    const json::Value* v = obj.find(key);
    if (!v) return std::nullopt;
    if (!v->isNumber()) {
        r.add("model.parse.bad-field", loc + "/" + key,
              std::string("field '") + key + "' must be a number");
        return std::nullopt;
    }
    return v->number;
}

/// Optional string member; diagnostic on wrong type.
std::optional<std::string> optStr(const json::Value& obj, const char* key,
                                  const std::string& loc, Report& r) {
    const json::Value* v = obj.find(key);
    if (!v) return std::nullopt;
    if (!v->isString()) {
        r.add("model.parse.bad-field", loc + "/" + key,
              std::string("field '") + key + "' must be a string");
        return std::nullopt;
    }
    return v->string;
}

/// Fetch an optional array member of objects; nullptr when absent.
const json::Value* optArray(const json::Value& obj, const char* key, const std::string& loc,
                            Report& r) {
    const json::Value* v = obj.find(key);
    if (!v) return nullptr;
    if (!v->isArray()) {
        r.add("model.parse.bad-field", loc + "/" + key,
              std::string("field '") + key + "' must be an array");
        return nullptr;
    }
    return v;
}

/// Each array element must be an object; returns false (plus diagnostic)
/// otherwise.
bool reqObject(const json::Value& v, const std::string& loc, Report& r) {
    if (v.isObject()) return true;
    r.add("model.parse.bad-field", loc, "array element must be an object");
    return false;
}

// ------------------------------------------------------------- validate side

/// "comp.port" -> (comp, port); nullopt when there is no '.' separator.
std::optional<std::pair<std::string, std::string>> splitEndpoint(const std::string& ep) {
    const std::size_t dot = ep.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 >= ep.size()) return std::nullopt;
    return std::make_pair(ep.substr(0, dot), ep.substr(dot + 1));
}

std::optional<flow::FlowType> scalarType(const std::string& name) {
    if (name == "real") return flow::FlowType::real();
    if (name == "int") return flow::FlowType::integer();
    if (name == "bool") return flow::FlowType::boolean();
    return std::nullopt;
}

/// A resolved flow endpoint: where it lives and what kind of port it is.
struct Endpoint {
    bool onCapsule = false;
    std::string group; ///< owning solver group ("" for capsules)
    PortInfo port;
};

/// Resolve "comp.port" against the declared components/relays + registry
/// surfaces. Diagnostics go to \p r; nullopt when unresolvable.
std::optional<Endpoint> resolveEndpoint(const ModelDoc& doc, const ComponentRegistry& reg,
                                        const std::string& ep, const std::string& loc,
                                        Report& r) {
    const auto split = splitEndpoint(ep);
    if (!split) {
        r.add("model.bad-endpoint", loc,
              "endpoint '" + ep + "' must have the form \"component.port\"");
        return std::nullopt;
    }
    const auto& [comp, port] = *split;
    for (const ComponentDecl& c : doc.components) {
        if (c.name != comp) continue;
        const ComponentType* t = reg.find(c.type);
        if (!t) return std::nullopt; // model.unknown-type already reported
        const PortInfo* p = findPort(*t, port);
        if (!p) {
            r.add("rule1.unknown-port", loc,
                  "component '" + comp + "' (type " + c.type + ") has no port '" + port + "'");
            return std::nullopt;
        }
        Endpoint e;
        e.onCapsule = t->kind == ComponentType::Kind::Capsule;
        e.group = c.group;
        e.port = *p;
        return e;
    }
    for (const RelayDecl& rd : doc.relays) {
        if (rd.name != comp) continue;
        const auto t = scalarType(rd.type);
        if (!t) return std::nullopt; // model.bad-flow-type already reported
        Endpoint e;
        e.group = rd.group;
        e.port.kind = PortInfo::Kind::DPort;
        e.port.name = port;
        e.port.type = *t;
        if (port == "in") {
            e.port.dir = flow::DPortDir::In;
            return e;
        }
        for (std::size_t i = 0; i < rd.fanout; ++i) {
            if (port == "out" + std::to_string(i)) {
                e.port.dir = flow::DPortDir::Out;
                return e;
            }
        }
        r.add("rule1.unknown-port", loc,
              "relay '" + comp + "' has no port '" + port + "' (ports: in, out0..out" +
                  std::to_string(rd.fanout - 1) + ")");
        return std::nullopt;
    }
    r.add("model.unknown-component", loc, "unknown component '" + comp + "' in endpoint '" +
                                              ep + "'");
    return std::nullopt;
}

const char* kindName(PortInfo::Kind k) {
    switch (k) {
        case PortInfo::Kind::DPort: return "DPort";
        case PortInfo::Kind::SPort: return "SPort";
        case PortInfo::Kind::RtPort: return "Port";
    }
    return "?";
}

} // namespace

ModelDoc parseModel(const json::Value& doc, Report& r) {
    ModelDoc m;
    if (!doc.isObject()) {
        r.add("model.parse.not-object", "/", "model document must be a JSON object");
        return m;
    }
    checkKeys(doc,
              {"model", "description", "params", "groups", "components", "relays", "flows",
               "traces"},
              "", r);
    if (const auto name = reqStr(doc, "model", "", r)) m.name = *name;
    if (!m.name.empty() && m.name.find_first_of(" \t\n\"") != std::string::npos) {
        r.add("model.parse.bad-field", "/model",
              "model name must not contain whitespace or quotes");
    } else if (const json::Value* v = doc.find("model"); v && v->isString() && m.name.empty()) {
        r.add("model.parse.bad-field", "/model", "model name must not be empty");
    }
    if (const auto d = optStr(doc, "description", "", r)) m.description = *d;

    if (const json::Value* arr = optArray(doc, "params", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/params", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"name", "doc", "default", "min", "max"}, loc, r);
            ParamDecl p;
            if (const auto n = reqStr(v, "name", loc, r)) p.name = *n;
            if (const auto d = optStr(v, "doc", loc, r)) p.doc = *d;
            if (const auto d = optNum(v, "default", loc, r)) {
                p.def = *d;
                p.hasDefault = true;
            }
            if (const auto d = optNum(v, "min", loc, r)) {
                p.min = *d;
                p.hasMin = true;
            }
            if (const auto d = optNum(v, "max", loc, r)) {
                p.max = *d;
                p.hasMax = true;
            }
            m.params.push_back(std::move(p));
        }
    }

    if (const json::Value* arr = optArray(doc, "groups", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/groups", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"name", "integrator", "dt"}, loc, r);
            GroupDecl g;
            if (const auto n = reqStr(v, "name", loc, r)) g.name = *n;
            if (const auto s = optStr(v, "integrator", loc, r)) g.integrator = *s;
            if (const auto d = optNum(v, "dt", loc, r)) g.dt = *d;
            m.groups.push_back(std::move(g));
        }
    }

    if (const json::Value* arr = optArray(doc, "components", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/components", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"name", "type", "group"}, loc, r);
            ComponentDecl c;
            if (const auto n = reqStr(v, "name", loc, r)) c.name = *n;
            if (const auto t = reqStr(v, "type", loc, r)) c.type = *t;
            if (const auto g = optStr(v, "group", loc, r)) c.group = *g;
            m.components.push_back(std::move(c));
        }
    }

    if (const json::Value* arr = optArray(doc, "relays", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/relays", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"name", "group", "type", "fanout"}, loc, r);
            RelayDecl rd;
            if (const auto n = reqStr(v, "name", loc, r)) rd.name = *n;
            if (const auto g = optStr(v, "group", loc, r)) rd.group = *g;
            if (const auto t = optStr(v, "type", loc, r)) rd.type = *t;
            if (const auto f = optNum(v, "fanout", loc, r)) {
                if (*f < 0 || *f != static_cast<double>(static_cast<std::size_t>(*f))) {
                    r.add("model.parse.bad-field", loc + "/fanout",
                          "field 'fanout' must be a non-negative integer");
                } else {
                    rd.fanout = static_cast<std::size_t>(*f);
                }
            }
            m.relays.push_back(std::move(rd));
        }
    }

    if (const json::Value* arr = optArray(doc, "flows", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/flows", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"from", "to"}, loc, r);
            FlowDecl f;
            if (const auto s = reqStr(v, "from", loc, r)) f.from = *s;
            if (const auto s = reqStr(v, "to", loc, r)) f.to = *s;
            m.flows.push_back(std::move(f));
        }
    }

    if (const json::Value* arr = optArray(doc, "traces", "", r)) {
        for (std::size_t i = 0; i < arr->array.size(); ++i) {
            const std::string loc = at("/traces", i);
            const json::Value& v = arr->array[i];
            if (!reqObject(v, loc, r)) continue;
            checkKeys(v, {"channel", "probe"}, loc, r);
            TraceDecl t;
            if (const auto c = reqStr(v, "channel", loc, r)) t.channel = *c;
            if (const auto p = reqStr(v, "probe", loc, r)) t.probe = *p;
            m.traces.push_back(std::move(t));
        }
    }

    return m;
}

ModelDoc parseModel(const std::string& text, Report& r) {
    std::string err;
    const auto doc = json::parse(text, &err);
    if (!doc) {
        r.add("model.parse.bad-json", "/", "model document is not valid JSON: " + err);
        return ModelDoc{};
    }
    return parseModel(*doc, r);
}

void validateModel(const ModelDoc& doc, Report& r) {
    const ComponentRegistry& reg = ComponentRegistry::global();

    // --- parameters ---------------------------------------------------------
    {
        std::set<std::string> seen;
        for (std::size_t i = 0; i < doc.params.size(); ++i) {
            const ParamDecl& p = doc.params[i];
            const std::string loc = at("/params", i);
            if (!seen.insert(p.name).second) {
                r.add("model.duplicate-name", loc + "/name",
                      "duplicate parameter '" + p.name + "'");
            }
            if (p.hasMin && p.hasMax && p.min > p.max) {
                r.add("model.param.bad-bounds", loc,
                      "parameter '" + p.name + "' has min > max");
            }
            if (p.hasDefault &&
                ((p.hasMin && p.def < p.min) || (p.hasMax && p.def > p.max))) {
                r.add("model.param.default-out-of-bounds", loc + "/default",
                      "parameter '" + p.name + "' default lies outside [min, max]");
            }
        }
    }

    // --- solver groups (rule 2: behaviour is an interchangeable solver) -----
    std::set<std::string> groupNames;
    for (std::size_t i = 0; i < doc.groups.size(); ++i) {
        const GroupDecl& g = doc.groups[i];
        const std::string loc = at("/groups", i);
        if (!groupNames.insert(g.name).second) {
            r.add("model.duplicate-name", loc + "/name", "duplicate group '" + g.name + "'");
        }
        try {
            (void)solver::makeIntegrator(g.integrator);
        } catch (const std::exception&) {
            r.add("rule2.unknown-solver", loc + "/integrator",
                  "group '" + g.name + "': unknown solver strategy '" + g.integrator + "'");
        }
        if (!(g.dt > 0.0)) {
            r.add("rule2.bad-step", loc + "/dt",
                  "group '" + g.name + "': major step dt must be > 0");
        }
    }

    // --- components (rules 6 and 7: capsules and streamers live on
    // different threads — streamers inside solver groups, capsules outside) -
    std::set<std::string> instanceNames;
    for (std::size_t i = 0; i < doc.components.size(); ++i) {
        const ComponentDecl& c = doc.components[i];
        const std::string loc = at("/components", i);
        if (!instanceNames.insert(c.name).second) {
            r.add("model.duplicate-name", loc + "/name",
                  "duplicate component '" + c.name + "'");
        }
        const ComponentType* t = reg.find(c.type);
        if (!t) {
            r.add("model.unknown-type", loc + "/type",
                  "unknown component type '" + c.type + "'");
            continue;
        }
        if (t->kind == ComponentType::Kind::Capsule) {
            if (!c.group.empty()) {
                r.add("rule6.capsule-in-streamer", loc + "/group",
                      "capsule '" + c.name +
                          "' must not be placed in a solver group (streamers never contain "
                          "capsules)");
            }
        } else {
            if (c.group.empty()) {
                r.add("rule7.ungrouped-streamer", loc,
                      "streamer '" + c.name +
                          "' must belong to a solver group (streamers run on solver "
                          "threads, capsules on controllers)");
            } else if (groupNames.count(c.group) == 0) {
                r.add("model.unknown-group", loc + "/group",
                      "component '" + c.name + "' references unknown group '" + c.group +
                          "'");
            }
        }
    }

    // --- relays (rule 4: a relay generates >= 2 similar flows) --------------
    for (std::size_t i = 0; i < doc.relays.size(); ++i) {
        const RelayDecl& rd = doc.relays[i];
        const std::string loc = at("/relays", i);
        if (!instanceNames.insert(rd.name).second) {
            r.add("model.duplicate-name", loc + "/name",
                  "duplicate component '" + rd.name + "'");
        }
        if (rd.fanout < 2) {
            r.add("rule4.relay-fanout", loc + "/fanout",
                  "relay '" + rd.name +
                      "' must have fanout >= 2 (a relay duplicates a flow into at least two "
                      "similar flows)");
        }
        if (!scalarType(rd.type)) {
            r.add("model.bad-flow-type", loc + "/type",
                  "relay '" + rd.name + "': flow type must be \"real\", \"int\" or \"bool\"");
        }
        if (rd.group.empty()) {
            r.add("rule7.ungrouped-streamer", loc,
                  "relay '" + rd.name + "' must belong to a solver group");
        } else if (groupNames.count(rd.group) == 0) {
            r.add("model.unknown-group", loc + "/group",
                  "relay '" + rd.name + "' references unknown group '" + rd.group + "'");
        }
    }

    // --- flows (rules 1, 3, 4, 5 and the four connector variants) -----------
    std::set<std::string> fedInputs;   // "comp.port" with an upstream feeder
    std::set<std::string> usedOutputs; // out DPorts already feeding a flow
    std::set<std::string> wiredSignal; // signal endpoints already wired
    for (std::size_t i = 0; i < doc.flows.size(); ++i) {
        const FlowDecl& f = doc.flows[i];
        const std::string loc = at("/flows", i);
        const auto from = resolveEndpoint(doc, reg, f.from, loc + "/from", r);
        const auto to = resolveEndpoint(doc, reg, f.to, loc + "/to", r);
        if (!from || !to) continue;

        const bool fromData = from->port.kind == PortInfo::Kind::DPort;
        const bool toData = to->port.kind == PortInfo::Kind::DPort;
        if (fromData != toData) {
            // One side continuous, one side not: either a capsule port on a
            // dataflow (the paper forbids capsule DPorts outside relays) or
            // an SPort/DPort mix that is none of the four connector kinds.
            if (from->onCapsule || to->onCapsule) {
                r.add("rule5.capsule-dport", loc,
                      "flow '" + f.from + "' -> '" + f.to +
                          "' connects a capsule port to a DPort (in capsules, DPorts are "
                          "only used as relay ports)");
            } else {
                r.add("model.bad-flow-kind", loc,
                      "flow '" + f.from + "' -> '" + f.to + "' connects a " +
                          kindName(from->port.kind) + " to a " + kindName(to->port.kind) +
                          " (legal connectors: Port-Port, Port-SPort, SPort-Port, "
                          "DPort-DPort)");
            }
            continue;
        }

        if (fromData) {
            // DPort -> DPort dataflow.
            if (from->port.dir != flow::DPortDir::Out) {
                r.add("rule3.bad-endpoints", loc + "/from",
                      "dataflow source '" + f.from + "' must be an out DPort");
                continue;
            }
            if (to->port.dir != flow::DPortDir::In) {
                r.add("rule3.bad-endpoints", loc + "/to",
                      "dataflow destination '" + f.to + "' must be an in DPort");
                continue;
            }
            if (!from->group.empty() && !to->group.empty() && from->group != to->group) {
                r.add("model.cross-group-flow", loc,
                      "dataflow '" + f.from + "' -> '" + f.to +
                          "' crosses solver groups ('" + from->group + "' vs '" + to->group +
                          "')");
            }
            if (!from->port.type.subsetOf(to->port.type)) {
                r.add("rule3.flow-type-mismatch", loc,
                      "flow type " + from->port.type.toString() + " of '" + f.from +
                          "' is not a subset of " + to->port.type.toString() +
                          " required by '" + f.to + "'");
            }
            if (!fedInputs.insert(f.to).second) {
                r.add("model.duplicate-feeder", loc + "/to",
                      "'" + f.to + "' is already fed by another flow");
            }
            if (!usedOutputs.insert(f.from).second) {
                r.add("rule4.fanout-requires-relay", loc + "/from",
                      "'" + f.from +
                          "' already feeds a flow; duplicating a flow requires a relay");
            }
            continue;
        }

        // Signal flow: Port-Port, Port-SPort or SPort-Port.
        if (from->port.kind == PortInfo::Kind::SPort &&
            to->port.kind == PortInfo::Kind::SPort) {
            r.add("model.bad-flow-kind", loc,
                  "flow '" + f.from + "' -> '" + f.to +
                      "' connects two SPorts (signal flows bridge the capsule and streamer "
                      "worlds; streamer-to-streamer data travels over DPorts)");
            continue;
        }
        if (from->port.protocol != to->port.protocol) {
            r.add("model.protocol-mismatch", loc,
                  "'" + f.from + "' speaks protocol " + from->port.protocol + " but '" +
                      f.to + "' speaks " + to->port.protocol);
        } else if (from->port.conjugated == to->port.conjugated) {
            r.add("model.conjugation", loc,
                  "'" + f.from + "' and '" + f.to +
                      "' play the same protocol role; connected ports must have opposite "
                      "conjugation");
        }
        if (!wiredSignal.insert(f.from).second) {
            r.add("model.duplicate-wiring", loc + "/from",
                  "'" + f.from + "' is already wired (signal connections are point-to-point)");
        }
        if (!wiredSignal.insert(f.to).second) {
            r.add("model.duplicate-wiring", loc + "/to",
                  "'" + f.to + "' is already wired (signal connections are point-to-point)");
        }
    }

    // --- traces (rule 1 again: probes address real ports) -------------------
    {
        std::set<std::string> channels;
        for (std::size_t i = 0; i < doc.traces.size(); ++i) {
            const TraceDecl& t = doc.traces[i];
            const std::string loc = at("/traces", i);
            if (!channels.insert(t.channel).second) {
                r.add("model.duplicate-name", loc + "/channel",
                      "duplicate trace channel '" + t.channel + "'");
            }
            const auto split = splitEndpoint(t.probe);
            if (!split) {
                r.add("model.bad-probe", loc + "/probe",
                      "probe '" + t.probe +
                          "' must be \"comp.port\", \"comp.port[i]\" or \"comp.param.key\"");
                continue;
            }
            const std::string& comp = split->first;
            std::string rest = split->second;
            const ComponentDecl* cd = nullptr;
            for (const ComponentDecl& c : doc.components) {
                if (c.name == comp) {
                    cd = &c;
                    break;
                }
            }
            bool isRelay = false;
            for (const RelayDecl& rd : doc.relays) {
                if (rd.name == comp) isRelay = true;
            }
            if (!cd && !isRelay) {
                r.add("model.unknown-component", loc + "/probe",
                      "unknown component '" + comp + "' in probe '" + t.probe + "'");
                continue;
            }
            if (rest.rfind("param.", 0) == 0) {
                const std::string key = rest.substr(6);
                const ComponentType* ct = cd ? reg.find(cd->type) : nullptr;
                if (!ct || ct->kind != ComponentType::Kind::Streamer ||
                    ct->defaultParams.count(key) == 0) {
                    r.add("model.unknown-param", loc + "/probe",
                          "component '" + comp + "' has no parameter '" + key + "'");
                }
                continue;
            }
            std::size_t index = 0;
            if (const std::size_t br = rest.find('['); br != std::string::npos) {
                const std::size_t end = rest.find(']', br);
                if (end == std::string::npos || end != rest.size() - 1 || end == br + 1) {
                    r.add("model.bad-probe", loc + "/probe",
                          "probe '" + t.probe + "' has a malformed [index]");
                    continue;
                }
                index = static_cast<std::size_t>(
                    std::strtoul(rest.substr(br + 1, end - br - 1).c_str(), nullptr, 10));
                rest = rest.substr(0, br);
            }
            // Reuse endpoint resolution for the port lookup (relays too).
            Report scratch;
            const auto ep = resolveEndpoint(doc, reg, comp + "." + rest, loc + "/probe",
                                            scratch);
            for (const Diagnostic& d : scratch.diagnostics()) r.add(d.code, d.location,
                                                                    d.message);
            if (!ep) continue;
            if (ep->port.kind != PortInfo::Kind::DPort) {
                r.add("model.bad-probe", loc + "/probe",
                      "probe '" + t.probe + "' must target a DPort or a parameter");
                continue;
            }
            if (index >= ep->port.type.width()) {
                r.add("model.bad-probe", loc + "/probe",
                      "probe '" + t.probe + "' index " + std::to_string(index) +
                          " is out of range (width " +
                          std::to_string(ep->port.type.width()) + ")");
            }
        }
    }
}

} // namespace urtx::srv::model
