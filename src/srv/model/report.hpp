#pragma once
/// \file report.hpp
/// The validator's report sink: an append-only list of machine-readable
/// diagnostics.
///
/// Every structural check pushes Diagnostic{code, location, message} into a
/// Report instead of throwing, so one validation pass surfaces *all*
/// problems, in deterministic document-traversal order — validating the
/// same document twice yields byte-identical reports. Codes are stable
/// dotted identifiers ("rule3.flow-type-mismatch", "model.parse.unknown-key");
/// locations are JSON pointers into the model document ("/flows/2/from").

#include <string>
#include <utility>
#include <vector>

namespace urtx::srv::model {

/// One validation finding.
struct Diagnostic {
    std::string code;     ///< stable dotted id, e.g. "rule1.unknown-port"
    std::string location; ///< JSON pointer into the model doc, e.g. "/flows/0/from"
    std::string message;  ///< human-readable explanation
};

/// Append-only diagnostic sink. Order is the order of add() calls — the
/// validator traverses the document in one deterministic pass, so two runs
/// over the same document produce identical reports.
class Report {
public:
    void add(std::string code, std::string location, std::string message) {
        diags_.push_back({std::move(code), std::move(location), std::move(message)});
    }

    bool ok() const { return diags_.empty(); }
    std::size_t size() const { return diags_.size(); }
    const std::vector<Diagnostic>& diagnostics() const { return diags_; }

    /// JSON array of {"code", "location", "message"} objects, in order.
    std::string toJson() const;

    /// Human-readable "code @ location: message" lines.
    std::string text() const;

private:
    std::vector<Diagnostic> diags_;
};

} // namespace urtx::srv::model
