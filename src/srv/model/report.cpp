#include "srv/model/report.hpp"

#include "srv/json.hpp"

namespace urtx::srv::model {

std::string Report::toJson() const {
    std::string out = "[";
    for (std::size_t i = 0; i < diags_.size(); ++i) {
        if (i) out += ", ";
        const Diagnostic& d = diags_[i];
        out += "{\"code\": \"" + json::escape(d.code) + "\", \"location\": \"" +
               json::escape(d.location) + "\", \"message\": \"" + json::escape(d.message) +
               "\"}";
    }
    out += "]";
    return out;
}

std::string Report::text() const {
    std::string out;
    for (const Diagnostic& d : diags_) {
        out += d.code + " @ " + d.location + ": " + d.message + "\n";
    }
    return out;
}

} // namespace urtx::srv::model
