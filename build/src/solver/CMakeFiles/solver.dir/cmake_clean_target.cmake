file(REMOVE_RECURSE
  "libsolver.a"
)
