
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/difference.cpp" "src/solver/CMakeFiles/solver.dir/difference.cpp.o" "gcc" "src/solver/CMakeFiles/solver.dir/difference.cpp.o.d"
  "/root/repo/src/solver/integrator.cpp" "src/solver/CMakeFiles/solver.dir/integrator.cpp.o" "gcc" "src/solver/CMakeFiles/solver.dir/integrator.cpp.o.d"
  "/root/repo/src/solver/linalg.cpp" "src/solver/CMakeFiles/solver.dir/linalg.cpp.o" "gcc" "src/solver/CMakeFiles/solver.dir/linalg.cpp.o.d"
  "/root/repo/src/solver/zero_crossing.cpp" "src/solver/CMakeFiles/solver.dir/zero_crossing.cpp.o" "gcc" "src/solver/CMakeFiles/solver.dir/zero_crossing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
