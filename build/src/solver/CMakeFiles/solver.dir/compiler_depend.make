# Empty compiler generated dependencies file for solver.
# This may be replaced when dependencies are built.
