file(REMOVE_RECURSE
  "CMakeFiles/solver.dir/difference.cpp.o"
  "CMakeFiles/solver.dir/difference.cpp.o.d"
  "CMakeFiles/solver.dir/integrator.cpp.o"
  "CMakeFiles/solver.dir/integrator.cpp.o.d"
  "CMakeFiles/solver.dir/linalg.cpp.o"
  "CMakeFiles/solver.dir/linalg.cpp.o.d"
  "CMakeFiles/solver.dir/zero_crossing.cpp.o"
  "CMakeFiles/solver.dir/zero_crossing.cpp.o.d"
  "libsolver.a"
  "libsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
