# Empty compiler generated dependencies file for model.
# This may be replaced when dependencies are built.
