
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/instantiate.cpp" "src/model/CMakeFiles/model.dir/instantiate.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/instantiate.cpp.o.d"
  "/root/repo/src/model/model.cpp" "src/model/CMakeFiles/model.dir/model.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/model.cpp.o.d"
  "/root/repo/src/model/model_io.cpp" "src/model/CMakeFiles/model.dir/model_io.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/model_io.cpp.o.d"
  "/root/repo/src/model/stereotype.cpp" "src/model/CMakeFiles/model.dir/stereotype.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/stereotype.cpp.o.d"
  "/root/repo/src/model/type_parser.cpp" "src/model/CMakeFiles/model.dir/type_parser.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/type_parser.cpp.o.d"
  "/root/repo/src/model/validator.cpp" "src/model/CMakeFiles/model.dir/validator.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/validator.cpp.o.d"
  "/root/repo/src/model/xml.cpp" "src/model/CMakeFiles/model.dir/xml.cpp.o" "gcc" "src/model/CMakeFiles/model.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/flow.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/control.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
