file(REMOVE_RECURSE
  "libmodel.a"
)
