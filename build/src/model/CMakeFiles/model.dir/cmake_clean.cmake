file(REMOVE_RECURSE
  "CMakeFiles/model.dir/instantiate.cpp.o"
  "CMakeFiles/model.dir/instantiate.cpp.o.d"
  "CMakeFiles/model.dir/model.cpp.o"
  "CMakeFiles/model.dir/model.cpp.o.d"
  "CMakeFiles/model.dir/model_io.cpp.o"
  "CMakeFiles/model.dir/model_io.cpp.o.d"
  "CMakeFiles/model.dir/stereotype.cpp.o"
  "CMakeFiles/model.dir/stereotype.cpp.o.d"
  "CMakeFiles/model.dir/type_parser.cpp.o"
  "CMakeFiles/model.dir/type_parser.cpp.o.d"
  "CMakeFiles/model.dir/validator.cpp.o"
  "CMakeFiles/model.dir/validator.cpp.o.d"
  "CMakeFiles/model.dir/xml.cpp.o"
  "CMakeFiles/model.dir/xml.cpp.o.d"
  "libmodel.a"
  "libmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
