# Empty dependencies file for model.
# This may be replaced when dependencies are built.
