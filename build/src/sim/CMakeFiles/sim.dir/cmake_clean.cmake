file(REMOVE_RECURSE
  "CMakeFiles/sim.dir/hybrid_system.cpp.o"
  "CMakeFiles/sim.dir/hybrid_system.cpp.o.d"
  "CMakeFiles/sim.dir/trace.cpp.o"
  "CMakeFiles/sim.dir/trace.cpp.o.d"
  "libsim.a"
  "libsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
