file(REMOVE_RECURSE
  "libcodegen.a"
)
