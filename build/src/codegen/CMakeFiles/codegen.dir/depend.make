# Empty dependencies file for codegen.
# This may be replaced when dependencies are built.
