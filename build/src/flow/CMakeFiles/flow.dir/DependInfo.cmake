
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/dport.cpp" "src/flow/CMakeFiles/flow.dir/dport.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/dport.cpp.o.d"
  "/root/repo/src/flow/flow_type.cpp" "src/flow/CMakeFiles/flow.dir/flow_type.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/flow_type.cpp.o.d"
  "/root/repo/src/flow/network.cpp" "src/flow/CMakeFiles/flow.dir/network.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/network.cpp.o.d"
  "/root/repo/src/flow/relay.cpp" "src/flow/CMakeFiles/flow.dir/relay.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/relay.cpp.o.d"
  "/root/repo/src/flow/solver_runner.cpp" "src/flow/CMakeFiles/flow.dir/solver_runner.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/solver_runner.cpp.o.d"
  "/root/repo/src/flow/sport.cpp" "src/flow/CMakeFiles/flow.dir/sport.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/sport.cpp.o.d"
  "/root/repo/src/flow/streamer.cpp" "src/flow/CMakeFiles/flow.dir/streamer.cpp.o" "gcc" "src/flow/CMakeFiles/flow.dir/streamer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/rt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
