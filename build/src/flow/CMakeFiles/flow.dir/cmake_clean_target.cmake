file(REMOVE_RECURSE
  "libflow.a"
)
