# Empty compiler generated dependencies file for flow.
# This may be replaced when dependencies are built.
