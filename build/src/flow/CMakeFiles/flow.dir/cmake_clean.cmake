file(REMOVE_RECURSE
  "CMakeFiles/flow.dir/dport.cpp.o"
  "CMakeFiles/flow.dir/dport.cpp.o.d"
  "CMakeFiles/flow.dir/flow_type.cpp.o"
  "CMakeFiles/flow.dir/flow_type.cpp.o.d"
  "CMakeFiles/flow.dir/network.cpp.o"
  "CMakeFiles/flow.dir/network.cpp.o.d"
  "CMakeFiles/flow.dir/relay.cpp.o"
  "CMakeFiles/flow.dir/relay.cpp.o.d"
  "CMakeFiles/flow.dir/solver_runner.cpp.o"
  "CMakeFiles/flow.dir/solver_runner.cpp.o.d"
  "CMakeFiles/flow.dir/sport.cpp.o"
  "CMakeFiles/flow.dir/sport.cpp.o.d"
  "CMakeFiles/flow.dir/streamer.cpp.o"
  "CMakeFiles/flow.dir/streamer.cpp.o.d"
  "libflow.a"
  "libflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
