
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/capsule.cpp" "src/rt/CMakeFiles/rt_core.dir/capsule.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/capsule.cpp.o.d"
  "/root/repo/src/rt/controller.cpp" "src/rt/CMakeFiles/rt_core.dir/controller.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/controller.cpp.o.d"
  "/root/repo/src/rt/frame_service.cpp" "src/rt/CMakeFiles/rt_core.dir/frame_service.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/frame_service.cpp.o.d"
  "/root/repo/src/rt/layer_service.cpp" "src/rt/CMakeFiles/rt_core.dir/layer_service.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/layer_service.cpp.o.d"
  "/root/repo/src/rt/message.cpp" "src/rt/CMakeFiles/rt_core.dir/message.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/message.cpp.o.d"
  "/root/repo/src/rt/port.cpp" "src/rt/CMakeFiles/rt_core.dir/port.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/port.cpp.o.d"
  "/root/repo/src/rt/port_array.cpp" "src/rt/CMakeFiles/rt_core.dir/port_array.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/port_array.cpp.o.d"
  "/root/repo/src/rt/protocol.cpp" "src/rt/CMakeFiles/rt_core.dir/protocol.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/protocol.cpp.o.d"
  "/root/repo/src/rt/signal.cpp" "src/rt/CMakeFiles/rt_core.dir/signal.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/signal.cpp.o.d"
  "/root/repo/src/rt/state_machine.cpp" "src/rt/CMakeFiles/rt_core.dir/state_machine.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/state_machine.cpp.o.d"
  "/root/repo/src/rt/timer_service.cpp" "src/rt/CMakeFiles/rt_core.dir/timer_service.cpp.o" "gcc" "src/rt/CMakeFiles/rt_core.dir/timer_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
