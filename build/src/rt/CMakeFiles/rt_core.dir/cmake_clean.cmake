file(REMOVE_RECURSE
  "CMakeFiles/rt_core.dir/capsule.cpp.o"
  "CMakeFiles/rt_core.dir/capsule.cpp.o.d"
  "CMakeFiles/rt_core.dir/controller.cpp.o"
  "CMakeFiles/rt_core.dir/controller.cpp.o.d"
  "CMakeFiles/rt_core.dir/frame_service.cpp.o"
  "CMakeFiles/rt_core.dir/frame_service.cpp.o.d"
  "CMakeFiles/rt_core.dir/layer_service.cpp.o"
  "CMakeFiles/rt_core.dir/layer_service.cpp.o.d"
  "CMakeFiles/rt_core.dir/message.cpp.o"
  "CMakeFiles/rt_core.dir/message.cpp.o.d"
  "CMakeFiles/rt_core.dir/port.cpp.o"
  "CMakeFiles/rt_core.dir/port.cpp.o.d"
  "CMakeFiles/rt_core.dir/port_array.cpp.o"
  "CMakeFiles/rt_core.dir/port_array.cpp.o.d"
  "CMakeFiles/rt_core.dir/protocol.cpp.o"
  "CMakeFiles/rt_core.dir/protocol.cpp.o.d"
  "CMakeFiles/rt_core.dir/signal.cpp.o"
  "CMakeFiles/rt_core.dir/signal.cpp.o.d"
  "CMakeFiles/rt_core.dir/state_machine.cpp.o"
  "CMakeFiles/rt_core.dir/state_machine.cpp.o.d"
  "CMakeFiles/rt_core.dir/timer_service.cpp.o"
  "CMakeFiles/rt_core.dir/timer_service.cpp.o.d"
  "librt_core.a"
  "librt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
