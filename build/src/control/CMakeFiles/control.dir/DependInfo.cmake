
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/discrete.cpp" "src/control/CMakeFiles/control.dir/discrete.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/discrete.cpp.o.d"
  "/root/repo/src/control/dynamics.cpp" "src/control/CMakeFiles/control.dir/dynamics.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/dynamics.cpp.o.d"
  "/root/repo/src/control/math_blocks.cpp" "src/control/CMakeFiles/control.dir/math_blocks.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/math_blocks.cpp.o.d"
  "/root/repo/src/control/plants.cpp" "src/control/CMakeFiles/control.dir/plants.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/plants.cpp.o.d"
  "/root/repo/src/control/sinks.cpp" "src/control/CMakeFiles/control.dir/sinks.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/sinks.cpp.o.d"
  "/root/repo/src/control/sources.cpp" "src/control/CMakeFiles/control.dir/sources.cpp.o" "gcc" "src/control/CMakeFiles/control.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/flow.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/solver.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/rt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
