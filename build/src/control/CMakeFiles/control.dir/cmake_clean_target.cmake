file(REMOVE_RECURSE
  "libcontrol.a"
)
