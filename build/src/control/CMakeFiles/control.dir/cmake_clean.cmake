file(REMOVE_RECURSE
  "CMakeFiles/control.dir/discrete.cpp.o"
  "CMakeFiles/control.dir/discrete.cpp.o.d"
  "CMakeFiles/control.dir/dynamics.cpp.o"
  "CMakeFiles/control.dir/dynamics.cpp.o.d"
  "CMakeFiles/control.dir/math_blocks.cpp.o"
  "CMakeFiles/control.dir/math_blocks.cpp.o.d"
  "CMakeFiles/control.dir/plants.cpp.o"
  "CMakeFiles/control.dir/plants.cpp.o.d"
  "CMakeFiles/control.dir/sinks.cpp.o"
  "CMakeFiles/control.dir/sinks.cpp.o.d"
  "CMakeFiles/control.dir/sources.cpp.o"
  "CMakeFiles/control.dir/sources.cpp.o.d"
  "libcontrol.a"
  "libcontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
