# Empty dependencies file for control.
# This may be replaced when dependencies are built.
