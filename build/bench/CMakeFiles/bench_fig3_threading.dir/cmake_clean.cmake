file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_threading.dir/bench_fig3_threading.cpp.o"
  "CMakeFiles/bench_fig3_threading.dir/bench_fig3_threading.cpp.o.d"
  "bench_fig3_threading"
  "bench_fig3_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
