# Empty dependencies file for bench_fig1_strategy.
# This may be replaced when dependencies are built.
