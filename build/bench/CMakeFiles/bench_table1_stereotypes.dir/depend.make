# Empty dependencies file for bench_table1_stereotypes.
# This may be replaced when dependencies are built.
