file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_stereotypes.dir/bench_table1_stereotypes.cpp.o"
  "CMakeFiles/bench_table1_stereotypes.dir/bench_table1_stereotypes.cpp.o.d"
  "bench_table1_stereotypes"
  "bench_table1_stereotypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stereotypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
