file(REMOVE_RECURSE
  "CMakeFiles/bench_messaging.dir/bench_messaging.cpp.o"
  "CMakeFiles/bench_messaging.dir/bench_messaging.cpp.o.d"
  "bench_messaging"
  "bench_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
