file(REMOVE_RECURSE
  "CMakeFiles/dc_motor_lab.dir/dc_motor_lab.cpp.o"
  "CMakeFiles/dc_motor_lab.dir/dc_motor_lab.cpp.o.d"
  "dc_motor_lab"
  "dc_motor_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_motor_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
