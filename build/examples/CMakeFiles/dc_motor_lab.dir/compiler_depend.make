# Empty compiler generated dependencies file for dc_motor_lab.
# This may be replaced when dependencies are built.
