# Empty dependencies file for tank_system.
# This may be replaced when dependencies are built.
