file(REMOVE_RECURSE
  "CMakeFiles/tank_system.dir/tank_system.cpp.o"
  "CMakeFiles/tank_system.dir/tank_system.cpp.o.d"
  "tank_system"
  "tank_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tank_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
