file(REMOVE_RECURSE
  "CMakeFiles/model_driven.dir/model_driven.cpp.o"
  "CMakeFiles/model_driven.dir/model_driven.cpp.o.d"
  "model_driven"
  "model_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
