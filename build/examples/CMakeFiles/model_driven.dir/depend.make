# Empty dependencies file for model_driven.
# This may be replaced when dependencies are built.
