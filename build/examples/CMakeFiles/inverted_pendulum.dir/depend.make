# Empty dependencies file for inverted_pendulum.
# This may be replaced when dependencies are built.
