file(REMOVE_RECURSE
  "CMakeFiles/inverted_pendulum.dir/inverted_pendulum.cpp.o"
  "CMakeFiles/inverted_pendulum.dir/inverted_pendulum.cpp.o.d"
  "inverted_pendulum"
  "inverted_pendulum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverted_pendulum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
