# Empty compiler generated dependencies file for cruise_control.
# This may be replaced when dependencies are built.
