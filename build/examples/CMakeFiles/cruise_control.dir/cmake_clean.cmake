file(REMOVE_RECURSE
  "CMakeFiles/cruise_control.dir/cruise_control.cpp.o"
  "CMakeFiles/cruise_control.dir/cruise_control.cpp.o.d"
  "cruise_control"
  "cruise_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cruise_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
