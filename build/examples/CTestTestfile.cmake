# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inverted_pendulum "/root/repo/build/examples/inverted_pendulum")
set_tests_properties(example_inverted_pendulum PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cruise_control "/root/repo/build/examples/cruise_control")
set_tests_properties(example_cruise_control PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tank_system "/root/repo/build/examples/tank_system")
set_tests_properties(example_tank_system PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_codegen_demo "/root/repo/build/examples/codegen_demo")
set_tests_properties(example_codegen_demo PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_driven "/root/repo/build/examples/model_driven")
set_tests_properties(example_model_driven PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dc_motor_lab "/root/repo/build/examples/dc_motor_lab")
set_tests_properties(example_dc_motor_lab PROPERTIES  TIMEOUT "120" WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
