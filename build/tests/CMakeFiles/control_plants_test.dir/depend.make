# Empty dependencies file for control_plants_test.
# This may be replaced when dependencies are built.
