file(REMOVE_RECURSE
  "CMakeFiles/control_plants_test.dir/control_plants_test.cpp.o"
  "CMakeFiles/control_plants_test.dir/control_plants_test.cpp.o.d"
  "control_plants_test"
  "control_plants_test.pdb"
  "control_plants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_plants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
