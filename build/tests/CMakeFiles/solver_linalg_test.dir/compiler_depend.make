# Empty compiler generated dependencies file for solver_linalg_test.
# This may be replaced when dependencies are built.
