file(REMOVE_RECURSE
  "CMakeFiles/solver_linalg_test.dir/solver_linalg_test.cpp.o"
  "CMakeFiles/solver_linalg_test.dir/solver_linalg_test.cpp.o.d"
  "solver_linalg_test"
  "solver_linalg_test.pdb"
  "solver_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
