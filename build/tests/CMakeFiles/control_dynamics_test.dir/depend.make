# Empty dependencies file for control_dynamics_test.
# This may be replaced when dependencies are built.
