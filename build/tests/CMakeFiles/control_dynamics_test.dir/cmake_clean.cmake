file(REMOVE_RECURSE
  "CMakeFiles/control_dynamics_test.dir/control_dynamics_test.cpp.o"
  "CMakeFiles/control_dynamics_test.dir/control_dynamics_test.cpp.o.d"
  "control_dynamics_test"
  "control_dynamics_test.pdb"
  "control_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
