# Empty compiler generated dependencies file for rt_timer_test.
# This may be replaced when dependencies are built.
