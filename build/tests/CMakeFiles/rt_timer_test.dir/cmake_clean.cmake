file(REMOVE_RECURSE
  "CMakeFiles/rt_timer_test.dir/rt_timer_test.cpp.o"
  "CMakeFiles/rt_timer_test.dir/rt_timer_test.cpp.o.d"
  "rt_timer_test"
  "rt_timer_test.pdb"
  "rt_timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
