# Empty dependencies file for rt_controller_test.
# This may be replaced when dependencies are built.
