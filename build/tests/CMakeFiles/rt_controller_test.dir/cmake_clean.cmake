file(REMOVE_RECURSE
  "CMakeFiles/rt_controller_test.dir/rt_controller_test.cpp.o"
  "CMakeFiles/rt_controller_test.dir/rt_controller_test.cpp.o.d"
  "rt_controller_test"
  "rt_controller_test.pdb"
  "rt_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
