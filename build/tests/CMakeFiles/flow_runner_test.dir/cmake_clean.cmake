file(REMOVE_RECURSE
  "CMakeFiles/flow_runner_test.dir/flow_runner_test.cpp.o"
  "CMakeFiles/flow_runner_test.dir/flow_runner_test.cpp.o.d"
  "flow_runner_test"
  "flow_runner_test.pdb"
  "flow_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
