file(REMOVE_RECURSE
  "CMakeFiles/rt_port_test.dir/rt_port_test.cpp.o"
  "CMakeFiles/rt_port_test.dir/rt_port_test.cpp.o.d"
  "rt_port_test"
  "rt_port_test.pdb"
  "rt_port_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_port_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
