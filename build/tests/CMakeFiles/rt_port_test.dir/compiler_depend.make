# Empty compiler generated dependencies file for rt_port_test.
# This may be replaced when dependencies are built.
