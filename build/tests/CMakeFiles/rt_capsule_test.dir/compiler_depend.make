# Empty compiler generated dependencies file for rt_capsule_test.
# This may be replaced when dependencies are built.
