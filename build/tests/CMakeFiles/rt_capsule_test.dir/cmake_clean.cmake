file(REMOVE_RECURSE
  "CMakeFiles/rt_capsule_test.dir/rt_capsule_test.cpp.o"
  "CMakeFiles/rt_capsule_test.dir/rt_capsule_test.cpp.o.d"
  "rt_capsule_test"
  "rt_capsule_test.pdb"
  "rt_capsule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_capsule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
