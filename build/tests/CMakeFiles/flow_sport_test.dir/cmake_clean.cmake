file(REMOVE_RECURSE
  "CMakeFiles/flow_sport_test.dir/flow_sport_test.cpp.o"
  "CMakeFiles/flow_sport_test.dir/flow_sport_test.cpp.o.d"
  "flow_sport_test"
  "flow_sport_test.pdb"
  "flow_sport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_sport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
