# Empty compiler generated dependencies file for flow_sport_test.
# This may be replaced when dependencies are built.
