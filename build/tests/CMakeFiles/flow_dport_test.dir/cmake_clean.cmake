file(REMOVE_RECURSE
  "CMakeFiles/flow_dport_test.dir/flow_dport_test.cpp.o"
  "CMakeFiles/flow_dport_test.dir/flow_dport_test.cpp.o.d"
  "flow_dport_test"
  "flow_dport_test.pdb"
  "flow_dport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_dport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
